"""Fault-recovery matrix: one seeded fault plan, four transports.

The paper's Sec. VI-A caveat made measurable: MPI wins raw shuffle
throughput, but its default fault model (MPI_ERRORS_ARE_FATAL) turns one
lost executor into a lost job, while the socket transports recover through
Spark's stage-resubmission machinery. With ULFM-style communicator
shrinking assumed, MPI recovers too. The injected plan is identical in
every cell — one executor crash plus one NIC degradation, landing at the
start of the shuffle-read stage — and two same-seed runs must render
byte-identical availability reports.
"""

import pytest

from benchmarks.conftest import FULL, run_once
from repro.faults import (
    ChaosScenario,
    ExecutorCrash,
    FaultPlan,
    NicDegradation,
    render_matrix,
    run_scenario,
)
from repro.harness.systems import INTERNAL_CLUSTER
from repro.util.units import MiB

N_WORKERS = 8 if FULL else 4
SHUFFLE_BYTES = (256 if FULL else 64) * MiB
SEED = 7

# The cells of the matrix: (transport, mpi fault mode).
CELLS = [
    ("nio", "abort"),
    ("rdma", "abort"),
    ("mpi-basic", "abort"),
    ("mpi-opt", "abort"),
    ("mpi-opt", "shrink"),
    ("mpi-coll", "abort"),
    ("mpi-coll", "shrink"),
]

# The collective transport drains the whole exchange so fast that at the
# reduced 64 MiB geometry the 5 ms crash lands after the job is already
# done; its cells shuffle 256 MiB so the fault hits mid-alltoallv.
COLL_SHUFFLE_BYTES = 256 * MiB


def the_plan():
    """1 executor crash + 1 NIC degradation, mid-shuffle, fixed seed."""
    return (
        FaultPlan(seed=SEED, name="crash+degrade")
        .add(NicDegradation(at_s=0.002, node_index=2, factor=4.0, duration_s=0.5))
        .add(ExecutorCrash(at_s=0.005, exec_id=1))
    )


def make_cell(transport, mode):
    return ChaosScenario(
        name="fault-recovery",
        system=INTERNAL_CLUSTER,
        n_workers=N_WORKERS,
        transport=transport,
        plan=the_plan(),
        mpi_fault_mode=mode,
        cores_per_executor=4,
        shuffle_bytes=COLL_SHUFFLE_BYTES if transport == "mpi-coll" else SHUFFLE_BYTES,
        deadline_s=120.0,
    )


def run_matrix():
    return [run_scenario(make_cell(t, m)) for t, m in CELLS]


def test_fault_recovery_matrix(benchmark):
    reports = run_once(benchmark, run_matrix)
    print()
    print(render_matrix(reports))
    by = {(r.transport, r.fault_mode): r for r in reports}

    # Socket transports survive: the dead executor's map output is
    # recomputed and the read stage resubmitted.
    for cell in [("nio", "n/a"), ("rdma", "n/a")]:
        r = by[cell]
        assert r.job_completed, r.render()
        assert r.stage_resubmissions >= 1
        assert r.executors_lost >= 1
        assert r.recovery_seconds > 0

    # Default MPI semantics: one dead rank aborts the world -> job lost.
    # The collective transport is no exception: a participant dying
    # mid-alltoallv kills the world under MPI_ERRORS_ARE_FATAL.
    for cell in [("mpi-basic", "abort"), ("mpi-opt", "abort"),
                 ("mpi-coll", "abort")]:
        r = by[cell]
        assert not r.job_completed, r.render()
        assert "abort" in r.job_failure.lower()

    # ULFM-style shrinking restores Spark-level recoverability: the failed
    # exchange surfaces as a fetch failure and the stage is resubmitted.
    for cell in [("mpi-opt", "shrink"), ("mpi-coll", "shrink")]:
        shrink = by[cell]
        assert shrink.job_completed, shrink.render()
        assert shrink.stage_resubmissions >= 1


def test_reports_are_deterministic(benchmark):
    def twice():
        a = run_scenario(make_cell("nio", "abort"))
        b = run_scenario(make_cell("nio", "abort"))
        return a, b

    a, b = run_once(benchmark, twice)
    assert a.render() == b.render()
