"""Shared benchmark configuration.

Benchmarks default to a reduced matrix (fewer workers / folded tasks) so
``pytest benchmarks/ --benchmark-only`` completes in minutes while
exercising the identical code paths and physics. Set ``REPRO_FULL=1`` to
run the paper-scale geometry (8/16/32 workers, 448 GiB; expect a long
run). EXPERIMENTS.md records paper-scale results.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help=(
            "fan independent experiment cells over N worker processes "
            "(default: REPRO_JOBS env var, else 1 = serial). Rows are "
            "identical for any worker count."
        ),
    )


@pytest.fixture(scope="session")
def jobs(request):
    from repro.harness.parallel import resolve_jobs

    return resolve_jobs(request.config.getoption("--jobs"))

# (worker counts, task-folding fidelity) per mode.
OHB_WORKERS = (8, 16, 32) if FULL else (2, 4, 8)
OHB_FIDELITY = 0.125 if FULL else 0.25
HIBENCH_FIDELITY = 0.25 if FULL else 0.125
HIBENCH_WORKERS = 16 if FULL else 8


@pytest.fixture(scope="session")
def mode():
    return {
        "full": FULL,
        "ohb_workers": OHB_WORKERS,
        "ohb_fidelity": OHB_FIDELITY,
        "hibench_fidelity": HIBENCH_FIDELITY,
        "hibench_workers": HIBENCH_WORKERS,
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_bench_json(figure: str, payload: dict) -> pathlib.Path:
    """Write ``results/BENCH_<figure>.json`` (machine-readable bench output).

    One file per figure, rewritten on every run, deterministic key order —
    diffing two files from two PRs shows the perf trajectory directly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{figure}.json"
    payload = {"figure": figure, "full_geometry": FULL, **payload}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    # Append the payload's headline timings to the perf ledger
    # (results/ledger.jsonl, REPRO_LEDGER=0 disables). Observation only:
    # the BENCH file above is already written and never modified.
    from repro.harness import ledger

    ledger.record_figure(figure, payload)
    return path


def ohb_payload(cells) -> dict:
    """OhbCell list -> JSON-able rows (timings + key metric rollups)."""
    from repro.obs import iprobe_calls, loop_busy_fraction, polling_tax_seconds

    rows = []
    for c in cells:
        row = {
            "workload": c.workload,
            "n_workers": c.n_workers,
            "total_cores": c.total_cores,
            "data_bytes": c.data_bytes,
            "transport": c.transport,
            "total_seconds": c.total_seconds,
            "stage_seconds": dict(c.result.stage_seconds),
        }
        snap = c.result.metrics
        if snap is not None:
            # cache.trace.* / cache.run.* counters attribute host-side
            # cache traffic: their values depend on cache temperature
            # (cold vs warm disk), not on (spec, seed). Rows must stay
            # pure functions of the spec, so they are excluded from the
            # metric census, as is the simnet.fluid.rerate.* batch
            # telemetry (deterministic, but kept out so the census only
            # counts simulation-facing metrics).
            row["metrics"] = {
                "n_metrics": len(snap)
                - len(snap.names("cache.trace.*"))
                - len(snap.names("cache.run.*"))
                - len(snap.names("simnet.fluid.rerate.*")),
                "polling_tax_s": polling_tax_seconds(snap),
                "loop_busy_fraction": loop_busy_fraction(snap),
                "iprobe_calls": iprobe_calls(snap),
                "remote_fetch_bytes": snap.total("spark.scheduler.remote_fetch_bytes"),
                "fetch_wait_s": snap.total("spark.scheduler.fetch_wait_s"),
            }
        rows.append(row)
    return {"cells": rows}
