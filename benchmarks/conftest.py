"""Shared benchmark configuration.

Benchmarks default to a reduced matrix (fewer workers / folded tasks) so
``pytest benchmarks/ --benchmark-only`` completes in minutes while
exercising the identical code paths and physics. Set ``REPRO_FULL=1`` to
run the paper-scale geometry (8/16/32 workers, 448 GiB; expect a long
run). EXPERIMENTS.md records paper-scale results.
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"

# (worker counts, task-folding fidelity) per mode.
OHB_WORKERS = (8, 16, 32) if FULL else (2, 4, 8)
OHB_FIDELITY = 0.125 if FULL else 0.25
HIBENCH_FIDELITY = 0.25 if FULL else 0.125
HIBENCH_WORKERS = 16 if FULL else 8


@pytest.fixture(scope="session")
def mode():
    return {
        "full": FULL,
        "ohb_workers": OHB_WORKERS,
        "ohb_fidelity": OHB_FIDELITY,
        "hibench_fidelity": HIBENCH_FIDELITY,
        "hibench_workers": HIBENCH_WORKERS,
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
