"""Contention study — the multi-tenant job server over all transports.

The question ROADMAP.md poses past the paper's one-job-at-a-time figures:
does the mpi-opt transport advantage survive a continuous stream of
concurrent applications? A seeded 20-job Poisson trace runs under all
three inter-job schedulers × four transports; per-cell p50/p99 JCT and
queueing delay land in ``results/BENCH_jobserver.json``.

Headline shapes asserted here (and visible in the committed rows):

* mpi-opt's mean JCT beats mpi-basic's under **every** scheduler — the
  paper's transport ranking holds under contention;
* mpi-basic queues far more than the others under FIFO: the polling tax
  shrinks the effective slot pool, so head-of-line blocking compounds it;
* fair-share beats FIFO on mean JCT for every transport (water-filling
  removes head-of-line blocking).

Rows are a pure function of (spec, seed): the determinism tests assert
byte-identical reports across reruns and across worker counts, and the
golden test pins the committed rows bit-exactly.
"""

import json
import pathlib

import pytest

from benchmarks.conftest import run_once, write_bench_json
from repro.harness.parallel import run_jobserver_cell, run_jobserver_cells
from repro.jobserver import JobServerReport, cell_stats
from repro.util.units import MiB

TRANSPORTS = ("nio", "rdma", "mpi-basic", "mpi-opt")
SCHEDULERS = ("fifo", "fair", "pack")

N_WORKERS = 4
CORES = 8
CLUSTER_SEED = 7
# 20 jobs, ~1s apart, sized/parallelized to overcommit the 4×8-core
# cluster — the geometry is fixed (not REPRO_FULL-scaled) so the committed
# golden rows pin one canonical contention study.
TRACE_SPEC = (42, 20, 1.0, 64 * MiB, 256 * MiB, (8, 16, 24), 0.25)

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "results"
    / "BENCH_jobserver.json"
)


def _spec(transport, scheduler):
    return (transport, scheduler, "Frontera", N_WORKERS, CORES, CLUSTER_SEED,
            TRACE_SPEC)


@pytest.fixture(scope="module")
def results(jobs):
    specs = [_spec(t, s) for t in TRANSPORTS for s in SCHEDULERS]
    return run_jobserver_cells(specs, jobs)


@pytest.fixture(scope="module")
def report(results):
    return JobServerReport.from_results(results)


def test_jobserver_runs(benchmark, report):
    cell = run_once(benchmark, run_jobserver_cell, _spec("mpi-opt", "fifo"))
    print()
    print(report.render())
    assert len(cell.finished) == TRACE_SPEC[1]
    assert report.cells and len(report.cells) == len(TRANSPORTS) * len(SCHEDULERS)


class TestContentionShape:
    def test_every_job_finishes_everywhere(self, results):
        for res in results:
            assert len(res.finished) == TRACE_SPEC[1]
            assert not [r for r in res.records if r.failed]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_opt_beats_basic_under_contention(self, report, scheduler):
        """The paper's transport ranking survives multi-tenancy."""
        basic = report.cell("mpi-basic", scheduler)
        opt = report.cell("mpi-opt", scheduler)
        assert opt.mean_jct_s < basic.mean_jct_s
        assert opt.p99_jct_s < basic.p99_jct_s

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_fair_share_beats_fifo_mean_jct(self, report, transport):
        fair = report.cell(transport, "fair")
        fifo = report.cell(transport, "fifo")
        assert fair.mean_jct_s < fifo.mean_jct_s

    def test_polling_tax_amplifies_queueing(self, report):
        """mpi-basic's polling tax shrinks the slot pool, so head-of-line
        blocking under FIFO queues far deeper than on mpi-opt."""
        basic = report.cell("mpi-basic", "fifo")
        opt = report.cell("mpi-opt", "fifo")
        assert basic.p99_queue_s > opt.p99_queue_s
        assert basic.makespan_s > opt.makespan_s

    def test_queueing_delay_present(self, report):
        assert any(c.p99_queue_s > 0 for c in report.cells)


class TestDeterminism:
    def test_rerun_is_byte_identical(self, report):
        again = run_jobserver_cell(_spec("nio", "fifo"))
        assert cell_stats(again) == report.cell("nio", "fifo")

    def test_rows_identical_across_worker_counts(self, results):
        """Fan-out invariance: serial rerun of two cells matches the
        module fixture (which may have run under --jobs N)."""
        serial = run_jobserver_cells(
            [_spec("mpi-basic", "fair"), _spec("mpi-opt", "pack")], jobs=1
        )
        by_key = {(r.transport, r.scheduler): r for r in results}
        for res in serial:
            ref = by_key[(res.transport, res.scheduler)]
            assert [r.finish_s for r in res.records] == [
                r.finish_s for r in ref.records
            ]
            assert cell_stats(res) == cell_stats(ref)


def test_jobserver_rows_match_committed_goldens(report):
    """Same seed, same rows, bit-exactly — the committed BENCH file is the
    regression baseline for the whole multi-tenant stack."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["rows"]
    assert golden["digest"] == report.digest()
    current = {(r["transport"], r["scheduler"]): r
               for r in (c.as_row() for c in report.cells)}
    for row in golden["rows"]:
        assert current[(row["transport"], row["scheduler"])] == row


def test_jobserver_bench_json(report):
    path = write_bench_json("jobserver", report.payload())
    payload = json.loads(path.read_text())
    assert payload["rows"] and all(r["p99_jct_s"] > 0 for r in payload["rows"])
    assert payload["digest"] == report.digest()
