"""Differential run analysis on real recorded clusters.

The synthetic contracts live in ``tests/obs/test_diff.py``; here the
engine meets real fig9-geometry runs: self-diff identity on every
transport, the attribution sum identity on a genuine cross-transport
delta, poll-tax ranked top for basic-vs-opt (consistent with the >=10x
critical-path share gap ``test_fig9_basic_vs_opt`` asserts), and
structural nodes when the cluster geometry changes under the workload.
"""

import math

import pytest

from benchmarks.conftest import OHB_FIDELITY, write_bench_json
from repro.obs import analyze, diff_runs
from repro.obs.critpath import SEGMENTS
from repro.util.units import GiB

TRANSPORTS = ("nio", "rdma", "mpi-basic", "mpi-opt")


def causal_spec(transport, n_workers=2, data=28 * GiB):
    from repro.harness.systems import FRONTERA

    return ("GroupByTest", n_workers, data, transport, OHB_FIDELITY,
            FRONTERA.name, True)


@pytest.fixture(scope="module")
def runs(jobs):
    """Causal fig9-cell RunResults, one per transport, plus a 4w cell."""
    from repro.harness.parallel import run_ohb_cells

    specs = [causal_spec(t) for t in TRANSPORTS]
    specs.append(causal_spec("mpi-opt", n_workers=4))
    cells = run_ohb_cells(specs, jobs)
    by_key = {spec[3]: cell.result for spec, cell in zip(specs[:-1], cells)}
    by_key["mpi-opt-4w"] = cells[-1].result
    return by_key


class TestSelfDiffIdentity:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_every_transport_self_diffs_to_exact_zero(self, runs, transport):
        result = runs[transport]
        diff = diff_runs(result, result)
        assert diff.is_identity(), diff.render()
        assert diff.wall_delta_s == 0.0
        assert diff.structural == []
        assert all(diff.segment_delta(seg) == 0.0 for seg in SEGMENTS)
        diff.check()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_jsonl_round_trip_preserves_identity(self, runs, transport, tmp_path):
        # a committed baseline (write → gzip → load) diffs its own live
        # run to zero — the contract the blame reports stand on
        from repro.obs.flightrec import FlightRecorder

        result = runs[transport]
        path = result.flight.write(str(tmp_path / f"{transport}.jsonl.gz"))
        diff = diff_runs(FlightRecorder.load_jsonl(path), result)
        assert diff.is_identity(), diff.render()


class TestBasicVsOpt:
    def test_attributions_sum_to_measured_delta(self, runs):
        diff = diff_runs(runs["mpi-opt"], runs["mpi-basic"],
                         a_label="mpi-opt", b_label="mpi-basic")
        diff.check()  # the sum identity, to float precision
        total = math.fsum(d for _, _, d in diff.contributions())
        assert total == pytest.approx(diff.wall_delta_s, abs=1e-9)
        # stage walls are real: the measured delta matches the
        # RunResult-level slowdown fig9 asserts
        assert diff.wall_delta_s == pytest.approx(
            runs["mpi-basic"].total_seconds - runs["mpi-opt"].total_seconds,
            rel=1e-6,
        )

    def test_poll_tax_is_the_top_contributor(self, runs):
        diff = diff_runs(runs["mpi-opt"], runs["mpi-basic"],
                         a_label="mpi-opt", b_label="mpi-basic")
        assert diff.wall_delta_s > 0  # basic is slower
        assert diff.top_contributor() == "poll-tax", diff.render()
        # and it explains at least half the gap
        share = diff.segment_delta("poll-tax") / diff.wall_delta_s
        assert share >= 0.5, diff.render()

    def test_blame_consistent_with_critpath_share_gap(self, runs):
        # test_fig9_basic_vs_opt asserts basic's critical-path poll-tax
        # share is >=10x opt's; the diff must tell the same story in
        # absolute seconds, with the inflation re-split on both sides.
        basic_cp = analyze(runs["mpi-basic"].flight, "mpi-basic")
        opt_cp = analyze(runs["mpi-opt"].flight, "mpi-opt")
        assert basic_cp.share("poll-tax") >= 10 * opt_cp.share("poll-tax")
        diff = diff_runs(runs["mpi-opt"], runs["mpi-basic"])
        assert diff.segment_delta("poll-tax") > 0
        assert diff.segment_delta("poll-tax") >= 10 * abs(
            diff.segment_delta("wire")
        )

    def test_writes_diff_summary_artifact(self, runs):
        diff = diff_runs(runs["mpi-opt"], runs["mpi-basic"],
                         a_label="mpi-opt", b_label="mpi-basic")
        path = write_bench_json("diff_basic_vs_opt", diff.as_dict())
        assert path.exists()


class TestGeometryChange:
    def test_worker_count_change_yields_structural_nodes(self, runs):
        diff = diff_runs(runs["mpi-opt"], runs["mpi-opt-4w"],
                         a_label="2w", b_label="4w")
        diff.check()  # identity must hold across geometry too
        assert diff.meta_mismatches()["n_workers"] == (2, 4)
        # same stage labels, different task packing: every aligned stage
        # carries a task-count annotation, none of which charges time
        kinds = {n.kind for s in diff.stages for n in s.nodes}
        assert "task-count" in kinds
        assert all(
            n.delta_s == 0.0
            for s in diff.stages
            for n in s.nodes
        )
        assert not diff.is_identity()

    def test_doubling_workers_speeds_up_the_run(self, runs):
        diff = diff_runs(runs["mpi-opt"], runs["mpi-opt-4w"])
        assert diff.wall_delta_s < 0
