"""Fig 10 — weak scaling of OHB GroupByTest/SortByTest on Frontera.

Paper headline numbers (448 cores / 112 GB unless noted):

* GroupByTest: MPI4Spark 4.23x over Vanilla, 2.04x over RDMA-Spark;
  shuffle read 13.08x / 5.56x.
* SortByTest: 4.31x / 1.60x total; shuffle read 12.78x / 3.19x.
* At 1792 cores / 448 GB: GroupBy 3.78x / 2.07x, SortBy 3.44x / 1.66x.

Default (quick) mode scales the worker counts down; the per-worker data
volume (14 GiB) and every code path match the paper geometry. REPRO_FULL=1
runs 8/16/32 workers.
"""

import pytest

from benchmarks.conftest import (
    FULL,
    OHB_FIDELITY,
    OHB_WORKERS,
    ohb_payload,
    run_once,
    write_bench_json,
)
from repro.harness.experiments import _run_ohb, fig10_weak_scaling
from repro.harness.report import ohb_speedups, render_ohb
from repro.util.units import GiB
from repro.workloads.ohb import GROUP_BY


@pytest.fixture(scope="module")
def cells(jobs):
    return fig10_weak_scaling(workers=OHB_WORKERS, fidelity=OHB_FIDELITY, jobs=jobs)


def test_fig10_sweep(benchmark, cells):
    # The timed unit is one full cell; the fixture holds the whole sweep.
    cell = run_once(
        benchmark, _run_ohb, GROUP_BY, OHB_WORKERS[0],
        OHB_WORKERS[0] * 14 * GiB, "mpi-opt", OHB_FIDELITY,
    )
    print()
    print(render_ohb(cells, "Fig 10 — OHB weak scaling (Frontera, 14 GiB/worker)"))
    assert cell.total_seconds > 0
    # Headline shape: IPoIB > RDMA > MPI everywhere, with GroupByTest's
    # 8-worker ratios in the paper's ballpark (4.23x total, 13.08x read).
    speedups = ohb_speedups(cells)
    for key, entry in speedups.items():
        assert entry["total_mpi_vs_vanilla"] > 1.0, key
        assert entry["total_mpi_vs_rdma"] > 1.0, key
    gb_key = ("GroupByTest", 8) if ("GroupByTest", 8) in speedups else max(
        k for k in speedups if k[0] == "GroupByTest"
    )
    entry = speedups[gb_key]
    # Paper bands hold at the full geometry + fidelity; quick mode folds
    # tasks (bigger chunks, fewer streams), which shifts the read ratio.
    total_band = (3.2, 5.5) if FULL else (2.5, 5.5)
    read_band = (9.0, 17.0) if FULL else (4.5, 18.0)
    assert total_band[0] < entry["total_mpi_vs_vanilla"] < total_band[1]
    assert read_band[0] < entry["read_mpi_vs_vanilla"] < read_band[1]


class TestFig10Shape:
    def test_mpi_wins_everywhere(self, cells):
        speedups = ohb_speedups(cells)
        for key, entry in speedups.items():
            assert entry["total_mpi_vs_vanilla"] > 1.0, key
            assert entry["total_mpi_vs_rdma"] > 1.0, key

    def test_groupby_headline_ratios(self, cells):
        # At the 8-worker geometry the paper reports 4.23x / 2.04x total
        # and 13.08x / 5.56x shuffle-read. Accept the right ballpark
        # (quick mode's task folding shifts the read ratio somewhat).
        speedups = ohb_speedups(cells)
        key = ("GroupByTest", max(w for (_, w) in speedups))
        entry = speedups[("GroupByTest", 8)] if ("GroupByTest", 8) in speedups else speedups[key]
        total_band = (3.2, 5.5) if FULL else (2.5, 5.5)
        read_band = (9.0, 17.0) if FULL else (4.5, 18.0)
        assert total_band[0] < entry["total_mpi_vs_vanilla"] < total_band[1]
        assert 1.4 < entry["total_mpi_vs_rdma"] < 3.0
        assert read_band[0] < entry["read_mpi_vs_vanilla"] < read_band[1]
        assert 2.5 < entry["read_mpi_vs_rdma"] < 8.0

    def test_sortby_ratios(self, cells):
        speedups = ohb_speedups(cells)
        key = ("SortByTest", 8) if ("SortByTest", 8) in speedups else max(
            k for k in speedups if k[0] == "SortByTest"
        )
        entry = speedups[key]
        assert 3.0 < entry["total_mpi_vs_vanilla"] < 5.5
        assert 1.2 < entry["total_mpi_vs_rdma"] < 3.0

    def test_ordering_vanilla_rdma_mpi(self, cells):
        by = {}
        for c in cells:
            by.setdefault((c.workload, c.n_workers), {})[c.transport] = c.total_seconds
        for key, per_t in by.items():
            assert per_t["mpi-opt"] < per_t["rdma"] < per_t["nio"], key

    def test_weak_scaling_roughly_flat_for_mpi(self, cells):
        # Weak scaling: per-worker data constant, so MPI's (NIC-bound)
        # runtime should grow only mildly with scale.
        times = sorted(
            (c.n_workers, c.total_seconds)
            for c in cells
            if c.workload == "GroupByTest" and c.transport == "mpi-opt"
        )
        assert times[-1][1] < times[0][1] * 2.5


def test_fig10_bench_json(cells):
    path = write_bench_json("fig10_weak_scaling", ohb_payload(cells))
    assert path.exists()
