"""Fig 8 — Netty ping-pong latency on the internal cluster (IB-EDR).

Paper: "Netty+MPI performs considerably better with speedups of up to 9x
for 4MB messages." This bench regenerates both curves (small and large
message sizes) and checks the headline ratio.
"""

import pytest

from benchmarks.conftest import run_once, write_bench_json
from repro.harness.experiments import FIG8_LARGE_SIZES, FIG8_SMALL_SIZES, fig8_pingpong
from repro.harness.report import render_fig8
from repro.util.units import MiB


@pytest.fixture(scope="module")
def results():
    return fig8_pingpong(iterations=4)


def test_fig8_curves(benchmark, results):
    out = run_once(benchmark, fig8_pingpong, iterations=2)
    print()
    print(render_fig8(results))
    assert set(out) == {"netty-nio", "netty-mpi"}
    # Headline shape (also checked test-by-test below): MPI wins at every
    # size and reaches the paper's ~9x at 4 MB.
    nio, mpi = results["netty-nio"], results["netty-mpi"]
    for size in FIG8_SMALL_SIZES + FIG8_LARGE_SIZES:
        assert mpi.latency_s[size] < nio.latency_s[size]
    ratio = nio.latency_s[4 * MiB] / mpi.latency_s[4 * MiB]
    assert 7.0 < ratio < 11.0, f"4MB speedup {ratio:.2f} outside paper band"


class TestFig8Shape:
    def test_mpi_wins_at_every_size(self, results):
        nio, mpi = results["netty-nio"], results["netty-mpi"]
        for size in FIG8_SMALL_SIZES + FIG8_LARGE_SIZES:
            assert mpi.latency_s[size] < nio.latency_s[size]

    def test_speedup_up_to_9x_at_4mb(self, results):
        nio, mpi = results["netty-nio"], results["netty-mpi"]
        ratio = nio.latency_s[4 * MiB] / mpi.latency_s[4 * MiB]
        assert 7.0 < ratio < 11.0, f"4MB speedup {ratio:.2f} outside paper band"

    def test_speedup_grows_from_small_to_large(self, results):
        nio, mpi = results["netty-nio"], results["netty-mpi"]
        small = nio.latency_s[64] / mpi.latency_s[64]
        large = nio.latency_s[4 * MiB] / mpi.latency_s[4 * MiB]
        assert large > small

    def test_latencies_monotone_in_size(self, results):
        for curve in results.values():
            sizes = sorted(curve.latency_s)
            lats = [curve.latency_s[s] for s in sizes]
            assert lats == sorted(lats)


def test_fig8_bench_json(results):
    path = write_bench_json(
        "fig8_pingpong",
        {
            "curves": {
                name: {str(size): lat for size, lat in sorted(curve.latency_s.items())}
                for name, curve in results.items()
            }
        },
    )
    assert path.exists()
