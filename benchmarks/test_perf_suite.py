"""Pinned wall-clock perf suite -> ``results/BENCH_perf.json``.

Unlike the figure benchmarks (which assert on *simulated* seconds), this
suite times real wall seconds and kernel events/sec for a pinned subset
of cells. Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_suite.py -q

With ``REPRO_PERF_GATE=1`` the suite additionally fails if any cell's
events/sec dropped >30% against the committed ``results/BENCH_perf.json``
(the committed file is read at import time, before this run overwrites it).
"""

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.harness import ledger
from repro.harness.perfbench import (
    COLL_PAIRS,
    PINNED_CELLS,
    blame_failing_cells,
    PRE_PR_BASELINE,
    PRE_VEC_BASELINE,
    RUN_CACHE_PAIRS,
    TRACE_CACHE_PAIRS,
    regressions,
    run_perf_suite,
)

_BENCH_PATH = RESULTS_DIR / "BENCH_perf.json"
# Snapshot the committed payload before any test overwrites it.
_COMMITTED = (
    json.loads(_BENCH_PATH.read_text()) if _BENCH_PATH.exists() else None
)


@pytest.fixture(scope="module")
def payload():
    return run_perf_suite()


def test_perf_suite_writes_bench_json(payload):
    RESULTS_DIR.mkdir(exist_ok=True)
    _BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert _BENCH_PATH.exists()
    # Ledger the run (append-only history; REPRO_LEDGER=0 disables).
    # Observation only: the BENCH file above is never modified.
    ledger.record_perf(payload)


def test_all_pinned_cells_ran(payload):
    assert [c["name"] for c in payload["cells"]] == list(PINNED_CELLS)
    for cell in payload["cells"]:
        assert cell["events_processed"] > 0
        assert cell["events_per_sec"] > 0
        assert cell["wall_seconds"] > 0
    assert payload["peak_rss_kib"] > 0


def test_speedup_vs_pre_pr_baseline_recorded(payload):
    # The fast-path work is the point of this file: the payload must carry
    # per-cell speedups against the pre-PR walls (live division) plus the
    # paired alternating-process ratios, whose heavy-cell entry is the
    # >=3x serial win the kernel work bought.
    speedups = payload["baseline"]["speedup_vs_baseline"]
    # Cells added after the fast-path PR (e.g. the causal-tracing pair's
    # obs-on twin) have no pre-PR wall to divide by.
    baselined = {c["name"] for c in payload["cells"]} & set(PRE_PR_BASELINE)
    assert set(speedups) == baselined
    assert payload["baseline"]["paired_speedup"]["fig10_groupby_8w_mpi-basic"] >= 3.0
    assert payload["baseline"]["best_speedup"] >= 3.0


def test_fluid_rerate_scale_cells_and_baseline(payload):
    # The vectorized-fluid / park-waiter pass: its paired measurement is
    # recorded per flow-heavy cell, and the live run must carry the 32-
    # and 64-worker scale cells it makes tractable (the 64w smoke cell
    # alone dispatches ~1.8M kernel events).
    fluid = payload["fluid_baseline"]
    baselined = {c["name"] for c in payload["cells"]} & set(PRE_VEC_BASELINE)
    assert set(fluid["speedup_vs_baseline"]) == baselined
    # Paired ratios from the alternating measurement: the win must grow
    # with scale — that is the point of batching the re-rate work.
    paired = fluid["paired_speedup"]
    assert paired["fig10_groupby_32w_mpi-basic"] >= 1.2
    assert paired["scale_groupby_64w_mpi-basic"] >= 1.3
    by_name = {c["name"]: c for c in payload["cells"]}
    assert by_name["fig10_groupby_32w_mpi-basic"]["events_processed"] > 2_000_000
    assert by_name["scale_groupby_64w_mpi-basic"]["events_processed"] > 1_500_000


def test_collective_pair_event_collapse(payload):
    # The collective-shuffle pass as a kernel-cost claim: draining the
    # fig9 exchange through one alltoallv per boundary instead of
    # per-chunk request/response collapses the cell's event count, so
    # the old/new host-wall ratio is large while events/sec stays flat
    # (the kernel itself got neither faster nor slower).
    block = payload["coll_baseline"]
    assert block["pairs"] == [list(p) for p in COLL_PAIRS]
    by_name = {c["name"]: c for c in payload["cells"]}
    for old_name, new_name in COLL_PAIRS:
        assert block["wall_ratio"][new_name] >= 10.0, (
            f"{new_name}: only {block['wall_ratio'][new_name]:.1f}x "
            "fewer host-wall seconds than its per-block twin"
        )
        assert (
            by_name[new_name]["events_processed"]
            < by_name[old_name]["events_processed"] / 10
        )


def test_run_cache_warm_speedup_and_no_resimulation(payload):
    # The full-run result cache's perf gate: the warm twin of the pinned
    # GroupBy cell must be served from the store without simulating
    # (asserted inside the cell via the cell-run counter) and be >= 5x
    # faster than its cold twin.  Byte-identity of cached vs simulated
    # rows is covered by tests/harness/test_runcache.py.
    block = payload["run_cache"]
    if not block["enabled"]:
        pytest.skip("run cache disabled (REPRO_RUN_CACHE=0)")
    assert block["pairs"] == [list(p) for p in RUN_CACHE_PAIRS]
    for cold_name, _warm_name in RUN_CACHE_PAIRS:
        assert block["warm_speedup"][cold_name] >= 5.0, (
            f"{cold_name}: warm run cache only "
            f"{block['warm_speedup'][cold_name]:.2f}x faster than cold"
        )
    assert block["stats"]["errors"] == 0


def test_trace_cache_warm_speedup_and_single_execution(payload):
    # The trace-cache tentpole's two gates: (1) warm-cache cells skip
    # sample execution (asserted inside the cells) and are >= 2x faster
    # than their cold twins; (2) a full multi-transport sweep executes
    # each unique (workload, sample-params) sample exactly once.
    block = payload["trace_cache"]
    if not block["sweep"]["enabled"]:
        pytest.skip("trace cache disabled (REPRO_TRACE_CACHE=0)")
    assert block["pairs"] == [list(p) for p in TRACE_CACHE_PAIRS]
    for cold_name, _warm_name in TRACE_CACHE_PAIRS:
        assert block["warm_speedup"][cold_name] >= 2.0, (
            f"{cold_name}: warm cache only "
            f"{block['warm_speedup'][cold_name]:.2f}x faster than cold"
        )
    sweep = block["sweep"]
    assert sweep["sweep_cells"] == 18
    assert sweep["sample_runs"] == sweep["unique_samples"] == 2
    # The sweep's remaining 16 cells were cache hits, not re-executions.
    delta = sweep["stats_delta"]
    assert delta["hits_mem"] == sweep["sweep_cells"] - sweep["unique_samples"]
    assert delta["errors"] == 0


def test_causal_tracing_overhead_bounded(payload):
    # The obs-off/obs-on pair of the same fig9 cell: flight recording may
    # cost bounded wall time but must not change the simulation itself.
    overhead = payload["obs_causal_overhead"]
    assert overhead["pair"] == [
        "fig9_groupby_2w_mpi-basic",
        "fig9_groupby_2w_mpi-basic_causal",
    ]
    assert overhead["events_identical"] is True
    assert overhead["wall_ratio"] < 1.5


def test_no_events_per_sec_regression_vs_committed(payload):
    if os.environ.get("REPRO_PERF_GATE") != "1":
        pytest.skip("perf gate disabled; set REPRO_PERF_GATE=1 to enable")
    if _COMMITTED is None:
        pytest.skip("no committed results/BENCH_perf.json to compare against")
    failures = regressions(payload, _COMMITTED, threshold=0.30)
    if failures:
        # Explain before failing: re-record each offending transport's
        # blame proxy cell, diff it against the committed baseline
        # recording, and leave the HTML blame reports in results/ for CI
        # to upload. A host-side slowdown diffs to the zero identity —
        # which the report states, and is itself the diagnosis.
        reports = blame_failing_cells(failures, out_dir=RESULTS_DIR)
        pytest.fail(
            "events/sec regressions: " + "; ".join(failures)
            + (" | blame reports: " + ", ".join(map(str, reports)) if reports else "")
        )
