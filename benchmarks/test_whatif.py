"""What-if replay validation — predictions vs ground-truth re-simulations.

The capacity planner (:mod:`repro.obs.whatif`) is only useful if its
analytic re-timings track what the simulator would actually do with the
knob changed.  This suite is the empirical gate: every fig9 and fig10
cell is recorded once with causal tracing, re-timed under three
perturbation kinds (link rate, poll tax, serializer cost), and compared
against a real re-simulation of the same cell with the knob applied.

Gates: the unperturbed replay must reproduce each recorded wall
*exactly*, and every prediction must agree with its re-simulation within
±10% relative error.  ``results/BENCH_whatif.json`` records the
per-cell predicted / simulated / error rows.
"""

import json
import pathlib

import pytest

from benchmarks.conftest import FULL, OHB_FIDELITY, OHB_WORKERS, write_bench_json

GOLDEN = (
    pathlib.Path(__file__).resolve().parent.parent / "results" / "BENCH_whatif.json"
)


@pytest.fixture(scope="module")
def payload(jobs):
    """The full fig9 ∪ fig10 validation matrix (one run per module)."""
    from repro.harness.whatif import validate_matrix, whatif_cells

    return validate_matrix(
        cells=whatif_cells(OHB_WORKERS), fidelity=OHB_FIDELITY, jobs=jobs
    )


def test_whatif_smoke(jobs):
    """CI gate: the fig9 GroupBy cells, validated, in under a minute.

    Independent of the full-matrix fixture so ``-k smoke`` stays cheap:
    records the 2-worker GroupBy cells under mpi-basic and nio, replays
    2x NIC / zero poll-tax / 2x serializer, and checks each prediction
    against the re-simulated truth.
    """
    from repro.harness.whatif import validate_matrix, whatif_cells

    cells = [
        c
        for c in whatif_cells(OHB_WORKERS)
        if c["workload"] == "GroupByTest"
        and c["n_workers"] == min(OHB_WORKERS)
        and c["transport"] in ("mpi-basic", "nio")
    ]
    assert len(cells) == 2
    smoke = validate_matrix(cells=cells, fidelity=OHB_FIDELITY, jobs=jobs)
    assert smoke["summary"]["identity_all_exact"]
    assert smoke["summary"]["all_within_tolerance"]
    write_bench_json("whatif_smoke", smoke)


class TestWhatifMatrix:
    def test_covers_fig9_and_fig10(self, payload):
        # fig9: 2 workloads x 2 scales x 3 transports; fig10: 2 workloads
        # x len(OHB_WORKERS) x 3 transports; overlapping cells are tagged
        # with both figures and simulated once.
        fig9 = [c for c in payload["cells"] if "fig9" in c["figures"]]
        fig10 = [c for c in payload["cells"] if "fig10" in c["figures"]]
        assert len(fig9) == 12
        assert len(fig10) == 2 * len(OHB_WORKERS) * 3
        assert {c["transport"] for c in fig9} == {"nio", "mpi-basic", "mpi-opt"}
        assert {c["transport"] for c in fig10} == {"nio", "rdma", "mpi-opt"}

    def test_three_perturbation_kinds(self, payload):
        names = {p["name"] for p in payload["perturbations"]}
        assert names == {"2x NIC", "zero poll-tax", "2x serializer"}
        for cell in payload["cells"]:
            assert {r["perturbation"] for r in cell["rows"]} == names

    def test_identity_replay_exact_everywhere(self, payload):
        # The engine's self-test: with no knobs changed, the replay must
        # reproduce each recorded wall bit-exactly, not approximately.
        for cell in payload["cells"]:
            assert cell["identity_exact"], (
                f"{cell['workload']}/{cell['n_workers']}w/{cell['transport']}: "
                f"identity replay {cell['identity_replay_s']!r} != recorded "
                f"{cell['recorded_s']!r}"
            )

    def test_predictions_within_tolerance(self, payload):
        tol = payload["tolerance"]
        for cell in payload["cells"]:
            for row in cell["rows"]:
                assert abs(row["error"]) <= tol, (
                    f"{cell['workload']}/{cell['n_workers']}w/"
                    f"{cell['transport']} under {row['perturbation']}: "
                    f"predicted {row['predicted_s']:.4f}s vs simulated "
                    f"{row['simulated_s']:.4f}s ({row['error']:+.2%})"
                )

    def test_poll_tax_knob_honest_for_basic(self, payload):
        # Attribution vs sensitivity (DESIGN.md §14): Basic's dwell is
        # recv-posting backpressure, so zeroing the poll tax moves the
        # simulated wall by (almost) nothing — and the replay model must
        # *predict* that near-zero sensitivity, not the critical-path
        # attribution share.
        for cell in payload["cells"]:
            if cell["transport"] != "mpi-basic":
                continue
            row = next(
                r for r in cell["rows"] if r["perturbation"] == "zero poll-tax"
            )
            assert row["simulated_speedup"] < 1.02
            assert row["predicted_speedup"] < 1.02


@pytest.mark.skipif(FULL, reason="goldens are recorded at reduced geometry")
def test_whatif_rows_match_committed_goldens(payload):
    """Re-running the matrix must reproduce the committed rows bit-exactly
    (both the replayed predictions and the re-simulated truths are pure
    functions of the cell spec)."""
    golden = json.loads(GOLDEN.read_text())
    by_key = {
        (c["workload"], c["n_workers"], c["transport"]): c for c in golden["cells"]
    }
    assert by_key
    for cell in payload["cells"]:
        g = by_key[(cell["workload"], cell["n_workers"], cell["transport"])]
        assert cell["recorded_s"] == g["recorded_s"]
        rows = {r["perturbation"]: r for r in g["rows"]}
        for row in cell["rows"]:
            assert row["predicted_s"] == rows[row["perturbation"]]["predicted_s"]
            assert row["simulated_s"] == rows[row["perturbation"]]["simulated_s"]


def test_whatif_bench_json(payload):
    path = write_bench_json("whatif", payload)
    out = json.loads(path.read_text())
    assert out["summary"]["all_within_tolerance"]
    assert out["summary"]["identity_all_exact"]
    assert out["summary"]["n_rows"] == sum(len(c["rows"]) for c in out["cells"])
    assert all(
        row["predicted_s"] > 0 and row["simulated_s"] > 0
        for cell in out["cells"]
        for row in cell["rows"]
    )
