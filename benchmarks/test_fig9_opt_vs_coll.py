"""Fig 9 follow-on — MPI4Spark-Optimized vs the collective shuffle plan.

The Optimized design already owns the wire (Sec. V-B); what is left of
its shuffle read is protocol: open-blocks RPCs, per-chunk request/
response turnaround, server-side queueing, in-flight-window stalls. The
collective transport replaces all of it with one alltoallv per stage
boundary, so on the fig9 GroupBy cell the critical-path *fetch-wait* and
*queue* segments — and only those — must collapse.

The claims, causally grounded:
  * critical-path fetch-wait+queue drops by >= 30% vs mpi-opt;
  * ``diff_runs(opt, coll)`` attributes the wall-clock delta to those
    segments and its sum identity (``check()``) holds;
  * the committed golden rows reproduce bit-exactly.
"""

import json
import math
import pathlib

import pytest

from benchmarks.conftest import OHB_FIDELITY, ohb_payload, write_bench_json
from repro.obs import critical_path, diff_runs
from repro.util.units import GiB
from repro.workloads.ohb import GROUP_BY

TRANSPORTS = ("mpi-opt", "mpi-coll")


@pytest.fixture(scope="module")
def cells(jobs):
    """Causally-traced fig9 GroupBy cells, one per transport."""
    from repro.harness.parallel import run_ohb_cells
    from repro.harness.systems import FRONTERA

    specs = [
        (GROUP_BY.name, 2, 28 * GiB, transport, OHB_FIDELITY, FRONTERA.name, True)
        for transport in TRANSPORTS
    ]
    return run_ohb_cells(specs, jobs)


def _by(cells, transport):
    return next(c for c in cells if c.transport == transport)


def _fetch_wait_plus_queue(cell) -> float:
    report = critical_path(cell.result)
    return report.segment_seconds("fetch-wait") + report.segment_seconds("queue")


class TestCollectiveShape:
    def test_collective_beats_optimized(self, cells):
        opt = _by(cells, "mpi-opt")
        coll = _by(cells, "mpi-coll")
        assert coll.total_seconds < opt.total_seconds

    def test_fetch_wait_plus_queue_drops_30_percent(self, cells):
        # The headline acceptance claim: the collective plan removes the
        # per-block protocol from the critical path.
        opt = _fetch_wait_plus_queue(_by(cells, "mpi-opt"))
        coll = _fetch_wait_plus_queue(_by(cells, "mpi-coll"))
        assert opt > 0
        assert coll <= 0.7 * opt, f"opt={opt:.4f}s coll={coll:.4f}s"

    def test_flight_logs_complete(self, cells):
        for c in cells:
            flight = c.result.flight
            assert flight is not None and flight.dropped == 0
            assert flight.open_spans() == []


class TestOptVsCollBlame:
    def test_diff_attributes_delta_to_fetch_segments(self, cells):
        diff = diff_runs(
            _by(cells, "mpi-opt").result, _by(cells, "mpi-coll").result,
            a_label="mpi-opt", b_label="mpi-coll",
        )
        diff.check()  # the sum identity, to float precision
        assert diff.wall_delta_s < 0  # coll is faster
        total = math.fsum(d for _, _, d in diff.contributions())
        assert total == pytest.approx(diff.wall_delta_s, abs=1e-9)
        # The blame lands on the protocol segments the collective removed.
        assert diff.top_contributor() == "fetch-wait", diff.render()
        fetch_side = diff.segment_delta("fetch-wait") + diff.segment_delta("queue")
        assert fetch_side < 0
        assert abs(fetch_side) >= 0.8 * abs(diff.wall_delta_s), diff.render()

    def test_self_diff_is_identity(self, cells):
        result = _by(cells, "mpi-coll").result
        diff = diff_runs(result, result)
        assert diff.is_identity(), diff.render()
        diff.check()


def test_rows_match_committed_goldens(cells):
    """Same-seed reruns of this figure must reproduce the committed rows
    bit-exactly (the determinism contract every figure honours)."""
    golden_path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "results"
        / "BENCH_fig9_opt_vs_coll.json"
    )
    golden = {
        r["transport"]: r
        for r in json.loads(golden_path.read_text())["cells"]
    }
    assert set(golden) == set(TRANSPORTS)
    for c in cells:
        row = golden[c.transport]
        assert c.total_seconds == row["total_seconds"]
        assert dict(c.result.stage_seconds) == row["stage_seconds"]


def test_bench_json(cells):
    opt = _fetch_wait_plus_queue(_by(cells, "mpi-opt"))
    coll = _fetch_wait_plus_queue(_by(cells, "mpi-coll"))
    diff = diff_runs(
        _by(cells, "mpi-opt").result, _by(cells, "mpi-coll").result,
        a_label="mpi-opt", b_label="mpi-coll",
    )
    payload = ohb_payload(cells)
    payload["critpath"] = {
        "fetch_wait_plus_queue_s": {"mpi-opt": opt, "mpi-coll": coll},
        "reduction": 1.0 - coll / opt,
    }
    payload["diff"] = diff.as_dict()
    path = write_bench_json("fig9_opt_vs_coll", payload)
    saved = json.loads(path.read_text())
    assert saved["critpath"]["reduction"] >= 0.3
