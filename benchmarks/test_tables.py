"""Tables I, III and IV — the paper's static matrices, regenerated from
the live registries (so they stay true to what the code implements)."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.experiments import table1_features, table3_systems, table4_workloads
from repro.harness.report import render_table


def test_table1_features(benchmark):
    rows = run_once(benchmark, table1_features)
    print()
    print(render_table(rows, "Table I — comparison with earlier work"))
    assert len(rows) == 4
    assert all(r["MPI4Spark"] in ("yes", "MPI-Based Netty") for r in rows)


def test_table3_systems(benchmark):
    rows = run_once(benchmark, table3_systems)
    print()
    print(render_table(rows, "Table III — hardware specification"))
    names = {r["System"] for r in rows}
    assert names == {"Frontera", "Stampede2", "Internal Cluster"}
    by_name = {r["System"]: r for r in rows}
    assert by_name["Frontera"]["Interconnect"] == "IB-HDR (100G)"
    assert by_name["Stampede2"]["HT"] == "2 threads/core"
    assert by_name["Internal Cluster"]["Nodes"] == "2"


def test_table4_workloads(benchmark):
    rows = run_once(benchmark, table4_workloads)
    print()
    print(render_table(rows, "Table IV — benchmark suite inventory"))
    workloads = {r["Workload"] for r in rows}
    assert workloads == {
        "GroupByTest", "SortByTest",
        "SVM", "LR", "GMM", "LDA", "Repartition", "TeraSort", "NWeight",
    }
    categories = {r["Category"] for r in rows}
    assert "Machine Learning" in categories
    assert "Graph" in categories
