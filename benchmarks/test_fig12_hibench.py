"""Fig 12 — Intel HiBench (Huge) on Frontera and Stampede2.

Paper speedups of MPI4Spark over Vanilla Spark: Frontera (896 cores) —
LDA 1.74x, SVM 1.17x, GMM 1.50x, Repartition 1.49x, NWeight 1.61x,
TeraSort comparable; Stampede2 (384 cores / 768 threads) — LR 2.17x,
GMM 1.09x, SVM 1.16x, Repartition 1.48x.
"""

import pytest

from benchmarks.conftest import FULL, HIBENCH_FIDELITY, run_once, write_bench_json
from repro.harness.experiments import fig12_hibench
from repro.harness.report import hibench_speedups, render_fig12
from repro.harness.systems import FRONTERA
from repro.spark.deploy import SparkSimCluster
from repro.workloads.hibench import SPECS


@pytest.fixture(scope="module")
def cells(jobs):
    return fig12_hibench(fidelity=HIBENCH_FIDELITY, jobs=jobs)


def _run_one(name: str, transport: str):
    sim = SparkSimCluster(FRONTERA, 16, transport)
    sim.launch()
    prof = SPECS[name].build_profile(FRONTERA, 16, fidelity=HIBENCH_FIDELITY)
    return sim.run_profile(prof)


def test_fig12_matrix(benchmark, cells):
    res = run_once(benchmark, _run_one, "LDA", "mpi-opt")
    print()
    print(render_fig12(cells))
    assert res.total_seconds > 0
    # Headline shape: every paper speedup lands in its band.
    speedups = hibench_speedups(cells)
    for name, system, paper, (lo, hi) in TestFig12Shape.EXPECTED:
        got = speedups[(system, name)]["mpi_vs_vanilla"]
        assert lo < got < hi, (
            f"{name}@{system}: measured {got:.2f}, paper {paper}, band ({lo},{hi})"
        )
    terasort = speedups[("Frontera", "TeraSort")]["mpi_vs_vanilla"]
    assert 0.95 < terasort < 1.35


class TestFig12Shape:
    # (workload, system, paper MPI-vs-vanilla speedup, tolerance band)
    EXPECTED = [
        ("LDA", "Frontera", 1.74, (1.4, 2.2)),
        ("SVM", "Frontera", 1.17, (1.05, 1.35)),
        ("GMM", "Frontera", 1.50, (1.25, 1.85)),
        ("Repartition", "Frontera", 1.49, (1.25, 1.85)),
        ("NWeight", "Frontera", 1.61, (1.3, 2.1)),
        ("LR", "Stampede2", 2.17, (1.7, 2.7)),
        ("SVM", "Stampede2", 1.16, (1.02, 1.4)),
        ("Repartition", "Stampede2", 1.48, (1.2, 1.85)),
    ]

    def test_per_workload_speedups(self, cells):
        speedups = hibench_speedups(cells)
        for name, system, paper, (lo, hi) in self.EXPECTED:
            got = speedups[(system, name)]["mpi_vs_vanilla"]
            assert lo < got < hi, (
                f"{name}@{system}: measured {got:.2f}, paper {paper}, band ({lo},{hi})"
            )

    def test_terasort_comparable(self, cells):
        # Paper: "for TeraSort we are also performing comparably".
        got = hibench_speedups(cells)[("Frontera", "TeraSort")]["mpi_vs_vanilla"]
        assert 0.95 < got < 1.35

    def test_lda_has_largest_frontera_ml_gain(self, cells):
        speedups = hibench_speedups(cells)
        lda = speedups[("Frontera", "LDA")]["mpi_vs_vanilla"]
        for other in ("SVM", "GMM"):
            assert lda > speedups[("Frontera", other)]["mpi_vs_vanilla"]

    def test_rdma_between_vanilla_and_mpi_on_lda(self, cells):
        speedups = hibench_speedups(cells)
        entry = speedups[("Frontera", "LDA")]
        assert 1.0 < entry["mpi_vs_rdma"] < entry["mpi_vs_vanilla"]


def test_fig12_bench_json(cells):
    path = write_bench_json(
        "fig12_hibench",
        {
            "cells": [
                {
                    "workload": c.workload,
                    "system": c.system,
                    "transport": c.transport,
                    "total_seconds": c.total_seconds,
                }
                for c in cells
            ]
        },
    )
    assert path.exists()
