"""Fig 9 — MPI4Spark-Basic vs MPI4Spark-Optimized vs Vanilla Spark.

Paper: "MPI4Spark-Optimized performs better than the MPI4Spark-Basic
[because] constant polling in the selector thread was consuming CPU time
hence starving the actual compute tasks." GroupByTest and SortByTest at
28 GB / 112 cores and 56 GB / 224 cores on Frontera.
"""

import pytest

from benchmarks.conftest import OHB_FIDELITY, ohb_payload, run_once, write_bench_json
from repro.harness.experiments import _run_ohb
from repro.harness.report import render_ohb
from repro.obs import polling_tax_seconds
from repro.util.units import GiB
from repro.workloads.ohb import GROUP_BY, SORT_BY


@pytest.fixture(scope="module")
def cells(jobs):
    from repro.harness.parallel import run_ohb_cells
    from repro.harness.systems import FRONTERA

    specs = [
        (workload.name, n_workers, data, transport, OHB_FIDELITY, FRONTERA.name)
        for workload in (GROUP_BY, SORT_BY)
        for n_workers, data in ((2, 28 * GiB),)
        for transport in ("nio", "mpi-basic", "mpi-opt")
    ]
    return run_ohb_cells(specs, jobs)


def test_fig9_runs(benchmark, cells):
    cell = run_once(
        benchmark, _run_ohb, GROUP_BY, 2, 28 * GiB, "mpi-basic", OHB_FIDELITY
    )
    print()
    print(render_ohb(cells, "Fig 9 — Basic vs Optimized vs Vanilla (Frontera)"))
    assert cell.total_seconds > 0
    # Headline shape: Optimized beats Basic on both workloads, and Basic's
    # polling inflates its compute stages past vanilla's.
    for workload in ("GroupByTest", "SortByTest"):
        per = {c.transport: c for c in cells if c.workload == workload}
        assert per["mpi-opt"].total_seconds < per["mpi-basic"].total_seconds
        assert (
            per["mpi-basic"].result.stage_seconds["Job0-ResultStage"]
            > per["nio"].result.stage_seconds["Job0-ResultStage"]
        )


class TestFig9Shape:
    def _by(self, cells, workload, transport):
        return next(
            c for c in cells if c.workload == workload and c.transport == transport
        )

    @pytest.mark.parametrize("workload", ["GroupByTest", "SortByTest"])
    def test_optimized_beats_basic(self, cells, workload):
        basic = self._by(cells, workload, "mpi-basic")
        opt = self._by(cells, workload, "mpi-opt")
        assert opt.total_seconds < basic.total_seconds

    @pytest.mark.parametrize("workload", ["GroupByTest", "SortByTest"])
    def test_basic_compute_stages_inflated_by_polling(self, cells, workload):
        # The polling tax shows up in the compute-heavy stages.
        basic = self._by(cells, workload, "mpi-basic")
        vanilla = self._by(cells, workload, "nio")
        assert (
            basic.result.stage_seconds["Job0-ResultStage"]
            > vanilla.result.stage_seconds["Job0-ResultStage"]
        )

    @pytest.mark.parametrize("workload", ["GroupByTest", "SortByTest"])
    def test_basic_shuffle_read_still_fast(self, cells, workload):
        # Basic's wire path is MPI: its shuffle read beats vanilla's even
        # though polling hurts everything else.
        basic = self._by(cells, workload, "mpi-basic")
        vanilla = self._by(cells, workload, "nio")
        assert (
            basic.result.shuffle_read_seconds()
            < vanilla.result.shuffle_read_seconds()
        )

    @pytest.mark.parametrize("workload", ["GroupByTest", "SortByTest"])
    def test_measured_polling_tax_basic_vs_opt(self, cells, workload):
        # Sec VI-D made measurable: Basic's selectNow+MPI_Iprobe spin burns
        # real CPU seconds; Optimized parks in select and pays ~none.
        basic = polling_tax_seconds(self._by(cells, workload, "mpi-basic").result.metrics)
        opt = polling_tax_seconds(self._by(cells, workload, "mpi-opt").result.metrics)
        assert basic > 0.0
        assert basic >= 10.0 * opt


@pytest.fixture(scope="module")
def causal_cells(jobs):
    """The 2-worker GroupBy cells re-run with causal flight recording."""
    from repro.harness.parallel import run_ohb_cells
    from repro.harness.systems import FRONTERA

    specs = [
        (GROUP_BY.name, 2, 28 * GiB, transport, OHB_FIDELITY, FRONTERA.name, True)
        for transport in ("nio", "mpi-basic", "mpi-opt")
    ]
    return run_ohb_cells(specs, jobs)


class TestFig9CriticalPath:
    """Sec VI-D as a causal claim: the poll tax sits on Basic's critical path."""

    def test_poll_tax_share_10x_basic_vs_opt(self, causal_cells):
        from repro.obs import critical_path

        share = {
            c.transport: critical_path(c.result).share("poll-tax")
            for c in causal_cells
        }
        assert share["mpi-basic"] > 0.0
        assert share["mpi-basic"] >= 10.0 * share["mpi-opt"]
        assert share["nio"] == 0.0  # no matching engine at all

    def test_flight_logs_complete(self, causal_cells):
        for c in causal_cells:
            flight = c.result.flight
            assert flight is not None and flight.dropped == 0
            assert flight.open_spans() == []

    def test_tracing_does_not_perturb_figure_rows(self, causal_cells, cells):
        # The zero-cost contract at benchmark scale: the traced cells
        # reproduce the untraced cells' rows exactly.
        untraced = {
            (c.workload, c.n_workers, c.transport): c
            for c in cells
        }
        for traced in causal_cells:
            base = untraced[(traced.workload, traced.n_workers, traced.transport)]
            assert traced.total_seconds == base.total_seconds
            assert dict(traced.result.stage_seconds) == dict(
                base.result.stage_seconds
            )


def test_fig9_rows_match_committed_goldens(cells):
    """With causal tracing off (the default), this PR must reproduce the
    committed figure rows bit-exactly — the observability side channel may
    not move a single simulated number."""
    import json
    import pathlib

    golden_path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "results"
        / "BENCH_fig9_basic_vs_optimized.json"
    )
    golden = {
        (r["workload"], r["n_workers"], r["transport"]): r
        for r in json.loads(golden_path.read_text())["cells"]
    }
    assert golden
    for c in cells:
        row = golden[(c.workload, c.n_workers, c.transport)]
        assert c.total_seconds == row["total_seconds"]
        assert dict(c.result.stage_seconds) == row["stage_seconds"]


def test_fig9_bench_json(cells):
    path = write_bench_json("fig9_basic_vs_optimized", ohb_payload(cells))
    import json

    payload = json.loads(path.read_text())
    assert payload["cells"] and all(
        row["total_seconds"] > 0 for row in payload["cells"]
    )
