"""Fig 11 — strong scaling of OHB benchmarks (224 GB fixed) on Frontera.

Paper, 448 cores: GroupByTest 3.72x / 2.06x over Vanilla / RDMA-Spark;
SortByTest 3.51x / 1.41x. Quick mode scales the cluster down (56 GiB at
2/4/8 workers keeps the per-core data of the paper's 224 GiB at 8/16/32);
REPRO_FULL=1 runs the paper geometry.
"""

import pytest

from benchmarks.conftest import (
    FULL,
    OHB_FIDELITY,
    OHB_WORKERS,
    ohb_payload,
    run_once,
    write_bench_json,
)
from repro.harness.experiments import _run_ohb, fig11_strong_scaling
from repro.harness.report import ohb_speedups, render_ohb
from repro.util.units import GiB
from repro.workloads.ohb import SORT_BY

DATA = 224 * GiB if FULL else 56 * GiB


@pytest.fixture(scope="module")
def cells(jobs):
    return fig11_strong_scaling(
        workers=OHB_WORKERS, data_bytes=DATA, fidelity=OHB_FIDELITY, jobs=jobs
    )


def test_fig11_sweep(benchmark, cells):
    cell = run_once(
        benchmark, _run_ohb, SORT_BY, OHB_WORKERS[0], DATA, "mpi-opt", OHB_FIDELITY
    )
    print()
    print(render_ohb(cells, f"Fig 11 — OHB strong scaling (Frontera, fixed {DATA >> 30} GiB)"))
    assert cell.total_seconds > 0
    # Headline shape: adding workers shrinks every transport's runtime,
    # and MPI stays fastest at every point.
    by = {}
    for c in cells:
        by.setdefault((c.workload, c.transport), []).append(
            (c.n_workers, c.total_seconds)
        )
    for key, points in by.items():
        points.sort()
        assert points[-1][1] < points[0][1], key
    speedups = ohb_speedups(cells)
    smallest = min(w for (_, w) in speedups)
    assert 2.8 < speedups[("GroupByTest", smallest)]["total_mpi_vs_vanilla"] < 5.0


class TestFig11Shape:
    def test_all_transports_speed_up_with_more_workers(self, cells):
        for workload in ("GroupByTest", "SortByTest"):
            for transport in ("nio", "rdma", "mpi-opt"):
                times = sorted(
                    (c.n_workers, c.total_seconds)
                    for c in cells
                    if c.workload == workload and c.transport == transport
                )
                # Strong scaling: more workers, less time.
                assert times[-1][1] < times[0][1]

    def test_smallest_cluster_ratios(self, cells):
        # Paper's 448-core (8-worker) point: GroupBy 3.72x/2.06x,
        # SortBy 3.51x/1.41x.
        speedups = ohb_speedups(cells)
        smallest = min(w for (_, w) in speedups)
        gb = speedups[("GroupByTest", smallest)]
        sb = speedups[("SortByTest", smallest)]
        assert 2.8 < gb["total_mpi_vs_vanilla"] < 5.0
        assert 1.4 < gb["total_mpi_vs_rdma"] < 3.0
        assert 2.6 < sb["total_mpi_vs_vanilla"] < 5.0
        assert 1.1 < sb["total_mpi_vs_rdma"] < 3.0

    def test_mpi_always_fastest(self, cells):
        by = {}
        for c in cells:
            by.setdefault((c.workload, c.n_workers), {})[c.transport] = c.total_seconds
        for key, per_t in by.items():
            assert per_t["mpi-opt"] == min(per_t.values()), key


def test_fig11_bench_json(cells):
    path = write_bench_json("fig11_strong_scaling", ohb_payload(cells))
    assert path.exists()
