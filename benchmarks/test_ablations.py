"""Ablation benches over the design choices DESIGN.md calls out."""

import pytest

from benchmarks.conftest import run_once
from repro.harness.ablation import (
    ablate_in_flight_window,
    ablate_io_threads,
    ablate_poll_period,
)
from repro.harness.report import render_table
from repro.util.units import fmt_bytes, fmt_time


def _render(points, value_fmt=str):
    rows = [
        {
            "parameter": p.parameter,
            "value": value_fmt(p.value),
            "shuffle read": fmt_time(p.shuffle_read_s),
            "total": fmt_time(p.total_s),
        }
        for p in points
    ]
    return render_table(rows, f"Ablation: {points[0].parameter}")


def test_ablate_io_threads(benchmark):
    points = run_once(benchmark, ablate_io_threads, values=(1, 4, 8))
    print()
    print(_render(points))
    by = {p.value: p.shuffle_read_s for p in points}
    # A single blocked loop serializes sources, but flow-level bandwidth
    # sharing keeps the NIC fed between matches, so the penalty is bounded
    # (observed ~10-40%, not the multiples a FIFO wire model would show).
    assert by[4] <= by[1] * 1.05
    assert max(by.values()) < min(by.values()) * 2.0


def test_ablate_in_flight_window(benchmark):
    points = run_once(benchmark, ablate_in_flight_window, values=(4 << 20, 48 << 20))
    print()
    print(_render(points, fmt_bytes))
    by = {p.value: p.shuffle_read_s for p in points}
    # A tiny window starves the pipe relative to Spark's 48 MiB default.
    assert by[4 << 20] >= by[48 << 20] * 0.95


def test_ablate_poll_period(benchmark):
    points = run_once(benchmark, ablate_poll_period, values=(5e-6, 500e-6))
    print()
    print(_render(points, lambda v: fmt_time(v)))
    by = {p.value: p.shuffle_read_s for p in points}
    # Fine-grained polling pays selectNow+iprobe costs every few
    # microseconds — the CPU burn the paper abandoned the Basic design
    # over. Coarser polling drains messages in batches (better shuffle
    # throughput, worse latency). The throughput penalty of the 5us spin
    # must be visible:
    assert by[5e-6] > by[500e-6] * 1.1
