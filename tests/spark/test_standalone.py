"""Standalone-mode control plane: registration, heartbeats, allocation."""

import pytest

from repro.netty.eventloop import EventLoop
from repro.simnet import IB_HDR, SimCluster, SimEngine, tcp_over
from repro.simnet.sockets import SocketAddress, SocketStack
from repro.spark.network import TransportContext
from repro.spark.standalone import (
    MASTER_PORT,
    WORKER_TIMEOUT_S,
    StandaloneMaster,
    StandaloneWorker,
)
from repro.util.units import GiB


@pytest.fixture
def rig():
    env = SimEngine()
    cluster = SimCluster(env, IB_HDR, n_nodes=4, cores_per_node=8)
    stack = SocketStack(env, cluster, tcp_over(IB_HDR))
    master = StandaloneMaster(env, stack, cluster.node(3))
    master.start()
    return env, cluster, stack, master


def start_worker(env, cluster, stack, node_idx, worker_id, cores=8, beats=2):
    loop = EventLoop(env, f"{worker_id}-loop")
    loop.start()
    context = TransportContext(stack)
    worker = StandaloneWorker(
        env, context, loop, cluster.node(node_idx), worker_id, cores, 128 * GiB
    )
    proc = env.process(
        worker.register_and_heartbeat(SocketAddress("node3", MASTER_PORT), beats)
    )
    return worker, proc, loop


class TestRegistration:
    def test_worker_registers_over_rpc(self, rig):
        env, cluster, stack, master = rig
        worker, proc, loop = start_worker(env, cluster, stack, 0, "w0", beats=0)
        env.run(until=env.now + 5)
        assert worker.registered
        assert "w0" in master.workers
        assert master.workers["w0"].cores == 8
        assert proc.value == master.master_url
        loop.stop()
        master.stop()

    def test_multiple_workers(self, rig):
        env, cluster, stack, master = rig
        loops = []
        for i in range(3):
            _, _, loop = start_worker(env, cluster, stack, i, f"w{i}", beats=0)
            loops.append(loop)
        env.run(until=env.now + 5)
        assert set(master.workers) == {"w0", "w1", "w2"}
        for loop in loops:
            loop.stop()
        master.stop()

    def test_heartbeats_tracked(self, rig):
        env, cluster, stack, master = rig
        worker, proc, loop = start_worker(env, cluster, stack, 0, "w0", beats=3)
        env.run(until=env.now + 60)
        assert worker._beats == 3
        assert master.workers["w0"].last_heartbeat > 0
        loop.stop()
        master.stop()

    def test_timeout_marks_worker_dead(self, rig):
        env, cluster, stack, master = rig
        worker, proc, loop = start_worker(env, cluster, stack, 0, "w0", beats=0)
        env.run(until=env.now + 5)
        # No heartbeats: advance past the timeout and sweep.
        env.run(until=env.now + WORKER_TIMEOUT_S + 1)
        dead = master.check_timeouts()
        assert dead == ["w0"]
        assert not master.workers["w0"].alive
        loop.stop()
        master.stop()


class TestExecutorAllocation:
    def _register(self, master, n, cores=8):
        for i in range(n):
            master.register_worker(f"w{i}", f"node{i}", cores, 128 * GiB)

    def test_spread_out_allocation(self, rig):
        env, cluster, stack, master = rig
        self._register(master, 3, cores=8)
        app = master.register_application("job", cores_wanted=12)
        per_worker = {wid: c for _, wid, c in app.executors}
        assert sum(per_worker.values()) == 12
        assert max(per_worker.values()) == 4
        assert len(per_worker) == 3  # spread across all workers

    def test_allocation_capped_by_capacity(self, rig):
        env, cluster, stack, master = rig
        self._register(master, 2, cores=4)
        app = master.register_application("big", cores_wanted=100)
        assert sum(c for _, _, c in app.executors) == 8

    def test_dead_workers_excluded(self, rig):
        env, cluster, stack, master = rig
        self._register(master, 2, cores=4)
        master.workers["w0"].alive = False
        master.workers["w0"].cores_free = 0
        app = master.register_application("job", cores_wanted=8)
        assert {wid for _, wid, _ in app.executors} == {"w1"}

    def test_sequential_apps_share_cluster(self, rig):
        env, cluster, stack, master = rig
        self._register(master, 2, cores=8)
        a = master.register_application("a", cores_wanted=8)
        b = master.register_application("b", cores_wanted=8)
        assert sum(c for _, _, c in a.executors) == 8
        assert sum(c for _, _, c in b.executors) == 8
        assert all(w.cores_free == 0 for w in master.workers.values())

    def test_app_ids_unique(self, rig):
        env, cluster, stack, master = rig
        self._register(master, 1)
        ids = {master.register_application(f"x{i}", 1).app_id for i in range(5)}
        assert len(ids) == 5
