"""Integration tests for the simulated Spark cluster deployment."""

import numpy as np
import pytest

from repro.harness.profile import (
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
    WorkloadProfile,
)
from repro.harness.systems import FRONTERA, INTERNAL_CLUSTER
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB, MiB


def tiny_profile(n_exec, cores=4, shuffle_bytes=64 * MiB):
    n_tasks = n_exec * cores
    fetch = np.full((n_tasks, n_exec), shuffle_bytes / (n_tasks * n_exec))
    blocks = np.ones((n_tasks, n_exec), dtype=np.int64)
    return WorkloadProfile(
        name="tiny",
        nominal_bytes=shuffle_bytes,
        n_executors=n_exec,
        cores_per_executor=cores,
        stages=[
            ComputeStage("gen", np.full(n_tasks, 0.01)),
            ShuffleWriteStage(
                "write", np.full(n_tasks, 0.005), np.full(n_tasks, shuffle_bytes / n_tasks)
            ),
            ShuffleReadStage("read", fetch, blocks, np.full(n_tasks, 0.002)),
        ],
    )


class TestClusterBringUp:
    @pytest.mark.parametrize("transport", ["nio", "rdma", "mpi-opt", "mpi-basic"])
    def test_launch_all_transports(self, transport):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, transport, cores_per_executor=4)
        sim.launch()
        assert len(sim.executors) == 2
        if sim.transport.uses_mpi:
            assert all(ex.endpoint is not None for ex in sim.executors)
            # Executors are DPM children with a parent intercomm (Fig 3).
            for ex in sim.executors:
                assert ex.endpoint.proc.comm_world.name == "DPM_COMM"
                assert ex.endpoint.proc.parent_comm is not None
        sim.shutdown()

    def test_double_launch_rejected(self):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "nio", cores_per_executor=2)
        sim.launch()
        with pytest.raises(RuntimeError):
            sim.launch()

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            SparkSimCluster(FRONTERA, 0, "nio")

    def test_executor_placement_one_per_worker_node(self):
        sim = SparkSimCluster(FRONTERA, 3, "nio", cores_per_executor=4)
        sim.launch()
        assert [ex.node.index for ex in sim.executors] == [0, 1, 2]


class TestProfileExecution:
    @pytest.mark.parametrize("transport", ["nio", "rdma", "mpi-opt", "mpi-basic"])
    def test_runs_all_stages(self, transport):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, transport, cores_per_executor=4)
        sim.launch()
        result = sim.run_profile(tiny_profile(2))
        assert set(result.stage_seconds) == {"gen", "write", "read"}
        assert all(v > 0 for v in result.stage_seconds.values())
        assert result.transport == sim.transport.name
        sim.shutdown()

    def test_wrong_executor_count_rejected(self):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "nio", cores_per_executor=4)
        sim.launch()
        with pytest.raises(ValueError, match="built for"):
            sim.run_profile(tiny_profile(4))

    def test_shuffle_bytes_actually_move(self):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "nio", cores_per_executor=4)
        sim.launch()
        profile = tiny_profile(2, shuffle_bytes=64 * MiB)
        sim.run_profile(profile)
        remote = sum(ex.bytes_fetched_remote for ex in sim.executors)
        # Half the fetch matrix is remote (2 executors).
        assert remote == pytest.approx(32 * MiB, rel=0.05)
        local = sum(ex.bytes_read_local for ex in sim.executors)
        assert local == pytest.approx(32 * MiB, rel=0.05)

    def test_transport_ordering_on_shuffle(self):
        times = {}
        for transport in ("nio", "rdma", "mpi-opt"):
            sim = SparkSimCluster(INTERNAL_CLUSTER, 2, transport, cores_per_executor=4)
            sim.launch()
            result = sim.run_profile(tiny_profile(2, shuffle_bytes=512 * MiB))
            times[transport] = result.stage_seconds["read"]
            sim.shutdown()
        assert times["mpi-opt"] < times["rdma"] < times["nio"]

    def test_mpi_basic_polling_tax_reduces_slots(self):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "mpi-basic", cores_per_executor=8)
        sim.launch()
        opt = SparkSimCluster(INTERNAL_CLUSTER, 2, "mpi-opt", cores_per_executor=8)
        opt.launch()
        assert (
            sim.executors[0].slots.capacity < opt.executors[0].slots.capacity
        )

    def test_deterministic_given_same_inputs(self):
        def run():
            sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "mpi-opt", cores_per_executor=4)
            sim.launch()
            return sim.run_profile(tiny_profile(2)).stage_seconds

        assert run() == run()

    def test_run_result_helpers(self):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "nio", cores_per_executor=4)
        sim.launch()
        result = sim.run_profile(tiny_profile(2))
        assert result.total_seconds == pytest.approx(
            sum(result.stage_seconds.values())
        )
        assert result.shuffle_read_seconds() == result.stage_seconds["read"]
