"""DAG scheduler: stage cutting, labels, shuffle reuse, traces."""

import pytest

from repro.spark import SparkConf, SparkContext


@pytest.fixture
def sc():
    return SparkContext(SparkConf({"spark.default.parallelism": "4"}))


class TestStageCutting:
    def test_narrow_only_is_single_stage(self, sc):
        rdd = sc.range(10).map(lambda x: x + 1).filter(lambda x: x > 2)
        job = sc.dag_scheduler.build_job(rdd, list)
        assert len(job.stages) == 1
        assert job.stages[0].kind() == "ResultStage"

    def test_one_shuffle_two_stages(self, sc):
        rdd = sc.range(10).map(lambda x: (x % 3, x)).group_by_key(2)
        job = sc.dag_scheduler.build_job(rdd, list)
        kinds = [s.kind() for s in job.stages]
        assert kinds == ["ShuffleMapStage", "ResultStage"]

    def test_narrow_after_shuffle_stays_in_result_stage(self, sc):
        rdd = (
            sc.range(10)
            .map(lambda x: (x % 3, x))
            .reduce_by_key(lambda a, b: a + b, 2)
            .map_values(lambda v: v * 2)
        )
        job = sc.dag_scheduler.build_job(rdd, list)
        assert len(job.stages) == 2

    def test_chained_shuffles(self, sc):
        rdd = (
            sc.range(20)
            .map(lambda x: (x % 5, x))
            .reduce_by_key(lambda a, b: a + b, 4)
            .map(lambda kv: (kv[1] % 3, kv[0]))
            .group_by_key(2)
        )
        job = sc.dag_scheduler.build_job(rdd, list)
        kinds = [s.kind() for s in job.stages]
        assert kinds == ["ShuffleMapStage", "ShuffleMapStage", "ResultStage"]

    def test_join_creates_two_map_stages(self, sc):
        a = sc.parallelize([("k", 1)], 2)
        b = sc.parallelize([("k", 2)], 2)
        job = sc.dag_scheduler.build_job(a.join(b), list)
        kinds = [s.kind() for s in job.stages]
        assert kinds.count("ShuffleMapStage") == 2
        assert kinds[-1] == "ResultStage"

    def test_stage_task_counts(self, sc):
        rdd = sc.range(10, 3).map(lambda x: (x, x)).group_by_key(5)
        job = sc.dag_scheduler.build_job(rdd, list)
        assert job.stages[0].num_tasks == 3  # map side
        assert job.stages[1].num_tasks == 5  # reduce side

    def test_invalid_partition_rejected(self, sc):
        rdd = sc.range(10, 2)
        with pytest.raises(ValueError):
            sc.dag_scheduler.build_job(rdd, list, partitions=[5])


class TestStageLabels:
    def test_paper_style_labels(self, sc):
        # OHB GroupByTest shape: Job0 generates, Job1 shuffles + reads.
        data = sc.range(10).map(lambda x: (x % 3, x))
        data.count()  # Job0
        grouped = data.group_by_key(2)
        grouped.count()  # Job1
        labels = [st.label for job in sc.tracer.jobs for st in job.stages]
        assert labels == [
            "Job0-ResultStage",
            "Job1-ShuffleMapStage",
            "Job1-ResultStage",
        ]


class TestShuffleReuse:
    def test_shuffle_not_recomputed_across_jobs(self, sc):
        computed = []
        rdd = sc.range(10).map(lambda x: (computed.append(x) or x % 2, x)).group_by_key(2)
        rdd.count()
        first = len(computed)
        rdd.count()  # same shuffle: map stage must be skipped
        assert len(computed) == first


class TestTraces:
    def test_shuffle_matrix_accounts_all_bytes(self, sc):
        rdd = sc.range(100, 4).map(lambda x: (x % 8, x)).group_by_key(4)
        rdd.count()
        trace = sc.tracer.find_stage("ShuffleMapStage")
        assert trace.shuffle_matrix is not None
        assert trace.shuffle_matrix.shape == (4, 4)
        assert trace.total_shuffle_bytes > 0
        assert trace.shuffle_records.sum() == 100

    def test_result_stage_fetch_matrix(self, sc):
        rdd = sc.range(100, 4).map(lambda x: (x % 8, x)).group_by_key(4)
        rdd.count()
        map_trace = sc.tracer.find_stage("ShuffleMapStage")
        result_trace = sc.tracer.jobs[-1].stages[-1]
        assert result_trace.fetch_matrix is not None
        # fetch_matrix is the transpose view of the shuffle matrix.
        assert result_trace.fetch_matrix.sum() == map_trace.shuffle_matrix.sum()

    def test_records_in_counted(self, sc):
        sc.range(50, 2).count()
        trace = sc.tracer.jobs[-1].stages[-1]
        assert sum(trace.records_in) == 50

    def test_trace_disabled(self, sc):
        sc.tracer.enabled = False
        sc.range(10).count()
        assert sc.tracer.jobs == []

    def test_find_stage_missing_raises(self, sc):
        with pytest.raises(KeyError):
            sc.tracer.find_stage("nope")
