"""Codec tests for the Table II message types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spark.messages import (
    MESSAGE_TYPES,
    MPI_OPTIMIZED_BODY_TYPES,
    ChunkFetchFailure,
    ChunkFetchRequest,
    ChunkFetchSuccess,
    OneWayMessage,
    RpcFailure,
    RpcRequest,
    RpcResponse,
    StreamChunkId,
    StreamFailure,
    StreamRequest,
    StreamResponse,
    decode_message,
    encode_message,
    peek_message_type,
)


def roundtrip(msg):
    return decode_message(encode_message(msg))


class TestRoundTrips:
    def test_chunk_fetch_request(self):
        msg = ChunkFetchRequest(StreamChunkId(42, 7), num_blocks=12)
        got = roundtrip(msg)
        assert got == msg

    def test_chunk_fetch_success_with_body(self):
        msg = ChunkFetchSuccess(
            StreamChunkId(1, 2), chunk={"block": "meta"}, chunk_nbytes=4096, num_blocks=3
        )
        got = roundtrip(msg)
        assert got.stream_chunk_id == msg.stream_chunk_id
        assert got.chunk == {"block": "meta"}
        assert got.chunk_nbytes == 4096
        assert got.num_blocks == 3

    def test_chunk_fetch_failure(self):
        got = roundtrip(ChunkFetchFailure(StreamChunkId(9, 0), "block missing"))
        assert got.error == "block missing"

    def test_rpc_request_response(self):
        req = roundtrip(RpcRequest(77, payload=("open", [1, 2]), payload_nbytes=64))
        assert req.request_id == 77 and req.payload == ("open", [1, 2])
        resp = roundtrip(RpcResponse(77, payload="ok", payload_nbytes=2))
        assert resp.request_id == 77 and resp.payload == "ok"

    def test_rpc_failure(self):
        got = roundtrip(RpcFailure(5, "no such endpoint"))
        assert (got.request_id, got.error) == (5, "no such endpoint")

    def test_stream_request_response(self):
        got = roundtrip(StreamRequest("jars/app.jar"))
        assert got.stream_id == "jars/app.jar"
        resp = roundtrip(StreamResponse("jars/app.jar", 10_000, data=b"sample"))
        assert resp.byte_count == 10_000
        assert resp.data == b"sample"

    def test_stream_failure(self):
        got = roundtrip(StreamFailure("x", "denied"))
        assert got.error == "denied"

    def test_one_way(self):
        got = roundtrip(OneWayMessage(payload={"hb": 1}, payload_nbytes=10))
        assert got.payload == {"hb": 1}


class TestFrameProperties:
    def test_type_tags_unique_and_spark_like(self):
        assert len(MESSAGE_TYPES) == 10
        assert ChunkFetchRequest.type_tag == 0
        assert ChunkFetchSuccess.type_tag == 1
        assert RpcRequest.type_tag == 3
        assert OneWayMessage.type_tag == 9

    def test_body_rides_outside_header(self):
        msg = ChunkFetchSuccess(StreamChunkId(1, 1), chunk=b"x", chunk_nbytes=1 << 20)
        frame = encode_message(msg)
        assert len(frame.header) < 64
        assert frame.body_nbytes == 1 << 20
        assert frame.nbytes == len(frame.header) + (1 << 20)

    def test_peek_message_type(self):
        frame = encode_message(
            ChunkFetchSuccess(StreamChunkId(1, 1), chunk=b"", chunk_nbytes=500)
        )
        tag, body = peek_message_type(frame)
        assert tag == ChunkFetchSuccess.type_tag
        assert body == 500

    def test_optimized_body_types_are_the_papers_two(self):
        # Sec. VI-E: only ChunkFetchSuccess and StreamResponse go over MPI.
        assert ChunkFetchSuccess.type_tag in MPI_OPTIMIZED_BODY_TYPES
        assert StreamResponse.type_tag in MPI_OPTIMIZED_BODY_TYPES
        assert len(MPI_OPTIMIZED_BODY_TYPES) == 2

    def test_request_response_classification(self):
        assert ChunkFetchRequest.is_request and not ChunkFetchSuccess.is_request
        assert RpcRequest.is_request and not RpcResponse.is_request
        assert StreamRequest.is_request and not StreamResponse.is_request
        assert OneWayMessage.is_request

    @given(st.integers(0, 2**62), st.integers(0, 2**31 - 1), st.integers(1, 10**6))
    def test_chunk_roundtrip_property(self, stream_id, chunk_index, nbytes):
        msg = ChunkFetchSuccess(
            StreamChunkId(stream_id, chunk_index), chunk=None, chunk_nbytes=0
        )
        got = roundtrip(msg)
        assert got.stream_chunk_id == msg.stream_chunk_id

    @given(st.text(max_size=100), st.integers(0, 2**50))
    def test_stream_response_property(self, sid, count):
        got = roundtrip(StreamResponse(sid, count, data=None))
        assert got.stream_id == sid and got.byte_count == count
