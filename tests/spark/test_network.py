"""Transport layer integration: chunk fetches, RPCs and streams end-to-end."""

import pytest

from repro.netty import EventLoop
from repro.simnet import IB_EDR, SimCluster, SimEngine, tcp_over
from repro.simnet.sockets import SocketAddress, SocketStack
from repro.spark.network import (
    OneForOneStreamManager,
    RpcHandler,
    TransportClientFactory,
    TransportContext,
    TransportError,
)


class EchoRpc(RpcHandler):
    def __init__(self):
        self.one_ways = []

    def receive(self, client_channel, payload, reply):
        if payload == "fail":
            raise ValueError("requested failure")
        reply(("echo", payload), 32)

    def receive_one_way(self, client_channel, payload):
        self.one_ways.append(payload)


@pytest.fixture
def rig():
    env = SimEngine()
    cluster = SimCluster(env, IB_EDR, n_nodes=2, cores_per_node=4)
    stack = SocketStack(env, cluster, tcp_over(IB_EDR))
    rpc = EchoRpc()
    streams = OneForOneStreamManager()
    context = TransportContext(stack, rpc, streams)
    server_loop = EventLoop(env, "server")
    client_loop = EventLoop(env, "client")
    server_loop.start()
    client_loop.start()
    context.create_server(server_loop, 0, 7077)
    return env, context, streams, rpc, client_loop, server_loop


def run_client(rig, body):
    """Run `body(client)` as a sim process; return its result."""
    env, context, streams, rpc, client_loop, server_loop = rig

    def main(env):
        client = yield from context.create_client(
            client_loop, 1, SocketAddress("node0", 7077)
        )
        result = yield from body(client)
        server_loop.stop()
        client_loop.stop()
        return result

    proc = env.process(main(env))
    env.run()
    return proc.value


class TestRpc:
    def test_rpc_roundtrip(self, rig):
        def body(client):
            reply = yield client.send_rpc("hello", nbytes=5)
            return reply

        assert run_client(rig, body) == ("echo", "hello")

    def test_rpc_failure_propagates(self, rig):
        def body(client):
            try:
                yield client.send_rpc("fail")
            except TransportError as exc:
                return str(exc)

        assert "requested failure" in run_client(rig, body)

    def test_concurrent_rpcs_matched_by_id(self, rig):
        def body(client):
            futures = [client.send_rpc(i) for i in range(5)]
            out = []
            for f in futures:
                reply = yield f
                out.append(reply[1])
            return out

        assert run_client(rig, body) == [0, 1, 2, 3, 4]

    def test_one_way_message(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig

        def body(client):
            client.send_one_way({"heartbeat": 1})
            yield client.env.timeout(0.5)
            return rpc.one_ways

        assert run_client(rig, body) == [{"heartbeat": 1}]


class TestChunkFetch:
    def test_fetch_chunk(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        stream_id = streams.register_stream(
            lambda idx, n: (f"chunk-{idx}", 1000 * (idx + 1))
        )

        def body(client):
            result = yield client.fetch_chunk(stream_id, 2)
            return (result.chunk, result.chunk_nbytes)

        assert run_client(rig, body) == ("chunk-2", 3000)

    def test_fetch_unknown_stream_fails(self, rig):
        def body(client):
            try:
                yield client.fetch_chunk(999_999, 0)
            except TransportError as exc:
                return "failed"

        assert run_client(rig, body) == "failed"

    def test_pipelined_fetches(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        stream_id = streams.register_stream(lambda idx, n: (idx, 100))

        def body(client):
            futures = [client.fetch_chunk(stream_id, i) for i in range(8)]
            chunks = []
            for f in futures:
                result = yield f
                chunks.append(result.chunk)
            return chunks

        assert run_client(rig, body) == list(range(8))
        assert streams.chunks_served == 8

    def test_fetch_time_scales_with_chunk_size(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        small = streams.register_stream(lambda idx, n: (None, 1000))
        big = streams.register_stream(lambda idx, n: (None, 8 << 20))

        def body(client):
            t0 = client.env.now
            yield client.fetch_chunk(small, 0)
            t_small = client.env.now - t0
            t1 = client.env.now
            yield client.fetch_chunk(big, 0)
            t_big = client.env.now - t1
            return (t_small, t_big)

        t_small, t_big = run_client(rig, body)
        assert t_big > 10 * t_small


class TestStreams:
    def test_stream_fetch(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        sid = streams.register_stream(lambda idx, n: (b"jar-bytes", 5 << 20))

        def body(client):
            resp = yield client.stream(str(sid))
            return (resp.data, resp.byte_count)

        data, count = run_client(rig, body)
        assert data == b"jar-bytes"
        assert count == 5 << 20


class TestClientFactory:
    def test_clients_pooled_per_address(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        factory = TransportClientFactory(context, client_loop, 1)

        def main(env):
            a = yield from factory.get_client(SocketAddress("node0", 7077))
            b = yield from factory.get_client(SocketAddress("node0", 7077))
            server_loop.stop()
            client_loop.stop()
            return a is b

        proc = env.process(main(env))
        env.run()
        assert proc.value is True


class TestFailureSurfacing:
    """Server-side failures travel the wire as real frames; client-side
    channel death fails every outstanding future instead of hanging it."""

    def test_unknown_stream_error_names_the_stream(self, rig):
        def body(client):
            try:
                yield client.fetch_chunk(123_456, 7)
            except TransportError as exc:
                return str(exc)

        msg = run_client(rig, body)
        assert "123456" in msg.replace("_", "")

    def test_invalidated_streams_report_the_reason(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        sid = streams.register_stream(lambda idx, n: (idx, 100))
        streams.invalidate_all("executor shutting down")

        def body(client):
            try:
                yield client.fetch_chunk(sid, 0)
            except TransportError as exc:
                return str(exc)

        assert "executor shutting down" in run_client(rig, body)

    def test_channel_close_fails_outstanding_futures(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        # A stream the server will never finish serving in time: close the
        # channel right after issuing the fetch, before the response lands.
        sid = streams.register_stream(lambda idx, n: (idx, 64 << 20))

        def body(client):
            fut = client.fetch_chunk(sid, 0)
            client.channel.close()
            try:
                yield fut
            except TransportError as exc:
                return str(exc)

        assert "closed" in run_client(rig, body)

    def test_pipeline_exception_fails_outstanding_futures(self, rig):
        env, context, streams, rpc, client_loop, server_loop = rig
        sid = streams.register_stream(lambda idx, n: (idx, 64 << 20))

        def body(client):
            fut = client.fetch_chunk(sid, 0)
            client.channel.pipeline.fire_exception_caught(RuntimeError("boom"))
            try:
                yield fut
            except TransportError as exc:
                return str(exc)

        assert "boom" in run_client(rig, body)
