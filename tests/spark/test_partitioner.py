"""Partitioner batched-path equivalence.

``partition_many`` must return exactly ``[partition(k) for k in keys]``
for every key population — the shuffle data plane's traffic matrices are
byte-identical to the per-record loop only if this identity is exact,
including on the populations that must *miss* the vectorized paths
(bools, negatives, huge ints, floats, mixed types).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.spark.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)

# Int populations chosen to straddle the vectorized path's guards:
# in-range non-negative ints take the numpy route, negatives / >= 2**61-1
# / > int64 fall back, bools are ints to `isinstance` but not to `type`.
_any_int = st.one_of(
    st.integers(0, 2**61 - 2),
    st.integers(-(2**70), 2**70),
    st.booleans(),
)
_any_key = st.one_of(
    _any_int,
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.binary(max_size=8),
    st.tuples(st.integers(), st.integers()),
)


class TestHashPartitionMany:
    @given(st.lists(_any_int, max_size=60), st.integers(1, 9))
    def test_matches_per_key_on_ints(self, keys, n):
        p = HashPartitioner(n)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    @given(st.lists(_any_key, max_size=40), st.integers(1, 9))
    def test_matches_per_key_on_anything(self, keys, n):
        p = HashPartitioner(n)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    def test_all_results_in_range(self):
        p = HashPartitioner(4)
        for rid in p.partition_many(list(range(-50, 50))):
            assert 0 <= rid < 4


class TestRangePartitionMany:
    @given(
        st.lists(st.integers(-(2**70), 2**70), max_size=60),
        st.lists(st.integers(-(2**62), 2**62), min_size=0, max_size=6),
        st.booleans(),
    )
    def test_matches_per_key_on_ints(self, keys, bounds, ascending):
        p = RangePartitioner(sorted(bounds), ascending=ascending)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    @given(
        st.lists(st.floats(allow_nan=False), max_size=40),
        st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=5),
        st.booleans(),
    )
    def test_matches_per_key_on_floats(self, keys, bounds, ascending):
        # Floats never vectorize (the guard is type-exact); the identity
        # must still hold through the fallback.
        p = RangePartitioner(sorted(bounds), ascending=ascending)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    @given(st.lists(st.text(max_size=6), max_size=30))
    def test_matches_per_key_on_strings(self, keys):
        p = RangePartitioner(["g", "q"])
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    def test_boundary_keys_side_left(self):
        # A key equal to a bound lands left of it, same as bisect_left.
        p = RangePartitioner([10, 20])
        assert p.partition_many([9, 10, 11, 20, 21]) == [0, 0, 1, 1, 2]

    def test_descending_flips(self):
        p = RangePartitioner([10, 20], ascending=False)
        assert p.partition_many([9, 10, 11, 20, 21]) == [2, 2, 1, 1, 0]


class TestBasePartitionMany:
    def test_base_class_loops(self):
        class Mod3(Partitioner):
            def partition(self, key):
                return key % self.num_partitions

        p = Mod3(3)
        assert p.partition_many([0, 1, 2, 3, 4]) == [0, 1, 2, 0, 1]
