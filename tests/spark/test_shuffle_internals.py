"""Shuffle machinery internals: map-output registry, combine semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark import SparkConf, SparkContext
from repro.spark.local import MapOutputRegistry


@pytest.fixture
def sc():
    return SparkContext(SparkConf({"spark.default.parallelism": "4"}))


class TestMapOutputRegistry:
    def test_put_fetch_roundtrip(self):
        reg = MapOutputRegistry()
        reg.init_shuffle(0, num_maps=2)
        reg.put(0, 0, 1, [("a", 1)], nbytes=10)
        reg.put(0, 1, 1, [("b", 2)], nbytes=20)
        assert list(reg.fetch(0, 1)) == [("a", 1), ("b", 2)]
        assert list(reg.fetch(0, 0)) == []

    def test_fetch_unknown_shuffle_raises(self):
        with pytest.raises(KeyError):
            list(MapOutputRegistry().fetch(9, 0))

    def test_block_sizes_matrix(self):
        reg = MapOutputRegistry()
        reg.init_shuffle(3, num_maps=2)
        reg.put(3, 0, 0, [1], nbytes=100)
        reg.put(3, 1, 2, [2], nbytes=50)
        sizes = reg.block_sizes(3)
        assert sizes.shape == (2, 3)
        assert sizes[0, 0] == 100
        assert sizes[1, 2] == 50
        assert sizes.sum() == 150

    def test_is_computed(self):
        reg = MapOutputRegistry()
        assert not reg.is_computed(1)
        reg.init_shuffle(1, 1)
        assert reg.is_computed(1)


class TestCombineSemantics:
    def test_map_side_combine_shrinks_shuffle(self, sc):
        # reduceByKey combines map-side; groupByKey does not. For a heavily
        # repeated key-set, reduceByKey must shuffle far fewer bytes —
        # exactly why OHB uses GroupByTest to stress the network.
        data = [(i % 4, 1) for i in range(4000)]

        sc1 = SparkContext(SparkConf({"spark.default.parallelism": "4"}))
        sc1.parallelize(data, 4).reduce_by_key(lambda a, b: a + b).count()
        reduced_bytes = sc1.tracer.find_stage("ShuffleMapStage").total_shuffle_bytes

        sc2 = SparkContext(SparkConf({"spark.default.parallelism": "4"}))
        sc2.parallelize(data, 4).group_by_key().count()
        grouped_bytes = sc2.tracer.find_stage("ShuffleMapStage").total_shuffle_bytes

        assert reduced_bytes * 20 < grouped_bytes

    def test_map_side_combine_correctness(self, sc):
        data = [(i % 7, i) for i in range(1000)]
        got = dict(
            sc.parallelize(data, 5).reduce_by_key(lambda a, b: a + b).collect()
        )
        expected = {}
        for k, v in data:
            expected[k] = expected.get(k, 0) + v
        assert got == expected

    def test_combiner_records_counted_in_trace(self, sc):
        sc.parallelize([(1, 1)] * 100, 2).reduce_by_key(lambda a, b: a + b).count()
        trace = sc.tracer.find_stage("ShuffleMapStage")
        # Map-side combine: each map partition emits one combiner for key 1.
        assert trace.shuffle_records.sum() == 2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 100)), min_size=1, max_size=60))
    def test_shuffle_matrix_conservation(self, pairs):
        # Property: the shuffle write matrix column sums equal what each
        # reduce partition actually receives.
        sc = SparkContext(SparkConf({"spark.default.parallelism": "3"}))
        rdd = sc.parallelize(pairs, 3).group_by_key(3)
        collected = rdd.collect()
        trace = sc.tracer.find_stage("ShuffleMapStage")
        assert trace.shuffle_records.sum() == len(pairs)
        got_records = sum(len(vs) for _, vs in collected)
        assert got_records == len(pairs)


class TestShuffleStageInteraction:
    def test_two_shuffles_independent(self, sc):
        a = sc.parallelize([(1, "a")], 2).group_by_key(2)
        b = sc.parallelize([(1, "b")], 2).group_by_key(2)
        assert dict(a.collect()) == {1: ["a"]}
        assert dict(b.collect()) == {1: ["b"]}

    def test_shuffle_feeding_shuffle(self, sc):
        result = (
            sc.range(100)
            .map(lambda x: (x % 10, 1))
            .reduce_by_key(lambda a, b: a + b, 4)  # (k, 10) x 10
            .map(lambda kv: (kv[1], kv[0]))
            .group_by_key(2)
        )
        groups = dict(result.collect())
        assert sorted(groups[10]) == list(range(10))
