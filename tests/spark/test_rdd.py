"""RDD operator correctness on the local backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spark import SparkConf, SparkContext


@pytest.fixture
def sc():
    return SparkContext(SparkConf({"spark.default.parallelism": "4"}))


class TestCreation:
    def test_parallelize_collect(self, sc):
        assert sc.parallelize([3, 1, 2], 2).collect() == [3, 1, 2]

    def test_range(self, sc):
        assert sc.range(10, 3).collect() == list(range(10))

    def test_generated(self, sc):
        rdd = sc.generated(3, lambda split: [split] * 2)
        assert rdd.collect() == [0, 0, 1, 1, 2, 2]

    def test_partition_count_clamped(self, sc):
        rdd = sc.parallelize([1], 100)
        assert rdd.num_partitions == 1

    def test_empty_partitions_allowed(self, sc):
        assert sc.parallelize([], 1).collect() == []


class TestNarrowOps:
    def test_map(self, sc):
        assert sc.parallelize([1, 2, 3]).map(lambda x: x * 10).collect() == [10, 20, 30]

    def test_filter(self, sc):
        assert sc.range(10).filter(lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, sc):
        rdd = sc.parallelize(["a b", "c"]).flat_map(str.split)
        assert rdd.collect() == ["a", "b", "c"]

    def test_map_values(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2)]).map_values(lambda v: v + 1)
        assert rdd.collect() == [("a", 2), ("b", 3)]

    def test_flat_map_values(self, sc):
        rdd = sc.parallelize([("a", 2)]).flat_map_values(lambda v: range(v))
        assert rdd.collect() == [("a", 0), ("a", 1)]

    def test_key_by(self, sc):
        assert sc.parallelize([5, 6]).key_by(lambda x: x % 2).collect() == [(1, 5), (0, 6)]

    def test_glom_preserves_partitioning(self, sc):
        rdd = sc.parallelize(list(range(6)), 3).glom()
        assert rdd.collect() == [[0, 1], [2, 3], [4, 5]]

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3], 1)
        u = a.union(b)
        assert u.num_partitions == 3
        assert u.collect() == [1, 2, 3]

    def test_sample_fraction_bounds(self, sc):
        with pytest.raises(ValueError):
            sc.range(10).sample(1.5)

    def test_coalesce(self, sc):
        rdd = sc.parallelize(list(range(8)), 4).coalesce(2)
        assert rdd.num_partitions == 2
        assert rdd.collect() == list(range(8))

    def test_pipelined_chain(self, sc):
        result = (
            sc.range(100)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(lambda x: x * 2)
            .collect()
        )
        assert result == [2 * x for x in range(1, 101) if x % 3 == 0]


class TestWideOps:
    def test_group_by_key(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2).group_by_key(3)
        result = dict(rdd.collect())
        assert sorted(result["a"]) == [1, 3]
        assert result["b"] == [2]

    def test_reduce_by_key(self, sc):
        rdd = sc.parallelize([("x", 1)] * 10 + [("y", 2)] * 5, 3)
        assert dict(rdd.reduce_by_key(lambda a, b: a + b).collect()) == {"x": 10, "y": 10}

    def test_aggregate_by_key(self, sc):
        rdd = sc.parallelize([("k", i) for i in range(5)], 2)
        result = rdd.aggregate_by_key(0, lambda acc, v: acc + v, lambda a, b: a + b)
        assert dict(result.collect()) == {"k": 10}

    def test_sort_by_key(self, sc):
        data = [(k, None) for k in [5, 3, 8, 1, 9, 2, 7]]
        rdd = sc.parallelize(data, 3).sort_by_key(num_partitions=2)
        assert [k for k, _ in rdd.collect()] == [1, 2, 3, 5, 7, 8, 9]

    def test_sort_by_key_descending(self, sc):
        data = [(k, None) for k in [5, 3, 8]]
        rdd = sc.parallelize(data, 2).sort_by_key(ascending=False, num_partitions=2)
        assert [k for k, _ in rdd.collect()] == [8, 5, 3]

    def test_sort_by(self, sc):
        rdd = sc.parallelize([3, 1, 2], 2).sort_by(lambda x: x, num_partitions=2)
        assert rdd.collect() == [1, 2, 3]

    def test_distinct(self, sc):
        assert sorted(sc.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect()) == [1, 2, 3]

    def test_repartition(self, sc):
        rdd = sc.parallelize(list(range(10)), 2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(10))

    def test_partition_by_places_keys(self, sc):
        from repro.spark import HashPartitioner

        rdd = sc.parallelize([(i, i) for i in range(20)], 4).partition_by(
            HashPartitioner(5)
        )
        parts = rdd.glom().collect()
        assert len(parts) == 5
        for pid, part in enumerate(parts):
            for k, _ in part:
                assert hash(k) % 5 == pid

    def test_partition_by_is_noop_when_copartitioned(self, sc):
        from repro.spark import HashPartitioner

        p = HashPartitioner(3)
        rdd = sc.parallelize([(1, 1)], 1).partition_by(p)
        assert rdd.partition_by(HashPartitioner(3)) is rdd

    def test_join(self, sc):
        a = sc.parallelize([("k", 1), ("k", 2), ("q", 9)], 2)
        b = sc.parallelize([("k", "x"), ("z", "y")], 2)
        result = sorted(a.join(b).collect())
        assert result == [("k", (1, "x")), ("k", (2, "x"))]

    def test_left_outer_join(self, sc):
        a = sc.parallelize([("k", 1), ("q", 2)], 2)
        b = sc.parallelize([("k", "x")], 1)
        result = dict(a.left_outer_join(b).collect())
        assert result == {"k": (1, "x"), "q": (2, None)}

    def test_cogroup(self, sc):
        a = sc.parallelize([("k", 1), ("k", 2)], 2)
        b = sc.parallelize([("k", "x"), ("m", "y")], 2)
        result = dict(a.cogroup(b).collect())
        assert sorted(result["k"][0]) == [1, 2]
        assert result["k"][1] == ["x"]
        assert result["m"] == ([], ["y"])

    def test_count_by_key(self, sc):
        rdd = sc.parallelize([("a", 0)] * 3 + [("b", 0)] * 2, 2)
        assert rdd.count_by_key() == {"a": 3, "b": 2}


class TestActions:
    def test_count(self, sc):
        assert sc.range(1000, 7).count() == 1000

    def test_reduce(self, sc):
        assert sc.range(101).reduce(lambda a, b: a + b) == 5050

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_fold_and_sum(self, sc):
        assert sc.range(5).fold(0, lambda a, b: a + b) == 10
        assert sc.range(5).sum() == 10

    def test_max_min(self, sc):
        rdd = sc.parallelize([5, -2, 9, 3], 2)
        assert rdd.max() == 9
        assert rdd.min() == -2

    def test_first_and_take(self, sc):
        rdd = sc.range(10, 4)
        assert rdd.first() == 0
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.take(100) == list(range(10))

    def test_first_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 1).first()

    def test_foreach(self, sc):
        seen = []
        sc.parallelize([1, 2, 3], 2).foreach(seen.append)
        assert sorted(seen) == [1, 2, 3]


class TestCaching:
    def test_cache_avoids_recompute(self, sc):
        computations = []

        def track(x):
            computations.append(x)
            return x

        rdd = sc.range(4, 2).map(track).cache()
        rdd.collect()
        rdd.collect()
        assert len(computations) == 4  # second collect served from cache

    def test_uncached_recomputes(self, sc):
        computations = []
        rdd = sc.range(4, 2).map(lambda x: computations.append(x) or x)
        rdd.collect()
        rdd.collect()
        assert len(computations) == 8


class TestStoppedContext:
    def test_run_after_stop_raises(self, sc):
        sc.stop()
        with pytest.raises(RuntimeError):
            sc.range(3).collect()

    def test_context_manager(self):
        with SparkContext() as sc:
            assert sc.range(3).count() == 3


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), max_size=60),
        st.integers(1, 6),
    )
    def test_collect_preserves_order(self, data, parts):
        sc = SparkContext()
        assert sc.parallelize(data, parts).collect() == data

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 10), st.integers()), max_size=60),
        st.integers(1, 5),
    )
    def test_reduce_by_key_matches_dict(self, pairs, parts):
        sc = SparkContext()
        got = dict(
            sc.parallelize(pairs, parts).reduce_by_key(lambda a, b: a + b).collect()
        )
        expected = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=80), st.integers(1, 5))
    def test_sort_by_key_sorts(self, keys, parts):
        sc = SparkContext()
        rdd = sc.parallelize([(k, None) for k in keys], parts).sort_by_key(
            num_partitions=3
        )
        assert [k for k, _ in rdd.collect()] == sorted(keys)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 50), max_size=60))
    def test_distinct_matches_set(self, data):
        sc = SparkContext()
        assert sorted(sc.parallelize(data, 3).distinct().collect()) == sorted(set(data))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(), max_size=40), st.integers(1, 8))
    def test_repartition_preserves_multiset(self, data, n):
        sc = SparkContext()
        got = sc.parallelize(data, 2).repartition(n).collect()
        assert sorted(got) == sorted(data)
