"""Unit tests for SimCluster / SimNode wire-path timing and contention."""

import pytest

from repro.simnet import IB_EDR, IB_HDR, SimCluster, SimEngine, mpi_over, tcp_over
from repro.util.units import MiB


@pytest.fixture
def env():
    return SimEngine()


def make_cluster(env, n=2, cores=4):
    return SimCluster(env, IB_HDR, n_nodes=n, cores_per_node=cores)


class TestClusterConstruction:
    def test_nodes_created(self, env):
        cluster = make_cluster(env, n=4, cores=56)
        assert len(cluster) == 4
        assert cluster.node(2).name == "node2"
        assert cluster.node("node1").index == 1
        assert cluster.node(cluster.nodes[0]) is cluster.nodes[0]
        assert cluster.node(0).cores.capacity == 56

    def test_invalid_sizes(self, env):
        with pytest.raises(ValueError):
            SimCluster(env, IB_HDR, n_nodes=0, cores_per_node=1)
        with pytest.raises(ValueError):
            SimCluster(env, IB_HDR, n_nodes=1, cores_per_node=0)


class TestWirePath:
    def test_cross_node_charges_model(self, env):
        cluster = make_cluster(env)
        model = mpi_over(IB_HDR)
        nbytes = 1 * MiB

        def sender(env):
            elapsed = yield from cluster.wire_path(
                cluster.node(0), cluster.node(1), nbytes, model
            )
            return elapsed

        p = env.process(sender(env))
        env.run()
        expected = model.serialization_time(nbytes) + model.protocol_latency(nbytes)
        assert p.value == pytest.approx(expected)

    def test_same_node_uses_loopback(self, env):
        cluster = make_cluster(env)
        model = tcp_over(IB_HDR)

        def sender(env):
            elapsed = yield from cluster.wire_path(
                cluster.node(0), cluster.node(0), 1 * MiB, model
            )
            return elapsed

        p = env.process(sender(env))
        env.run()
        # Loopback should be far faster than the TCP path.
        assert p.value < model.serialization_time(1 * MiB)
        assert cluster.node(0).nic_stats.tx_bytes == 0  # NIC not involved

    def test_tx_contention_shares_bandwidth(self, env):
        # Two concurrent transfers out of one node share its TX capacity
        # (fluid model): both take ~2x the solo serialization time.
        cluster = make_cluster(env, n=3)
        model = mpi_over(IB_HDR)
        nbytes = 8 * MiB
        finish = {}

        def sender(env, dst, key):
            yield from cluster.wire_path(cluster.node(0), cluster.node(dst), nbytes, model)
            finish[key] = env.now

        env.process(sender(env, 1, "a"))
        env.process(sender(env, 2, "b"))
        env.run()
        solo = nbytes * model.per_byte_s
        assert finish["a"] == pytest.approx(finish["b"], rel=1e-6)
        assert finish["a"] == pytest.approx(2 * solo, rel=0.05)

    def test_rx_incast_shares_bandwidth(self, env):
        cluster = make_cluster(env, n=3)
        model = mpi_over(IB_HDR)
        nbytes = 8 * MiB
        finishes = []

        def sender(env, src):
            yield from cluster.wire_path(cluster.node(src), cluster.node(0), nbytes, model)
            finishes.append(env.now)

        env.process(sender(env, 1))
        env.process(sender(env, 2))
        env.run()
        solo = nbytes * model.per_byte_s
        # Incast at node0's RX: the two flows split the RX capacity.
        assert finishes[0] == pytest.approx(finishes[1], rel=1e-6)
        assert finishes[0] == pytest.approx(2 * solo, rel=0.05)

    def test_disjoint_pairs_run_in_parallel(self, env):
        cluster = make_cluster(env, n=4)
        model = mpi_over(IB_HDR)
        nbytes = 8 * MiB
        finishes = []

        def sender(env, src, dst):
            yield from cluster.wire_path(cluster.node(src), cluster.node(dst), nbytes, model)
            finishes.append(env.now)

        env.process(sender(env, 0, 1))
        env.process(sender(env, 2, 3))
        env.run()
        assert finishes[0] == pytest.approx(finishes[1])

    def test_nic_stats_updated(self, env):
        cluster = make_cluster(env)

        def sender(env):
            yield from cluster.wire_path(
                cluster.node(0), cluster.node(1), 1000, mpi_over(IB_HDR)
            )

        env.process(sender(env))
        env.run()
        assert cluster.node(0).nic_stats.tx_bytes == 1000
        assert cluster.node(0).nic_stats.tx_messages == 1
        assert cluster.node(1).nic_stats.rx_bytes == 1000

    def test_trace_records_by_model(self, env):
        cluster = make_cluster(env)
        model = mpi_over(IB_HDR)

        def sender(env):
            yield from cluster.wire_path(cluster.node(0), cluster.node(1), 500, model)
            yield from cluster.wire_path(cluster.node(0), cluster.node(1), 700, model)

        env.process(sender(env))
        env.run()
        assert cluster.trace.bytes_by_model[model.name] == 1200
        assert cluster.trace.by_model[model.name].n == 2
        assert cluster.trace.total_bytes() == 1200

    def test_trace_hook_invoked(self, env):
        cluster = make_cluster(env)
        seen = []
        cluster.trace.hooks.append(seen.append)

        def sender(env):
            yield from cluster.wire_path(
                cluster.node(0), cluster.node(1), 42, mpi_over(IB_HDR)
            )

        env.process(sender(env))
        env.run()
        assert len(seen) == 1
        assert seen[0]["nbytes"] == 42
        assert seen[0]["src"] == "node0"

    def test_negative_bytes_rejected(self, env):
        cluster = make_cluster(env)

        def sender(env):
            yield from cluster.wire_path(
                cluster.node(0), cluster.node(1), -1, mpi_over(IB_HDR)
            )

        env.process(sender(env))
        with pytest.raises(ValueError):
            env.run()

    def test_transfer_async_returns_process(self, env):
        cluster = make_cluster(env)
        delivered = []
        p = cluster.transfer_async(
            cluster.node(0),
            cluster.node(1),
            1 * MiB,
            mpi_over(IB_HDR),
            on_delivered=lambda: delivered.append(env.now),
        )
        env.run()
        assert p.triggered and p.ok
        assert delivered and delivered[0] == pytest.approx(p.value)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            env = SimEngine()
            cluster = SimCluster(env, IB_EDR, n_nodes=4, cores_per_node=8)
            model = tcp_over(IB_EDR)
            order = []

            def sender(env, src, dst, nbytes):
                yield from cluster.wire_path(
                    cluster.node(src), cluster.node(dst), nbytes, model
                )
                order.append((env.now, src, dst))

            for i in range(4):
                for j in range(4):
                    if i != j:
                        env.process(sender(env, i, j, (i + 1) * 1000 * (j + 1)))
            env.run()
            return order

        assert run_once() == run_once()
