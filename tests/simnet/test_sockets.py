"""Unit tests for the simulated stream socket layer."""

import pytest

from repro.simnet import IB_EDR, SimCluster, SimEngine, tcp_over
from repro.simnet.sockets import SocketAddress, SocketError, SocketStack
from repro.util.units import KiB, MiB


@pytest.fixture
def env():
    return SimEngine()


@pytest.fixture
def rig(env):
    cluster = SimCluster(env, IB_EDR, n_nodes=3, cores_per_node=4)
    stack = SocketStack(env, cluster, tcp_over(IB_EDR))
    return env, cluster, stack


class TestConnectionEstablishment:
    def test_connect_accept(self, rig):
        env, cluster, stack = rig
        listener = stack.listen(0, 7077)

        def server(env):
            sock = yield listener.accept()
            return sock.remote.host

        def client(env):
            sock = yield from stack.connect(1, SocketAddress("node0", 7077))
            return sock.remote

        s = env.process(server(env))
        c = env.process(client(env))
        env.run()
        assert s.value == "node1"
        assert c.value == SocketAddress("node0", 7077)
        assert env.now > 0  # handshake took wire time

    def test_connection_refused(self, rig):
        env, cluster, stack = rig

        def client(env):
            yield from stack.connect(1, SocketAddress("node0", 9999))

        env.process(client(env))
        with pytest.raises(SocketError, match="refused"):
            env.run()

    def test_double_bind_rejected(self, rig):
        env, cluster, stack = rig
        stack.listen(0, 7077)
        with pytest.raises(SocketError, match="in use"):
            stack.listen(0, 7077)

    def test_rebind_after_close(self, rig):
        env, cluster, stack = rig
        listener = stack.listen(0, 7077)
        listener.close()
        stack.listen(0, 7077)  # no error


class TestDataTransfer:
    def _establish(self, rig):
        env, cluster, stack = rig
        listener = stack.listen(0, 7077)
        pair = {}

        def server(env):
            pair["server"] = yield listener.accept()

        def client(env):
            pair["client"] = yield from stack.connect(1, SocketAddress("node0", 7077))

        env.process(server(env))
        env.process(client(env))
        env.run()
        return env, pair["client"], pair["server"]

    def test_send_recv_roundtrip(self, rig):
        env, client, server = self._establish(rig)

        def receiver(env):
            seg = yield server.recv()
            return seg.payload

        client.send({"msg": "hello"}, nbytes=100)
        r = env.process(receiver(env))
        env.run()
        assert r.value == {"msg": "hello"}

    def test_in_order_delivery_mixed_sizes(self, rig):
        # A small message must never overtake a large one on the same stream.
        env, client, server = self._establish(rig)
        got = []

        def receiver(env):
            for _ in range(3):
                seg = yield server.recv()
                got.append(seg.payload)

        client.send("big", nbytes=4 * MiB)
        client.send("small", nbytes=16)
        client.send("tiny", nbytes=1)
        env.process(receiver(env))
        env.run()
        assert got == ["big", "small", "tiny"]

    def test_bidirectional(self, rig):
        env, client, server = self._establish(rig)

        def ping(env):
            client.send("ping", 64)
            seg = yield client.recv()
            return seg.payload

        def pong(env):
            seg = yield server.recv()
            server.send(seg.payload + "->pong", 64)

        p = env.process(ping(env))
        env.process(pong(env))
        env.run()
        assert p.value == "ping->pong"

    def test_transfer_takes_wire_time(self, rig):
        env, client, server = self._establish(rig)
        t0 = env.now

        def receiver(env):
            yield server.recv()
            return env.now - t0

        client.send("payload", nbytes=4 * MiB)
        r = env.process(receiver(env))
        env.run()
        model = client.model
        assert r.value >= model.serialization_time(4 * MiB)

    def test_byte_accounting(self, rig):
        env, client, server = self._establish(rig)

        def receiver(env):
            yield server.recv()
            yield server.recv()

        client.send("a", 100)
        client.send("b", 200)
        env.process(receiver(env))
        env.run()
        assert client.bytes_sent == 300
        assert server.bytes_received == 300

    def test_close_delivers_eof(self, rig):
        env, client, server = self._establish(rig)

        def receiver(env):
            seg = yield server.recv()
            first = seg
            seg = yield server.recv()
            return (first.payload, seg.eof)

        client.send("last", 10)
        client.close()
        r = env.process(receiver(env))
        env.run()
        assert r.value == ("last", True)

    def test_send_after_close_raises(self, rig):
        env, client, server = self._establish(rig)
        client.close()
        with pytest.raises(SocketError, match="closed"):
            client.send("x", 1)

    def test_recv_nowait_and_readable(self, rig):
        env, client, server = self._establish(rig)
        assert not server.readable
        assert server.recv_nowait() is None

        def driver(env):
            client.send("x", 10)
            # Wait long enough for delivery.
            yield env.timeout(1.0)
            assert server.readable
            seg = server.recv_nowait()
            return seg.payload

        p = env.process(driver(env))
        env.run()
        assert p.value == "x"

    def test_negative_nbytes_rejected(self, rig):
        env, client, server = self._establish(rig)
        with pytest.raises(ValueError):
            client.send("x", -5)
