"""Unit tests for Store and Resource primitives."""

import pytest

from repro.simnet import SimEngine, Store
from repro.simnet.resources import Resource, StoreCancelled


@pytest.fixture
def env():
    return SimEngine()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return item

        store.put("x")
        p = env.process(consumer(env))
        env.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(3)
            store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == (3.0, "late")

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        got = []

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_filtered_get_skips_nonmatching(self, env):
        store = Store(env)
        store.put(("tag", 1))
        store.put(("other", 2))

        def consumer(env):
            item = yield store.get(lambda m: m[0] == "other")
            return item

        p = env.process(consumer(env))
        env.run()
        assert p.value == ("other", 2)
        assert store.peek() == ("tag", 1)  # unmatched item stays queued

    def test_filtered_get_waits_for_match(self, env):
        store = Store(env)
        store.put("no")

        def consumer(env):
            item = yield store.get(lambda m: m == "yes")
            return (env.now, item)

        def producer(env):
            yield env.timeout(2)
            store.put("yes")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == (2.0, "yes")

    def test_capacity_blocks_putter(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env):
            yield env.timeout(5)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 5.0) in log

    def test_cancel_pending_get(self, env):
        store = Store(env)

        def consumer(env):
            req = store.get()
            yield env.timeout(1)
            req.cancel()
            try:
                yield req
            except StoreCancelled:
                return "cancelled"

        p = env.process(consumer(env))
        env.run()
        assert p.value == "cancelled"

    def test_peek_with_filter(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.peek(lambda x: x > 1) == 2
        assert store.peek(lambda x: x > 5) is None
        assert len(store) == 2

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestResource:
    def test_capacity_limits_concurrency(self, env):
        res = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env, i):
            req = res.request()
            yield req
            active.append(i)
            peak.append(len(active))
            try:
                yield env.timeout(10)
            finally:
                active.remove(i)
                res.release(req)

        for i in range(5):
            env.process(worker(env, i))
        env.run()
        assert max(peak) == 2

    def test_fifo_grant_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(env, i):
            req = res.request()
            yield req
            order.append(i)
            yield env.timeout(1)
            res.release(req)

        for i in range(4):
            env.process(worker(env, i))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_serialization_time(self, env):
        res = Resource(env, capacity=1)
        finish = {}

        def worker(env, i):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            finish[i] = env.now

        for i in range(3):
            env.process(worker(env, i))
        env.run()
        assert finish == {0: 5.0, 1: 10.0, 2: 15.0}

    def test_release_unknown_raises(self, env):
        res = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        req = other.request()
        with pytest.raises(Exception):
            res.release(req)

    def test_release_queued_request_cancels(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        assert held.triggered
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # withdraw from queue
        res.release(held)
        assert res.count == 0

    def test_count_property(self, env):
        res = Resource(env, capacity=3)
        reqs = [res.request() for _ in range(2)]
        assert res.count == 2
        for r in reqs:
            res.release(r)
        assert res.count == 0

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_acquire_helper(self, env):
        res = Resource(env, capacity=1)

        def worker(env):
            req = yield from res.acquire()
            yield env.timeout(1)
            res.release(req)
            return env.now

        p = env.process(worker(env))
        env.run()
        assert p.value == 1.0
