"""Unit + property tests for the fluid bandwidth-sharing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import SimEngine
from repro.simnet.fluid import FluidNetwork


@pytest.fixture
def env():
    return SimEngine()


def run_transfers(env, net, specs):
    """specs: list of (links, nbytes, start_time); returns finish times."""
    finishes = {}

    def starter(env, i, links, nbytes, at):
        if at:
            yield env.timeout(at)
        done = net.transfer(links, nbytes)
        yield done
        finishes[i] = env.now

    for i, (links, nbytes, at) in enumerate(specs):
        env.process(starter(env, i, links, nbytes, at))
    env.run()
    return finishes


class TestSingleFlow:
    def test_solo_flow_runs_at_capacity(self, env):
        net = FluidNetwork(env)
        f = run_transfers(env, net, [([("a", 100.0)], 1000.0, 0.0)])
        assert f[0] == pytest.approx(10.0)

    def test_two_links_min_capacity(self, env):
        net = FluidNetwork(env)
        f = run_transfers(env, net, [([("a", 100.0), ("b", 50.0)], 1000.0, 0.0)])
        assert f[0] == pytest.approx(20.0)

    def test_zero_bytes_immediate(self, env):
        net = FluidNetwork(env)
        done = net.transfer([("a", 100.0)], 0)
        assert done.triggered

    def test_negative_bytes_rejected(self, env):
        net = FluidNetwork(env)
        with pytest.raises(ValueError):
            net.transfer([("a", 100.0)], -1)

    def test_zero_capacity_rejected(self, env):
        net = FluidNetwork(env)
        with pytest.raises(ValueError):
            net.transfer([("a", 0.0)], 10)


class TestSharing:
    def test_two_flows_share_equally(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("l", 100.0)], 1000.0, 0.0), ([("l", 100.0)], 1000.0, 0.0)],
        )
        # Both at 50 B/s -> both finish at t=20.
        assert f[0] == pytest.approx(20.0)
        assert f[1] == pytest.approx(20.0)

    def test_departure_speeds_up_survivor(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("l", 100.0)], 500.0, 0.0), ([("l", 100.0)], 1500.0, 0.0)],
        )
        # Shared until t=10 (each has moved 500); flow0 done. Flow1 then
        # runs at 100: remaining 1000 -> finishes at t=20.
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(20.0)

    def test_late_arrival_slows_first(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("l", 100.0)], 1000.0, 0.0), ([("l", 100.0)], 400.0, 5.0)],
        )
        # t<5: flow0 alone moves 500. Then shared 50/50: flow1's 400 takes
        # 8s (done t=13, flow0 has 100 left), flow0 finishes at 14.
        assert f[1] == pytest.approx(13.0)
        assert f[0] == pytest.approx(14.0)

    def test_disjoint_links_independent(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("a", 100.0)], 1000.0, 0.0), ([("b", 100.0)], 1000.0, 0.0)],
        )
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(10.0)

    def test_cross_link_min_share(self, env):
        net = FluidNetwork(env)
        # flow0 uses links a+b; flow1 uses b only. b is shared.
        f = run_transfers(
            env,
            net,
            [([("a", 100.0), ("b", 100.0)], 500.0, 0.0), ([("b", 100.0)], 500.0, 0.0)],
        )
        # Both run at 50 until t=10 when both finish together.
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(10.0)

    def test_utilization(self, env):
        net = FluidNetwork(env)
        net.transfer([("l", 100.0)], 10_000.0)
        net.transfer([("l", 100.0)], 10_000.0)
        assert net.utilization("l") == pytest.approx(1.0)
        assert net.utilization("unknown") == 0.0
        assert net.active_count == 2


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(1e3, 1e7), min_size=1, max_size=10),
        st.floats(1e6, 1e9),
    )
    def test_aggregate_time_bounded_by_total_bytes(self, sizes, cap):
        # All flows share one link: the last finish time must equal
        # total_bytes / capacity (work conservation), regardless of mix.
        env = SimEngine()
        net = FluidNetwork(env)
        finishes = run_transfers(
            env, net, [([("l", cap)], s, 0.0) for s in sizes]
        )
        expected = sum(sizes) / cap
        assert max(finishes.values()) == pytest.approx(expected, rel=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(1e3, 1e7), min_size=2, max_size=8))
    def test_completion_order_by_size(self, sizes):
        # Equal-share flows on one link complete in size order.
        env = SimEngine()
        net = FluidNetwork(env)
        finishes = run_transfers(
            env, net, [([("l", 1e6)], s, 0.0) for s in sizes]
        )
        # Near-equal sizes may finish in either order (float time resolution),
        # so assert size-monotone completion up to a relative tolerance.
        order = sorted(range(len(sizes)), key=lambda i: finishes[i])
        for earlier, later in zip(order, order[1:]):
            assert sizes[earlier] <= sizes[later] * (1 + 1e-6)


class TestRunningRateSum:
    def test_utilization_tracks_completions_and_aborts(self, env):
        # utilization() reads a running per-link rate sum; it must agree
        # with a recompute from live flows at every topology change.
        net = FluidNetwork(env)

        def recomputed(link):
            cap = net.link_caps.get(link)
            if not cap:
                return 0.0
            return sum(
                net.flows[fid].rate for fid in net.link_flows.get(link, ())
                if fid in net.flows
            ) / cap

        def check():
            for link in net.link_caps:
                assert net.utilization(link) == pytest.approx(recomputed(link))

        def driver(env):
            net.transfer([("a", 100.0), ("b", 50.0)], 400.0)
            net.transfer([("b", 50.0)], 200.0)
            net.transfer([("c", 10.0)], 1e9)  # long-lived victim
            check()
            yield env.timeout(1.0)
            check()  # mid-flight, after re-rates
            yield env.timeout(30.0)
            check()  # a/b flows completed; their rates were removed
            assert net.utilization("a") == 0.0
            assert net.utilization("b") == 0.0
            assert net.utilization("c") == pytest.approx(1.0)
            net.abort_flows(lambda k: k == "c", RuntimeError)
            check()
            assert net.utilization("c") == 0.0

        proc = env.process(driver(env))
        try:
            env.run()
        except RuntimeError:
            pass  # the aborted flow's done-event failure propagates
        assert net.active_count == 0
