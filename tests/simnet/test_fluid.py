"""Unit + property tests for the fluid bandwidth-sharing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import SimEngine
from repro.simnet.fluid import FluidNetwork


@pytest.fixture
def env():
    return SimEngine()


def run_transfers(env, net, specs):
    """specs: list of (links, nbytes, start_time); returns finish times."""
    finishes = {}

    def starter(env, i, links, nbytes, at):
        if at:
            yield env.timeout(at)
        done = net.transfer(links, nbytes)
        yield done
        finishes[i] = env.now

    for i, (links, nbytes, at) in enumerate(specs):
        env.process(starter(env, i, links, nbytes, at))
    env.run()
    return finishes


class TestSingleFlow:
    def test_solo_flow_runs_at_capacity(self, env):
        net = FluidNetwork(env)
        f = run_transfers(env, net, [([("a", 100.0)], 1000.0, 0.0)])
        assert f[0] == pytest.approx(10.0)

    def test_two_links_min_capacity(self, env):
        net = FluidNetwork(env)
        f = run_transfers(env, net, [([("a", 100.0), ("b", 50.0)], 1000.0, 0.0)])
        assert f[0] == pytest.approx(20.0)

    def test_zero_bytes_immediate(self, env):
        net = FluidNetwork(env)
        done = net.transfer([("a", 100.0)], 0)
        assert done.triggered

    def test_negative_bytes_rejected(self, env):
        net = FluidNetwork(env)
        with pytest.raises(ValueError):
            net.transfer([("a", 100.0)], -1)

    def test_zero_capacity_rejected(self, env):
        net = FluidNetwork(env)
        with pytest.raises(ValueError):
            net.transfer([("a", 0.0)], 10)


class TestSharing:
    def test_two_flows_share_equally(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("l", 100.0)], 1000.0, 0.0), ([("l", 100.0)], 1000.0, 0.0)],
        )
        # Both at 50 B/s -> both finish at t=20.
        assert f[0] == pytest.approx(20.0)
        assert f[1] == pytest.approx(20.0)

    def test_departure_speeds_up_survivor(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("l", 100.0)], 500.0, 0.0), ([("l", 100.0)], 1500.0, 0.0)],
        )
        # Shared until t=10 (each has moved 500); flow0 done. Flow1 then
        # runs at 100: remaining 1000 -> finishes at t=20.
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(20.0)

    def test_late_arrival_slows_first(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("l", 100.0)], 1000.0, 0.0), ([("l", 100.0)], 400.0, 5.0)],
        )
        # t<5: flow0 alone moves 500. Then shared 50/50: flow1's 400 takes
        # 8s (done t=13, flow0 has 100 left), flow0 finishes at 14.
        assert f[1] == pytest.approx(13.0)
        assert f[0] == pytest.approx(14.0)

    def test_disjoint_links_independent(self, env):
        net = FluidNetwork(env)
        f = run_transfers(
            env,
            net,
            [([("a", 100.0)], 1000.0, 0.0), ([("b", 100.0)], 1000.0, 0.0)],
        )
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(10.0)

    def test_cross_link_min_share(self, env):
        net = FluidNetwork(env)
        # flow0 uses links a+b; flow1 uses b only. b is shared.
        f = run_transfers(
            env,
            net,
            [([("a", 100.0), ("b", 100.0)], 500.0, 0.0), ([("b", 100.0)], 500.0, 0.0)],
        )
        # Both run at 50 until t=10 when both finish together.
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(10.0)

    def test_utilization(self, env):
        net = FluidNetwork(env)
        net.transfer([("l", 100.0)], 10_000.0)
        net.transfer([("l", 100.0)], 10_000.0)
        assert net.utilization("l") == pytest.approx(1.0)
        assert net.utilization("unknown") == 0.0
        assert net.active_count == 2


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(1e3, 1e7), min_size=1, max_size=10),
        st.floats(1e6, 1e9),
    )
    def test_aggregate_time_bounded_by_total_bytes(self, sizes, cap):
        # All flows share one link: the last finish time must equal
        # total_bytes / capacity (work conservation), regardless of mix.
        env = SimEngine()
        net = FluidNetwork(env)
        finishes = run_transfers(
            env, net, [([("l", cap)], s, 0.0) for s in sizes]
        )
        expected = sum(sizes) / cap
        assert max(finishes.values()) == pytest.approx(expected, rel=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(1e3, 1e7), min_size=2, max_size=8))
    def test_completion_order_by_size(self, sizes):
        # Equal-share flows on one link complete in size order.
        env = SimEngine()
        net = FluidNetwork(env)
        finishes = run_transfers(
            env, net, [([("l", 1e6)], s, 0.0) for s in sizes]
        )
        # Near-equal sizes may finish in either order (float time resolution),
        # so assert size-monotone completion up to a relative tolerance.
        order = sorted(range(len(sizes)), key=lambda i: finishes[i])
        for earlier, later in zip(order, order[1:]):
            assert sizes[earlier] <= sizes[later] * (1 + 1e-6)


class TestPerNetworkFids:
    def test_two_networks_allocate_identical_fids(self):
        # Flow ids are per-network, not process-global: building a second
        # cluster in the same process must see the same fid sequence, so
        # sorted(fids) timer orders (and thus rows) match across reruns.
        fids = []
        for _ in range(2):
            env = SimEngine()
            net = FluidNetwork(env)
            run_transfers(
                env,
                net,
                [([("l", 100.0)], 100.0, 0.0), ([("l", 100.0)], 200.0, 1.0)],
            )
            fids.append([f for f in range(net._next_fid)])
            assert net._next_fid == 2
        assert fids[0] == fids[1]

    def test_fid_sequence_dense_from_zero(self, env):
        net = FluidNetwork(env)
        done = [net.transfer([("l", 100.0)], 10.0) for _ in range(3)]
        assert sorted(net.flows) == [0, 1, 2]
        env.run()
        assert all(d.triggered for d in done)


class TestAffectedExactness:
    """Completion/abort re-rates must hit exactly the sharing flows."""

    def _record_rerates(self, net):
        batches = []
        orig = net._rerate

        def spy(fids):
            batches.append(sorted(fids))
            orig(fids)

        net._rerate = spy
        return batches

    def test_completion_rerates_exactly_sharers(self, env):
        net = FluidNetwork(env)
        net.transfer([("shared", 100.0)], 100.0)  # fid 0, finishes t=2
        net.transfer([("shared", 100.0)], 500.0)  # fid 1, sharer
        net.transfer([("other", 100.0)], 500.0)  # fid 2, unrelated
        batches = self._record_rerates(net)
        env.run()
        # fid 0's completion frees "shared": only fid 1 is re-rated —
        # never the flow on the untouched "other" link.
        assert [1] in batches
        assert all(2 not in b or 1 not in b for b in batches)

    def test_abort_rerates_exactly_sharers(self, env):
        net = FluidNetwork(env)
        d0 = net.transfer([("dead", 100.0), ("shared", 100.0)], 1e9)  # victim
        net.transfer([("shared", 100.0)], 1e9)  # survivor, shares a link
        net.transfer([("other", 100.0)], 1e9)  # unrelated
        d0.add_callback(lambda ev: None)  # absorb the failure
        batches = self._record_rerates(net)
        n = net.abort_flows(lambda k: k == "dead", RuntimeError)
        assert n == 1
        # Exactly the surviving sharer re-rates; the victim is already
        # unlinked and the unrelated flow is untouched.
        assert batches == [[1]]

    def test_single_link_affected_is_exact(self, env):
        net = FluidNetwork(env)
        net.transfer([("a", 100.0)], 50.0)
        net.transfer([("a", 100.0)], 50.0)
        net.transfer([("b", 100.0)], 50.0)
        assert net._affected(("a",)) == {0, 1}
        assert net._affected(("b",)) == {2}
        assert net._affected(("a", "b")) == {0, 1, 2}
        assert net._affected(("missing",)) == set()
        assert net._affected(("a", "missing")) == {0, 1}
        assert net._affected(("missing", "nope")) == set()


class TestRerateCounters:
    def test_counters_published_lazily_and_excluded_names(self, env):
        net = FluidNetwork(env)
        net.transfer([("l", 100.0)], 100.0)
        env.run()
        snap = env.metrics.snapshot()
        names = snap.names("simnet.fluid.rerate.*")
        assert names == [
            "simnet.fluid.rerate.calls",
            "simnet.fluid.rerate.flows",
            "simnet.fluid.rerate.max_batch",
            "simnet.fluid.rerate.vector_batches",
        ]
        assert snap.counters["simnet.fluid.rerate.calls"] >= 1
        assert snap.counters["simnet.fluid.rerate.flows"] >= 1
        assert snap.counters["simnet.fluid.rerate.max_batch"] >= 1


class TestRunningRateSum:
    def test_utilization_tracks_completions_and_aborts(self, env):
        # utilization() reads a running per-link rate sum; it must agree
        # with a recompute from live flows at every topology change.
        net = FluidNetwork(env)

        def recomputed(link):
            cap = net.link_caps.get(link)
            if not cap:
                return 0.0
            return sum(
                net.flows[fid].rate for fid in net.link_flows.get(link, ())
                if fid in net.flows
            ) / cap

        def check():
            for link in net.link_caps:
                assert net.utilization(link) == pytest.approx(recomputed(link))

        def driver(env):
            net.transfer([("a", 100.0), ("b", 50.0)], 400.0)
            net.transfer([("b", 50.0)], 200.0)
            net.transfer([("c", 10.0)], 1e9)  # long-lived victim
            check()
            yield env.timeout(1.0)
            check()  # mid-flight, after re-rates
            yield env.timeout(30.0)
            check()  # a/b flows completed; their rates were removed
            assert net.utilization("a") == 0.0
            assert net.utilization("b") == 0.0
            assert net.utilization("c") == pytest.approx(1.0)
            net.abort_flows(lambda k: k == "c", RuntimeError)
            check()
            assert net.utilization("c") == 0.0

        proc = env.process(driver(env))
        try:
            env.run()
        except RuntimeError:
            pass  # the aborted flow's done-event failure propagates
        assert net.active_count == 0
