"""Unit tests for the discrete-event kernel (events, processes, engine)."""

import pytest

from repro.simnet import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Interrupt,
    SimEngine,
    SimError,
)


@pytest.fixture
def env():
    return SimEngine()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_timeout_advances_clock(self, env):
        done = []

        def proc(env):
            yield env.timeout(5.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [5.0]

    def test_run_until_time(self, env):
        ticks = []

        def ticker(env):
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(ticker(env))
        env.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_raises(self, env):
        env.run(until=1.0)
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_step_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestProcesses:
    def test_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 42

        p = env.process(proc(env))
        env.run()
        assert p.value == 42

    def test_processes_can_join(self, env):
        def child(env):
            yield env.timeout(3)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        p = env.process(parent(env))
        env.run()
        assert p.value == (3.0, "child-result")

    def test_join_already_finished_process(self, env):
        def child(env):
            yield env.timeout(1)
            return 7

        c = env.process(child(env))

        def parent(env):
            yield env.timeout(10)
            value = yield c
            return value

        p = env.process(parent(env))
        env.run()
        assert p.value == 7

    def test_exception_propagates_to_joiner(self, env):
        def child(env):
            yield env.timeout(1)
            raise ValueError("boom")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(parent(env))
        env.run()
        assert p.value == "caught boom"

    def test_unhandled_failure_raises_from_run(self, env):
        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("unobserved")

        env.process(bad(env))
        with pytest.raises(RuntimeError, match="unobserved"):
            env.run()

    def test_yield_non_event_fails_process(self, env):
        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimError, match="non-event"):
            env.run()

    def test_two_processes_interleave_deterministically(self, env):
        log = []

        def worker(env, name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, name))

        env.process(worker(env, "a", 2))
        env.process(worker(env, "b", 3))
        env.run()
        # At t=6 both fire; "b" scheduled its timeout at t=3 (before "a" at
        # t=4), so FIFO tie-breaking runs "b" first.
        assert log == [
            (2, "a"),
            (3, "b"),
            (4, "a"),
            (6, "b"),
            (6, "a"),
            (9, "b"),
        ]

    def test_same_time_fifo_order(self, env):
        log = []

        def w(env, name):
            yield env.timeout(1.0)
            log.append(name)

        for name in "abc":
            env.process(w(env, name))
        env.run()
        assert log == ["a", "b", "c"]


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as exc:
                return f"interrupted:{exc.cause}"

        def interrupter(env, victim):
            yield env.timeout(5)
            victim.interrupt("wakeup")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == "interrupted:wakeup"

    def test_interrupt_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimError):
            p.interrupt()

    def test_unhandled_interrupt_fails_process(self, env):
        def sleeper(env):
            yield env.timeout(100)

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt("die")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        with pytest.raises(Interrupt):
            env.run()
        assert victim.triggered and not victim.ok

    def test_interrupt_detaches_callback_from_old_target(self, env):
        # Regression: an interrupted process must be fully detached from the
        # event it was waiting on. If the old target triggers later (here the
        # dying process's own finally cancels its queued resource request),
        # the finished process must not be resumed a second time.
        from repro.simnet.resources import Resource

        res = Resource(env, capacity=1)

        def holder(env):
            req = res.request()
            yield req
            try:
                yield env.timeout(100)
            finally:
                res.release(req)

        def victim_body(env):
            req = res.request()
            try:
                yield req  # queued behind the holder
            except Interrupt:
                return "interrupted"
            finally:
                res.release(req)  # cancels the queued request -> it fails

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt("abandon")

        env.process(holder(env))
        victim = env.process(victim_body(env))
        env.process(interrupter(env, victim))
        env.run(until=env.timeout(10))
        assert victim.value == "interrupted"

    def test_stale_timeout_does_not_re_resume_finished_process(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                return "interrupted"

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt("wake")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        # Run past t=100 so the original timeout fires after the process died.
        env.run(until=env.timeout(200))
        assert victim.value == "interrupted"


class TestEvents:
    def test_manual_event_succeed(self, env):
        ev = env.event()

        def waiter(env):
            value = yield ev
            return value

        def firer(env):
            yield env.timeout(2)
            ev.succeed("fired")

        w = env.process(waiter(env))
        env.process(firer(env))
        env.run()
        assert w.value == "fired"

    def test_double_trigger_raises(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimError):
            _ = env.event().value

    def test_run_until_event_returns_value(self, env):
        ev = env.event()

        def firer(env):
            yield env.timeout(4)
            ev.succeed("val")

        env.process(firer(env))
        assert env.run(until=ev) == "val"
        assert env.now == 4.0

    def test_run_until_event_never_fires(self, env):
        ev = env.event()

        def nothing(env):
            yield env.timeout(1)

        env.process(nothing(env))
        with pytest.raises(SimError, match="drained"):
            env.run(until=ev)

    def test_run_until_already_processed_event_returns_value(self, env):
        # The event was fired AND processed in an earlier run(); a later
        # run(until=it) must return its value without needing the schedule
        # to pop it again.
        ev = env.event()

        def firer(env):
            yield env.timeout(1)
            ev.succeed("done-early")

        env.process(firer(env))
        env.run()  # drains the schedule; ev is processed here
        assert ev.processed
        assert env.run(until=ev) == "done-early"

    def test_run_until_already_failed_event_raises(self, env):
        ev = env.event()

        def firer(env):
            yield env.timeout(1)
            ev.fail(RuntimeError("boom"))
            yield ev  # absorb so the failure isn't unhandled in run()

        env.process(firer(env))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=ev)

    def test_run_until_triggered_but_undelivered_event_drained(self, env):
        # Fired but never scheduled for delivery (no callbacks, trigger
        # without schedule) — the drain path must still return its value
        # rather than report "drained before fired".
        ev = env.event()
        ev.succeed("limbo")

        def nothing(env):
            yield env.timeout(1)

        env.process(nothing(env))
        assert env.run(until=ev) == "limbo"


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def waiter(env):
            t1 = env.timeout(2, value="a")
            t2 = env.timeout(5, value="b")
            results = yield AllOf(env, [t1, t2])
            return (env.now, sorted(results.values()))

        p = env.process(waiter(env))
        env.run()
        assert p.value == (5.0, ["a", "b"])

    def test_any_of_returns_on_first(self, env):
        def waiter(env):
            t1 = env.timeout(2, value="fast")
            t2 = env.timeout(5, value="slow")
            results = yield AnyOf(env, [t1, t2])
            return (env.now, list(results.values()))

        p = env.process(waiter(env))
        env.run()
        assert p.value == (2.0, ["fast"])

    def test_empty_all_of_triggers_immediately(self, env):
        def waiter(env):
            yield AllOf(env, [])
            return env.now

        p = env.process(waiter(env))
        env.run()
        assert p.value == 0.0

    def test_helper_methods(self, env):
        def waiter(env):
            yield env.all_of([env.timeout(1), env.timeout(2)])
            yield env.any_of([env.timeout(10), env.timeout(1)])
            return env.now

        p = env.process(waiter(env))
        env.run()
        assert p.value == 3.0
