"""Vectorized fluid re-rating vs the reference scalar solver.

``FluidNetwork._rerate`` computes rate batches with numpy once a batch
reaches ``_VECTOR_MIN`` flows. The contract is *bit-identical* IEEE-754
results: the vector path evaluates exactly ``cap[l] / n[l]`` per link and
a pairwise float64 min — the same operations as the scalar loop — and
arms completion timers in the same ``sorted(fids)`` order, so simulated
schedules cannot depend on which path ran.

Randomized flow scenarios (seeded — failures reproduce) drive three
solvers over identical op streams and compare every completion time,
abort outcome, and mid-run utilization probe for exact float equality:

* ``ReferenceFluidNetwork`` — the pre-vectorization implementation,
  embedded here verbatim (dict-based, per-flow Python loops);
* the current ``FluidNetwork`` pinned to the scalar path
  (``_VECTOR_MIN`` huge);
* the current ``FluidNetwork`` pinned to the vector path
  (``_VECTOR_MIN = 1``).
"""

import random
from typing import Hashable

import pytest

from repro.simnet import SimEngine
from repro.simnet.fluid import _FINISH_SLACK_BYTES, FluidNetwork


class _RefFlow:
    __slots__ = ("fid", "links", "remaining", "rate", "last", "gen", "done", "timer")

    def __init__(self, fid, links, nbytes, done):
        self.fid = fid
        self.links = links
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.last = 0.0
        self.gen = 0
        self.done = done
        self.timer = None


class ReferenceFluidNetwork:
    """The scalar fluid solver as it stood before vectorization."""

    def __init__(self, env):
        self.env = env
        self.flows = {}
        self.link_flows = {}
        self.link_caps = {}
        self.link_rate = {}
        self.completed = 0
        self._next_fid = 0

    def transfer(self, links, nbytes):
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        done = self.env.event()
        if nbytes == 0:
            done.succeed()
            return done
        keys = []
        for key, cap in links:
            if cap <= 0:
                raise ValueError(f"link capacity must be positive, got {cap}")
            if key not in self.link_caps:
                self.link_caps[key] = float(cap)
                self.link_flows[key] = set()
                self.link_rate[key] = 0.0
            keys.append(key)
        flow = _RefFlow(self._next_fid, tuple(keys), nbytes, done)
        self._next_fid += 1
        flow.last = self.env.now
        self.flows[flow.fid] = flow
        affected = self._affected(keys)
        for key in keys:
            self.link_flows[key].add(flow.fid)
        self._rerate(affected | {flow.fid})
        return done

    def abort_flows(self, link_pred, exc_factory):
        victims = [
            flow
            for flow in self.flows.values()
            if any(link_pred(key) for key in flow.links)
        ]
        for flow in sorted(victims, key=lambda f: f.fid):
            del self.flows[flow.fid]
            for key in flow.links:
                self.link_flows[key].discard(flow.fid)
                self.link_rate[key] -= flow.rate
            flow.gen += 1
            self._cancel_timer(flow)
            flow.done.fail(exc_factory())
        if victims:
            affected = set()
            for flow in victims:
                affected |= self._affected(flow.links)
            self._rerate(affected)
        return len(victims)

    def utilization(self, link):
        cap = self.link_caps.get(link)
        if not cap:
            return 0.0
        return max(self.link_rate.get(link, 0.0), 0.0) / cap

    def _affected(self, keys):
        out = set()
        for key in keys:
            out |= self.link_flows.get(key, set())
        return out

    def _touch(self, flow):
        now = self.env.now
        dt = now - flow.last
        if dt > 0:
            flow.remaining -= flow.rate * dt
            if flow.remaining < 0:
                flow.remaining = 0.0
        flow.last = now

    def _rerate(self, fids):
        touched = []
        for fid in sorted(fids):
            flow = self.flows.get(fid)
            if flow is None:
                continue
            self._touch(flow)
            touched.append(flow)
        for flow in touched:
            rate = min(
                self.link_caps[key] / len(self.link_flows[key])
                for key in flow.links
            )
            delta = rate - flow.rate
            if delta:
                for key in flow.links:
                    self.link_rate[key] += delta
            flow.rate = rate
            flow.gen += 1
            self._arm(flow)

    def _cancel_timer(self, flow):
        if flow.timer is not None:
            self.env.cancel(flow.timer)
            flow.timer = None

    def _arm(self, flow):
        self._cancel_timer(flow)
        if flow.rate <= 0:
            return
        horizon = flow.remaining / flow.rate
        timer = self.env.timeout(max(horizon, 0.0))
        gen = flow.gen
        timer.add_callback(lambda ev, f=flow, g=gen: self._on_timer(f, g))
        flow.timer = timer

    def _on_timer(self, flow, gen):
        if gen != flow.gen or flow.fid not in self.flows:
            return
        flow.timer = None
        self._touch(flow)
        if flow.remaining > max(_FINISH_SLACK_BYTES, flow.rate * 1e-9):
            flow.gen += 1
            self._arm(flow)
            return
        del self.flows[flow.fid]
        for key in flow.links:
            self.link_flows[key].discard(flow.fid)
            self.link_rate[key] -= flow.rate
        self.completed += 1
        flow.done.succeed()
        self._rerate(self._affected(flow.links))


def _random_scenario(rng):
    """One op stream: links with fixed caps, transfers, aborts, probes."""
    links = {}
    for node in range(rng.randint(3, 6)):
        for lane in ("tx", "rx"):
            links[(node, lane)] = rng.choice([1e6, 2.5e6, 1e7, 4e7])
    keys = sorted(links)
    ops = []
    t = 0.0
    for i in range(rng.randint(30, 80)):
        t += rng.expovariate(3.0)
        roll = rng.random()
        if roll < 0.85:
            # Mostly wire-shaped two-link flows, some 1- and 3-link ones.
            n_links = rng.choice([1, 2, 2, 2, 2, 3])
            chosen = rng.sample(keys, n_links)
            nbytes = rng.choice([512.0, 4096.0, 65536.0, 1.5e6, 2**20 + 17])
            ops.append(("transfer", t, i, [(k, links[k]) for k in chosen], nbytes))
        elif roll < 0.93:
            ops.append(("abort", t, i, rng.choice(keys)))
        else:
            ops.append(("probe", t, i))
    return keys, ops


def _run_scenario(net_factory, keys, ops):
    """Drive one solver through the op stream; return the observable log."""
    env = SimEngine()
    net = net_factory(env)
    log = []

    def record(tag):
        def cb(ev):
            log.append(("done" if ev._ok else "failed", tag, env.now))

        return cb

    def fire(op):
        def cb(ev):
            if op[0] == "transfer":
                _, _, tag, links, nbytes = op
                net.transfer(links, nbytes).add_callback(record(tag))
            elif op[0] == "abort":
                _, _, tag, key = op
                n = net.abort_flows(lambda k: k == key, RuntimeError)
                log.append(("abort", tag, env.now, n))
            else:
                _, _, tag = op
                util = tuple(net.utilization(k) for k in keys)
                log.append(("probe", tag, env.now, util))

        return cb

    for op in ops:
        env.timeout(op[1]).add_callback(fire(op))
    env.run()
    assert not net.flows
    log.append(("completed", net.completed))
    return log


def _scalar_net(env):
    net = FluidNetwork(env)
    net._VECTOR_MIN = 10**9
    return net


def _vector_net(env):
    net = FluidNetwork(env)
    net._VECTOR_MIN = 1
    return net


@pytest.mark.parametrize("seed", range(10))
def test_randomized_streams_bit_identical(seed):
    rng = random.Random(seed)
    keys, ops = _random_scenario(rng)
    ref = _run_scenario(ReferenceFluidNetwork, keys, ops)
    scalar = _run_scenario(_scalar_net, keys, ops)
    vector = _run_scenario(_vector_net, keys, ops)
    # Exact equality end to end: same outcomes, same float completion
    # times, same utilization probes — no approx.
    assert scalar == ref
    assert vector == ref


def test_vector_path_actually_ran():
    # Guard against the suite silently comparing scalar to scalar.
    rng = random.Random(1234)
    keys, ops = _random_scenario(rng)
    env = SimEngine()
    net = _vector_net(env)
    for op in ops:
        if op[0] == "transfer":
            env.timeout(op[1]).add_callback(
                lambda ev, o=op: net.transfer(o[3], o[4]).add_callback(lambda e: None)
            )
    env.run()
    assert net._n_vector_batches > 0
    assert net._n_rerate_calls == net._n_vector_batches


def test_default_threshold_mixes_paths():
    # With the production threshold, small batches stay scalar and large
    # ones vectorize; both must coexist in one run without drift.
    rng = random.Random(99)
    keys, ops = _random_scenario(rng)
    ref = _run_scenario(ReferenceFluidNetwork, keys, ops)
    mixed = _run_scenario(FluidNetwork, keys, ops)
    assert mixed == ref
