"""Unit tests for fabric/wire cost models, including Fig-8-shaped checks."""

import pytest

from repro.simnet.interconnect import (
    FABRICS,
    IB_EDR,
    IB_HDR,
    OPA,
    Fabric,
    WireModel,
    loopback,
    mpi_over,
    rdma_over,
    tcp_over,
)
from repro.util.units import GiB, KiB, MiB, US, gbps


class TestFabric:
    def test_table3_fabrics_are_100g(self):
        for fabric in (IB_HDR, OPA, IB_EDR):
            assert fabric.line_rate_Bps == gbps(100)

    def test_registry(self):
        assert FABRICS["IB-HDR"] is IB_HDR
        assert set(FABRICS) == {"IB-HDR", "Omni-Path", "IB-EDR"}

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Fabric("bad", line_rate_Bps=0, base_latency_s=1e-6)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            Fabric("bad", line_rate_Bps=1e9, base_latency_s=-1)


class TestWireModelCosts:
    def test_one_way_time_composition(self):
        m = WireModel(
            name="t",
            fabric=IB_EDR,
            latency_s=1e-6,
            send_overhead_s=2e-6,
            recv_overhead_s=3e-6,
            per_byte_s=1e-9,
        )
        assert m.one_way_time(1000) == pytest.approx(1e-6 + 2e-6 + 3e-6 + 1e-6)

    def test_chunking_adds_per_chunk_cost(self):
        m = WireModel(
            name="t",
            fabric=IB_EDR,
            latency_s=0,
            send_overhead_s=0,
            recv_overhead_s=0,
            per_byte_s=0,
            per_chunk_s=1e-6,
            chunk_bytes=64 * KiB,
        )
        assert m.n_chunks(1) == 1
        assert m.n_chunks(64 * KiB) == 1
        assert m.n_chunks(64 * KiB + 1) == 2
        assert m.serialization_time(256 * KiB) == pytest.approx(4e-6)

    def test_rendezvous_switch(self):
        m = mpi_over(IB_EDR)
        small = m.protocol_latency(1 * KiB)
        large = m.protocol_latency(1 * MiB)
        assert large > small
        assert large - small == pytest.approx(m.rendezvous_extra_s)

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            WireModel(
                name="bad",
                fabric=IB_EDR,
                latency_s=-1,
                send_overhead_s=0,
                recv_overhead_s=0,
                per_byte_s=0,
            )

    def test_scaled_override(self):
        m = mpi_over(IB_EDR).scaled(latency_s=5e-6)
        assert m.latency_s == 5e-6
        assert m.fabric is IB_EDR

    def test_effective_bandwidth(self):
        m = mpi_over(IB_HDR)
        assert m.effective_bandwidth_Bps() == pytest.approx(0.88 * gbps(100))


class TestCalibrationShape:
    """The analytic model must already have the paper's Fig-8 shape."""

    def test_mpi_beats_tcp_at_every_size(self):
        tcp = tcp_over(IB_EDR)
        mpi = mpi_over(IB_EDR)
        for size in [1, 64, 1 * KiB, 64 * KiB, 1 * MiB, 4 * MiB]:
            assert mpi.one_way_time(size) < tcp.one_way_time(size)

    def test_large_message_speedup_near_9x(self):
        # Paper: "speedups of up to 9x for 4MB messages" (Fig 8, IB-EDR).
        tcp = tcp_over(IB_EDR)
        mpi = mpi_over(IB_EDR)
        ratio = tcp.one_way_time(4 * MiB) / mpi.one_way_time(4 * MiB)
        assert 7.0 < ratio < 11.0

    def test_small_message_latency_scale(self):
        # TCP/IPoIB small-message latency is tens of us; MPI is a few us.
        tcp = tcp_over(IB_EDR)
        mpi = mpi_over(IB_EDR)
        assert 20 * US < tcp.one_way_time(64) < 100 * US
        assert 1 * US < mpi.one_way_time(64) < 10 * US

    def test_rdma_sits_between_tcp_and_mpi(self):
        tcp, rdma, mpi = tcp_over(IB_HDR), rdma_over(IB_HDR), mpi_over(IB_HDR)
        for size in [4 * KiB, 1 * MiB, 4 * MiB]:
            assert mpi.one_way_time(size) < rdma.one_way_time(size) < tcp.one_way_time(size)

    def test_loopback_fastest(self):
        shm = loopback(IB_HDR)
        mpi = mpi_over(IB_HDR)
        assert shm.one_way_time(1 * MiB) < mpi.one_way_time(1 * MiB)

    def test_tcp_charges_cpu_copies(self):
        tcp = tcp_over(IB_HDR)
        assert tcp.per_byte_cpu_s > 0
        assert mpi_over(IB_HDR).per_byte_cpu_s == 0
        assert rdma_over(IB_HDR).per_byte_cpu_s == 0

    def test_tcp_effective_bandwidth_is_ipoib_like(self):
        # ~10-15 Gb/s effective on a 100 Gb/s fabric.
        eff = tcp_over(IB_HDR).effective_bandwidth_Bps()
        assert gbps(8) < eff < gbps(20)
