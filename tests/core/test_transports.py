"""Core MPI4Spark machinery: handshake, rank mapping, both designs."""

import pytest

from repro.core.endpoint import COMM_KIND_INTER, MpiEndpoint
from repro.core.handshake import ATTR_BINDING, ATTR_TAG, RankAnnouncement
from repro.harness.pingpong import run_pingpong
from repro.mpi import MPIWorld, RankSpec, SpawnSpec
from repro.mpi.errors import CommError
from repro.netty.bytebuf import ByteBuf
from repro.simnet import IB_EDR, IB_HDR, SimCluster, SimEngine, mpi_over
from repro.transports import ALIASES, TRANSPORTS, make_transport
from repro.util.units import KiB, MiB


class TestTransportRegistry:
    def test_five_transports(self):
        assert set(TRANSPORTS) == {"nio", "rdma", "mpi-basic", "mpi-opt", "mpi-coll"}

    @pytest.mark.parametrize("alias,target", [("vanilla", "nio"), ("ipoib", "nio"),
                                              ("mpi4spark", "mpi-opt"), ("rdma-spark", "rdma"),
                                              ("coll", "mpi-coll"),
                                              ("mpi4spark-collective", "mpi-coll")])
    def test_aliases(self, alias, target):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=2)
        t = make_transport(alias, env, cluster)
        assert t.name == target

    def test_unknown_transport(self):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=2)
        with pytest.raises(KeyError):
            make_transport("quantum", env, cluster)

    def test_taxes(self):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=2)
        basic = make_transport("mpi-basic", env, cluster)
        opt = make_transport("mpi-opt", make_env := SimEngine(),
                             SimCluster(make_env, IB_HDR, n_nodes=2, cores_per_node=2))
        assert basic.polling_tax_cores >= 1
        assert basic.compute_inflation > 1.0
        assert opt.polling_tax_cores == 0
        assert opt.compute_inflation == 1.0


class TestRankAnnouncementCodec:
    def test_roundtrip(self):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=2)
        t = make_transport("nio", env, cluster)
        # encode() needs a channel for its allocator; use a ByteBuf directly.
        ann = RankAnnouncement(gid=12, tag=345, kind=COMM_KIND_INTER, reply_expected=True)
        buf = ByteBuf()
        buf.write_long(ann.gid)
        buf.write_long(ann.tag)
        buf.write_byte(ann.kind)
        buf.write_byte(1)
        got = RankAnnouncement.decode(buf)
        assert got == ann


class TestEndpointResolution:
    def make_world(self):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=4, cores_per_node=4)
        world = MPIWorld(env, cluster, mpi_over(IB_HDR))
        return env, world

    def test_intracomm_resolution(self):
        env, world = self.make_world()

        def main(proc):
            yield proc.env.timeout(0)

        procs = world.launch([RankSpec(main=main, node=i) for i in range(3)])
        env.run()
        ep = MpiEndpoint(procs[0])
        binding = ep.resolve(procs[2].gid)
        assert binding.peer_rank == 2
        assert binding.comm is procs[0].comm_world

    def test_unreachable_peer_raises(self):
        env, world = self.make_world()

        def main(proc):
            yield proc.env.timeout(0)

        procs = world.launch([RankSpec(main=main, node=0)])
        env.run()
        ep = MpiEndpoint(procs[0])
        with pytest.raises(CommError):
            ep.resolve(999)

    def test_intercomm_resolution_after_spawn(self):
        env, world = self.make_world()
        bindings = {}

        def child_main(proc):
            yield proc.env.timeout(0)
            ep = MpiEndpoint(proc)
            parent_gid = proc.parent_comm.desc.remote_group.gid_of(0)
            bindings["child_to_parent"] = ep.resolve(parent_gid)

        def parent_main(proc):
            comm = proc.comm_world
            intercomm = yield from comm.spawn(
                SpawnSpec(main=child_main, node=1, count=2), root=0
            )
            ep = MpiEndpoint(proc)
            ep.register_intercomm(intercomm)
            child_gid = intercomm.desc.remote_group.gid_of(1)
            bindings["parent_to_child"] = ep.resolve(child_gid)

        world.launch([RankSpec(main=parent_main, node=0)])
        env.run()
        assert bindings["parent_to_child"].kind == COMM_KIND_INTER
        assert bindings["parent_to_child"].peer_rank == 1
        assert bindings["child_to_parent"].kind == COMM_KIND_INTER
        assert bindings["child_to_parent"].peer_rank == 0

    def test_dpm_comm_resolution_between_children(self):
        env, world = self.make_world()
        result = {}

        def child_main(proc):
            yield proc.env.timeout(0)
            if proc.comm_world.rank == 0:
                ep = MpiEndpoint(proc)
                other_gid = proc.comm_world.desc.local_group.gid_of(1)
                result["binding"] = ep.resolve(other_gid)

        def parent_main(proc):
            yield from proc.comm_world.spawn(
                SpawnSpec(main=child_main, node=1, count=2), root=0
            )

        world.launch([RankSpec(main=parent_main, node=0)])
        env.run()
        from repro.core.endpoint import COMM_KIND_DPM

        assert result["binding"].kind == COMM_KIND_DPM
        assert result["binding"].comm.name == "DPM_COMM"


class TestPingPongIntegration:
    """Full-stack fetches through each transport (Fig-8 machinery)."""

    SIZES = [64, 4 * KiB, 1 * MiB, 4 * MiB]

    def test_nio_latency_monotone_in_size(self):
        result = run_pingpong("nio", self.SIZES, iterations=2)
        lats = [result.latency_s[s] for s in self.SIZES]
        assert lats == sorted(lats)

    def test_handshake_binds_channel(self):
        # The mpi-opt ping-pong only works if the handshake resolved a
        # binding; a missing binding raises inside the transport write.
        result = run_pingpong("mpi-opt", [1 * MiB], iterations=2)
        assert result.latency_s[1 * MiB] > 0

    def test_netty_mpi_beats_nio_at_4mb_by_about_9x(self):
        # Paper Fig. 8: "speedups of up to 9x for 4MB messages" on IB-EDR.
        nio = run_pingpong("nio", [4 * MiB], iterations=3)
        mpi = run_pingpong("mpi-basic", [4 * MiB], iterations=3)
        ratio = nio.latency_s[4 * MiB] / mpi.latency_s[4 * MiB]
        assert 7.0 < ratio < 11.0

    def test_netty_mpi_beats_nio_at_all_sizes(self):
        nio = run_pingpong("nio", self.SIZES, iterations=2)
        mpi = run_pingpong("mpi-basic", self.SIZES, iterations=2)
        for size in self.SIZES:
            assert mpi.latency_s[size] < nio.latency_s[size]

    def test_optimized_design_wins_for_bulk_sizes(self):
        nio = run_pingpong("nio", [1 * MiB, 4 * MiB], iterations=2)
        opt = run_pingpong("mpi-opt", [1 * MiB, 4 * MiB], iterations=2)
        for size in (1 * MiB, 4 * MiB):
            assert opt.latency_s[size] < nio.latency_s[size] / 3

    def test_rdma_between_nio_and_mpi(self):
        size = 4 * MiB
        nio = run_pingpong("nio", [size], iterations=2)
        rdma = run_pingpong("rdma", [size], iterations=2)
        mpi = run_pingpong("mpi-basic", [size], iterations=2)
        assert mpi.latency_s[size] < rdma.latency_s[size] < nio.latency_s[size]

    def test_speedup_over_helper(self):
        nio = run_pingpong("nio", [64], iterations=2)
        mpi = run_pingpong("mpi-basic", [64], iterations=2)
        sp = mpi.speedup_over(nio)
        assert sp[64] > 1.0
