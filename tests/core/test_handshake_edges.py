"""Edge cases of connection establishment: duplicate registration, dead
peers, and channel teardown releasing the rank mapping."""

import pytest

from repro.core.endpoint import MpiEndpoint
from repro.core.handshake import ATTR_BINDING, ATTR_DONE, HandshakeError
from repro.mpi.runtime import RankSpec
from repro.simnet import IB_EDR, SimCluster, SimEngine
from repro.simnet.sockets import SocketAddress
from repro.spark.network import OneForOneStreamManager, TransportContext
from repro.transports import make_transport

PORT = 7337


def _idle_main(proc):
    yield proc.env.timeout(0)


def make_rig(transport_name="mpi-opt", fault_mode="abort"):
    """Two-node MPI transport rig: server rank on node 0, client on node 1."""
    env = SimEngine()
    cluster = SimCluster(env, IB_EDR, n_nodes=2, cores_per_node=4)
    transport = make_transport(transport_name, env, cluster, fault_mode=fault_mode)
    procs, _ = transport.mpi_world.create_processes(
        [RankSpec(main=_idle_main, node=0, name="hs-server"),
         RankSpec(main=_idle_main, node=1, name="hs-client")],
        comm_name="MPI_COMM_WORLD",
    )
    server_ep, client_ep = MpiEndpoint(procs[0]), MpiEndpoint(procs[1])
    context = TransportContext(
        transport.data_stack,
        stream_manager=OneForOneStreamManager(),
        pipeline_hook=transport.pipeline_hook,
    )
    server_loop = transport.make_loop("hs-server-loop", server_ep)
    client_loop = transport.make_loop("hs-client-loop", client_ep)
    server_loop.start()
    client_loop.start()
    context.create_server(server_loop, 0, PORT)
    return env, transport, context, server_ep, client_ep, server_loop, client_loop


def drive(env, gen):
    """Run `gen` as a sim process and return its result."""
    proc = env.process(gen)
    env.run(until=env.timeout(5.0))
    assert proc.triggered, "client process never finished"
    return proc.value


class TestDuplicateRegistration:
    def test_reregistering_channel_raises(self):
        env, transport, context, _, client_ep, _, client_loop = make_rig()

        def main():
            client = yield from context.create_client(
                client_loop, 1, SocketAddress("node0", PORT)
            )
            with pytest.raises(ValueError, match="already registered"):
                client_loop.register(client.channel)
            return "ok"

        assert drive(env, main()) == "ok"


class TestDeadRankHandshake:
    @pytest.mark.parametrize("transport_name", ["mpi-opt", "mpi-basic"])
    def test_handshake_against_dead_rank_fails(self, transport_name):
        # Shrink mode: killing the server rank must not take the client down.
        env, transport, context, server_ep, client_ep, _, client_loop = make_rig(
            transport_name, fault_mode="shrink"
        )

        def main():
            yield env.timeout(0.001)  # let the ranks start
            transport.mpi_world.kill_process(
                server_ep.proc.gid, reason="injected for handshake test"
            )
            client = yield from context.create_client(
                client_loop, 1, SocketAddress("node0", PORT)
            )
            try:
                yield from transport.establish(client.channel, client_ep)
            except HandshakeError as exc:
                return str(exc)
            return "established"

        outcome = drive(env, main())
        assert "closed before rank handshake" in outcome


class TestTeardownReleasesMapping:
    def test_close_releases_binding_and_prunes_loop(self):
        env, transport, context, _, client_ep, _, client_loop = make_rig(
            "mpi-basic"
        )
        captured = {}

        def main():
            client = yield from context.create_client(
                client_loop, 1, SocketAddress("node0", PORT)
            )
            yield from transport.establish(client.channel, client_ep)
            captured["channel"] = client.channel
            assert ATTR_BINDING in client.channel.attributes
            assert client.channel in client_loop.mpi_channels
            client.channel.close()
            yield env.timeout(0.1)  # let teardown propagate
            return "closed"

        assert drive(env, main()) == "closed"
        channel = captured["channel"]
        assert ATTR_BINDING not in channel.attributes
        assert channel not in client_loop.mpi_channels

    def test_handshake_event_fails_rather_than_hangs_on_teardown(self):
        env, transport, context, _, client_ep, _, client_loop = make_rig("mpi-opt")

        def main():
            client = yield from context.create_client(
                client_loop, 1, SocketAddress("node0", PORT)
            )
            # Close before the handshake reply can arrive: the in-flight
            # handshake must complete in error, not hang its waiter.
            establish = env.process(
                transport.establish(client.channel, client_ep), name="est"
            )
            yield env.timeout(0)  # let it send the announcement
            client.channel.close()
            try:
                yield establish
            except HandshakeError as exc:
                return str(exc)
            return "established"

        outcome = drive(env, main())
        assert "closed before rank handshake" in outcome
