"""Observable fidelity of the two designs: where do the bytes actually go?

The paper's key structural claims are checkable in the simulation's
network trace: in the Optimized design only ChunkFetchSuccess /
StreamResponse *bodies* ride MPI (headers and every other message stay on
the Java sockets); in the Basic design everything rides MPI.
"""

import pytest

from repro.core.endpoint import MpiEndpoint
from repro.harness.pingpong import _idle_main
from repro.mpi.runtime import RankSpec
from repro.simnet import IB_EDR, SimCluster, SimEngine
from repro.simnet.sockets import SocketAddress
from repro.spark.network import OneForOneStreamManager, RpcHandler, TransportContext
from repro.transports import make_transport
from repro.util.units import MiB


class EchoRpc(RpcHandler):
    def receive(self, client_channel, payload, reply):
        reply(payload, 128)


def build_rig(transport_name):
    env = SimEngine()
    cluster = SimCluster(env, IB_EDR, n_nodes=2, cores_per_node=8)
    transport = make_transport(transport_name, env, cluster)
    endpoints = [None, None]
    if transport.uses_mpi:
        procs, _ = transport.mpi_world.create_processes(
            [RankSpec(main=_idle_main, node=0), RankSpec(main=_idle_main, node=1)],
            comm_name="MPI_COMM_WORLD",
        )
        endpoints = [MpiEndpoint(procs[0]), MpiEndpoint(procs[1])]
    streams = OneForOneStreamManager()
    context = TransportContext(
        transport.data_stack,
        rpc_handler=EchoRpc(),
        stream_manager=streams,
        pipeline_hook=transport.pipeline_hook,
    )
    stream_id = streams.register_stream(lambda idx, n: (None, idx))
    server_loop = transport.make_loop("srv", endpoints[0])
    client_loop = transport.make_loop("cli", endpoints[1])
    server_loop.start()
    client_loop.start()
    context.create_server(server_loop, 0, 7500)
    return env, cluster, transport, context, client_loop, endpoints, stream_id, (server_loop, client_loop)


def run_fetch(transport_name, nbytes=4 * MiB, do_rpc=False):
    (env, cluster, transport, context, client_loop,
     endpoints, stream_id, loops) = build_rig(transport_name)
    stats = {}

    def main(env):
        client = yield from context.create_client(
            client_loop, 1, SocketAddress("node0", 7500)
        )
        yield from transport.establish(client.channel, endpoints[1])
        if do_rpc:
            yield client.send_rpc({"op": "meta"}, nbytes=nbytes)
        else:
            yield client.fetch_chunk(stream_id, nbytes)
        stats["client_socket_rx"] = client.channel.socket.bytes_received
        for loop in loops:
            loop.stop()

    env.process(main(env))
    env.run()
    mpi_bytes = cluster.trace.bytes_by_model.get(f"mpi/{cluster.fabric.name}", 0)
    tcp_bytes = sum(
        v for k, v in cluster.trace.bytes_by_model.items() if k.startswith("tcp")
    )
    return stats, mpi_bytes, tcp_bytes


class TestOptimizedDesign:
    def test_chunk_bodies_ride_mpi(self):
        stats, mpi_bytes, tcp_bytes = run_fetch("mpi-opt", nbytes=4 * MiB)
        # The 4 MiB body went over MPI (plus RTS/CTS control)...
        assert mpi_bytes >= 4 * MiB
        # ...while the socket carried only headers/requests/handshake.
        assert tcp_bytes < 4096

    def test_rpc_bodies_stay_on_socket(self):
        # Sec VI-E: only ChunkFetchSuccess and StreamResponse go over MPI.
        stats, mpi_bytes, tcp_bytes = run_fetch("mpi-opt", nbytes=1 * MiB, do_rpc=True)
        assert mpi_bytes < 1024  # no bulk over MPI
        assert tcp_bytes >= 1 * MiB  # the RPC payload rode TCP

    def test_small_chunk_also_split(self):
        stats, mpi_bytes, tcp_bytes = run_fetch("mpi-opt", nbytes=64 * 1024)
        assert mpi_bytes >= 64 * 1024


class TestBasicDesign:
    def test_everything_rides_mpi(self):
        stats, mpi_bytes, tcp_bytes = run_fetch("mpi-basic", nbytes=4 * MiB)
        assert mpi_bytes >= 4 * MiB
        # Requests AND responses over MPI: socket only saw the handshake.
        assert tcp_bytes < 256

    def test_rpcs_also_ride_mpi(self):
        stats, mpi_bytes, tcp_bytes = run_fetch("mpi-basic", nbytes=1 * MiB, do_rpc=True)
        assert mpi_bytes >= 1 * MiB
        assert tcp_bytes < 256


class TestVanilla:
    def test_everything_rides_tcp(self):
        stats, mpi_bytes, tcp_bytes = run_fetch("nio", nbytes=4 * MiB)
        assert mpi_bytes == 0
        assert tcp_bytes >= 4 * MiB
