"""Parallel experiment harness: determinism and jobs plumbing."""

import os

import pytest

from repro.harness.parallel import (
    parallel_map,
    resolve_jobs,
    run_ohb_cells,
)
from repro.harness.systems import FRONTERA
from repro.util.units import GiB
from repro.workloads.ohb import GROUP_BY, SORT_BY


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_arg_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_inline(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_preserves_order(self):
        assert parallel_map(_square, list(range(8)), jobs=2) == [
            x * x for x in range(8)
        ]

    def test_single_item_skips_pool(self):
        assert parallel_map(_square, [5], jobs=4) == [25]


def _row(cell):
    return (
        cell.workload,
        cell.n_workers,
        cell.transport,
        cell.total_seconds,
        cell.result.stage_seconds,
    )


class TestJobsDeterminism:
    @pytest.fixture(scope="class")
    def specs(self):
        # Cheap cells: tiny data, low fidelity — this is about plumbing,
        # not simulation scale.
        return [
            (workload.name, 2, 1 * GiB, transport, 0.05, FRONTERA.name)
            for workload in (GROUP_BY, SORT_BY)
            for transport in ("nio", "mpi-opt")
        ]

    def test_rows_identical_across_jobs_counts(self, specs, monkeypatch):
        # Run-cache off: the point is that *executions* agree across
        # worker counts, not that the second sweep replays the first.
        monkeypatch.setenv("REPRO_RUN_CACHE", "0")
        serial = run_ohb_cells(specs, jobs=1)
        fanned = run_ohb_cells(specs, jobs=4)
        assert [_row(c) for c in serial] == [_row(c) for c in fanned]

    def test_row_order_follows_spec_order(self, specs):
        cells = run_ohb_cells(specs, jobs=4)
        assert [(c.workload, c.transport) for c in cells] == [
            (name, transport) for (name, _, _, transport, _, _) in specs
        ]
