"""Full-run result cache: correctness of the two-tier store.

Like the sample-trace cache, the run cache is an accelerator, never a
correctness dependency: everything here asserts that cell results are
identical with the cache cold, warm (memo and disk), disabled, corrupted,
keyed by a stale code fingerprint, or shared across worker processes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.harness import runcache
from repro.harness.parallel import run_ohb_cells
from repro.harness.runcache import (
    RUN_SCHEMA,
    cache_dir,
    cache_enabled,
    code_fingerprint,
    get_or_run,
    run_key,
)
from repro.util.units import GiB

SPEC = ("GroupByTest", 2, 1 * GiB, "nio", 0.05, "Frontera")


@pytest.fixture(autouse=True)
def cold_env(monkeypatch):
    """The shared tests/conftest fixture already isolates the store; also
    guarantee the enable flag is unset so cache_enabled() is the default."""
    monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)


def _canon(cell):
    return (
        cell.workload,
        cell.n_workers,
        cell.transport,
        repr(cell.result.total_seconds),
        repr(sorted(cell.result.stage_seconds.items())),
    )


def _entry_paths():
    return sorted(cache_dir().glob("*.pkl"))


class TestEnableSwitch:
    def test_enabled_by_default(self):
        assert cache_enabled()

    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_CACHE", "0")
        assert not cache_enabled()
        calls = []
        out = get_or_run("fake", ("spec",), lambda: calls.append(1) or "x")
        assert out == "x" and calls == [1]
        get_or_run("fake", ("spec",), lambda: calls.append(1) or "x")
        assert calls == [1, 1]  # every call re-runs
        assert not _entry_paths()


class TestKeying:
    def test_key_is_deterministic_and_spec_sensitive(self):
        k1 = run_key("ohb", SPEC)
        assert k1 == run_key("ohb", SPEC)
        assert k1 != run_key("hibench", SPEC)
        assert k1 != run_key("ohb", SPEC[:-1] + ("Stampede2",))

    def test_key_covers_live_patchable_constants(self, monkeypatch):
        # A what-if truth resim patches poll costs in place; patched and
        # unpatched runs must never share an address.
        from repro.core import mpi_netty

        k1 = run_key("ohb", SPEC)
        monkeypatch.setattr(mpi_netty, "SELECT_NOW_COST_S",
                            mpi_netty.SELECT_NOW_COST_S * 2)
        assert run_key("ohb", SPEC) != k1

    def test_key_covers_code_fingerprint(self, monkeypatch):
        k1 = run_key("ohb", SPEC)
        monkeypatch.setattr(runcache, "_FINGERPRINT", "0" * 64)
        assert run_key("ohb", SPEC) != k1

    def test_fingerprint_tracks_source_edits(self, tmp_path, monkeypatch):
        (tmp_path / "a.py").write_text("x = 1\n")
        monkeypatch.setattr(runcache, "_source_root", lambda: tmp_path)
        runcache._reset_fingerprint_cache()
        f1 = code_fingerprint()
        runcache._reset_fingerprint_cache()
        assert code_fingerprint() == f1  # stable while sources are
        (tmp_path / "a.py").write_text("x = 2\n")
        runcache._reset_fingerprint_cache()
        f2 = code_fingerprint()
        assert f2 != f1
        runcache._reset_fingerprint_cache()


class TestTiers:
    def test_memo_then_disk_then_run(self):
        calls = []

        def runner():
            calls.append(1)
            return {"rows": [1, 2, 3]}

        r1 = get_or_run("fake", ("tiers",), runner)
        assert calls == [1]
        # Memo hit: no new execution, equal value, never the same object.
        r2 = get_or_run("fake", ("tiers",), runner)
        assert calls == [1] and r2 == r1 and r2 is not r1
        # Disk hit after a memo wipe (a fresh worker process).
        runcache.clear_memory_cache()
        r3 = get_or_run("fake", ("tiers",), runner)
        assert calls == [1] and r3 == r1
        assert len(_entry_paths()) == 1

    def test_stats_account_hits_and_misses(self):
        base = runcache.run_cache_stats()
        get_or_run("fake", ("stats",), lambda: "v")
        get_or_run("fake", ("stats",), lambda: "v")
        runcache.clear_memory_cache()
        get_or_run("fake", ("stats",), lambda: "v")
        stats = runcache.run_cache_stats()
        assert stats["misses"] == base["misses"] + 1
        assert stats["cell_runs"] == base["cell_runs"] + 1
        assert stats["hits_mem"] == base["hits_mem"] + 1
        assert stats["hits_disk"] == base["hits_disk"] + 1

    def test_unpicklable_result_runs_uncached(self):
        calls = []

        def runner():
            calls.append(1)
            return lambda: None  # locals don't pickle

        base_errors = runcache.run_cache_stats()["errors"]
        out = get_or_run("fake", ("unpicklable",), runner)
        assert callable(out) and calls == [1]
        assert runcache.run_cache_stats()["errors"] == base_errors + 1
        assert not _entry_paths()
        # Next call runs again — nothing was cached.
        get_or_run("fake", ("unpicklable",), runner)
        assert calls == [1, 1]


class TestCellRows:
    def test_cold_warm_disabled_rows_identical(self, monkeypatch):
        cold = [_canon(c) for c in run_ohb_cells([SPEC], jobs=1)]
        assert len(_entry_paths()) == 1
        # Warm memo.
        memo = [_canon(c) for c in run_ohb_cells([SPEC], jobs=1)]
        # Warm disk (fresh-process shape: cold memo, surviving store).
        runcache.clear_memory_cache()
        disk = [_canon(c) for c in run_ohb_cells([SPEC], jobs=1)]
        # Disabled: a genuine re-simulation.
        monkeypatch.setenv("REPRO_RUN_CACHE", "0")
        off = [_canon(c) for c in run_ohb_cells([SPEC], jobs=1)]
        assert cold == memo == disk == off

    def test_warm_hit_skips_simulation(self):
        run_ohb_cells([SPEC], jobs=1)
        base = runcache.run_cache_stats()["cell_runs"]
        runcache.clear_memory_cache()
        run_ohb_cells([SPEC], jobs=1)
        assert runcache.run_cache_stats()["cell_runs"] == base

    def test_pool_workers_share_parent_seeded_store(self):
        specs = [SPEC, ("SortByTest", 2, 1 * GiB, "mpi-opt", 0.05, "Frontera")]
        serial = [_canon(c) for c in run_ohb_cells(specs, jobs=1)]
        assert len(_entry_paths()) == 2
        fanned = [_canon(c) for c in run_ohb_cells(specs, jobs=4)]
        assert serial == fanned


class TestCorruption:
    def _prime(self):
        calls = []

        def runner():
            calls.append(1)
            return {"payload": 42}

        get_or_run("fake", ("corrupt",), runner)
        runcache.clear_memory_cache()
        return calls, runner

    def test_truncated_entry_recomputes_and_rewrites(self):
        calls, runner = self._prime()
        (path,) = _entry_paths()
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 3])
        base_err = runcache.run_cache_stats()["errors"]
        out = get_or_run("fake", ("corrupt",), runner)
        assert out == {"payload": 42} and calls == [1, 1]
        assert runcache.run_cache_stats()["errors"] == base_err + 1
        # The entry was rewritten: a fresh cold process now hits disk.
        runcache.clear_memory_cache()
        get_or_run("fake", ("corrupt",), runner)
        assert calls == [1, 1]

    def test_garbage_bytes_recompute(self):
        calls, runner = self._prime()
        (path,) = _entry_paths()
        path.write_bytes(b"not a pickle at all")
        out = get_or_run("fake", ("corrupt",), runner)
        assert out == {"payload": 42} and calls == [1, 1]

    def test_miskeyed_entry_recomputes(self):
        # An entry whose recorded key disagrees with its address (e.g. a
        # hand-copied file) must be treated as a miss, not trusted.
        calls, runner = self._prime()
        (path,) = _entry_paths()
        payload = {
            "schema": RUN_SCHEMA,
            "key": "0" * 64,
            "result": pickle.dumps({"payload": 42}),
        }
        path.write_bytes(pickle.dumps(payload))
        out = get_or_run("fake", ("corrupt",), runner)
        assert out == {"payload": 42} and calls == [1, 1]

    def test_wrong_schema_recomputes(self):
        calls, runner = self._prime()
        (path,) = _entry_paths()
        blob = path.read_bytes()
        payload = pickle.loads(blob)
        payload["schema"] = "run-result/0"
        path.write_bytes(pickle.dumps(payload))
        out = get_or_run("fake", ("corrupt",), runner)
        assert out == {"payload": 42} and calls == [1, 1]

    def test_stale_code_fingerprint_entry_is_unreachable(self, monkeypatch):
        # Content addressing makes stale entries unreachable rather than
        # detected: after a source change the old entry's address simply
        # never comes up again, and the fresh run writes a new entry.
        calls, runner = self._prime()
        assert len(_entry_paths()) == 1
        monkeypatch.setattr(runcache, "_FINGERPRINT", "f" * 64)
        out = get_or_run("fake", ("corrupt",), runner)
        assert out == {"payload": 42} and calls == [1, 1]
        assert len(_entry_paths()) == 2  # old entry intact, new one added

    def test_clear_disk_cache_removes_entries(self):
        self._prime()
        assert runcache.clear_disk_cache() == 1
        assert not _entry_paths()
