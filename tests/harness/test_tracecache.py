"""Sample-trace cache: correctness of the two-tier store.

The cache is an accelerator, never a correctness dependency: everything
here asserts that simulated outputs are identical with the cache cold,
warm (memo and disk), disabled, corrupted, or shared across worker
processes.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.harness import tracecache
from repro.harness.experiments import _run_ohb
from repro.harness.parallel import run_ohb_cells
from repro.harness.systems import FRONTERA
from repro.harness.tracecache import (
    TRACE_SCHEMA,
    cache_dir,
    cache_enabled,
    get_or_trace,
    trace_key,
)
from repro.spark.tracing import SampleTrace
from repro.util.units import GiB
from repro.workloads.hibench import SPECS
from repro.workloads.ohb import GROUP_BY, SORT_BY


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets a private, empty disk store and a cold memo."""
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "tc"))
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    tracecache.clear_memory_cache()
    yield
    tracecache.clear_memory_cache()


def _canon_profile(p):
    out = [p.name, p.nominal_bytes, p.n_executors, p.cores_per_executor]
    for stage in p.stages:
        for k, v in sorted(vars(stage).items()):
            out.append((k, v.tolist() if isinstance(v, np.ndarray) else v))
    return repr(out)


def _canon_cell(cell):
    return (
        cell.workload,
        cell.n_workers,
        cell.transport,
        repr(cell.result.total_seconds),
        repr(sorted(cell.result.stage_seconds.items())),
    )


class TestKey:
    def test_stable_and_order_insensitive(self):
        a = trace_key("W", "v1", {"a": 1, "b": 2}, "costs")
        b = trace_key("W", "v1", {"b": 2, "a": 1}, "costs")
        assert a == b and len(a) == 64

    def test_differentiates_every_component(self):
        base = trace_key("W", "v1", {"a": 1}, "costs")
        assert trace_key("X", "v1", {"a": 1}, "costs") != base
        assert trace_key("W", "v2", {"a": 1}, "costs") != base
        assert trace_key("W", "v1", {"a": 2}, "costs") != base
        assert trace_key("W", "v1", {"a": 1}, "other") != base


class TestTiers:
    def test_memo_then_disk_then_runner(self):
        runs = []

        def runner():
            runs.append(1)
            return GROUP_BY.trace_sample(num_pairs=200)

        args = ("W", "v1", {"n": 200}, runner)
        t1 = get_or_trace(*args)
        t2 = get_or_trace(*args)
        assert t2 is t1 and runs == [1]  # memo hit
        tracecache.clear_memory_cache()
        t3 = get_or_trace(*args)
        assert runs == [1]  # disk hit, no re-execution
        assert _canon_trace(t3) == _canon_trace(t1)

    def test_disabled_runs_every_time_and_writes_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert not cache_enabled()
        runs = []

        def runner():
            runs.append(1)
            return GROUP_BY.trace_sample(num_pairs=200)

        get_or_trace("W", "v1", {"n": 200}, runner)
        get_or_trace("W", "v1", {"n": 200}, runner)
        assert runs == [1, 1]
        assert not cache_dir().exists()


def _canon_trace(t: SampleTrace) -> str:
    # stage_id/shuffle_id are process-global allocation counters — they
    # record *when in the process* a sample ran, not what it did, so
    # they are excluded from the measured-content comparison.
    out = [t.workload, t.sample_params, t.schema]
    for st in t.stages:
        for k, v in sorted(vars(st).items()):
            if k in ("stage_id", "shuffle_id"):
                continue
            out.append((k, v.tolist() if isinstance(v, np.ndarray) else v))
    return repr(out)


class TestProfileIdentity:
    def test_ohb_profiles_equal_cold_warm_disk_disabled(self, monkeypatch):
        # The tentpole assertion: scaling is split from trace generation,
        # so the scaled profile cannot depend on where the trace came from.
        build = lambda: GROUP_BY.build_profile(FRONTERA, 4, 4 * GiB, fidelity=0.25)
        cold = _canon_profile(build())
        warm = _canon_profile(build())
        tracecache.clear_memory_cache()
        disk = _canon_profile(build())
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        disabled = _canon_profile(build())
        assert cold == warm == disk == disabled

    def test_fig9_and_fig10_shaped_rows_identical_across_cache_states(
        self, monkeypatch
    ):
        # Golden-row identity at simulation level: one cheap fig-9-shaped
        # cell (2w) and one fig-10-shaped cell (4w), for both OHB
        # workloads, with the cache cold, warm and disabled.
        def rows():
            return [
                _canon_cell(_run_ohb(GROUP_BY, 2, 1 * GiB, "nio", 0.05)),
                _canon_cell(_run_ohb(SORT_BY, 4, 1 * GiB, "mpi-opt", 0.05)),
            ]

        cold = rows()
        warm = rows()
        tracecache.clear_memory_cache()
        disk = rows()
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        disabled = rows()
        assert cold == warm == disk == disabled

    def test_fig12_shaped_hibench_trace_identical_across_cache_states(
        self, monkeypatch
    ):
        # HiBench profiles are analytic, so the cached artifact here is
        # the sample trace itself (the fig-12 correctness-side input).
        spec = SPECS["TeraSort"]
        cold = _canon_trace(spec.sample_trace())
        warm = _canon_trace(spec.sample_trace())
        tracecache.clear_memory_cache()
        disk = _canon_trace(spec.sample_trace())
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        disabled = _canon_trace(spec.trace_sample())
        assert cold == warm == disk == disabled


class TestCorruption:
    def _entry_paths(self):
        return sorted(cache_dir().glob("*.pkl"))

    def test_truncated_pickle_falls_back_to_recompute(self):
        t1 = GROUP_BY.sample_trace()
        (path,) = self._entry_paths()
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        tracecache.clear_memory_cache()
        t2 = GROUP_BY.sample_trace()  # must not raise
        assert _canon_trace(t2) == _canon_trace(t1)
        assert tracecache.trace_cache_stats()["errors"] >= 1

    def test_garbage_bytes_fall_back_to_recompute(self):
        t1 = GROUP_BY.sample_trace()
        (path,) = self._entry_paths()
        path.write_bytes(b"not a pickle at all")
        tracecache.clear_memory_cache()
        t2 = GROUP_BY.sample_trace()
        assert _canon_trace(t2) == _canon_trace(t1)
        # The defective entry was rewritten with a valid one.
        tracecache.clear_memory_cache()
        before = tracecache.trace_cache_stats()["sample_runs"]
        GROUP_BY.sample_trace()
        assert tracecache.trace_cache_stats()["sample_runs"] == before

    def test_valid_pickle_with_wrong_key_is_stale(self):
        # An entry whose recorded key disagrees with its address (e.g. a
        # hand-copied file) must be treated as a miss, not trusted.
        t1 = GROUP_BY.sample_trace()
        (path,) = self._entry_paths()
        payload = {"schema": TRACE_SCHEMA, "key": "0" * 64, "trace": t1}
        path.write_bytes(pickle.dumps(payload))
        tracecache.clear_memory_cache()
        before = tracecache.trace_cache_stats()["sample_runs"]
        GROUP_BY.sample_trace()
        assert tracecache.trace_cache_stats()["sample_runs"] == before + 1


class TestParallelWorkers:
    def test_jobs1_vs_jobs4_rows_identical_shared_disk_cache(self, monkeypatch):
        # The disk tier is what lets pool workers (fresh processes, cold
        # memos) skip sample re-execution; rows must be identical to the
        # serial run either way. Run-cache off so the jobs=4 sweep really
        # simulates (a warm run cache would skip execution entirely and
        # prove nothing about the trace tier).
        monkeypatch.setenv("REPRO_RUN_CACHE", "0")
        specs = [
            ("GroupByTest", 2, 1 * GiB, "nio", 0.05, "Frontera"),
            ("GroupByTest", 2, 1 * GiB, "mpi-opt", 0.05, "Frontera"),
            ("SortByTest", 2, 1 * GiB, "nio", 0.05, "Frontera"),
            ("SortByTest", 2, 1 * GiB, "mpi-opt", 0.05, "Frontera"),
        ]
        serial = [_canon_cell(c) for c in run_ohb_cells(specs, jobs=1)]
        parallel = [_canon_cell(c) for c in run_ohb_cells(specs, jobs=4)]
        assert serial == parallel
        # The parent process seeded the disk store; entries exist for
        # both workloads.
        assert len(sorted(cache_dir().glob("*.pkl"))) == 2
