"""Harness tests: systems, profiles, experiments plumbing, report rendering."""

import numpy as np
import pytest

from repro.harness.experiments import (
    _run_ohb,
    table1_features,
    table3_systems,
    table4_workloads,
)
from repro.harness.pingpong import run_pingpong
from repro.harness.profile import (
    ShuffleReadStage,
    _spread,
    scaled_read_matrices,
    spread_cpu,
)
from repro.harness.report import (
    LEGEND,
    ohb_speedups,
    render_fig8,
    render_ohb,
    render_table,
)
from repro.harness.systems import FRONTERA, INTERNAL_CLUSTER, STAMPEDE2, SYSTEMS
from repro.util.units import GiB, KiB, MiB
from repro.workloads.ohb import GROUP_BY


class TestSystems:
    def test_table3_values(self):
        assert FRONTERA.cores_per_node == 56
        assert FRONTERA.num_nodes == 18
        assert FRONTERA.interconnect == "IB-HDR"
        assert STAMPEDE2.hyperthreading
        assert STAMPEDE2.threads_per_node == 112
        assert INTERNAL_CLUSTER.num_nodes == 2
        assert INTERNAL_CLUSTER.cores_per_node == 28
        assert INTERNAL_CLUSTER.interconnect == "IB-EDR"

    def test_registry(self):
        assert set(SYSTEMS) == {"Frontera", "Stampede2", "Internal Cluster"}


class TestProfileHelpers:
    def test_spread_conserves_total(self):
        parts = _spread(1000.0, 7, cv=0.2, seed=3)
        assert parts.sum() == pytest.approx(1000.0)
        assert (parts > 0).all()

    def test_spread_zero_cv_uniform(self):
        parts = _spread(100.0, 4, cv=0.0, seed=1)
        assert np.allclose(parts, 25.0)

    def test_spread_invalid_n(self):
        with pytest.raises(ValueError):
            _spread(1.0, 0, 0.1, 1)

    def test_spread_cpu_is_per_core_work(self):
        # 1000 core-seconds on 100 cores -> 10 s/task regardless of folding.
        for n_tasks in (100, 50, 25):
            parts = spread_cpu(1000.0, n_tasks, 100, cv=0.0, seed=1)
            assert np.allclose(parts, 10.0)

    def test_scaled_read_matrices_shapes(self):
        fetch, blocks, records = scaled_read_matrices(
            total_bytes=1e9, total_records=1e6, n_tasks=16, n_executors=4,
            n_map_tasks=16, cv=0.1,
        )
        assert fetch.shape == (16, 4)
        assert blocks.shape == (16, 4)
        assert fetch.sum() == pytest.approx(1e9, rel=1e-6)
        assert records.sum() == pytest.approx(1e6, rel=1e-6)

    def test_read_stage_remote_bytes(self):
        fetch, blocks, _ = scaled_read_matrices(1e9, 1e6, 8, 4, 8, 0.0)
        stage = ShuffleReadStage("r", fetch, blocks, np.zeros(8))
        # Uniform spread: 3/4 of the traffic is remote.
        assert stage.total_remote_bytes == pytest.approx(0.75e9, rel=0.01)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table([{"a": "x", "b": "1"}, {"a": "yy", "b": "22"}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert "(empty)" in render_table([], "T")

    def test_render_fig8(self):
        results = {
            "netty-nio": run_pingpong("nio", [1 * KiB], iterations=1),
            "netty-mpi": run_pingpong("mpi-basic", [1 * KiB], iterations=1),
        }
        text = render_fig8(results)
        assert "Netty+MPI" in text and "Speedup" in text

    def test_ohb_render_and_speedups(self):
        cells = [
            _run_ohb(GROUP_BY, 2, 4 * GiB, t, fidelity=0.25)
            for t in ("nio", "rdma", "mpi-opt")
        ]
        text = render_ohb(cells, "t")
        assert "IPoIB" in text and "MPI" in text and "vs IPoIB" in text
        speedups = ohb_speedups(cells)
        entry = speedups[("GroupByTest", 2)]
        assert entry["total_mpi_vs_vanilla"] > 1.0
        assert entry["read_mpi_vs_vanilla"] > entry["total_mpi_vs_vanilla"]

    def test_legend_matches_paper(self):
        assert LEGEND["nio"] == "IPoIB"
        assert LEGEND["rdma"] == "RDMA"
        assert LEGEND["mpi-opt"] == "MPI"


class TestStaticTables:
    def test_table1_rows(self):
        rows = table1_features()
        assert len(rows) == 4
        assert rows[0]["RDMA-Spark"] == "no"  # single-interconnect only

    def test_table3_rows(self):
        rows = table3_systems()
        assert {r["System"] for r in rows} == set(SYSTEMS)

    def test_table4_covers_all_workloads(self):
        rows = table4_workloads()
        assert len(rows) == 9  # 2 OHB + 7 HiBench
        suites = {r["Suite"] for r in rows}
        assert suites == {"OSU HiBD (OHB)", "Intel HiBench"}
