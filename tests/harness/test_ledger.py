"""Perf ledger: append-only history, EWMA drift flags, payload adapters."""

import json

import pytest

from repro.harness import ledger
from repro.harness.ledger import (
    DEFAULT_STEP_THRESHOLD,
    LEDGER_SCHEMA,
    DriftPoint,
    PerfLedger,
    figure_cells,
    perf_cells,
)


@pytest.fixture
def book(tmp_path):
    return PerfLedger(tmp_path / "ledger.jsonl")


class TestAppendAndEntries:
    def test_round_trip(self, book):
        entry = book.append("perf", {"cell_a": 100.0, "cell_b": 2.5},
                            units="events_per_sec", fingerprint="f1",
                            timestamp=1000.0)
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["fingerprint"] == "f1"
        (got,) = book.entries()
        assert got == entry
        assert got["cells"] == {"cell_a": 100.0, "cell_b": 2.5}

    def test_append_only_preserves_order(self, book):
        for i in range(3):
            book.append("perf", {"c": float(i)}, fingerprint="f",
                        timestamp=float(i))
        assert [e["cells"]["c"] for e in book.entries()] == [0.0, 1.0, 2.0]

    def test_source_filter(self, book):
        book.append("perf", {"c": 1.0}, fingerprint="f", timestamp=0.0)
        book.append("fig:fig9", {"c": 2.0}, fingerprint="f", timestamp=1.0)
        assert len(book.entries()) == 2
        assert [e["source"] for e in book.entries("perf")] == ["perf"]

    def test_default_fingerprint_is_live_tree(self, book):
        from repro.harness.runcache import code_fingerprint

        entry = book.append("perf", {"c": 1.0}, timestamp=0.0)
        assert entry["fingerprint"] == code_fingerprint()

    def test_missing_file_reads_empty(self, book):
        assert book.entries() == []

    def test_malformed_lines_are_skipped_never_fatal(self, book):
        book.append("perf", {"c": 1.0}, fingerprint="f", timestamp=0.0)
        with open(book.path, "a") as fh:
            fh.write("{torn json\n")          # crash mid-write
            fh.write("[1, 2, 3]\n")            # not an object
            fh.write('{"schema": "other/9"}\n')  # foreign schema
            fh.write(json.dumps({"schema": LEDGER_SCHEMA, "cells": 7}) + "\n")
            fh.write("\n")
        book.append("perf", {"c": 2.0}, fingerprint="f", timestamp=1.0)
        assert [e["cells"]["c"] for e in book.entries()] == [1.0, 2.0]


class TestDrift:
    def seed(self, book, values, cell="c"):
        for i, v in enumerate(values):
            book.append("perf", {cell: v}, fingerprint="f", timestamp=float(i))

    def test_first_observation_seeds_never_steps(self, book):
        self.seed(book, [100.0])
        point = book.drift("perf")["c"]
        assert point == DriftPoint("c", 100.0, 100.0, 0.0, False, 1)

    def test_stable_history_no_flags(self, book):
        self.seed(book, [100.0, 101.0, 99.0, 100.5])
        point = book.drift("perf")["c"]
        assert not point.step
        assert point.n == 4
        assert book.flagged("perf") == []

    def test_step_change_flagged_against_smoothed_history(self, book):
        self.seed(book, [100.0, 100.0, 100.0, 60.0])  # 40% drop
        point = book.drift("perf")["c"]
        assert point.step
        assert point.value == 60.0
        assert point.ewma == pytest.approx(100.0)
        assert point.rel_dev == pytest.approx(-0.4)
        assert [p.cell for p in book.flagged("perf")] == ["c"]

    def test_threshold_is_relative_deviation(self, book):
        # just inside vs just outside DEFAULT_STEP_THRESHOLD (0.25)
        self.seed(book, [100.0, 100.0 * (1 + DEFAULT_STEP_THRESHOLD - 0.01)])
        assert not book.drift("perf")["c"].step
        book2 = PerfLedger(book.path.with_name("l2.jsonl"))
        self.seed(book2, [100.0, 100.0 * (1 + DEFAULT_STEP_THRESHOLD + 0.01)])
        assert book2.drift("perf")["c"].step

    def test_ewma_recovers_after_accepted_shift(self, book):
        # a real perf improvement stops flagging once history absorbs it
        self.seed(book, [100.0, 200.0, 200.0, 200.0, 200.0, 200.0, 200.0])
        assert not book.drift("perf")["c"].step

    def test_cells_tracked_independently(self, book):
        book.append("perf", {"a": 100.0, "b": 1.0}, fingerprint="f",
                    timestamp=0.0)
        book.append("perf", {"a": 100.0, "b": 10.0}, fingerprint="f",
                    timestamp=1.0)
        points = book.drift("perf")
        assert not points["a"].step
        assert points["b"].step

    def test_flagged_sorted_by_deviation(self, book):
        book.append("perf", {"a": 100.0, "b": 100.0}, fingerprint="f",
                    timestamp=0.0)
        book.append("perf", {"a": 50.0, "b": 10.0}, fingerprint="f",
                    timestamp=1.0)
        assert [p.cell for p in book.flagged("perf")] == ["b", "a"]


class TestAdapters:
    def test_perf_cells(self):
        payload = {"cells": [
            {"name": "fig8_pingpong_nio", "events_per_sec": 1234.5},
            {"name": "dead_cell", "events_per_sec": 0.0},  # dropped
        ]}
        assert perf_cells(payload) == {"fig8_pingpong_nio": 1234.5}
        assert perf_cells({}) == {}

    def test_figure_cells_ohb_rows(self):
        payload = {"cells": [
            {"workload": "GroupByTest", "n_workers": 2, "transport": "nio",
             "total_seconds": 1.5},
        ]}
        assert figure_cells(payload) == {"GroupByTest_2w_nio": 1.5}

    def test_figure_cells_jobserver_rows(self):
        payload = {"rows": [
            {"scheduler": "fifo", "transport": "mpi-opt", "mean_jct_s": 3.25},
        ]}
        assert figure_cells(payload) == {"fifo_mpi-opt": 3.25}

    def test_shapeless_payload_yields_nothing(self):
        # fig8 emits latency curves, not rows — it is simply not ledgered
        assert figure_cells({"curves": {"nio": [1, 2]}}) == {}
        assert figure_cells({"cells": [{"transport": "nio"}]}) == {}
        assert figure_cells({"cells": ["junk"]}) == {}


class TestRecordingHooks:
    PERF = {"cells": [{"name": "c", "events_per_sec": 10.0}]}
    FIG = {"cells": [{"workload": "w", "n_workers": 2, "transport": "nio",
                      "total_seconds": 1.0}]}

    def test_record_perf_appends_to_env_path(self, tmp_path, monkeypatch):
        path = tmp_path / "custom.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        entry = ledger.record_perf(self.PERF)
        assert entry is not None and entry["source"] == "perf"
        assert PerfLedger(path).entries()[0]["cells"] == {"c": 10.0}

    def test_record_figure_appends_with_fig_source(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "l.jsonl"))
        entry = ledger.record_figure("fig9_groupby", self.FIG)
        assert entry["source"] == "fig:fig9_groupby"
        assert entry["units"] == "seconds"

    def test_disabled_by_env(self, tmp_path, monkeypatch):
        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert not ledger.ledger_enabled()
        assert ledger.record_perf(self.PERF) is None
        assert ledger.record_figure("f", self.FIG) is None
        assert not path.exists()

    def test_empty_cells_not_recorded(self, tmp_path, monkeypatch):
        path = tmp_path / "l.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(path))
        assert ledger.record_figure("fig8", {"curves": {}}) is None
        assert not path.exists()

    def test_unwritable_ledger_never_raises(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_LEDGER_PATH", "/proc/definitely/not/writable/l.jsonl"
        )
        assert ledger.record_perf(self.PERF) is None
