"""Pinned-cell specs, the noise-exemption list, and the blame machinery.

Fast structural tests only — nothing here simulates. The timed suite
itself runs in ``benchmarks/test_perf_suite.py``; the blame reports run
real cells in ``benchmarks/test_diff.py`` and ``examples/run_diff.py``.
"""

import pytest

from repro.harness import perfbench
from repro.harness.perfbench import (
    BLAME_TRANSPORTS,
    CELL_REPEATS,
    CELL_SPECS,
    PINNED_CELLS,
    CellSpec,
    baseline_path,
    blame_failing_cells,
    blame_spec,
    noise_exempt_cells,
    parse_blame_inject,
    regressions,
)


class TestCellSpecs:
    def test_every_cell_has_a_spec(self):
        assert len(CELL_SPECS) >= 10
        for name, spec in CELL_SPECS.items():
            assert isinstance(spec, CellSpec), name
            assert callable(spec.fn), name
            assert spec.min_repeats >= 1, name
            if spec.max_repeats is not None:
                assert spec.max_repeats >= spec.min_repeats, name

    def test_back_compat_views_derive_from_specs(self):
        assert list(PINNED_CELLS) == list(CELL_SPECS)
        assert all(PINNED_CELLS[n] is CELL_SPECS[n].fn for n in CELL_SPECS)
        assert CELL_REPEATS == {
            n: s.max_repeats
            for n, s in CELL_SPECS.items()
            if s.max_repeats is not None
        }

    def test_noise_exemption_list_is_exactly_the_runcache_cells(self):
        # The exemption is explicit spec state now, not a name-prefix
        # convention; this is the committed list.
        assert noise_exempt_cells() == [
            "runcache_groupby_4w_cold",
            "runcache_groupby_4w_warm",
        ]
        for name in noise_exempt_cells():
            spec = CELL_SPECS[name]
            assert spec.noise_exempt
            # every exemption must name the gate that really covers it
            assert spec.exempt_reason

    def test_heavy_cells_are_capped_to_one_repeat(self):
        for name, cap in CELL_REPEATS.items():
            assert cap == 1, name
            assert not CELL_SPECS[name].noise_exempt, name


class TestRegressions:
    @staticmethod
    def payload(**cells):
        return {"cells": [
            {"name": n, "events_per_sec": v} for n, v in cells.items()
        ]}

    def test_drop_beyond_threshold_fails(self):
        cur = self.payload(fig8_pingpong_nio=50.0)
        com = self.payload(fig8_pingpong_nio=100.0)
        (failure,) = regressions(cur, com, threshold=0.30)
        assert failure.startswith("fig8_pingpong_nio:")
        assert "50% drop" in failure

    def test_drop_within_threshold_passes(self):
        cur = self.payload(fig8_pingpong_nio=80.0)
        com = self.payload(fig8_pingpong_nio=100.0)
        assert regressions(cur, com, threshold=0.30) == []

    def test_noise_exempt_cells_never_gate(self):
        # a 99% drop in an exempted cell is not a regression here — the
        # run-cache cells are gated by warm_speedup, not events/sec.
        cur = self.payload(runcache_groupby_4w_cold=1.0,
                           runcache_groupby_4w_warm=1.0)
        com = self.payload(runcache_groupby_4w_cold=100.0,
                           runcache_groupby_4w_warm=100.0)
        assert regressions(cur, com, threshold=0.30) == []

    def test_unknown_cells_still_gate(self):
        # a cell with no spec (e.g. comparing across versions) gets no
        # exemption by default
        cur = self.payload(brand_new_cell=1.0)
        com = self.payload(brand_new_cell=100.0)
        assert len(regressions(cur, com, threshold=0.30)) == 1


class TestBlameKnobs:
    def test_parse_inject_forms(self):
        assert parse_blame_inject("serialize") == ("serialize", 2.0)
        assert parse_blame_inject("serialize:4") == ("serialize", 4.0)
        assert parse_blame_inject("poll-tax:1.5") == ("poll-tax", 1.5)
        assert parse_blame_inject("") is None

    def test_parse_inject_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLAME_INJECT", "poll-tax:3")
        assert parse_blame_inject() == ("poll-tax", 3.0)
        monkeypatch.delenv("REPRO_BLAME_INJECT")
        assert parse_blame_inject() is None

    def test_parse_inject_rejects_unknown_segment(self):
        with pytest.raises(ValueError, match="segment must be"):
            parse_blame_inject("compute:2")

    def test_blame_specs_are_primitive_causal_cells(self):
        for transport in BLAME_TRANSPORTS:
            spec = blame_spec(transport)
            assert spec[3] == transport
            assert spec[6] is True  # causal recording on
            assert all(
                isinstance(x, (str, int, float, bool)) for x in spec
            )  # pickles under any start method

    def test_baseline_paths_are_committed_recordings(self):
        for transport in BLAME_TRANSPORTS:
            path = baseline_path(transport)
            assert path.parts[0] == "baselines"
            assert path.suffixes == [".jsonl", ".gz"]
            # this repo commits all three
            assert path.exists(), path

    def test_blame_failing_cells_maps_failures_to_transports(self, monkeypatch):
        calls = []

        def fake_report(transport, out_dir="results"):
            calls.append(transport)
            return None, f"{out_dir}/blame_{transport}.html"

        monkeypatch.setattr(perfbench, "blame_report", fake_report)
        failures = [
            "fig9_groupby_2w_mpi-basic: events/sec 1 vs committed 2 (50% drop)",
            "fig10_groupby_8w_mpi-basic: events/sec 1 vs committed 2 (50% drop)",
            "fig9_groupby_2w_nio: events/sec 1 vs committed 2 (50% drop)",
        ]
        reports = blame_failing_cells(failures, out_dir="out")
        assert calls == ["mpi-basic", "nio"]  # deduped, order of appearance
        assert reports == ["out/blame_mpi-basic.html", "out/blame_nio.html"]

    def test_blame_failing_cells_skips_baseline_less_transports(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(perfbench, "BLAME_BASELINE_DIR", tmp_path)
        failures = ["fig9_groupby_2w_mpi-basic: 50% drop"]
        assert blame_failing_cells(failures) == []

    def test_blame_failure_never_masks_the_gate(self, monkeypatch):
        def exploding_report(transport, out_dir="results"):
            raise RuntimeError("recording broke")

        monkeypatch.setattr(perfbench, "blame_report", exploding_report)
        failures = ["fig9_groupby_2w_nio: 50% drop"]
        (report,) = blame_failing_cells(failures)
        assert "blame report failed" in report
