"""JobServer integration: ordering, determinism, isolation, shutdown."""

import pytest

from repro.harness.systems import SYSTEMS
from repro.jobserver import (
    FairShareScheduler,
    FifoScheduler,
    JobServer,
    JobServerEnv,
    JobServerReport,
    PackingScheduler,
    poisson_trace,
    run_trace,
    trace_from_rows,
)
from repro.spark.deploy import SparkSimCluster
from repro.util.units import MiB

SYSTEM = SYSTEMS["Frontera"]


def small_cluster(transport="nio", n_workers=2, seed=3, **kw):
    return SparkSimCluster(
        SYSTEM, n_workers, transport, cores_per_executor=4, seed=seed, **kw
    )


def small_trace(n_jobs=4, seed=8, mean_interarrival_s=0.3):
    return poisson_trace(
        seed=seed,
        n_jobs=n_jobs,
        mean_interarrival_s=mean_interarrival_s,
        min_bytes=16 * MiB,
        max_bytes=64 * MiB,
        fidelity=0.25,
    )


class TestJobServerRuns:
    def test_all_jobs_finish_under_every_scheduler(self):
        trace = small_trace()
        for make in (FifoScheduler, FairShareScheduler, PackingScheduler):
            result = run_trace(small_cluster(), make(), trace)
            assert len(result.finished) == len(trace)
            assert not [r for r in result.records if r.failed]
            for rec in result.records:
                assert rec.start_s >= rec.submit_s
                assert rec.finish_s > rec.start_s
                assert rec.stage_seconds

    def test_fifo_starts_in_arrival_order(self):
        result = run_trace(small_cluster(), FifoScheduler(), small_trace(n_jobs=6))
        starts = [r.start_s for r in result.records]  # records in app-id order
        assert starts == sorted(starts)

    def test_jobserver_metrics_published(self):
        sim = small_cluster(obs_enabled=True)
        trace = small_trace(n_jobs=3)
        server = JobServer(sim, FifoScheduler(), trace)
        server.run()
        snap = sim.env.metrics.snapshot()
        values = snap.counters
        assert values["jobserver.submitted"] == 3
        assert values["jobserver.started"] == 3
        assert values["jobserver.finished"] == 3
        # Per-app namespaces: each tenant publishes its own task counters.
        for app_id in range(3):
            assert values[f"spark.app.app{app_id}.scheduler.tasks_finished"] > 0
        sim.shutdown()

    def test_same_seed_byte_identical_report(self):
        trace = small_trace()
        results_a = [
            run_trace(small_cluster(), FifoScheduler(), trace),
            run_trace(small_cluster(), FairShareScheduler(), trace),
        ]
        results_b = [
            run_trace(small_cluster(), FifoScheduler(), trace),
            run_trace(small_cluster(), FairShareScheduler(), trace),
        ]
        a = JobServerReport.from_results(results_a)
        b = JobServerReport.from_results(results_b)
        assert a.payload() == b.payload()
        assert a.digest() == b.digest()


class TestPerJobRngNamespacing:
    """Satellite: two-job runs reproduce single-job rows byte-identically."""

    ROWS = [
        {"workload": "GroupByTest", "submit_s": 0.5, "nominal_bytes": 48 * MiB,
         "parallelism": 4, "fidelity": 0.25},
        {"workload": "SortByTest", "submit_s": 30.0, "nominal_bytes": 32 * MiB,
         "parallelism": 4, "fidelity": 0.25},
    ]

    def test_two_job_run_reproduces_single_job_rows(self):
        trace2 = trace_from_rows(5, self.ROWS)
        solo = run_trace(small_cluster(), FifoScheduler(), trace2.head(1)).records[0]
        pair = run_trace(small_cluster(), FifoScheduler(), trace2).records[0]
        assert solo.start_s == pair.start_s
        assert solo.finish_s == pair.finish_s
        assert solo.stage_seconds == pair.stage_seconds

    def test_app_seed_depends_only_on_cluster_seed_and_app_id(self):
        sim = small_cluster()
        sim.launch()
        a = sim.register_app(0)
        sim.release_app(a)
        b = sim.register_app(0)
        assert a.seed == b.seed
        other = sim.register_app(1)
        assert other.seed != b.seed
        sim.shutdown()


class TestShutdownWithInFlightApps:
    """Satellite: shutdown() is idempotent and safe mid-application."""

    def _mid_flight_cluster(self):
        sim = small_cluster(transport="mpi-basic", obs_causal=True)
        rows = [
            {"workload": "GroupByTest", "submit_s": 0.1, "nominal_bytes": 64 * MiB,
             "parallelism": 4, "fidelity": 0.25},
            {"workload": "SortByTest", "submit_s": 0.2, "nominal_bytes": 64 * MiB,
             "parallelism": 4, "fidelity": 0.25},
        ]
        server = JobServer(sim, FifoScheduler(), trace_from_rows(5, rows))
        server.start()
        sim.env.run(until=sim.env.now + 0.35)  # tenants mid-flight
        assert sim.apps, "expected an application still in flight"
        return sim

    def test_shutdown_mid_flight_leaves_no_dangling_spans(self):
        sim = self._mid_flight_cluster()
        sim.shutdown()
        assert not sim.apps
        assert not sim.env.causal.flight.open_spans()

    def test_shutdown_is_idempotent(self):
        sim = self._mid_flight_cluster()
        sim.shutdown()
        n_events = len(sim.env.causal.flight.events)
        sim.shutdown()  # second call: strict no-op
        sim.shutdown()
        assert len(sim.env.causal.flight.events) == n_events
        assert not sim.apps

    def test_clean_shutdown_unchanged(self):
        sim = small_cluster(obs_causal=True)
        result = run_trace(sim, FifoScheduler(), small_trace(n_jobs=2))
        assert len(result.finished) == 2
        assert not sim.env.causal.flight.open_spans()


class TestJobServerEnv:
    """The Gym-style wrapper replays the synchronous path exactly."""

    def test_policy_stepping_matches_synchronous_run(self):
        trace = small_trace()
        sync = run_trace(small_cluster(), FifoScheduler(), trace)

        sim = small_cluster()
        policy = FifoScheduler()
        env = JobServerEnv(JobServer(sim, policy, trace))
        obs = env.reset()
        done, total_reward, info = False, 0.0, {}
        while not done:
            obs, reward, done, info = env.step(policy.plan(obs))
            total_reward += reward
        sim.shutdown()
        gym = info["result"]
        assert [r.finish_s for r in gym.records] == [
            r.finish_s for r in sync.records
        ]
        # Return = -sum(JCT): the reward signal totals the mean-JCT objective.
        assert total_reward == pytest.approx(-sum(sync.jcts()))

    def test_observation_exposes_queue_and_running_state(self):
        trace = small_trace(n_jobs=3)
        sim = small_cluster()
        env = JobServerEnv(JobServer(sim, FifoScheduler(), trace))
        obs = env.reset()
        assert obs.pending and obs.pending[0].app_id == 0
        assert obs.total_slots == sum(s for _, s in obs.executor_slots)
        sim.shutdown()

    def test_step_after_done_raises(self):
        from repro.jobserver import SchedulePlan

        trace = small_trace(n_jobs=2)
        sim = small_cluster()
        policy = FifoScheduler()
        env = JobServerEnv(JobServer(sim, policy, trace))
        obs = env.reset()
        done = False
        while not done:
            obs, _, done, _ = env.step(policy.plan(obs))
        with pytest.raises(RuntimeError):
            env.step(SchedulePlan())
        sim.shutdown()
