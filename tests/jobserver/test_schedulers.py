"""Property-style invariants for the inter-job schedulers.

Each test sweeps many seeded synthetic :class:`ClusterView`\\ s (no
simulation involved — the scheduler interface is a pure function of the
view) and asserts the policy's defining invariant: FIFO ordering,
fair-share max-min, packing never oversubscribing an executor.
"""

from repro.jobserver import (
    SCHEDULERS,
    ClusterView,
    FairShareScheduler,
    FifoScheduler,
    PackingScheduler,
    PendingJob,
    RunningJob,
    maxmin_allocation,
)
from repro.util.rng import SeededRng


def synthetic_view(rng: SeededRng, n_exec: int = 4, slots: int = 8) -> ClusterView:
    """A random queue/running mix over an ``n_exec × slots`` cluster."""
    execs = tuple((i, slots) for i in range(n_exec))
    n_running = rng.randint(0, 3)
    running = []
    used_execs: set[int] = set()
    free_pool = n_exec * slots
    for r in range(n_running):
        want = rng.randint(1, slots * 2)
        if rng.random() < 0.5 and len(used_execs) < n_exec:
            # a packed tenant holding whole executors
            avail = [i for i in range(n_exec) if i not in used_execs]
            take = tuple(sorted(rng.sample(avail, rng.randint(1, len(avail)))))
            used_execs.update(take)
            granted = len(take) * slots
        else:
            take = None
            granted = rng.randint(1, max(1, min(want, free_pool)))
        if granted > free_pool:
            continue
        free_pool -= granted
        running.append(
            RunningJob(app_id=100 + r, parallelism=want, granted=granted,
                       executor_ids=take)
        )
    pending = tuple(
        PendingJob(app_id=i, workload="GroupByTest", submit_s=float(i),
                   parallelism=rng.randint(1, slots * n_exec + 4))
        for i in range(rng.randint(0, 6))
    )
    return ClusterView(
        now=10.0, executor_slots=execs, pending=pending, running=tuple(running)
    )


class TestMaxMinAllocation:
    def test_properties_over_seeded_cases(self):
        for seed in range(200):
            rng = SeededRng(seed)
            n = rng.randint(1, 8)
            requests = [rng.randint(0, 20) for _ in range(n)]
            capacity = rng.randint(0, 40)
            alloc = maxmin_allocation(requests, capacity)
            assert sum(alloc) <= capacity
            assert all(0 <= a <= r for a, r in zip(alloc, requests))
            # Work-conserving: leftover capacity only if all demand is met.
            if sum(alloc) < capacity:
                assert alloc == requests
            # Max-min: an unsatisfied requester is within one slot (integer
            # remainder) of every allocation — nobody got rich at its cost.
            for i, (a, r) in enumerate(zip(alloc, requests)):
                if a < r:
                    assert all(a >= other - 1 for other in alloc)

    def test_equal_split(self):
        assert maxmin_allocation([10, 10, 10], 9) == [3, 3, 3]

    def test_small_requests_release_capacity(self):
        assert maxmin_allocation([2, 10, 10], 12) == [2, 5, 5]


class TestFifoInvariants:
    def test_admissions_are_a_queue_prefix(self):
        sched = FifoScheduler()
        for seed in range(150):
            view = synthetic_view(SeededRng(seed))
            plan = sched.plan(view)
            assert not plan.recap  # FIFO never touches running jobs
            admitted = [a.app_id for a in plan.admit]
            assert admitted == [j.app_id for j in view.pending[: len(admitted)]]
            assert sum(a.slots for a in plan.admit) <= view.free_slots

    def test_head_of_line_blocks(self):
        view = ClusterView(
            now=0.0,
            executor_slots=((0, 4),),
            pending=(
                PendingJob(0, "GroupByTest", 0.0, parallelism=4),
                PendingJob(1, "GroupByTest", 0.1, parallelism=1),
            ),
            running=(RunningJob(app_id=9, parallelism=2, granted=2),),
        )
        plan = FifoScheduler().plan(view)
        # Head wants 4, only 2 free: nothing starts — not even the 1-slot job.
        assert plan.admit == ()


class TestFairShareInvariants:
    def test_maxmin_property_under_synthetic_arrivals(self):
        sched = FairShareScheduler()
        for seed in range(150):
            view = synthetic_view(SeededRng(1000 + seed))
            plan = sched.plan(view)
            grants = {a.app_id: a.slots for a in plan.admit}
            caps = dict(plan.recap)
            final = {}
            for r in view.running:
                final[r.app_id] = caps.get(r.app_id, r.granted)
            final.update(grants)
            assert sum(final.values()) <= view.total_slots
            assert all(g >= 1 for g in final.values())
            # Max-min over requests: if a job is below its request, no other
            # job may sit more than one slot above it.
            requests = {j.app_id: j.parallelism for j in view.pending}
            requests.update({r.app_id: r.parallelism for r in view.running})
            for app_id, g in final.items():
                if g < min(requests[app_id], view.total_slots):
                    assert all(g >= other - 1 for other in final.values())

    def test_share_shrinks_then_recovers(self):
        execs = ((0, 4), (1, 4))
        alone = FairShareScheduler().plan(
            ClusterView(0.0, execs, (PendingJob(0, "GroupByTest", 0.0, 8),), ())
        )
        assert alone.admit[0].slots == 8
        crowded = FairShareScheduler().plan(
            ClusterView(
                1.0, execs,
                (PendingJob(1, "GroupByTest", 1.0, 8),),
                (RunningJob(app_id=0, parallelism=8, granted=8),),
            )
        )
        # The incumbent is squeezed to half, the newcomer gets the rest.
        assert dict(crowded.recap) == {0: 4}
        assert crowded.admit[0].slots == 4


class TestPackingInvariants:
    def test_never_oversubscribes_executors(self):
        sched = PackingScheduler()
        for seed in range(150):
            view = synthetic_view(SeededRng(2000 + seed))
            plan = sched.plan(view)
            assert not plan.recap
            free = {e for e, _ in view.free_executors()}
            claimed: set[int] = set()
            slots = dict(view.executor_slots)
            for adm in plan.admit:
                assert adm.executor_ids, "packing always grants a subset"
                subset = set(adm.executor_ids)
                assert subset <= free, "granted a reserved executor"
                assert not subset & claimed, "two tenants share an executor"
                claimed |= subset
                granted = sum(slots[e] for e in subset)
                assert adm.slots == granted
                want = min(
                    next(j.parallelism for j in view.pending
                         if j.app_id == adm.app_id),
                    view.total_slots,
                )
                assert granted >= want

    def test_backfill_behind_blocked_head(self):
        view = ClusterView(
            now=0.0,
            executor_slots=((0, 4), (1, 4)),
            pending=(
                PendingJob(0, "GroupByTest", 0.0, parallelism=8),
                PendingJob(1, "GroupByTest", 0.1, parallelism=4),
            ),
            running=(
                RunningJob(app_id=9, parallelism=4, granted=4,
                           executor_ids=(0,)),
            ),
        )
        plan = PackingScheduler().plan(view)
        # Head wants 8 (impossible with one free executor); job 1 backfills.
        assert [a.app_id for a in plan.admit] == [1]
        assert plan.admit[0].executor_ids == (1,)


class TestRegistry:
    def test_known_names(self):
        assert isinstance(SCHEDULERS.create("fifo"), FifoScheduler)
        assert isinstance(SCHEDULERS.create("fair"), FairShareScheduler)
        assert isinstance(SCHEDULERS.create("pack"), PackingScheduler)

    def test_unknown_name(self):
        import pytest

        with pytest.raises(KeyError):
            SCHEDULERS.create("srpt")
