"""Arrival-trace generator: determinism and substream independence."""

import pytest

from repro.jobserver import poisson_trace, trace_from_rows
from repro.util.units import MiB


class TestPoissonTrace:
    def test_same_seed_reproduces_trace(self):
        a = poisson_trace(seed=11, n_jobs=10)
        b = poisson_trace(seed=11, n_jobs=10)
        assert a.jobs == b.jobs

    def test_different_seeds_differ(self):
        a = poisson_trace(seed=11, n_jobs=10)
        b = poisson_trace(seed=12, n_jobs=10)
        assert a.jobs != b.jobs

    def test_job_i_independent_of_trace_length(self):
        """Job i's draws come from (seed, "job", i) — a 2-job trace is a
        byte-identical prefix of the 50-job trace."""
        short = poisson_trace(seed=7, n_jobs=2)
        long = poisson_trace(seed=7, n_jobs=50)
        assert short.jobs == long.jobs[:2]
        assert long.head(2).jobs == short.jobs

    def test_arrivals_monotone_and_sizes_bounded(self):
        trace = poisson_trace(
            seed=3, n_jobs=30, min_bytes=64 * MiB, max_bytes=256 * MiB,
            parallelism_choices=(2, 4),
        )
        times = [j.submit_s for j in trace.jobs]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        for j in trace.jobs:
            assert 64 * MiB <= j.nominal_bytes <= 256 * MiB
            assert j.parallelism in (2, 4)

    def test_mix_respected(self):
        trace = poisson_trace(seed=5, n_jobs=40, mix=(("GroupByTest", 1.0),))
        assert {j.workload for j in trace.jobs} == {"GroupByTest"}

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(seed=1, n_jobs=-1)
        with pytest.raises(ValueError):
            poisson_trace(seed=1, n_jobs=2, min_bytes=10, max_bytes=5)

    def test_empty_trace(self):
        trace = poisson_trace(seed=1, n_jobs=0)
        assert len(trace) == 0
        assert trace.makespan_floor_s == 0.0


class TestTraceFromRows:
    def test_roundtrip_through_rows(self):
        trace = poisson_trace(seed=9, n_jobs=5)
        again = trace_from_rows(trace.seed, trace.as_rows())
        assert again.jobs == trace.jobs

    def test_defaults_fill_in(self):
        trace = trace_from_rows(
            0, [{"workload": "GroupByTest", "submit_s": 1.5}]
        )
        job = trace.jobs[0]
        assert job.app_id == 0
        assert job.submit_s == 1.5
        assert job.parallelism == 4
