"""Loaded vs idle wire models and transport wiring."""

import pytest

from repro.simnet import IB_HDR, OPA, SimCluster, SimEngine
from repro.simnet.interconnect import (
    mpi_over,
    rdma_loaded_over,
    rdma_over,
    tcp_loaded_over,
    tcp_over,
)
from repro.transports import make_transport
from repro.util.units import MiB, gbps


class TestLoadedModels:
    def test_loaded_tcp_slower_than_idle(self):
        idle = tcp_over(IB_HDR)
        loaded = tcp_loaded_over(IB_HDR)
        assert loaded.effective_bandwidth_Bps() < idle.effective_bandwidth_Bps()

    def test_loaded_rdma_slower_than_idle(self):
        assert (
            rdma_loaded_over(IB_HDR).effective_bandwidth_Bps()
            < rdma_over(IB_HDR).effective_bandwidth_Bps()
        )

    def test_paper_calibration_ratios(self):
        # The loaded models are calibrated from the paper's own shuffle-read
        # ratios: MPI ~13x over loaded TCP, loaded RDMA ~2.35x over loaded TCP.
        tcp = tcp_loaded_over(IB_HDR).effective_bandwidth_Bps()
        rdma = rdma_loaded_over(IB_HDR).effective_bandwidth_Bps()
        mpi = mpi_over(IB_HDR).effective_bandwidth_Bps()
        assert 2.0 < rdma / tcp < 2.8
        assert 18 < mpi / tcp < 26  # bandwidth ratio exceeds the end-to-end 13x

    def test_loaded_tcp_works_on_opa_too(self):
        loaded = tcp_loaded_over(OPA)
        assert loaded.effective_bandwidth_Bps() < gbps(10)


class TestTransportLoadedFlag:
    def _mk(self, name, loaded):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=4)
        return make_transport(name, env, cluster, loaded=loaded)

    def test_nio_data_plane_switches_with_load(self):
        idle = self._mk("nio", loaded=False)
        loaded = self._mk("nio", loaded=True)
        assert (
            loaded.data_stack.model.effective_bandwidth_Bps()
            < idle.data_stack.model.effective_bandwidth_Bps()
        )

    def test_control_plane_always_idle_tcp(self):
        loaded = self._mk("nio", loaded=True)
        assert loaded.control_stack.model.name.startswith("tcp/")

    def test_rdma_data_plane_switches(self):
        idle = self._mk("rdma", loaded=False)
        loaded = self._mk("rdma", loaded=True)
        assert (
            loaded.data_stack.model.effective_bandwidth_Bps()
            < idle.data_stack.model.effective_bandwidth_Bps()
        )

    def test_mpi_wire_model_unaffected_by_load(self):
        # Kernel bypass: the MPI runtime's wire model is identical.
        idle = self._mk("mpi-opt", loaded=False)
        loaded = self._mk("mpi-opt", loaded=True)
        assert idle.mpi_world.model.per_byte_s == loaded.mpi_world.model.per_byte_s

    def test_describe(self):
        t = self._mk("mpi-opt", loaded=True)
        assert "IB-HDR" in t.describe()
