"""The collective shuffle transport (mpi-coll): one alltoallv per boundary.

Registration, end-to-end shuffle correctness, determinism, causal
visibility, and the chaos interplay: a collective participant dying
mid-exchange must surface as a stage resubmission (shrink) or a failed
job (abort) — never a hang.
"""

import pytest

from repro.faults import (
    ChaosScenario,
    ExecutorCrash,
    FaultPlan,
    NicDegradation,
    run_scenario,
)
from repro.faults.chaos import make_chaos_profile
from repro.harness.systems import INTERNAL_CLUSTER
from repro.simnet import IB_HDR, SimCluster, SimEngine
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster
from repro.transports import TRANSPORTS, make_transport
from repro.transports.mpi_coll import MpiCollectiveTransport
from repro.transports.mpi_opt import MpiOptimizedTransport
from repro.util.units import MiB


def _run(transport, n_workers=2, cores=2, shuffle_bytes=8 << 20, **kwargs):
    sim = SparkSimCluster(
        INTERNAL_CLUSTER, n_workers, transport,
        cores_per_executor=cores, **kwargs,
    )
    sim.launch()
    result = sim.run_profile(
        make_chaos_profile(n_workers, cores, shuffle_bytes=shuffle_bytes)
    )
    sim.shutdown()
    return sim, result


class TestRegistration:
    def test_registered(self):
        assert TRANSPORTS["mpi-coll"] is MpiCollectiveTransport

    def test_make_transport(self):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=2)
        t = make_transport("mpi-coll", env, cluster)
        assert t.name == "mpi-coll"
        assert t.collective_shuffle
        # Inherits the optimized design's taxes: no polling thread, no
        # compute inflation (Sec. V-B), just a different fetch plan.
        assert isinstance(t, MpiOptimizedTransport)
        assert t.polling_tax_cores == 0
        assert t.compute_inflation == 1.0

    def test_other_transports_do_not_collect(self):
        env = SimEngine()
        cluster = SimCluster(env, IB_HDR, n_nodes=2, cores_per_node=2)
        for name in ("nio", "rdma", "mpi-basic", "mpi-opt"):
            t = make_transport(name, env, cluster)
            assert not getattr(t, "collective_shuffle", False)

    def test_sparkconf_selection(self):
        conf = SparkConf({"spark.repro.transport": "mpi-coll"})
        sim = SparkSimCluster.from_conf(INTERNAL_CLUSTER, 2, conf)
        assert sim.transport.name == "mpi-coll"
        assert sim.transport.collective_shuffle


class TestEndToEnd:
    def test_profile_completes(self):
        _, result = _run("mpi-coll")
        assert set(result.stage_seconds) == {"gen", "write", "read"}
        assert all(s > 0 for s in result.stage_seconds.values())

    def test_remote_bytes_match_fetch_matrix(self):
        # Each executor's remote-byte counter must equal the off-diagonal
        # share of its tasks' fetch rows — same accounting as mpi-opt.
        n_workers, cores = 2, 2
        sim_coll, _ = _run("mpi-coll", n_workers, cores)
        sim_opt, _ = _run("mpi-opt", n_workers, cores)
        coll = [ex.bytes_fetched_remote for ex in sim_coll.executors]
        opt = [ex.bytes_fetched_remote for ex in sim_opt.executors]
        assert coll == opt
        assert sum(coll) > 0

    def test_deterministic(self):
        _, a = _run("mpi-coll", shuffle_bytes=16 * MiB)
        _, b = _run("mpi-coll", shuffle_bytes=16 * MiB)
        assert a.total_seconds == b.total_seconds
        assert a.stage_seconds == b.stage_seconds

    def test_read_stage_faster_than_opt(self):
        # The point of the exercise: the collective plan drains the same
        # byte matrix faster than per-block fetches (fig-9 style claim,
        # asserted loosely here; benchmarks pin the >=30% number).
        _, coll = _run("mpi-coll", shuffle_bytes=64 * MiB)
        _, opt = _run("mpi-opt", shuffle_bytes=64 * MiB)
        assert coll.stage_seconds["read"] < opt.stage_seconds["read"]

    def test_causal_trace_sees_collective(self):
        sim, result = _run("mpi-coll", obs_enabled=True, obs_causal=True)
        assert result.flight is not None
        names = [ev.name for ev in result.flight.events]
        assert "coll.start" in names
        assert "coll.finish" in names
        legs = {
            ev.attrs.get("leg")
            for ev in result.flight.events
            if ev.name == "msg.send" and ev.attrs
        }
        assert "mpi-coll" in legs

    def test_traced_run_timing_identical(self):
        _, plain = _run("mpi-coll")
        _, traced = _run("mpi-coll", obs_enabled=True, obs_causal=True)
        assert plain.stage_seconds == traced.stage_seconds


SEED = 7


def _plan():
    return (
        FaultPlan(seed=SEED, name="crash+degrade")
        .add(NicDegradation(at_s=0.002, node_index=2, factor=4.0, duration_s=0.5))
        .add(ExecutorCrash(at_s=0.005, exec_id=1))
    )


def _scenario(mode):
    # 256 MiB keeps the collective exchange in flight past the 5 ms crash:
    # at 64 MiB the whole alltoallv drains before the injector fires and
    # the "fault" run is byte-identical to the baseline.
    return ChaosScenario(
        name="coll-chaos",
        system=INTERNAL_CLUSTER,
        n_workers=4,
        transport="mpi-coll",
        plan=_plan(),
        mpi_fault_mode=mode,
        cores_per_executor=4,
        shuffle_bytes=256 * MiB,
        deadline_s=120.0,
    )


class TestChaosInterplay:
    """A participant dies mid-exchange; the matrix cells for mpi-coll."""

    def test_abort_mode_fails_the_job(self):
        report = run_scenario(_scenario("abort"))
        assert not report.job_completed, report.render()
        assert "abort" in report.job_failure.lower()

    def test_shrink_mode_resubmits_and_recovers(self):
        report = run_scenario(_scenario("shrink"))
        assert report.job_completed, report.render()
        assert report.stage_resubmissions >= 1
        # Recovery costs time over the baseline run.
        assert report.faulted_seconds > report.baseline_seconds

    def test_shrink_report_deterministic(self):
        a = run_scenario(_scenario("shrink"))
        b = run_scenario(_scenario("shrink"))
        assert a.render() == b.render()
