"""The chaos harness end-to-end: determinism and the transport asymmetry.

The headline experiment in miniature: the same seeded fault plan is replayed
against different transports. Socket-based transports recover through Spark's
resubmission machinery; MPI in world-abort mode loses the whole job; MPI with
ULFM-style shrinking recovers.
"""

import pytest

from repro.faults import (
    ChaosScenario,
    ExecutorCrash,
    FaultPlan,
    MessageChaos,
    NicDegradation,
    render_matrix,
    run_scenario,
)
from repro.harness.systems import INTERNAL_CLUSTER
from repro.util.units import MiB


def crash_plan(seed=7):
    return (
        FaultPlan(seed=seed, name="crash+degrade")
        .add(NicDegradation(at_s=0.002, node_index=2, factor=4.0, duration_s=0.5))
        .add(ExecutorCrash(at_s=0.005, exec_id=1))
    )


def scenario(transport, plan=None, mode="abort", workers=4):
    return ChaosScenario(
        name="test-cell",
        system=INTERNAL_CLUSTER,
        n_workers=workers,
        transport=transport,
        plan=plan or crash_plan(),
        mpi_fault_mode=mode,
        cores_per_executor=4,
        shuffle_bytes=64 * MiB,
        deadline_s=60.0,
    )


class TestDeterminism:
    def test_same_seed_reports_byte_identical(self):
        plan = (
            FaultPlan(seed=21, name="noisy")
            .add(ExecutorCrash(at_s=0.004, exec_id=2))
            .add(NicDegradation(at_s=0.002, node_index=1, factor=3.0, duration_s=0.3))
            .add(MessageChaos(at_s=0.0, delay_p=0.2, delay_s=1e-3, duration_s=0.2))
        )
        a = run_scenario(scenario("nio", plan=plan))
        b = run_scenario(scenario("nio", plan=plan))
        assert a.render() == b.render()

    def test_different_seed_changes_chaos(self):
        # The crash is scripted either way; the chaos stream is seeded, so a
        # different seed may reorder/redirect the probabilistic faults. At
        # minimum the rendered seed differs and the run still completes.
        r = run_scenario(
            scenario("nio", plan=crash_plan(seed=8))
        )
        assert r.seed == 8
        assert r.job_completed


class TestTransportAsymmetry:
    def test_nio_recovers_via_resubmission(self):
        r = run_scenario(scenario("nio"))
        assert r.job_completed
        assert r.stage_resubmissions >= 1
        assert r.executors_lost >= 1
        assert r.recovery_seconds > 0

    def test_rdma_recovers_via_resubmission(self):
        r = run_scenario(scenario("rdma"))
        assert r.job_completed
        assert r.stage_resubmissions >= 1
        assert r.recovery_seconds > 0

    def test_mpi_world_abort_loses_the_job(self):
        r = run_scenario(scenario("mpi-opt", mode="abort"))
        assert not r.job_completed
        assert "abort" in r.job_failure.lower()

    def test_mpi_shrink_recovers(self):
        r = run_scenario(scenario("mpi-opt", mode="shrink"))
        assert r.job_completed
        assert r.stage_resubmissions >= 1

    def test_fault_mode_is_na_for_sockets(self):
        r = run_scenario(scenario("nio", mode="abort"))
        assert r.fault_mode == "n/a"


class TestReportRendering:
    def test_matrix_has_one_row_per_cell(self):
        reports = [
            run_scenario(scenario("nio")),
            run_scenario(scenario("mpi-opt", mode="shrink")),
        ]
        table = render_matrix(reports)
        lines = table.splitlines()
        assert len(lines) == 2 + len(reports)  # header + rule + rows
        assert "nio" in table and "mpi-opt" in table and "shrink" in table

    def test_render_mentions_failure_reason(self):
        r = run_scenario(scenario("mpi-basic", mode="abort"))
        assert not r.job_completed
        assert r.job_failure in r.render()
