"""Fault plans and the seeded RNG substreams: determinism is the contract."""

from repro.faults import (
    ExecutorCrash,
    FaultPlan,
    MessageChaos,
    NicDegradation,
    derive_seed,
)
from repro.faults.rng import chaos_stream, plan_stream


class TestSeededStreams:
    def test_derive_seed_is_stable(self):
        assert derive_seed(7, "faults", "plan") == derive_seed(7, "faults", "plan")

    def test_derive_seed_separates_substreams(self):
        assert derive_seed(7, "faults", "plan") != derive_seed(7, "faults", "chaos")
        assert derive_seed(7, "faults", "plan") != derive_seed(8, "faults", "plan")

    def test_same_seed_same_sequence(self):
        a = [plan_stream(42).random() for _ in range(5)]
        b = [plan_stream(42).random() for _ in range(5)]
        assert a == b

    def test_plan_and_chaos_streams_are_independent(self):
        # Drawing from one stream must not perturb the other.
        p1 = plan_stream(3)
        c1 = chaos_stream(3)
        _ = [c1.random() for _ in range(100)]
        p2 = plan_stream(3)
        assert [p1.random() for _ in range(5)] == [p2.random() for _ in range(5)]


class TestFaultPlan:
    def test_random_same_seed_identical(self):
        a = FaultPlan.random(seed=11, n_workers=4, window_s=2.0, n_faults=5)
        b = FaultPlan.random(seed=11, n_workers=4, window_s=2.0, n_faults=5)
        assert a.specs == b.specs

    def test_random_different_seeds_differ(self):
        a = FaultPlan.random(seed=11, n_workers=4, window_s=2.0, n_faults=5)
        b = FaultPlan.random(seed=12, n_workers=4, window_s=2.0, n_faults=5)
        assert a.specs != b.specs

    def test_random_caps_crashes_at_one(self):
        for seed in range(20):
            plan = FaultPlan.random(seed=seed, n_workers=4, window_s=1.0, n_faults=8)
            crashes = [s for s in plan.specs if isinstance(s, ExecutorCrash)]
            assert len(crashes) <= 1

    def test_random_respects_allow_crashes(self):
        for seed in range(20):
            plan = FaultPlan.random(
                seed=seed, n_workers=4, window_s=1.0, n_faults=8, allow_crashes=False
            )
            assert not any(isinstance(s, ExecutorCrash) for s in plan.specs)

    def test_sorted_specs_orders_by_time(self):
        plan = (
            FaultPlan(seed=1)
            .add(NicDegradation(at_s=0.5))
            .add(ExecutorCrash(at_s=0.1))
            .add(MessageChaos(at_s=0.3, drop_p=0.1))
        )
        times = [s.at_s for s in plan.sorted_specs()]
        assert times == sorted(times)
        # add() must not reorder the authored list itself.
        assert [s.at_s for s in plan.specs] == [0.5, 0.1, 0.3]

    def test_describe_lists_every_fault(self):
        plan = (
            FaultPlan(seed=9, name="demo")
            .add(ExecutorCrash(at_s=0.1, exec_id=2))
            .add(NicDegradation(at_s=0.2, node_index=1, factor=4.0, duration_s=0.5))
        )
        text = plan.describe()
        assert "demo" in text and "seed 9" in text
        assert "executor 2" in text
        assert "node 1" in text and "x4" in text
