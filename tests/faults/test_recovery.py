"""Spark-side recovery semantics: retries, resubmission, blacklist, spec-ex."""

import pytest

from repro.faults import (
    AvailabilityReport,
    ExecutorCrash,
    FaultInjector,
    FaultPlan,
    JobFailedError,
    NicDegradation,
    RecoveryPolicy,
    ResilientScheduler,
)
from repro.faults.chaos import make_chaos_profile
from repro.harness.profile import ShuffleReadStage
from repro.harness.systems import INTERNAL_CLUSTER
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster
from repro.util.units import MiB


def make_sim(n_workers=4, transport="nio", seed=0, **kw):
    return SparkSimCluster(
        INTERNAL_CLUSTER, n_workers, transport,
        cores_per_executor=4, seed=seed, **kw,
    )


def run_with_plan(plan, transport="nio", n_workers=4, policy=None):
    """Run the chaos profile under `plan`, armed at the read stage."""
    sim = make_sim(n_workers, transport, seed=plan.seed)
    sim.launch()
    report = AvailabilityReport(
        scenario="unit", transport=transport, fault_mode="n/a", seed=plan.seed
    )
    injector = FaultInjector(
        sim.cluster, mpi_world=sim.transport.mpi_world,
        executors=sim.executors, report=report,
    )
    injector.install(plan)
    sched = ResilientScheduler(sim, policy, report=report)

    def arm_at_read(stage):
        if isinstance(stage, ShuffleReadStage) and not injector._armed:
            injector.arm()

    sched.on_stage_start = arm_at_read
    profile = make_chaos_profile(n_workers, 4, 64 * MiB)
    try:
        result = sched.run_profile(profile, deadline_s=60.0)
    finally:
        sim.shutdown()
    return result, report


class TestRecoveryPolicy:
    def test_defaults_mirror_spark(self):
        p = RecoveryPolicy()
        assert p.max_task_failures == 4
        assert p.blacklist_enabled is True
        assert p.speculation is False

    def test_from_conf(self):
        conf = SparkConf({
            "spark.task.maxFailures": "7",
            "spark.stage.maxConsecutiveAttempts": "2",
            "spark.blacklist.enabled": "false",
            "spark.speculation": "true",
            "spark.speculation.multiplier": "2.5",
            "spark.speculation.quantile": "0.9",
        })
        p = RecoveryPolicy.from_conf(conf)
        assert p.max_task_failures == 7
        assert p.max_stage_attempts == 2
        assert p.blacklist_enabled is False
        assert p.speculation is True
        assert p.speculation_multiplier == 2.5
        assert p.speculation_quantile == 0.9

    def test_blacklist_toggle(self):
        from repro.faults import ExecutorBlacklist

        on = ExecutorBlacklist(enabled=True)
        on.add(3)
        assert on.is_blacklisted(3) and len(on) == 1
        off = ExecutorBlacklist(enabled=False)
        off.add(3)
        assert not off.is_blacklisted(3) and len(off) == 0


class TestCleanRun:
    def test_completes_without_faults(self):
        sim = make_sim()
        sim.launch()
        sched = ResilientScheduler(sim)
        result = sched.run_profile(make_chaos_profile(4, 4, 64 * MiB), 60.0)
        sim.shutdown()
        assert set(result.stage_seconds) == {"gen", "write", "read"}
        assert result.total_seconds > 0

    def test_profile_size_mismatch_rejected(self):
        sim = make_sim(n_workers=2)
        sim.launch()
        sched = ResilientScheduler(sim)
        with pytest.raises(ValueError):
            sched.run_profile(make_chaos_profile(4, 4, 64 * MiB))
        sim.shutdown()


class TestCrashRecovery:
    def test_executor_crash_mid_read_recovers(self):
        plan = FaultPlan(seed=5).add(ExecutorCrash(at_s=0.005, exec_id=1))
        result, report = run_with_plan(plan)
        assert report.executors_lost == 1
        assert report.blacklisted == 1
        assert report.stage_resubmissions >= 1
        # The resubmitted read stage finished: the job ran to completion.
        assert set(result.stage_seconds) == {"gen", "write", "read"}

    def test_recovery_redistributes_lost_columns(self):
        # After recovery nothing should be fetched from the dead executor;
        # the run completing at all (with a resubmission) proves the matrix
        # was re-homed onto survivors.
        plan = FaultPlan(seed=6).add(ExecutorCrash(at_s=0.004, exec_id=0))
        result, report = run_with_plan(plan)
        assert report.stage_resubmissions >= 1
        assert "ExecutorLost" in [ev.kind for ev in report.timeline]

    def test_all_executors_dead_fails_the_job(self):
        plan = FaultPlan(seed=7)
        for e in range(4):
            plan.add(ExecutorCrash(at_s=0.002 + e * 0.001, exec_id=e))
        with pytest.raises(JobFailedError):
            run_with_plan(plan)

    def test_transient_degradation_recovers_without_resubmission(self):
        plan = FaultPlan(seed=8).add(
            NicDegradation(at_s=0.002, node_index=2, factor=4.0, duration_s=0.5)
        )
        result, report = run_with_plan(plan)
        assert report.executors_lost == 0
        # A slow NIC is not a lost executor: fetches finish, just later.
        assert set(result.stage_seconds) == {"gen", "write", "read"}


class TestSpeculation:
    def test_speculative_copy_races_queued_stragglers(self):
        # Oversubscribe the executors (8 tasks per 4-core executor): the
        # second wave of compute tasks queues behind the first, exceeds the
        # multiplier-times-nominal threshold, and gets speculative copies.
        policy = RecoveryPolicy(speculation=True)
        sim = make_sim()
        sim.launch()
        report = AvailabilityReport(
            scenario="spec", transport="nio", fault_mode="n/a", seed=0
        )
        sched = ResilientScheduler(sim, policy, report=report)
        profile = make_chaos_profile(4, cores_per_executor=8, shuffle_bytes=32 * MiB)
        result = sched.run_profile(profile, deadline_s=60.0)
        sim.shutdown()
        assert set(result.stage_seconds) == {"gen", "write", "read"}
        assert report.speculative_launches >= 1

    def test_speculation_off_by_default(self):
        sim = make_sim()
        sim.launch()
        report = AvailabilityReport(
            scenario="nospec", transport="nio", fault_mode="n/a", seed=0
        )
        sched = ResilientScheduler(sim, report=report)
        profile = make_chaos_profile(4, cores_per_executor=8, shuffle_bytes=32 * MiB)
        sched.run_profile(profile, deadline_s=60.0)
        sim.shutdown()
        assert report.speculative_launches == 0
