"""The injector's contract: faults land on LinkState / fault_filter on time."""

from types import SimpleNamespace

import pytest

from repro.faults import (
    AvailabilityReport,
    ExecutorCrash,
    FaultInjector,
    FaultPlan,
    MessageChaos,
    NicDegradation,
    NodeCrash,
    Partition,
    RankKill,
)
from repro.simnet import IB_HDR, SimCluster, SimEngine


def make_cluster(n_nodes=4):
    env = SimEngine()
    cluster = SimCluster(env, IB_HDR, n_nodes=n_nodes, cores_per_node=2)
    return env, cluster


def fresh_report():
    return AvailabilityReport(scenario="t", transport="nio", fault_mode="n/a", seed=0)


class TestArming:
    def test_arm_requires_install(self):
        env, cluster = make_cluster()
        with pytest.raises(RuntimeError, match="install"):
            FaultInjector(cluster).arm()

    def test_double_arm_rejected(self):
        env, cluster = make_cluster()
        inj = FaultInjector(cluster).install(FaultPlan(seed=1))
        inj.arm()
        with pytest.raises(RuntimeError, match="armed"):
            inj.arm()


class TestNodeAndExecutorFaults:
    def test_node_crash_fires_on_schedule(self):
        env, cluster = make_cluster()
        report = fresh_report()
        plan = FaultPlan(seed=1).add(NodeCrash(at_s=0.5, node_index=1))
        FaultInjector(cluster, report=report).install(plan).arm()
        env.run()
        assert cluster.link_state.is_failed(cluster.node(1))
        assert len(report.timeline) == 1
        assert report.timeline[0].t_s == pytest.approx(0.5)
        assert report.timeline[0].kind == "NodeCrash"

    def test_executor_crash_kills_executor_and_host(self):
        env, cluster = make_cluster()
        ex = SimpleNamespace(alive=True, node=cluster.node(2), exec_id=0)
        plan = FaultPlan(seed=1).add(ExecutorCrash(at_s=0.1, exec_id=0))
        inj = FaultInjector(cluster, executors=[ex]).install(plan)
        inj.arm()
        env.run()
        assert ex.alive is False
        assert cluster.link_state.is_failed(cluster.node(2))
        assert inj.fired == plan.specs


class TestLinkFaults:
    def test_nic_degradation_window(self):
        env, cluster = make_cluster()
        plan = FaultPlan(seed=1).add(
            NicDegradation(at_s=0.1, node_index=1, factor=4.0, duration_s=0.4)
        )
        FaultInjector(cluster).install(plan).arm()
        samples = {}

        def probe(env):
            n0, n1 = cluster.node(0), cluster.node(1)
            yield env.timeout(0.3)
            samples["during"] = cluster.link_state.slowdown(n0, n1)
            yield env.timeout(0.5)
            samples["after"] = cluster.link_state.slowdown(n0, n1)

        env.process(probe(env))
        env.run()
        assert samples["during"] == pytest.approx(4.0)
        assert samples["after"] == pytest.approx(1.0)

    def test_partition_heals(self):
        env, cluster = make_cluster()
        plan = FaultPlan(seed=1).add(
            Partition(at_s=0.0, group_a=(0, 1), group_b=(2, 3), duration_s=0.2)
        )
        FaultInjector(cluster).install(plan).arm()
        samples = {}

        def probe(env):
            n0, n2 = cluster.node(0), cluster.node(2)
            yield env.timeout(0.1)
            samples["during"] = cluster.link_state.path_up(n0, n2)
            yield env.timeout(0.2)
            samples["after"] = cluster.link_state.path_up(n0, n2)

        env.process(probe(env))
        env.run()
        assert samples["during"] is False
        assert samples["after"] is True


class TestMessageChaos:
    def test_filter_installed_then_removed(self):
        env, cluster = make_cluster()
        plan = FaultPlan(seed=1).add(
            MessageChaos(at_s=0.0, drop_p=1.0, duration_s=0.2)
        )
        FaultInjector(cluster).install(plan).arm()
        samples = {}

        def probe(env):
            yield env.timeout(0.1)
            samples["filter"] = cluster.fault_filter
            samples["verdict"] = cluster.fault_filter(
                cluster.node(0), cluster.node(1), 1024, None
            )

        env.process(probe(env))
        env.run()
        assert samples["filter"] is not None
        assert samples["verdict"] == ("drop", 0.0)
        # Window closed: the gremlin uninstalls itself.
        assert cluster.fault_filter is None

    def test_min_bytes_spares_small_messages(self):
        env, cluster = make_cluster()
        plan = FaultPlan(seed=1).add(
            MessageChaos(at_s=0.0, drop_p=1.0, min_bytes=4096)
        )
        inj = FaultInjector(cluster).install(plan)
        inj.arm()
        env.run()
        n0, n1 = cluster.node(0), cluster.node(1)
        assert cluster.fault_filter(n0, n1, 100, None) is None
        assert cluster.fault_filter(n0, n1, 8192, None) == ("drop", 0.0)

    def test_chaos_decisions_replay_with_seed(self):
        verdicts = []
        for _ in range(2):
            env, cluster = make_cluster()
            plan = FaultPlan(seed=99).add(
                MessageChaos(at_s=0.0, drop_p=0.3, delay_p=0.3, delay_s=1e-3)
            )
            FaultInjector(cluster).install(plan).arm()
            env.run()
            n0, n1 = cluster.node(0), cluster.node(1)
            verdicts.append(
                [cluster.fault_filter(n0, n1, 1024, None) for _ in range(50)]
            )
        assert verdicts[0] == verdicts[1]


class TestRankKill:
    def test_rank_kill_without_mpi_world_is_recorded_skipped(self):
        env, cluster = make_cluster()
        report = fresh_report()
        plan = FaultPlan(seed=1).add(RankKill(at_s=0.0, gid=3))
        FaultInjector(cluster, report=report).install(plan).arm()
        env.run()
        kinds = [ev.kind for ev in report.timeline]
        assert "skipped" in kinds
