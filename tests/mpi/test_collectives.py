"""Collective algorithm correctness across varied communicator sizes."""

import random

import pytest

from repro.mpi import MPIWorld, RankSpec
from repro.simnet import IB_HDR, SimCluster, SimEngine, mpi_over


def run_collective(n, main, nodes_count=4, causal=False):
    env = SimEngine()
    if causal:
        from repro.obs.causal import CausalTracer

        env.causal = CausalTracer(env)
    cluster = SimCluster(env, IB_HDR, n_nodes=nodes_count, cores_per_node=4)
    world = MPIWorld(env, cluster, mpi_over(IB_HDR))
    specs = [RankSpec(main=main, node=i % nodes_count) for i in range(n)]
    procs = world.launch(specs)
    env.run()
    values = [p.sim_process.value for p in procs]
    if causal:
        return values, env.causal.flight
    return values


SIZES = [1, 2, 3, 4, 5, 8, 13]


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_barrier_synchronizes(self, n):
        def main(proc):
            comm = proc.comm_world
            # Ranks arrive at very different times; all must leave together.
            yield proc.env.timeout(comm.rank * 1.0)
            yield from comm.barrier()
            return proc.env.now

        times = run_collective(n, main)
        # Nobody leaves before the last arrival at t = n-1.
        assert all(t >= (n - 1) for t in times)


class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_bcast_from_zero(self, n):
        def main(proc):
            comm = proc.comm_world
            obj = {"payload": 99} if comm.rank == 0 else None
            value = yield from comm.bcast(obj, root=0)
            return value

        results = run_collective(n, main)
        assert all(r == {"payload": 99} for r in results)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        def main(proc):
            comm = proc.comm_world
            obj = f"root-{comm.rank}" if comm.rank == root else None
            value = yield from comm.bcast(obj, root=root)
            return value

        results = run_collective(4, main)
        assert all(r == f"root-{root}" for r in results)

    def test_bcast_bad_root(self):
        def main(proc):
            comm = proc.comm_world
            value = yield from comm.bcast("x", root=10)
            return value

        with pytest.raises(Exception):
            run_collective(2, main)


class TestGatherScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather_to_root(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.gather(comm.rank * 10, root=0)
            return result

        results = run_collective(n, main)
        assert results[0] == [i * 10 for i in range(n)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter_from_root(self, n):
        def main(proc):
            comm = proc.comm_world
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            value = yield from comm.scatter(objs, root=0)
            return value

        results = run_collective(n, main)
        assert results == [f"item{i}" for i in range(n)]

    def test_scatter_wrong_length(self):
        def main(proc):
            comm = proc.comm_world
            objs = ["only-one"] if comm.rank == 0 else None
            value = yield from comm.scatter(objs, root=0)
            return value

        with pytest.raises(Exception):
            run_collective(3, main)


class TestAllgather:
    @pytest.mark.parametrize("n", SIZES)
    def test_allgather_ring(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.allgather(f"r{comm.rank}")
            return result

        results = run_collective(n, main)
        expected = [f"r{i}" for i in range(n)]
        assert all(r == expected for r in results)


class TestReduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_sum(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.reduce(comm.rank + 1, root=0)
            return result

        results = run_collective(n, main)
        assert results[0] == n * (n + 1) // 2
        assert all(r is None for r in results[1:])

    def test_reduce_custom_op(self):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.reduce(comm.rank + 1, op=max, root=0)
            return result

        results = run_collective(5, main)
        assert results[0] == 5

    @pytest.mark.parametrize("n", SIZES)
    def test_allreduce(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.allreduce(1)
            return result

        results = run_collective(n, main)
        assert all(r == n for r in results)


class TestAlltoall:
    @pytest.mark.parametrize("n", SIZES)
    def test_alltoall_exchange(self, n):
        def main(proc):
            comm = proc.comm_world
            objs = [(comm.rank, j) for j in range(comm.size)]
            result = yield from comm.alltoall(objs)
            return result

        results = run_collective(n, main)
        for i, row in enumerate(results):
            assert row == [(j, i) for j in range(n)]

    def test_alltoall_wrong_length(self):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.alltoall([1])
            return result

        with pytest.raises(Exception):
            run_collective(3, main)

    @pytest.mark.parametrize("n", SIZES)
    def test_alltoall_zero_payload_slots(self, n):
        # Empty/None payloads are real messages in the schedule, not
        # skipped slots — the exchange still delivers them in order.
        def main(proc):
            comm = proc.comm_world
            objs = [None if (comm.rank + j) % 2 else (comm.rank, j)
                    for j in range(comm.size)]
            result = yield from comm.alltoall(objs)
            return result

        results = run_collective(n, main)
        for i, row in enumerate(results):
            expected = [None if (j + i) % 2 else (j, i) for j in range(n)]
            assert row == expected

    def test_alltoall_self_slot_identity(self):
        # The self slot never crosses the wire: the very object goes back.
        def main(proc):
            comm = proc.comm_world
            marker = object()
            objs = [marker for _ in range(comm.size)]
            result = yield from comm.alltoall(objs)
            return result[comm.rank] is marker

        assert all(run_collective(4, main))


def _reference_alltoallv(rows):
    """Pure-python reference: out[i][j] = rows[j][i] (the transpose)."""
    n = len(rows)
    return [[rows[j][i] for j in range(n)] for i in range(n)]


class TestAlltoallv:
    @pytest.mark.parametrize("n", SIZES)
    def test_alltoallv_exchange(self, n):
        def main(proc):
            comm = proc.comm_world
            objs = [(comm.rank, j) for j in range(comm.size)]
            nbytes = [1024 * (comm.rank + j + 1) for j in range(comm.size)]
            result = yield from comm.alltoallv(objs, nbytes=nbytes)
            return result

        results = run_collective(n, main)
        rows = [[(i, j) for j in range(n)] for i in range(n)]
        expected = _reference_alltoallv(rows)
        assert results == expected

    @pytest.mark.parametrize("n", SIZES)
    def test_alltoallv_matches_alltoall(self, n):
        # With uniform payloads alltoallv is exactly alltoall.
        def main(proc):
            comm = proc.comm_world
            objs = [(comm.rank, j) for j in range(comm.size)]
            a = yield from comm.alltoall(objs)
            b = yield from comm.alltoallv(objs)
            return a == b

        assert all(run_collective(n, main))

    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_alltoallv_zero_size_slots(self, n):
        # Zero-byte slots still ride the schedule: every rank gets every
        # peer's slot even when the byte count is 0 (skew-proof rounds).
        def main(proc):
            comm = proc.comm_world
            objs = [(comm.rank, j) for j in range(comm.size)]
            nbytes = [0 if (comm.rank + j) % 2 else 4096
                      for j in range(comm.size)]
            result = yield from comm.alltoallv(objs, nbytes=nbytes)
            return result

        results = run_collective(n, main)
        rows = [[(i, j) for j in range(n)] for i in range(n)]
        assert results == _reference_alltoallv(rows)

    def test_alltoallv_self_slot_identity(self):
        def main(proc):
            comm = proc.comm_world
            marker = object()
            objs = [marker for _ in range(comm.size)]
            nbytes = [0] * comm.size
            result = yield from comm.alltoallv(objs, nbytes=nbytes)
            return result[comm.rank] is marker

        assert all(run_collective(4, main))

    def test_alltoallv_wrong_length(self):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.alltoallv([1])
            return result

        with pytest.raises(Exception):
            run_collective(3, main)

    def test_alltoallv_wrong_nbytes_length(self):
        def main(proc):
            comm = proc.comm_world
            objs = [None] * comm.size
            result = yield from comm.alltoallv(objs, nbytes=[1])
            return result

        with pytest.raises(Exception):
            run_collective(3, main)

    def test_alltoallv_caller_not_in_ranks(self):
        def main(proc):
            comm = proc.comm_world
            objs = [None] * comm.size
            result = yield from comm.alltoallv(objs, ranks=[0, 1])
            return result

        with pytest.raises(Exception):
            run_collective(3, main)

    def test_alltoallv_duplicate_ranks(self):
        def main(proc):
            comm = proc.comm_world
            objs = [None] * comm.size
            result = yield from comm.alltoallv(objs, ranks=[0, 0, 1])
            return result

        with pytest.raises(Exception):
            run_collective(2, main)

    def test_alltoallv_rank_subset(self):
        # Only ranks {0, 2, 3} participate (the ULFM-shrunk schedule);
        # rank 1 sits the exchange out entirely.
        subset = [0, 2, 3]

        def main(proc):
            comm = proc.comm_world
            if comm.rank not in subset:
                yield proc.env.timeout(0)
                return "absent"
            objs = [(comm.rank, j) if j in subset else None
                    for j in range(comm.size)]
            result = yield from comm.alltoallv(
                objs, tag=12345, ranks=subset
            )
            return result

        results = run_collective(4, main)
        assert results[1] == "absent"
        for i in subset:
            for j in range(4):
                assert results[i][j] == ((j, i) if j in subset else None)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_alltoallv_randomized_against_reference(self, seed):
        # Property test: random sizes (zeros included), random payloads —
        # the result is always the transpose of the send matrix, and the
        # shifted-pairwise schedule (verified separately below) never
        # reorders or drops a slot no matter how skewed the sizes are.
        rng = random.Random(seed)
        n = rng.choice([2, 3, 4, 5, 8])
        size_matrix = [
            [rng.choice([0, 0, 64, 4096, 262144]) for _ in range(n)]
            for _ in range(n)
        ]
        rows = [[(i, j, size_matrix[i][j]) for j in range(n)] for i in range(n)]

        def main(proc):
            comm = proc.comm_world
            r = comm.rank
            result = yield from comm.alltoallv(
                rows[r], nbytes=size_matrix[r]
            )
            return result

        results = run_collective(n, main)
        assert results == _reference_alltoallv(rows)

    @pytest.mark.parametrize("n", [3, 4, 5, 8])
    def test_alltoallv_schedule_is_shifted_pairwise(self, n):
        # Pin the round schedule against the reference definition: in
        # round s, rank r sends to (r+s) % n. Observed via the causal
        # trace each per-peer send records (leg="mpi-coll").
        def main(proc):
            comm = proc.comm_world
            objs = [(comm.rank, j) for j in range(comm.size)]
            root = proc.env.causal.mint()  # one trace per rank's exchange
            result = yield from comm.alltoallv(objs, trace_parent=root)
            return result

        results, flight = run_collective(n, main, causal=True)
        rows = [[(i, j) for j in range(n)] for i in range(n)]
        assert results == _reference_alltoallv(rows)
        sends = [ev for ev in flight.events
                 if ev.name == "msg.send" and ev.attrs.get("leg") == "mpi-coll"]
        assert len(sends) == n * (n - 1)
        # Group send events by trace (one trace per rank's exchange, the
        # roots minted in rank order) and check each dst sequence.
        by_trace = {}
        for ev in sends:
            by_trace.setdefault(ev.trace, []).append(ev)
        schedules = [
            [ev.attrs["dst"] for ev in evs] for _, evs in sorted(by_trace.items())
        ]
        expected = sorted(
            [(r + s) % n for s in range(1, n)] for r in range(n)
        )
        assert sorted(schedules) == expected

    def test_alltoallv_deterministic(self):
        # Same spec, two engines: identical completion times to the bit.
        def build():
            def main(proc):
                comm = proc.comm_world
                nbytes = [(comm.rank + j) * 100_000 for j in range(comm.size)]
                yield from comm.alltoallv([None] * comm.size, nbytes=nbytes)
                return proc.env.now

            return run_collective(5, main)

        assert build() == build()

    def test_alltoallv_traced_equals_untraced_timing(self):
        # Tracing must observe, never perturb: byte-identical timing.
        def main(proc):
            comm = proc.comm_world
            nbytes = [(comm.rank * j) * 65536 for j in range(comm.size)]
            yield from comm.alltoallv([None] * comm.size, nbytes=nbytes)
            return proc.env.now

        untraced = run_collective(4, main)
        traced, _flight = run_collective(4, main, causal=True)
        assert traced == untraced


class TestCollectiveIsolation:
    def test_pt2pt_and_collectives_do_not_interfere(self):
        # User pt2pt messages with tags colliding with collective tags must
        # never be swallowed by a collective (separate context ids).
        def main(proc):
            comm = proc.comm_world
            if comm.rank == 0:
                yield from comm.send("user-msg", dest=1, tag=1)
                yield from comm.barrier()
                return "done0"
            value_req = comm.irecv(source=0, tag=1)
            yield from comm.barrier()
            value = yield from value_req.wait()
            return value

        results = run_collective(2, main)
        assert results == ["done0", "user-msg"]

    def test_back_to_back_collectives(self):
        def main(proc):
            comm = proc.comm_world
            a = yield from comm.allgather(comm.rank)
            b = yield from comm.allreduce(comm.rank)
            yield from comm.barrier()
            c = yield from comm.bcast("last" if comm.rank == 0 else None, root=0)
            return (a, b, c)

        results = run_collective(4, main)
        for a, b, c in results:
            assert a == [0, 1, 2, 3]
            assert b == 6
            assert c == "last"
