"""Collective algorithm correctness across varied communicator sizes."""

import pytest

from repro.mpi import MPIWorld, RankSpec
from repro.simnet import IB_HDR, SimCluster, SimEngine, mpi_over


def run_collective(n, main, nodes_count=4):
    env = SimEngine()
    cluster = SimCluster(env, IB_HDR, n_nodes=nodes_count, cores_per_node=4)
    world = MPIWorld(env, cluster, mpi_over(IB_HDR))
    specs = [RankSpec(main=main, node=i % nodes_count) for i in range(n)]
    procs = world.launch(specs)
    env.run()
    return [p.sim_process.value for p in procs]


SIZES = [1, 2, 3, 4, 5, 8, 13]


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_barrier_synchronizes(self, n):
        def main(proc):
            comm = proc.comm_world
            # Ranks arrive at very different times; all must leave together.
            yield proc.env.timeout(comm.rank * 1.0)
            yield from comm.barrier()
            return proc.env.now

        times = run_collective(n, main)
        # Nobody leaves before the last arrival at t = n-1.
        assert all(t >= (n - 1) for t in times)


class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_bcast_from_zero(self, n):
        def main(proc):
            comm = proc.comm_world
            obj = {"payload": 99} if comm.rank == 0 else None
            value = yield from comm.bcast(obj, root=0)
            return value

        results = run_collective(n, main)
        assert all(r == {"payload": 99} for r in results)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        def main(proc):
            comm = proc.comm_world
            obj = f"root-{comm.rank}" if comm.rank == root else None
            value = yield from comm.bcast(obj, root=root)
            return value

        results = run_collective(4, main)
        assert all(r == f"root-{root}" for r in results)

    def test_bcast_bad_root(self):
        def main(proc):
            comm = proc.comm_world
            value = yield from comm.bcast("x", root=10)
            return value

        with pytest.raises(Exception):
            run_collective(2, main)


class TestGatherScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather_to_root(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.gather(comm.rank * 10, root=0)
            return result

        results = run_collective(n, main)
        assert results[0] == [i * 10 for i in range(n)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter_from_root(self, n):
        def main(proc):
            comm = proc.comm_world
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            value = yield from comm.scatter(objs, root=0)
            return value

        results = run_collective(n, main)
        assert results == [f"item{i}" for i in range(n)]

    def test_scatter_wrong_length(self):
        def main(proc):
            comm = proc.comm_world
            objs = ["only-one"] if comm.rank == 0 else None
            value = yield from comm.scatter(objs, root=0)
            return value

        with pytest.raises(Exception):
            run_collective(3, main)


class TestAllgather:
    @pytest.mark.parametrize("n", SIZES)
    def test_allgather_ring(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.allgather(f"r{comm.rank}")
            return result

        results = run_collective(n, main)
        expected = [f"r{i}" for i in range(n)]
        assert all(r == expected for r in results)


class TestReduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_reduce_sum(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.reduce(comm.rank + 1, root=0)
            return result

        results = run_collective(n, main)
        assert results[0] == n * (n + 1) // 2
        assert all(r is None for r in results[1:])

    def test_reduce_custom_op(self):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.reduce(comm.rank + 1, op=max, root=0)
            return result

        results = run_collective(5, main)
        assert results[0] == 5

    @pytest.mark.parametrize("n", SIZES)
    def test_allreduce(self, n):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.allreduce(1)
            return result

        results = run_collective(n, main)
        assert all(r == n for r in results)


class TestAlltoall:
    @pytest.mark.parametrize("n", SIZES)
    def test_alltoall_exchange(self, n):
        def main(proc):
            comm = proc.comm_world
            objs = [(comm.rank, j) for j in range(comm.size)]
            result = yield from comm.alltoall(objs)
            return result

        results = run_collective(n, main)
        for i, row in enumerate(results):
            assert row == [(j, i) for j in range(n)]

    def test_alltoall_wrong_length(self):
        def main(proc):
            comm = proc.comm_world
            result = yield from comm.alltoall([1])
            return result

        with pytest.raises(Exception):
            run_collective(3, main)


class TestCollectiveIsolation:
    def test_pt2pt_and_collectives_do_not_interfere(self):
        # User pt2pt messages with tags colliding with collective tags must
        # never be swallowed by a collective (separate context ids).
        def main(proc):
            comm = proc.comm_world
            if comm.rank == 0:
                yield from comm.send("user-msg", dest=1, tag=1)
                yield from comm.barrier()
                return "done0"
            value_req = comm.irecv(source=0, tag=1)
            yield from comm.barrier()
            value = yield from value_req.wait()
            return value

        results = run_collective(2, main)
        assert results == ["done0", "user-msg"]

    def test_back_to_back_collectives(self):
        def main(proc):
            comm = proc.comm_world
            a = yield from comm.allgather(comm.rank)
            b = yield from comm.allreduce(comm.rank)
            yield from comm.barrier()
            c = yield from comm.bcast("last" if comm.rank == 0 else None, root=0)
            return (a, b, c)

        results = run_collective(4, main)
        for a, b, c in results:
            assert a == [0, 1, 2, 3]
            assert b == 6
            assert c == "last"
