"""Bucketed matching engine vs a reference linear-scan matcher.

The fast-path engine buckets unexpected envelopes and posted receives by
(source, tag, context) with wildcard overflow lists; MPI matching order
must be indistinguishable from the textbook O(n)-scan implementation:

* ``deliver`` matches the earliest-*posted* receive whose spec accepts
  the envelope (posted-order arbitration between exact and wildcard);
* ``post_recv`` claims the earliest-*arrived* matching envelope;
* ``iprobe`` sees exactly what a linear scan of the unexpected queue sees.

Randomized operation streams (seeded — failures reproduce) drive both
implementations and compare every match event plus final queue states.
"""

import random

import pytest

from repro.mpi.envelope import Envelope, Protocol
from repro.mpi.matching import MatchingEngine, _spec_matches
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG
from repro.simnet import SimEngine


class ReferenceMatcher:
    """Straight-from-the-standard linear matcher (unbucketed)."""

    def __init__(self):
        self.unexpected = []  # envelopes, arrival order
        self.posted = []  # (source, tag, ctx, req_id), post order
        self.matches = []  # ("deliver"|"post", envelope payload, req_id, buffered)

    def deliver(self, envl):
        for i, (src, tag, ctx, req_id) in enumerate(self.posted):
            if _spec_matches(src, tag, ctx, envl):
                del self.posted[i]
                self.matches.append(("match", envl.payload, req_id, False))
                return
        self.unexpected.append(envl)

    def post_recv(self, source, tag, ctx, req_id):
        for i, envl in enumerate(self.unexpected):
            if _spec_matches(source, tag, ctx, envl):
                del self.unexpected[i]
                self.matches.append(("match", envl.payload, req_id, True))
                return
        self.posted.append((source, tag, ctx, req_id))

    def iprobe(self, source, tag, ctx):
        return any(_spec_matches(source, tag, ctx, e) for e in self.unexpected)


def _random_spec(rng, sources, tags):
    source = rng.choice(sources + [ANY_SOURCE])
    tag = rng.choice(tags + [ANY_TAG])
    return source, tag


@pytest.mark.parametrize("seed", range(8))
def test_randomized_streams_match_reference(seed):
    rng = random.Random(seed)
    sources = [0, 1, 2, 3]
    tags = [1, 2, 3]
    contexts = [100, 101]

    env = SimEngine()
    matches = []

    def on_match(envl, posted, buffered):
        matches.append(("match", envl.payload, posted.request.req_id, buffered))

    engine = MatchingEngine(env, on_match)
    ref = ReferenceMatcher()

    n_payload = 0
    n_req = 0
    for _ in range(400):
        op = rng.random()
        ctx = rng.choice(contexts)
        if op < 0.45:
            envl = Envelope(
                src_gid=0,
                src_rank=rng.choice(sources),
                dst_gid=99,
                context_id=ctx,
                tag=rng.choice(tags),
                payload=n_payload,
                nbytes=8,
                protocol=Protocol.EAGER,
            )
            n_payload += 1
            engine.deliver(envl)
            ref.deliver(envl)
        elif op < 0.9:
            source, tag = _random_spec(rng, sources, tags)
            req = Request(env, "recv")
            req.req_id = n_req
            n_req += 1
            engine.post_recv(source, tag, ctx, req)
            ref.post_recv(source, tag, ctx, req.req_id)
        else:
            source, tag = _random_spec(rng, sources, tags)
            assert engine.iprobe(source, tag, ctx) == ref.iprobe(source, tag, ctx)

    assert matches == ref.matches
    # Residual queues agree too, in arrival/post order respectively.
    assert [e.payload for e in engine.unexpected] == [
        e.payload for e in ref.unexpected
    ]
    assert [p.request.req_id for p in engine.posted] == [
        req_id for (_, _, _, req_id) in ref.posted
    ]


def test_wildcard_heavy_stream_matches_reference():
    # All-wildcard receives stress the overflow list + seq arbitration.
    rng = random.Random(1234)
    env = SimEngine()
    matches = []
    engine = MatchingEngine(
        env, lambda e, p, b: matches.append((e.payload, p.request.req_id, b))
    )
    ref = ReferenceMatcher()
    for i in range(200):
        if rng.random() < 0.5:
            envl = Envelope(
                src_gid=0,
                src_rank=rng.randrange(3),
                dst_gid=99,
                context_id=100,
                tag=rng.randrange(3),
                payload=i,
                nbytes=8,
                protocol=Protocol.EAGER,
            )
            engine.deliver(envl)
            ref.deliver(envl)
        else:
            req = Request(env, "recv")
            req.req_id = i
            engine.post_recv(ANY_SOURCE, ANY_TAG, 100, req)
            ref.post_recv(ANY_SOURCE, ANY_TAG, 100, req.req_id)
    assert matches == [(p, r, b) for (_, p, r, b) in ref.matches]
