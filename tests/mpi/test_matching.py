"""Unit tests for the MPI matching engine (queues, wildcards, probes)."""

import pytest

from repro.mpi.envelope import Envelope, Protocol
from repro.mpi.matching import MatchingEngine
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.simnet import SimEngine


@pytest.fixture
def env():
    return SimEngine()


def make_envelope(src_rank=0, tag=1, ctx=100, nbytes=10, seq_payload=None):
    return Envelope(
        src_gid=src_rank,
        src_rank=src_rank,
        dst_gid=99,
        context_id=ctx,
        tag=tag,
        payload=seq_payload,
        nbytes=nbytes,
        protocol=Protocol.EAGER,
    )


@pytest.fixture
def engine(env):
    matches = []

    def on_match(envl, posted, buffered):
        matches.append((envl, posted, buffered))

    eng = MatchingEngine(env, on_match)
    eng.test_matches = matches
    return eng


class TestDelivery:
    def test_unmatched_goes_to_unexpected(self, engine):
        engine.deliver(make_envelope())
        assert len(engine.unexpected) == 1
        assert engine.test_matches == []

    def test_posted_recv_matches_arrival(self, env, engine):
        req = Request(env, "recv")
        engine.post_recv(0, 1, 100, req)
        engine.deliver(make_envelope())
        assert len(engine.test_matches) == 1
        _, _, buffered = engine.test_matches[0]
        assert buffered is False
        assert engine.n_posted_matches == 1

    def test_recv_matches_unexpected_with_buffer_flag(self, env, engine):
        engine.deliver(make_envelope())
        req = Request(env, "recv")
        engine.post_recv(0, 1, 100, req)
        _, _, buffered = engine.test_matches[0]
        assert buffered is True
        assert engine.n_unexpected_matches == 1

    def test_fifo_matching_order(self, env, engine):
        engine.deliver(make_envelope(seq_payload="first"))
        engine.deliver(make_envelope(seq_payload="second"))
        engine.post_recv(0, 1, 100, Request(env, "recv"))
        assert engine.test_matches[0][0].payload == "first"

    def test_context_isolation(self, env, engine):
        engine.deliver(make_envelope(ctx=100))
        engine.post_recv(0, 1, 102, Request(env, "recv"))
        assert engine.test_matches == []
        assert len(engine.posted) == 1
        assert len(engine.unexpected) == 1

    def test_wildcard_source_and_tag(self, env, engine):
        engine.deliver(make_envelope(src_rank=5, tag=9))
        engine.post_recv(ANY_SOURCE, ANY_TAG, 100, Request(env, "recv"))
        assert len(engine.test_matches) == 1

    def test_selective_recv_skips_nonmatching(self, env, engine):
        engine.deliver(make_envelope(tag=1))
        engine.deliver(make_envelope(tag=2))
        engine.post_recv(0, 2, 100, Request(env, "recv"))
        assert engine.test_matches[0][0].tag == 2
        assert len(engine.unexpected) == 1  # tag=1 still queued

    def test_posted_order_respected(self, env, engine):
        r1, r2 = Request(env, "recv"), Request(env, "recv")
        engine.post_recv(ANY_SOURCE, ANY_TAG, 100, r1)
        engine.post_recv(ANY_SOURCE, ANY_TAG, 100, r2)
        engine.deliver(make_envelope())
        assert engine.test_matches[0][1].request is r1


class TestProbes:
    def test_iprobe_counts_calls(self, engine):
        assert engine.iprobe(ANY_SOURCE, ANY_TAG, 100) is False
        engine.deliver(make_envelope())
        assert engine.iprobe(ANY_SOURCE, ANY_TAG, 100) is True
        assert engine.n_iprobe_calls == 2

    def test_iprobe_fills_status(self, engine):
        engine.deliver(make_envelope(src_rank=3, tag=7, nbytes=64))
        status = Status()
        assert engine.iprobe(3, 7, 100, status)
        assert (status.source, status.tag, status.nbytes) == (3, 7, 64)

    def test_iprobe_does_not_consume(self, engine):
        engine.deliver(make_envelope())
        engine.iprobe(ANY_SOURCE, ANY_TAG, 100)
        assert len(engine.unexpected) == 1

    def test_probe_event_immediate_when_queued(self, engine):
        engine.deliver(make_envelope())
        ev = engine.probe_event(ANY_SOURCE, ANY_TAG, 100)
        assert ev.triggered

    def test_probe_event_fires_on_arrival(self, env, engine):
        ev = engine.probe_event(0, 1, 100)
        assert not ev.triggered
        engine.deliver(make_envelope())
        assert ev.triggered
        assert ev.value.tag == 1

    def test_probe_event_filter(self, env, engine):
        ev = engine.probe_event(0, 5, 100)
        engine.deliver(make_envelope(tag=1))
        assert not ev.triggered
        engine.deliver(make_envelope(tag=5))
        assert ev.triggered
