"""Unit tests for the MPI matching engine (queues, wildcards, probes)."""

import pytest

from repro.mpi.envelope import Envelope, Protocol
from repro.mpi.matching import MatchingEngine
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.simnet import SimEngine


@pytest.fixture
def env():
    return SimEngine()


def make_envelope(src_rank=0, tag=1, ctx=100, nbytes=10, seq_payload=None):
    return Envelope(
        src_gid=src_rank,
        src_rank=src_rank,
        dst_gid=99,
        context_id=ctx,
        tag=tag,
        payload=seq_payload,
        nbytes=nbytes,
        protocol=Protocol.EAGER,
    )


@pytest.fixture
def engine(env):
    matches = []

    def on_match(envl, posted, buffered):
        matches.append((envl, posted, buffered))

    eng = MatchingEngine(env, on_match)
    eng.test_matches = matches
    return eng


class TestDelivery:
    def test_unmatched_goes_to_unexpected(self, engine):
        engine.deliver(make_envelope())
        assert len(engine.unexpected) == 1
        assert engine.test_matches == []

    def test_posted_recv_matches_arrival(self, env, engine):
        req = Request(env, "recv")
        engine.post_recv(0, 1, 100, req)
        engine.deliver(make_envelope())
        assert len(engine.test_matches) == 1
        _, _, buffered = engine.test_matches[0]
        assert buffered is False
        assert engine.n_posted_matches == 1

    def test_recv_matches_unexpected_with_buffer_flag(self, env, engine):
        engine.deliver(make_envelope())
        req = Request(env, "recv")
        engine.post_recv(0, 1, 100, req)
        _, _, buffered = engine.test_matches[0]
        assert buffered is True
        assert engine.n_unexpected_matches == 1

    def test_fifo_matching_order(self, env, engine):
        engine.deliver(make_envelope(seq_payload="first"))
        engine.deliver(make_envelope(seq_payload="second"))
        engine.post_recv(0, 1, 100, Request(env, "recv"))
        assert engine.test_matches[0][0].payload == "first"

    def test_context_isolation(self, env, engine):
        engine.deliver(make_envelope(ctx=100))
        engine.post_recv(0, 1, 102, Request(env, "recv"))
        assert engine.test_matches == []
        assert len(engine.posted) == 1
        assert len(engine.unexpected) == 1

    def test_wildcard_source_and_tag(self, env, engine):
        engine.deliver(make_envelope(src_rank=5, tag=9))
        engine.post_recv(ANY_SOURCE, ANY_TAG, 100, Request(env, "recv"))
        assert len(engine.test_matches) == 1

    def test_selective_recv_skips_nonmatching(self, env, engine):
        engine.deliver(make_envelope(tag=1))
        engine.deliver(make_envelope(tag=2))
        engine.post_recv(0, 2, 100, Request(env, "recv"))
        assert engine.test_matches[0][0].tag == 2
        assert len(engine.unexpected) == 1  # tag=1 still queued

    def test_posted_order_respected(self, env, engine):
        r1, r2 = Request(env, "recv"), Request(env, "recv")
        engine.post_recv(ANY_SOURCE, ANY_TAG, 100, r1)
        engine.post_recv(ANY_SOURCE, ANY_TAG, 100, r2)
        engine.deliver(make_envelope())
        assert engine.test_matches[0][1].request is r1


class TestProbes:
    def test_iprobe_counts_calls(self, engine):
        assert engine.iprobe(ANY_SOURCE, ANY_TAG, 100) is False
        engine.deliver(make_envelope())
        assert engine.iprobe(ANY_SOURCE, ANY_TAG, 100) is True
        assert engine.n_iprobe_calls == 2

    def test_iprobe_fills_status(self, engine):
        engine.deliver(make_envelope(src_rank=3, tag=7, nbytes=64))
        status = Status()
        assert engine.iprobe(3, 7, 100, status)
        assert (status.source, status.tag, status.nbytes) == (3, 7, 64)

    def test_iprobe_does_not_consume(self, engine):
        engine.deliver(make_envelope())
        engine.iprobe(ANY_SOURCE, ANY_TAG, 100)
        assert len(engine.unexpected) == 1

    def test_probe_event_immediate_when_queued(self, engine):
        engine.deliver(make_envelope())
        ev = engine.probe_event(ANY_SOURCE, ANY_TAG, 100)
        assert ev.triggered

    def test_probe_event_fires_on_arrival(self, env, engine):
        ev = engine.probe_event(0, 1, 100)
        assert not ev.triggered
        engine.deliver(make_envelope())
        assert ev.triggered
        assert ev.value.tag == 1

    def test_probe_event_filter(self, env, engine):
        ev = engine.probe_event(0, 5, 100)
        engine.deliver(make_envelope(tag=1))
        assert not ev.triggered
        engine.deliver(make_envelope(tag=5))
        assert ev.triggered

    def test_wake_order_across_wildcard_buckets(self, env, engine):
        # Waiters land in four different buckets (exact, ANY_SOURCE,
        # ANY_TAG, both) but must wake in registration order — the
        # bucketed rewrite merges them by waiter seq.
        specs = [
            (0, 1), (ANY_SOURCE, 1), (0, ANY_TAG), (ANY_SOURCE, ANY_TAG),
            (0, 1), (ANY_SOURCE, ANY_TAG),
        ]
        order = []
        for i, (src, tag) in enumerate(specs):
            ev = engine.probe_event(src, tag, 100)
            ev.callbacks.append(lambda e, i=i: order.append(i))
        engine.deliver(make_envelope(src_rank=0, tag=1))
        env.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_nonmatching_buckets_stay_parked(self, env, engine):
        miss_src = engine.probe_event(3, 1, 100)
        miss_tag = engine.probe_event(0, 9, 100)
        miss_ctx = engine.probe_event(0, 1, 777)
        hit = engine.probe_event(0, 1, 100)
        engine.deliver(make_envelope(src_rank=0, tag=1))
        assert hit.triggered
        assert not miss_src.triggered
        assert not miss_tag.triggered
        assert not miss_ctx.triggered

    def test_wake_probes_empty_drains_in_order(self, env, engine):
        order = []
        for i, (src, tag) in enumerate([(0, 1), (ANY_SOURCE, 5), (2, ANY_TAG)]):
            ev = engine.probe_event(src, tag, 100)
            ev.callbacks.append(lambda e, i=i: order.append(i))
        engine.wake_probes_empty()
        env.run()
        assert order == [0, 1, 2]
        # The structure is fully drained: a later delivery wakes nothing.
        engine.deliver(make_envelope())
        assert len(engine.unexpected) == 1


class TestFailPosted:
    def test_thousand_posted_fail_half(self, env, engine):
        # 1000 posted receives spread over exact buckets and the wildcard
        # list; failing every even tag must complete exactly those 500 in
        # post order and leave the rest matchable.
        reqs = [Request(env, "recv") for _ in range(1000)]
        for i, req in enumerate(reqs):
            if i % 3 == 0:
                engine.post_recv(ANY_SOURCE, i, 100, req)
            else:
                engine.post_recv(i % 7, i, 100, req)
        fail_order = []
        for i, req in enumerate(reqs):
            req.event.callbacks.append(lambda e, i=i: fail_order.append(i))
        n = engine.fail_posted(
            lambda p: p.tag % 2 == 0, lambda: RuntimeError("rank died")
        )
        assert n == 500
        env.run()
        assert fail_order == list(range(0, 1000, 2))  # post order
        for i, req in enumerate(reqs):
            if i % 2 == 0:
                assert req.event.triggered and not req.event.ok
            else:
                assert not req.event.triggered
        assert len(engine.posted) == 500

    def test_survivors_still_match(self, env, engine):
        keep, kill = Request(env, "recv"), Request(env, "recv")
        engine.post_recv(0, 1, 100, keep)
        engine.post_recv(0, 2, 100, kill)
        assert engine.fail_posted(lambda p: p.tag == 2, RuntimeError) == 1
        engine.deliver(make_envelope(tag=1))
        assert engine.test_matches[0][1].request is keep
