"""Dynamic Process Management tests: the paper's Fig-3 launch flow."""

import pytest

from repro.mpi import MPIWorld, RankSpec, SpawnError, SpawnSpec
from repro.simnet import IB_HDR, SimCluster, SimEngine, mpi_over


def make_world(n_nodes=4):
    env = SimEngine()
    cluster = SimCluster(env, IB_HDR, n_nodes=n_nodes, cores_per_node=8)
    world = MPIWorld(env, cluster, mpi_over(IB_HDR))
    return env, world


class TestSpawnMultiple:
    def test_children_get_own_world_and_parent_comm(self):
        env, world = make_world()
        child_results = []

        def child_main(proc):
            comm = proc.comm_world
            assert proc.parent_comm is not None
            yield proc.env.timeout(0)
            child_results.append((comm.rank, comm.size, proc.parent_comm.remote_size))
            return "child-done"

        def parent_main(proc):
            comm = proc.comm_world
            specs = [
                SpawnSpec(main=child_main, node=0, count=1, name="exec"),
                SpawnSpec(main=child_main, node=1, count=1, name="exec"),
            ]
            intercomm = yield from comm.spawn_multiple(
                specs if comm.rank == 0 else None, root=0
            )
            return intercomm.remote_size

        procs = world.launch([RankSpec(main=parent_main, node=i) for i in range(2)])
        env.run()
        assert [p.sim_process.value for p in procs] == [2, 2]
        assert sorted(child_results) == [(0, 2, 2), (1, 2, 2)]

    def test_parent_child_pt2pt_over_intercomm(self):
        env, world = make_world()

        def child_main(proc):
            parent = proc.parent_comm
            value = yield from parent.recv(source=0, tag=1)
            yield from parent.send(value * 2, dest=0, tag=2)
            return value

        def parent_single(proc):
            comm = proc.comm_world
            intercomm = yield from comm.spawn(
                SpawnSpec(main=child_main, node=1, count=1), root=0
            )
            yield from intercomm.send(21, dest=0, tag=1)
            result = yield from intercomm.recv(source=0, tag=2)
            return result

        procs = world.launch([RankSpec(main=parent_single, node=0)])
        env.run()
        assert procs[0].sim_process.value == 42

    def test_children_communicate_over_dpm_comm(self):
        # Paper: "Communication between executors is carried out using
        # DPM_COMM" — the children's own COMM_WORLD.
        env, world = make_world()

        def child_with_barrier(proc):
            comm = proc.comm_world  # DPM_COMM
            assert comm.name == "DPM_COMM"
            gathered = yield from comm.allgather(f"exec-{comm.rank}")
            yield from proc.parent_comm.barrier()
            return gathered

        def parent(proc):
            comm = proc.comm_world
            specs = [SpawnSpec(main=child_with_barrier, node=n, count=1) for n in range(3)]
            intercomm = yield from comm.spawn_multiple(
                specs if comm.rank == 0 else None, root=0
            )
            yield from intercomm.barrier()
            return "ok"

        procs = world.launch([RankSpec(main=parent, node=0), RankSpec(main=parent, node=1)])
        env.run()
        assert all(p.sim_process.value == "ok" for p in procs)
        # The three children each saw the full DPM_COMM gather.
        children = [p for gid, p in world._procs.items() if p.comm_world.name == "DPM_COMM"]
        assert len(children) == 3
        for child in children:
            assert child.sim_process.value == ["exec-0", "exec-1", "exec-2"]

    def test_spawn_count_expands(self):
        env, world = make_world()

        def child_main(proc):
            yield proc.env.timeout(0)
            return proc.comm_world.size

        def parent(proc):
            comm = proc.comm_world
            spec = SpawnSpec(main=child_main, node=2, count=4)
            intercomm = yield from comm.spawn(spec, root=0)
            return intercomm.remote_size

        procs = world.launch([RankSpec(main=parent, node=0)])
        env.run()
        assert procs[0].sim_process.value == 4

    def test_invalid_count_rejected(self):
        with pytest.raises(SpawnError):
            SpawnSpec(main=lambda p: iter(()), node=0, count=0)

    def test_empty_specs_rejected(self):
        env, world = make_world()

        def parent(proc):
            comm = proc.comm_world
            intercomm = yield from comm.spawn_multiple([], root=0)
            return intercomm

        world.launch([RankSpec(main=parent, node=0)])
        with pytest.raises(SpawnError):
            env.run()

    def test_spawn_takes_time(self):
        env, world = make_world()

        def child_main(proc):
            yield proc.env.timeout(0)

        def parent(proc):
            comm = proc.comm_world
            yield from comm.spawn(SpawnSpec(main=child_main, node=1), root=0)
            return proc.env.now

        procs = world.launch([RankSpec(main=parent, node=0)])
        env.run()
        from repro.mpi import SPAWN_COST_S

        assert procs[0].sim_process.value >= SPAWN_COST_S

    def test_intercomm_bcast_to_children(self):
        env, world = make_world()

        def child_main(proc):
            value = yield from proc.parent_comm.bcast_local_root(
                None, root_rank=0, is_root_group=False
            )
            return value

        def parent(proc):
            comm = proc.comm_world
            specs = [SpawnSpec(main=child_main, node=n) for n in range(3)]
            intercomm = yield from comm.spawn_multiple(
                specs if comm.rank == 0 else None, root=0
            )
            yield from intercomm.bcast_local_root(
                "jar-metadata", root_rank=0, is_root_group=True
            )
            return "sent"

        world.launch([RankSpec(main=parent, node=0)])
        env.run()
        children = [p for p in world._procs.values() if p.comm_world.name == "DPM_COMM"]
        assert [c.sim_process.value for c in children] == ["jar-metadata"] * 3
