"""Point-to-point semantics: send/recv, wildcards, ordering, protocols."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MPIWorld, RankSpec, Status, TagError
from repro.simnet import IB_HDR, SimCluster, SimEngine, mpi_over
from repro.util.units import KiB, MiB


def make_world(n_nodes=2, cores=4):
    env = SimEngine()
    cluster = SimCluster(env, IB_HDR, n_nodes=n_nodes, cores_per_node=cores)
    world = MPIWorld(env, cluster, mpi_over(IB_HDR))
    return env, cluster, world


def run_ranks(world, mains, nodes=None):
    """Launch one rank per main function; return their sim processes."""
    nodes = nodes or [i % len(world.cluster.nodes) for i in range(len(mains))]
    specs = [RankSpec(main=m, node=n) for m, n in zip(mains, nodes)]
    procs = world.launch(specs)
    world.env.run()
    return [p.sim_process.value for p in procs]


class TestBasicSendRecv:
    def test_two_rank_roundtrip(self):
        env, cluster, world = make_world()

        def sender(proc):
            comm = proc.comm_world
            yield from comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return "sent"

        def receiver(proc):
            comm = proc.comm_world
            data = yield from comm.recv(source=0, tag=11)
            return data

        sent, received = run_ranks(world, [sender, receiver])
        assert sent == "sent"
        assert received == {"a": 7, "b": 3.14}

    def test_rank_and_size(self):
        env, cluster, world = make_world()

        def main(proc):
            yield proc.env.timeout(0)
            return (proc.comm_world.rank, proc.comm_world.size)

        results = run_ranks(world, [main] * 3, nodes=[0, 1, 0])
        assert results == [(0, 3), (1, 3), (2, 3)]

    def test_send_to_self(self):
        env, cluster, world = make_world(n_nodes=1)

        def main(proc):
            comm = proc.comm_world
            req = comm.irecv(source=0, tag=5)
            yield from comm.send("self-msg", dest=0, tag=5)
            value = yield from req.wait()
            return value

        (result,) = run_ranks(world, [main], nodes=[0])
        assert result == "self-msg"

    def test_status_filled(self):
        env, cluster, world = make_world()

        def sender(proc):
            yield from proc.comm_world.send(b"x" * 500, dest=1, tag=42)

        def receiver(proc):
            status = Status()
            yield from proc.comm_world.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return (status.Get_source(), status.Get_tag(), status.nbytes)

        _, result = run_ranks(world, [sender, receiver])
        assert result == (0, 42, 500)

    def test_bad_tag_rejected(self):
        env, cluster, world = make_world()

        def sender(proc):
            yield from proc.comm_world.send("x", dest=1, tag=-3)

        def receiver(proc):
            value = yield from proc.comm_world.recv()
            return value

        with pytest.raises(TagError):
            run_ranks(world, [sender, receiver])

    def test_explicit_nbytes_override(self):
        env, cluster, world = make_world()

        def sender(proc):
            # Tiny sample payload, nominal 4 MiB on the wire.
            yield from proc.comm_world.send("sample", dest=1, nbytes=4 * MiB)

        def receiver(proc):
            status = Status()
            value = yield from proc.comm_world.recv(status=status)
            return (value, status.nbytes)

        _, result = run_ranks(world, [sender, receiver])
        assert result == ("sample", 4 * MiB)


class TestMatchingSemantics:
    def test_tag_selectivity(self):
        env, cluster, world = make_world()

        def sender(proc):
            comm = proc.comm_world
            yield from comm.send("t1", dest=1, tag=1)
            yield from comm.send("t2", dest=1, tag=2)

        def receiver(proc):
            comm = proc.comm_world
            second = yield from comm.recv(source=0, tag=2)
            first = yield from comm.recv(source=0, tag=1)
            return (first, second)

        _, result = run_ranks(world, [sender, receiver])
        assert result == ("t1", "t2")

    def test_non_overtaking_same_tag(self):
        env, cluster, world = make_world()

        def sender(proc):
            comm = proc.comm_world
            for i in range(5):
                yield from comm.send(i, dest=1, tag=7)

        def receiver(proc):
            comm = proc.comm_world
            got = []
            for _ in range(5):
                value = yield from comm.recv(source=0, tag=7)
                got.append(value)
            return got

        _, result = run_ranks(world, [sender, receiver])
        assert result == [0, 1, 2, 3, 4]

    def test_any_source_wildcard(self):
        env, cluster, world = make_world(n_nodes=3)

        def sender(proc):
            yield from proc.comm_world.send(f"from-{proc.comm_world.rank}", dest=2, tag=0)

        def receiver(proc):
            comm = proc.comm_world
            got = set()
            for _ in range(2):
                value = yield from comm.recv(source=ANY_SOURCE, tag=0)
                got.add(value)
            return got

        results = run_ranks(world, [sender, sender, receiver], nodes=[0, 1, 2])
        assert results[2] == {"from-0", "from-1"}

    def test_unexpected_queue_then_match(self):
        # Message arrives before recv is posted: unexpected queue path.
        env, cluster, world = make_world()

        def sender(proc):
            yield from proc.comm_world.send("early", dest=1, tag=9)

        def receiver(proc):
            comm = proc.comm_world
            yield proc.env.timeout(1.0)  # let the message sit unexpected
            assert comm.iprobe(source=0, tag=9)
            value = yield from comm.recv(source=0, tag=9)
            return (value, proc.matching.n_unexpected_matches)

        _, result = run_ranks(world, [sender, receiver])
        assert result == ("early", 1)

    def test_preposted_recv_fast_path(self):
        env, cluster, world = make_world()

        def sender(proc):
            yield proc.env.timeout(1.0)
            yield from proc.comm_world.send("late", dest=1, tag=9)

        def receiver(proc):
            comm = proc.comm_world
            value = yield from comm.recv(source=0, tag=9)
            return (value, proc.matching.n_posted_matches)

        _, result = run_ranks(world, [sender, receiver])
        assert result == ("late", 1)


class TestProbes:
    def test_iprobe_no_message(self):
        env, cluster, world = make_world()

        def main(proc):
            yield proc.env.timeout(0)
            return proc.comm_world.iprobe()

        def idle(proc):
            yield proc.env.timeout(0)

        result, _ = run_ranks(world, [main, idle])
        assert result is False

    def test_iprobe_fills_status_without_consuming(self):
        env, cluster, world = make_world()

        def sender(proc):
            yield from proc.comm_world.send(b"z" * 256, dest=1, tag=3)

        def receiver(proc):
            comm = proc.comm_world
            yield proc.env.timeout(1.0)
            status = Status()
            flag = comm.iprobe(source=0, tag=3, status=status)
            assert flag and status.nbytes == 256
            # Probe again: still there.
            assert comm.iprobe(source=0, tag=3)
            value = yield from comm.recv(source=0, tag=3)
            return len(value)

        _, result = run_ranks(world, [sender, receiver])
        assert result == 256

    def test_blocking_probe_waits(self):
        env, cluster, world = make_world()

        def sender(proc):
            yield proc.env.timeout(2.0)
            yield from proc.comm_world.send("probed", dest=1, tag=8)

        def receiver(proc):
            comm = proc.comm_world
            status = Status()
            yield from comm.probe(source=0, tag=8, status=status)
            t_probe = proc.env.now
            value = yield from comm.recv(source=0, tag=8)
            return (t_probe >= 2.0, status.tag, value)

        _, result = run_ranks(world, [sender, receiver])
        assert result == (True, 8, "probed")


class TestProtocols:
    def test_eager_send_returns_before_delivery(self):
        env, cluster, world = make_world()
        model = mpi_over(IB_HDR)
        times = {}

        def sender(proc):
            comm = proc.comm_world
            yield from comm.send("small", dest=1, nbytes=1 * KiB)
            times["send_done"] = proc.env.now

        def receiver(proc):
            yield proc.env.timeout(0.5)
            value = yield from proc.comm_world.recv(source=0)
            times["recv_done"] = proc.env.now
            return value

        run_ranks(world, [sender, receiver])
        # Eager: sender completes locally, long before the receiver takes it.
        assert times["send_done"] < 0.5
        assert times["recv_done"] >= 0.5

    def test_rendezvous_send_blocks_until_matched(self):
        env, cluster, world = make_world()
        times = {}

        def sender(proc):
            comm = proc.comm_world
            yield from comm.send("big", dest=1, nbytes=8 * MiB)
            times["send_done"] = proc.env.now

        def receiver(proc):
            yield proc.env.timeout(0.5)  # delay posting the recv
            value = yield from proc.comm_world.recv(source=0)
            times["recv_done"] = proc.env.now
            return value

        run_ranks(world, [sender, receiver])
        # Rendezvous: the send cannot complete before the recv was posted.
        assert times["send_done"] >= 0.5

    def test_rendezvous_timing_scales_with_size(self):
        def roundtrip_time(nbytes):
            env, cluster, world = make_world()

            def sender(proc):
                yield from proc.comm_world.send("x", dest=1, nbytes=nbytes)

            def receiver(proc):
                yield from proc.comm_world.recv(source=0)
                return proc.env.now

            _, t = run_ranks(world, [sender, receiver])
            return t

        assert roundtrip_time(16 * MiB) > 3 * roundtrip_time(1 * MiB)


class TestNonblocking:
    def test_isend_irecv(self):
        env, cluster, world = make_world()

        def sender(proc):
            comm = proc.comm_world
            reqs = [comm.isend(i, dest=1, tag=i) for i in range(3)]
            for req in reqs:
                yield from req.wait()
            return "all-sent"

        def receiver(proc):
            comm = proc.comm_world
            reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
            values = []
            for req in reqs:
                value = yield from req.wait()
                values.append(value)
            return values

        sent, received = run_ranks(world, [sender, receiver])
        assert sent == "all-sent"
        assert received == [0, 1, 2]

    def test_request_test_polls(self):
        env, cluster, world = make_world()

        def sender(proc):
            yield proc.env.timeout(1.0)
            yield from proc.comm_world.send("x", dest=1)

        def receiver(proc):
            comm = proc.comm_world
            req = comm.irecv(source=0)
            flag, _ = req.test()
            assert not flag
            while True:
                flag, value = req.test()
                if flag:
                    return value
                yield proc.env.timeout(0.1)

        _, result = run_ranks(world, [sender, receiver])
        assert result == "x"

    def test_sendrecv_no_deadlock(self):
        env, cluster, world = make_world()

        def main(proc):
            comm = proc.comm_world
            other = 1 - comm.rank
            value = yield from comm.sendrecv(f"from-{comm.rank}", dest=other)
            return value

        a, b = run_ranks(world, [main, main])
        assert a == "from-1"
        assert b == "from-0"
