"""Unit tests for repro.util.config."""

import pytest

from repro.util.config import Config, ConfigError
from repro.util.units import GiB, MiB


class TestConfigBasics:
    def test_set_and_get(self):
        conf = Config().set("spark.app.name", "test")
        assert conf.get("spark.app.name") == "test"

    def test_get_default(self):
        assert Config().get("missing", 42) == 42

    def test_require_raises(self):
        with pytest.raises(ConfigError, match="missing required"):
            Config().require("spark.master")

    def test_set_if_missing(self):
        conf = Config({"a": 1}).set_if_missing("a", 2).set_if_missing("b", 3)
        assert conf.get("a") == 1
        assert conf.get("b") == 3

    def test_contains_and_iter(self):
        conf = Config({"b": 2, "a": 1})
        assert "a" in conf and "c" not in conf
        assert list(conf) == [("a", 1), ("b", 2)]

    def test_copy_is_independent(self):
        conf = Config({"a": 1})
        clone = conf.copy().set("a", 2)
        assert conf.get("a") == 1
        assert clone.get("a") == 2


class TestTypedAccessors:
    def test_get_int_parses_strings(self):
        assert Config({"cores": "56"}).get_int("cores") == 56

    def test_get_int_bad_value(self):
        with pytest.raises(ConfigError, match="not an int"):
            Config({"cores": "lots"}).get_int("cores")

    def test_get_float(self):
        assert Config({"f": "2.5"}).get_float("f") == 2.5

    @pytest.mark.parametrize("raw,expected", [("true", True), ("0", False), (True, True), ("off", False)])
    def test_get_bool(self, raw, expected):
        assert Config({"flag": raw}).get_bool("flag") is expected

    def test_get_bool_bad(self):
        with pytest.raises(ConfigError):
            Config({"flag": "maybe"}).get_bool("flag")

    def test_get_bytes_spark_sizes(self):
        conf = Config({"spark.executor.memory": "120g", "buf": "48m"})
        assert conf.get_bytes("spark.executor.memory") == 120 * GiB
        assert conf.get_bytes("buf") == 48 * MiB

    def test_get_bytes_default(self):
        assert Config().get_bytes("x", "1m") == 1 * MiB

    def test_missing_typed_raises(self):
        with pytest.raises(ConfigError):
            Config().get_int("nope")
