"""Unit + property tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import OnlineStats, percentile, summarize


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = OnlineStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.n == 8
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(2.138, abs=1e-3)
        assert s.min == 2.0 and s.max == 9.0
        assert s.total == 40.0

    def test_merge_matches_combined(self):
        a, b, combined = OnlineStats(), OnlineStats(), OnlineStats()
        xs, ys = [1.0, 2.0, 3.0], [10.0, 20.0]
        a.extend(xs)
        b.extend(ys)
        combined.extend(xs + ys)
        a.merge(b)
        assert a.n == combined.n
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min and a.max == combined.max

    def test_merge_into_empty(self):
        a, b = OnlineStats(), OnlineStats()
        b.extend([5.0, 7.0])
        a.merge(b)
        assert a.n == 2 and a.mean == 6.0

    def test_merge_empty_into_nonempty_is_noop(self):
        a, b = OnlineStats(), OnlineStats()
        a.extend([5.0, 7.0])
        a.merge(b)
        assert a.n == 2
        assert a.mean == 6.0
        assert a.min == 5.0 and a.max == 7.0

    def test_merge_both_empty(self):
        a, b = OnlineStats(), OnlineStats()
        a.merge(b)
        assert a.n == 0
        assert a.mean == 0.0
        assert a.variance == 0.0

    def test_merge_takes_min_and_max_across_both(self):
        a, b = OnlineStats(), OnlineStats()
        a.extend([3.0, 4.0])
        b.extend([-1.0, 10.0])
        a.merge(b)
        assert a.min == -1.0 and a.max == 10.0
        b2 = OnlineStats()
        b2.extend([3.5])  # inside a's range: extremes unchanged
        a.merge(b2)
        assert a.min == -1.0 and a.max == 10.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_naive_mean(self, xs):
        s = OnlineStats()
        s.extend(xs)
        assert s.mean == pytest.approx(sum(xs) / len(xs), rel=1e-9, abs=1e-6)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_property(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        a.merge(b)
        assert a.n == c.n
        assert a.mean == pytest.approx(c.mean, rel=1e-6, abs=1e-6)
        assert a.variance == pytest.approx(c.variance, rel=1e-4, abs=1e-4)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        xs = [5.0, 1.0, 9.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_single_element_any_q(self):
        for q in (0, 37.5, 50, 99, 100):
            assert percentile([42.0], q) == 42.0

    def test_all_equal_values(self):
        assert percentile([7.0] * 5, 99) == 7.0

    def test_p99_interpolates_near_top(self):
        xs = list(range(1, 101))  # 1..100
        assert percentile(xs, 99) == pytest.approx(99.01)
        assert percentile(xs, 95) < percentile(xs, 99) < percentile(xs, 100)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100), st.floats(0, 100))
    def test_within_bounds(self, xs, q):
        p = percentile(xs, q)
        assert min(xs) <= p <= max(xs)

    @given(st.lists(st.floats(0, 1e9), min_size=2, max_size=60))
    def test_monotone_in_q(self, xs):
        qs = [0, 25, 50, 75, 100]
        vals = [percentile(xs, q) for q in qs]
        assert vals == sorted(vals)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.p50 == 2.5
        assert s.min == 1.0 and s.max == 4.0
        assert s.total == 10.0
        assert not math.isnan(s.stdev)

    def test_p99_ordered_between_p95_and_max(self):
        s = summarize([float(x) for x in range(1, 101)])
        assert s.p95 <= s.p99 <= s.max
        assert s.p99 == pytest.approx(percentile(list(range(1, 101)), 99))

    def test_p99_single_value(self):
        s = summarize([3.0])
        assert s.p50 == s.p95 == s.p99 == 3.0
