"""Unit + property tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import OnlineStats, percentile, summarize


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = OnlineStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.n == 8
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(2.138, abs=1e-3)
        assert s.min == 2.0 and s.max == 9.0
        assert s.total == 40.0

    def test_merge_matches_combined(self):
        a, b, combined = OnlineStats(), OnlineStats(), OnlineStats()
        xs, ys = [1.0, 2.0, 3.0], [10.0, 20.0]
        a.extend(xs)
        b.extend(ys)
        combined.extend(xs + ys)
        a.merge(b)
        assert a.n == combined.n
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min and a.max == combined.max

    def test_merge_into_empty(self):
        a, b = OnlineStats(), OnlineStats()
        b.extend([5.0, 7.0])
        a.merge(b)
        assert a.n == 2 and a.mean == 6.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_naive_mean(self, xs):
        s = OnlineStats()
        s.extend(xs)
        assert s.mean == pytest.approx(sum(xs) / len(xs), rel=1e-9, abs=1e-6)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_property(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        a.merge(b)
        assert a.n == c.n
        assert a.mean == pytest.approx(c.mean, rel=1e-6, abs=1e-6)
        assert a.variance == pytest.approx(c.variance, rel=1e-4, abs=1e-4)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        xs = [5.0, 1.0, 9.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100), st.floats(0, 100))
    def test_within_bounds(self, xs, q):
        p = percentile(xs, q)
        assert min(xs) <= p <= max(xs)

    @given(st.lists(st.floats(0, 1e9), min_size=2, max_size=60))
    def test_monotone_in_q(self, xs):
        qs = [0, 25, 50, 75, 100]
        vals = [percentile(xs, q) for q in qs]
        assert vals == sorted(vals)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.p50 == 2.5
        assert s.min == 1.0 and s.max == 4.0
        assert s.total == 10.0
        assert not math.isnan(s.stdev)
