"""Unit + property tests for repro.util.serialization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.serialization import (
    SizedPayload,
    estimate_batch,
    estimate_size,
    size_cache_stats,
    sizeof,
)


class TestSizeof:
    def test_primitives_flat(self):
        assert sizeof(7) == 8
        assert sizeof(3.14) == 8
        assert sizeof(True) == 1
        assert sizeof(None) == 1

    def test_bytes_exact(self):
        assert sizeof(b"x" * 100) == 100
        assert sizeof(bytearray(32)) == 32

    def test_str_utf8(self):
        assert sizeof("abc") == 3
        assert sizeof("é") == 2

    def test_containers_sum_members(self):
        assert sizeof((1, 2.0)) == 8 + 8 + 8
        assert sizeof([b"ab", b"cd"]) == 8 + 4
        assert sizeof({"k": 1}) == 16 + 1 + 8

    def test_numpy_uses_nbytes(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert sizeof(arr) == 8000

    def test_sized_payload_wins(self):
        payload = SizedPayload(data=b"tiny", nbytes=4 * 1024 * 1024)
        assert sizeof(payload) == 4 * 1024 * 1024

    def test_opaque_object_has_token_cost(self):
        class Weird:
            def __reduce__(self):
                raise TypeError("nope")

        assert sizeof(Weird()) == 64

    @given(st.lists(st.integers(), max_size=50))
    def test_list_size_monotone_in_length(self, xs):
        assert sizeof(xs + [0]) > sizeof(xs)


class TestSizedPayload:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SizedPayload(b"", -1)

    def test_scaled(self):
        p = SizedPayload(b"x", 100).scaled(2.5)
        assert p.nbytes == 250
        assert p.data == b"x"

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            SizedPayload(b"x", 100).scaled(-1)

    @given(st.integers(0, 10**12), st.floats(0, 100))
    def test_scaling_property(self, nbytes, factor):
        p = SizedPayload(None, nbytes).scaled(factor)
        assert p.nbytes == int(nbytes * factor)


# Record shapes the batched data plane actually emits, plus awkward ones
# (mixed arity, strings, nesting, non-tuples) that must hit the fallback.
_record = st.recursive(
    st.one_of(
        st.integers(-(2**70), 2**70),
        st.floats(allow_nan=False),
        st.booleans(),
        st.none(),
        st.binary(max_size=40),
        st.text(max_size=10),
    ),
    lambda inner: st.tuples(inner) | st.tuples(inner, inner)
    | st.lists(inner, max_size=3).map(tuple),
    max_leaves=4,
)


class TestEstimateBatch:
    @given(st.lists(_record, max_size=30))
    def test_exactly_equals_per_record_sum(self, records):
        # The shuffle data plane's invariant: batch sizing is the exact
        # per-record sum, for every shape mix.
        assert estimate_batch(records) == sum(
            estimate_size(r) for r in records
        )

    def test_uniform_kv_bucket_fast_path(self):
        bucket = [(k, bytes(64)) for k in range(500)]
        assert estimate_batch(bucket) == 500 * (8 + 8 + 64)

    def test_accepts_iterators(self):
        assert estimate_batch(iter([(1, b"ab"), (2, b"cd")])) == 2 * (8 + 8 + 2)

    def test_empty(self):
        assert estimate_batch([]) == 0


class TestShapeMemoExtensions:
    def test_numpy_scalar_cached(self):
        before = size_cache_stats()
        assert estimate_size(np.float64(1.5)) == 8
        assert estimate_size(np.float64(2.5)) == 8
        after = size_cache_stats()
        assert after[0] > before[0]  # second call was a hit

    def test_ndarray_shape_cached_by_dtype_and_shape(self):
        a = np.zeros(10, dtype=np.float64)
        b = np.ones(10, dtype=np.float64)
        before = size_cache_stats()
        assert estimate_size(a) == a.nbytes
        assert estimate_size(b) == b.nbytes  # same (dtype, shape): memo hit
        after = size_cache_stats()
        assert after[0] > before[0]
        # different shape sizes independently (no stale entry reuse)
        assert estimate_size(np.zeros((2, 3), dtype=np.int64)) == 48

    def test_tuple_of_ndarray_cached(self):
        rec = (1.0, np.zeros(8))
        assert estimate_size(rec) == 8 + 8 + 64  # tuple + float + arr
