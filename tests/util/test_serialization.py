"""Unit + property tests for repro.util.serialization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.serialization import SizedPayload, sizeof


class TestSizeof:
    def test_primitives_flat(self):
        assert sizeof(7) == 8
        assert sizeof(3.14) == 8
        assert sizeof(True) == 1
        assert sizeof(None) == 1

    def test_bytes_exact(self):
        assert sizeof(b"x" * 100) == 100
        assert sizeof(bytearray(32)) == 32

    def test_str_utf8(self):
        assert sizeof("abc") == 3
        assert sizeof("é") == 2

    def test_containers_sum_members(self):
        assert sizeof((1, 2.0)) == 8 + 8 + 8
        assert sizeof([b"ab", b"cd"]) == 8 + 4
        assert sizeof({"k": 1}) == 16 + 1 + 8

    def test_numpy_uses_nbytes(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert sizeof(arr) == 8000

    def test_sized_payload_wins(self):
        payload = SizedPayload(data=b"tiny", nbytes=4 * 1024 * 1024)
        assert sizeof(payload) == 4 * 1024 * 1024

    def test_opaque_object_has_token_cost(self):
        class Weird:
            def __reduce__(self):
                raise TypeError("nope")

        assert sizeof(Weird()) == 64

    @given(st.lists(st.integers(), max_size=50))
    def test_list_size_monotone_in_length(self, xs):
        assert sizeof(xs + [0]) > sizeof(xs)


class TestSizedPayload:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SizedPayload(b"", -1)

    def test_scaled(self):
        p = SizedPayload(b"x", 100).scaled(2.5)
        assert p.nbytes == 250
        assert p.data == b"x"

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            SizedPayload(b"x", 100).scaled(-1)

    @given(st.integers(0, 10**12), st.floats(0, 100))
    def test_scaling_property(self, nbytes, factor):
        p = SizedPayload(None, nbytes).scaled(factor)
        assert p.nbytes == int(nbytes * factor)
