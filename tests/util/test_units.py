"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GB,
    GiB,
    KiB,
    MB,
    MiB,
    US,
    fmt_bytes,
    fmt_time,
    gbps,
    parse_bytes,
)


class TestGbps:
    def test_100g_line_rate(self):
        assert gbps(100) == 12.5e9

    def test_zero(self):
        assert gbps(0) == 0.0


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("48m", 48 * MiB),
            ("120GB", 120 * GiB),
            ("1k", 1 * KiB),
            ("512", 512),
            ("2.5m", int(2.5 * MiB)),
            ("64KiB", 64 * KiB),
            ("1tb", 1 << 40),
        ],
    )
    def test_spark_style_strings(self, text, expected):
        assert parse_bytes(text) == expected

    def test_int_passthrough(self):
        assert parse_bytes(1234) == 1234

    def test_float_truncates(self):
        assert parse_bytes(12.9) == 12

    @pytest.mark.parametrize("bad", ["", "abc", "12q", "m12"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert fmt_bytes(0) == "0B"
        assert fmt_bytes(4 * MiB) == "4.0MiB"
        assert fmt_bytes(3 * GiB) == "3.0GiB"
        assert fmt_bytes(-2 * KiB) == "-2.0KiB"

    def test_fmt_time_scales(self):
        assert fmt_time(2.5 * US) == "2.50us"
        assert fmt_time(0.015) == "15.00ms"
        assert fmt_time(3.0) == "3.00s"
        assert fmt_time(120.0) == "2.0min"
        assert fmt_time(5e-10) == "0.5ns"

    def test_fmt_time_negative(self):
        assert fmt_time(-1.5) == "-1.50s"

    def test_decimal_vs_binary_constants(self):
        assert MB == 10**6
        assert MiB == 1 << 20
        assert GB < GiB
