"""Smoke tests: every shipped example runs end-to-end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "mpi4spark_launch.py",
    "hibench_ml.py",
    "obs_trace.py",
    "jobserver_demo.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # produced output


def test_quickstart_output_correct(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "'meets': 3" in out
    assert "sorted: [(1, 'a'), (3, 'c'), (7, 'g'), (9, 'i')]" in out


def test_launch_example_shows_fig3_steps(capsys):
    runpy.run_path(str(EXAMPLES / "mpi4spark_launch.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Step A/B" in out
    assert "MPI_Comm_spawn_multiple" in out
    assert "DPM_COMM allgather" in out


def test_obs_trace_example_writes_valid_chrome_trace(capsys):
    import json

    runpy.run_path(str(EXAMPLES / "obs_trace.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "timeline" in out and "Chrome trace" in out
    trace_path = EXAMPLES.parent / "results" / "groupby_trace.json"
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    kinds = {ev["ph"] for ev in trace["traceEvents"]}
    assert "X" in kinds and "M" in kinds
