"""OHB workload tests: real execution correctness + profile construction."""

import numpy as np
import pytest

from repro.harness.profile import ComputeStage, ShuffleReadStage, ShuffleWriteStage
from repro.harness.systems import FRONTERA
from repro.util.units import GiB
from repro.workloads.ohb import GROUP_BY, SORT_BY, OhbWorkload


class TestRealExecution:
    def test_groupby_sample_runs_and_traces(self):
        sc = GROUP_BY.run_sample(num_pairs=800, num_partitions=4)
        labels = [st.label for job in sc.tracer.jobs for st in job.stages]
        assert labels == [
            "Job0-ResultStage",
            "Job1-ShuffleMapStage",
            "Job1-ResultStage",
        ]
        trace = sc.tracer.find_stage("Job1-ShuffleMapStage")
        assert trace.shuffle_records.sum() == 800

    def test_sortby_sample_has_job2_labels(self):
        # sortByKey runs a sampling job first, so the sort is Job2 —
        # exactly the labeling in the paper's Fig-10b breakdown.
        sc = SORT_BY.run_sample(num_pairs=800, num_partitions=4)
        labels = [st.label for job in sc.tracer.jobs for st in job.stages]
        assert "Job2-ShuffleMapStage" in labels
        assert "Job2-ResultStage" in labels

    def test_groupby_result_correct(self):
        from repro.spark import SparkContext

        sc = SparkContext()
        rdd = GROUP_BY.build_rdd(sc, num_pairs=400, num_partitions=4)
        groups = dict(rdd.collect())
        assert sum(len(v) for v in groups.values()) == 400

    def test_sortby_result_sorted(self):
        from repro.spark import SparkContext

        sc = SparkContext()
        rdd = SORT_BY.build_rdd(sc, num_pairs=400, num_partitions=4)
        keys = [k for k, _ in rdd.collect()]
        assert keys == sorted(keys)

    def test_unknown_workload_rejected(self):
        from repro.spark import SparkContext

        with pytest.raises(ValueError):
            OhbWorkload("Bogus").build_rdd(SparkContext(), 10, 2)


class TestProfiles:
    def test_groupby_profile_structure(self):
        prof = GROUP_BY.build_profile(FRONTERA, 8, 112 * GiB, fidelity=0.25)
        kinds = [type(s) for s in prof.stages]
        assert kinds == [ComputeStage, ShuffleWriteStage, ShuffleReadStage]
        labels = [s.label for s in prof.stages]
        assert labels == [
            "Job0-ResultStage",
            "Job1-ShuffleMapStage",
            "Job1-ResultStage",
        ]

    def test_sortby_profile_has_sampling_job(self):
        prof = SORT_BY.build_profile(FRONTERA, 8, 112 * GiB, fidelity=0.25)
        labels = [s.label for s in prof.stages]
        assert labels == [
            "Job0-ResultStage",
            "Job1-ResultStage",  # range-sampling job
            "Job2-ShuffleMapStage",
            "Job2-ResultStage",
        ]

    def test_profile_conserves_bytes(self):
        prof = GROUP_BY.build_profile(FRONTERA, 8, 112 * GiB, fidelity=0.25)
        read = next(s for s in prof.stages if isinstance(s, ShuffleReadStage))
        assert read.fetch_bytes.sum() == pytest.approx(112 * GiB, rel=0.01)
        write = next(s for s in prof.stages if isinstance(s, ShuffleWriteStage))
        assert write.write_bytes_per_task.sum() == pytest.approx(112 * GiB, rel=0.01)

    def test_fidelity_preserves_stage_compute_time(self):
        # Folding tasks must not change the expected stage time: per-task
        # seconds stay one core's worth of work.
        full = GROUP_BY.build_profile(FRONTERA, 8, 112 * GiB, fidelity=1.0)
        folded = GROUP_BY.build_profile(FRONTERA, 8, 112 * GiB, fidelity=0.25)
        t_full = full.stages[0].seconds_per_task.mean()
        t_folded = folded.stages[0].seconds_per_task.mean()
        assert t_folded == pytest.approx(t_full, rel=0.05)
        assert folded.stages[0].n_tasks == full.stages[0].n_tasks // 4

    def test_tasks_scale_with_cores(self):
        prof = GROUP_BY.build_profile(FRONTERA, 8, 112 * GiB)
        assert prof.stages[0].n_tasks == 8 * 56
        assert prof.total_cores == 448

    def test_clock_scaling(self):
        from repro.workloads.calibration import GROUP_BY_TEST

        slower = GROUP_BY_TEST.scaled_to_clock(1.35)  # half of 2.7 GHz
        assert slower.gen_s == pytest.approx(GROUP_BY_TEST.gen_s * 2)
        assert slower.record_bytes == GROUP_BY_TEST.record_bytes
