"""HiBench workload tests: the ML/micro/graph programs really work."""

import numpy as np
import pytest

from repro.harness.profile import ComputeStage, ShuffleReadStage, ShuffleWriteStage
from repro.harness.systems import FRONTERA, STAMPEDE2
from repro.spark import SparkConf, SparkContext
from repro.workloads.hibench import SPECS, MAX_SIMULATED_ROUNDS
from repro.workloads.hibench import datagen, micro
from repro.workloads.hibench.graph import nweight
from repro.workloads.hibench.ml import (
    classify,
    train_gmm,
    train_lda,
    train_logistic_regression,
    train_svm,
)


@pytest.fixture
def sc():
    return SparkContext(SparkConf({"spark.default.parallelism": "4"}))


class TestMlWorkloads:
    def test_logistic_regression_learns(self, sc):
        w = train_logistic_regression(sc, n_points=1200, dim=8, iterations=6)
        test = datagen.labeled_points(sc, 400, 8, 2, seed=77).collect()
        acc = sum(1 for y, x in test if classify(w, x) == y) / len(test)
        assert acc > 0.85

    def test_svm_learns(self, sc):
        w = train_svm(sc, n_points=1200, dim=8, iterations=6)
        test = datagen.labeled_points(sc, 400, 8, 2, seed=78).collect()
        acc = sum(1 for y, x in test if classify(w, x) == y) / len(test)
        assert acc > 0.85

    def test_gmm_recovers_components(self, sc):
        weights, means = train_gmm(sc, n_points=900, dim=2, k=3, iterations=6)
        first_dims = np.sort(means[:, 0])
        assert np.allclose(first_dims, [0.0, 3.0, 6.0], atol=0.5)
        assert weights.sum() == pytest.approx(1.0, abs=1e-6)

    def test_lda_produces_distributions(self, sc):
        wt = train_lda(sc, n_docs=120, vocab=60, n_topics=3, iterations=2)
        assert len(wt) > 10
        for dist in wt.values():
            assert dist.shape == (3,)
            assert dist.sum() == pytest.approx(1.0, abs=1e-6)
            assert (dist >= 0).all()

    def test_lda_shuffles_every_iteration(self, sc):
        train_lda(sc, n_docs=60, vocab=40, n_topics=2, iterations=3)
        shuffle_stages = [
            st
            for job in sc.tracer.jobs
            for st in job.stages
            if st.kind == "ShuffleMapStage"
        ]
        assert len(shuffle_stages) >= 3  # one reduceByKey per iteration


class TestMicroWorkloads:
    def test_terasort_sorts(self, sc):
        result = micro.terasort(sc, n_records=600, num_partitions=4)
        keys = [k for k, _ in result.collect()]
        assert keys == sorted(keys)
        assert len(keys) == 600

    def test_repartition_preserves_records(self, sc):
        result = micro.repartition(sc, n_records=500, num_partitions=4,
                                   target_partitions=7)
        assert result.num_partitions == 7
        assert result.count() == 500


class TestGraphWorkload:
    def test_nweight_finds_two_hop_paths(self, sc):
        result = dict(nweight(sc, n_vertices=60, avg_degree=3, hops=2).collect())
        assert result  # non-empty association lists
        for v, assoc in result.items():
            assert len(assoc) <= 10  # top-k pruning
            weights = [w for _, w in assoc]
            assert weights == sorted(weights, reverse=True)

    def test_nweight_uses_joins(self, sc):
        nweight(sc, n_vertices=40, avg_degree=2, hops=2).collect()
        shuffles = [
            st for job in sc.tracer.jobs for st in job.stages
            if st.kind == "ShuffleMapStage"
        ]
        assert len(shuffles) >= 3  # reduceByKey + join's two sides


class TestHiBenchProfiles:
    def test_all_table4_workloads_have_specs(self):
        assert set(SPECS) == {
            "SVM", "LR", "GMM", "LDA", "Repartition", "TeraSort", "NWeight"
        }

    def test_iterative_profile_structure(self):
        prof = SPECS["LDA"].build_profile(FRONTERA, 16, fidelity=0.25)
        kinds = [type(s).__name__ for s in prof.stages]
        # gen + rounds x (compute, write, read)
        assert kinds[0] == "ComputeStage"
        rounds = (len(prof.stages) - 1) // 3
        assert rounds == min(MAX_SIMULATED_ROUNDS, 20)
        assert kinds[1:4] == ["ComputeStage", "ShuffleWriteStage", "ShuffleReadStage"]

    def test_one_shot_profile_structure(self):
        prof = SPECS["Repartition"].build_profile(FRONTERA, 16, fidelity=0.25)
        labels = [s.label for s in prof.stages]
        assert labels[0] == "Job0-ResultStage"
        assert "Job1-ShuffleMapStage" in labels
        assert "Job1-ResultStage" in labels
        assert labels[-1] == "JobN-HdfsOutputStage"

    def test_round_folding_preserves_total_shuffle(self):
        prof = SPECS["SVM"].build_profile(FRONTERA, 16, fidelity=0.25)
        total = sum(
            s.fetch_bytes.sum() for s in prof.stages if isinstance(s, ShuffleReadStage)
        )
        from repro.workloads.calibration import COSTS

        expected = SPECS["SVM"].shuffle_bytes_per_round * COSTS["SVM"].iterations
        assert total == pytest.approx(expected, rel=0.01)

    def test_hyperthreading_inflates_per_thread_costs(self):
        ht = SPECS["GMM"].build_profile(STAMPEDE2, 8, cores_per_executor=96, fidelity=0.25)
        no_ht = SPECS["GMM"].build_profile(STAMPEDE2, 8, cores_per_executor=48, fidelity=0.5)
        # Same total cores-worth of work, but 96 threads at 0.6 efficiency
        # must not beat 48 dedicated cores by the naive 2x.
        t_ht = ht.stages[1].seconds_per_task.mean() * 96
        t_no = no_ht.stages[1].seconds_per_task.mean() * 48
        assert t_ht > t_no  # HT thread-seconds exceed core-seconds

    def test_terasort_has_hdfs_output(self):
        prof = SPECS["TeraSort"].build_profile(FRONTERA, 16, fidelity=0.25)
        assert prof.stages[-1].label == "JobN-HdfsOutputStage"
        # Replicated output is slower than the unreplicated input read.
        assert prof.stages[-1].seconds_per_task.mean() > 0
