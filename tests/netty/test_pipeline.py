"""Pipeline and handler propagation tests (no network needed)."""

import pytest

from repro.netty import (
    Channel,
    ChannelHandler,
    ChannelPipeline,
    EventLoop,
    PipelineError,
)
from repro.simnet import IB_EDR, SimCluster, SimEngine, tcp_over
from repro.simnet.sockets import SocketAddress, SocketStack


class Recorder(ChannelHandler):
    """Inbound handler recording and forwarding events."""

    def __init__(self, name, log, transform=None, consume=False):
        self.tag = name
        self.log = log
        self.transform = transform
        self.consume = consume

    def channel_active(self, ctx):
        self.log.append((self.tag, "active"))
        ctx.fire_channel_active()

    def channel_read(self, ctx, msg):
        self.log.append((self.tag, "read", msg))
        if self.consume:
            return
        if self.transform:
            msg = self.transform(msg)
        ctx.fire_channel_read(msg)

    def channel_inactive(self, ctx):
        self.log.append((self.tag, "inactive"))
        ctx.fire_channel_inactive()


class OutRecorder(ChannelHandler):
    def __init__(self, tag, log, transform=None):
        self.tag = tag
        self.log = log
        self.transform = transform

    def write(self, ctx, msg, promise):
        self.log.append((self.tag, "write", msg))
        if self.transform:
            msg = self.transform(msg)
        ctx.write(msg, promise)


@pytest.fixture
def channel():
    env = SimEngine()
    cluster = SimCluster(env, IB_EDR, n_nodes=2, cores_per_node=2)
    stack = SocketStack(env, cluster, tcp_over(IB_EDR))
    stack.listen(0, 1)
    loop = EventLoop(env)
    result = {}

    def client(env):
        sock = yield from stack.connect(1, SocketAddress("node0", 1))
        result["channel"] = Channel(loop, sock)

    env.process(client(env))
    env.run()
    return result["channel"]


class TestPipelineStructure:
    def test_add_last_order(self, channel):
        log = []
        p = channel.pipeline
        p.add_last("a", Recorder("a", log))
        p.add_last("b", Recorder("b", log))
        assert p.names() == ["a", "b"]

    def test_add_first(self, channel):
        log = []
        p = channel.pipeline
        p.add_last("a", Recorder("a", log))
        p.add_first("z", Recorder("z", log))
        assert p.names() == ["z", "a"]

    def test_duplicate_name_rejected(self, channel):
        p = channel.pipeline
        p.add_last("a", Recorder("a", []))
        with pytest.raises(PipelineError):
            p.add_last("a", Recorder("a", []))

    def test_remove_and_get(self, channel):
        log = []
        p = channel.pipeline
        h = Recorder("a", log)
        p.add_last("a", h)
        assert p.get("a") is h
        assert p.remove("a") is h
        assert p.names() == []
        with pytest.raises(PipelineError):
            p.get("a")

    def test_remove_missing_raises(self, channel):
        with pytest.raises(PipelineError):
            channel.pipeline.remove("nope")


class TestInboundPropagation:
    def test_read_flows_head_to_tail(self, channel):
        log = []
        p = channel.pipeline
        p.add_last("a", Recorder("a", log))
        p.add_last("b", Recorder("b", log))
        p.fire_channel_read("msg")
        assert log == [("a", "read", "msg"), ("b", "read", "msg")]

    def test_handler_can_transform(self, channel):
        log = []
        p = channel.pipeline
        p.add_last("a", Recorder("a", log, transform=lambda m: m.upper()))
        p.add_last("b", Recorder("b", log))
        p.fire_channel_read("msg")
        assert log[-1] == ("b", "read", "MSG")

    def test_handler_can_consume(self, channel):
        log = []
        p = channel.pipeline
        p.add_last("a", Recorder("a", log, consume=True))
        p.add_last("b", Recorder("b", log))
        p.fire_channel_read("msg")
        assert log == [("a", "read", "msg")]
        assert p.unhandled_reads == []

    def test_unconsumed_read_reaches_tail(self, channel):
        channel.pipeline.fire_channel_read("orphan")
        assert channel.pipeline.unhandled_reads == ["orphan"]

    def test_active_and_inactive_propagate(self, channel):
        log = []
        channel.pipeline.add_last("a", Recorder("a", log))
        channel.pipeline.fire_channel_active()
        channel.pipeline.fire_channel_inactive()
        assert ("a", "active") in log and ("a", "inactive") in log


class TestOutboundPropagation:
    def test_write_flows_tail_to_head(self, channel):
        log = []
        p = channel.pipeline
        p.add_last("a", OutRecorder("a", log))
        p.add_last("b", OutRecorder("b", log))
        channel.write_and_flush("out")
        # Outbound visits b (closer to tail) before a.
        assert [e[0] for e in log] == ["b", "a"]

    def test_write_reaches_socket(self, channel):
        channel.write_and_flush("payload")
        assert channel.socket.peer is not None

    def test_write_promise_succeeds(self, channel):
        promise = channel.write_and_flush("x")
        assert promise.triggered and promise.ok


class TestExceptionFlow:
    def test_exception_recorded_at_tail(self, channel):
        channel.pipeline.fire_exception_caught(ValueError("boom"))
        assert len(channel.pipeline.unhandled_exceptions) == 1

    def test_handler_intercepts_exception(self, channel):
        caught = []

        class Catcher(ChannelHandler):
            def exception_caught(self, ctx, exc):
                caught.append(exc)

        channel.pipeline.add_last("c", Catcher())
        channel.pipeline.fire_exception_caught(ValueError("boom"))
        assert len(caught) == 1
        assert channel.pipeline.unhandled_exceptions == []
