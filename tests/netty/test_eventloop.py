"""Event-loop integration: selector, accepts, reads, tasks, blocking ops."""

import pytest

from repro.netty import (
    Bootstrap,
    Channel,
    ChannelHandler,
    EventLoop,
    ServerBootstrap,
)
from repro.simnet import IB_EDR, SimCluster, SimEngine, tcp_over
from repro.simnet.sockets import SocketAddress, SocketStack


@pytest.fixture
def rig():
    env = SimEngine()
    cluster = SimCluster(env, IB_EDR, n_nodes=2, cores_per_node=4)
    stack = SocketStack(env, cluster, tcp_over(IB_EDR))
    return env, cluster, stack


class Collector(ChannelHandler):
    """Terminal inbound handler collecting messages."""

    def __init__(self):
        self.messages = []
        self.active = 0
        self.inactive = 0

    def channel_active(self, ctx):
        self.active += 1

    def channel_read(self, ctx, msg):
        self.messages.append(msg)

    def channel_inactive(self, ctx):
        self.inactive += 1


class Echo(ChannelHandler):
    """Server handler echoing messages back."""

    def channel_read(self, ctx, msg):
        ctx.channel.write_and_flush(f"echo:{msg}")


class TestClientServer:
    def test_connect_and_exchange(self, rig):
        env, cluster, stack = rig
        server_loop = EventLoop(env, "server-loop")
        client_loop = EventLoop(env, "client-loop")
        server_loop.start()
        client_loop.start()

        collector = Collector()
        (ServerBootstrap(stack)
            .group(server_loop)
            .child_handler(lambda ch: ch.pipeline.add_last("echo", Echo()))
            .bind(0, 7077))

        def client(env):
            channel = yield from (
                Bootstrap(stack)
                .group(client_loop)
                .handler(lambda ch: ch.pipeline.add_last("collect", collector))
                .connect(1, SocketAddress("node0", 7077))
            )
            channel.write_and_flush("hello")
            channel.write_and_flush("world")
            yield env.timeout(1.0)
            server_loop.stop()
            client_loop.stop()

        env.process(client(env))
        env.run()
        assert collector.messages == ["echo:hello", "echo:world"]
        assert collector.active == 1

    def test_many_clients_one_server_loop(self, rig):
        env, cluster, stack = rig
        server_loop = EventLoop(env, "server-loop")
        client_loop = EventLoop(env, "client-loop")
        server_loop.start()
        client_loop.start()

        received = []

        class Sink(ChannelHandler):
            def channel_read(self, ctx, msg):
                received.append(msg)

        (ServerBootstrap(stack)
            .group(server_loop)
            .child_handler(lambda ch: ch.pipeline.add_last("sink", Sink()))
            .bind(0, 7077))

        def client(env, i):
            channel = yield from (
                Bootstrap(stack)
                .group(client_loop)
                .connect(1, SocketAddress("node0", 7077))
            )
            channel.write_and_flush(f"msg-{i}")

        for i in range(5):
            env.process(client(env, i))

        def stopper(env):
            yield env.timeout(1.0)
            server_loop.stop()
            client_loop.stop()

        env.process(stopper(env))
        env.run()
        assert sorted(received) == [f"msg-{i}" for i in range(5)]

    def test_channel_close_fires_inactive_on_peer(self, rig):
        env, cluster, stack = rig
        server_loop = EventLoop(env, "server-loop")
        client_loop = EventLoop(env, "client-loop")
        server_loop.start()
        client_loop.start()

        collector = Collector()
        (ServerBootstrap(stack)
            .group(server_loop)
            .child_handler(lambda ch: ch.pipeline.add_last("c", collector))
            .bind(0, 7077))

        def client(env):
            channel = yield from (
                Bootstrap(stack).group(client_loop).connect(1, SocketAddress("node0", 7077))
            )
            channel.write_and_flush("bye")
            yield env.timeout(0.5)
            channel.close()
            yield env.timeout(0.5)
            server_loop.stop()
            client_loop.stop()

        env.process(client(env))
        env.run()
        assert collector.messages == ["bye"]
        assert collector.inactive == 1


class TestTasksAndBlocking:
    def test_submit_runs_on_loop(self, rig):
        env, cluster, stack = rig
        loop = EventLoop(env)
        loop.start()
        ran = []

        def driver(env):
            yield env.timeout(0.1)
            loop.submit(lambda: ran.append(env.now))
            yield env.timeout(0.1)
            loop.stop()

        env.process(driver(env))
        env.run()
        assert len(ran) == 1
        assert ran[0] >= 0.1

    def test_blocking_continuation_blocks_loop(self, rig):
        env, cluster, stack = rig
        loop = EventLoop(env)
        loop.start()
        order = []

        def blocking_op():
            order.append(("block-start", env.now))
            yield env.timeout(1.0)
            order.append(("block-end", env.now))

        def driver(env):
            yield env.timeout(0.1)
            loop.submit(lambda: loop.run_blocking(blocking_op()))
            loop.submit(lambda: order.append(("task2", env.now)))
            yield env.timeout(5.0)
            loop.stop()

        env.process(driver(env))
        env.run()
        kinds = [k for k, _ in order]
        assert kinds == ["block-start", "block-end", "task2"]
        # task2 could not run until the blocking op released the loop thread.
        assert dict(order)["task2"] >= 1.0

    def test_loop_counts_iterations_and_reads(self, rig):
        env, cluster, stack = rig
        server_loop = EventLoop(env)
        client_loop = EventLoop(env)
        server_loop.start()
        client_loop.start()
        (ServerBootstrap(stack)
            .group(server_loop)
            .child_handler(lambda ch: None)
            .bind(0, 1))

        def client(env):
            channel = yield from (
                Bootstrap(stack).group(client_loop).connect(1, SocketAddress("node0", 1))
            )
            for i in range(3):
                channel.write_and_flush(i)
            yield env.timeout(1.0)
            server_loop.stop()
            client_loop.stop()

        env.process(client(env))
        env.run()
        assert server_loop.messages_read == 3
        assert server_loop.iterations >= 1

    def test_double_start_rejected(self, rig):
        env, cluster, stack = rig
        loop = EventLoop(env)
        loop.start()
        with pytest.raises(RuntimeError):
            loop.start()
        loop.stop()
        env.run()
