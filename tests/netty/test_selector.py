"""Selector unit tests (the Fig-5 primitive both designs revolve around)."""

import pytest

from repro.netty import Channel, EventLoop
from repro.netty.selector import OP_ACCEPT, OP_READ, Selector
from repro.simnet import IB_EDR, SimCluster, SimEngine, tcp_over
from repro.simnet.sockets import SocketAddress, SocketStack


@pytest.fixture
def rig():
    env = SimEngine()
    cluster = SimCluster(env, IB_EDR, n_nodes=2, cores_per_node=2)
    stack = SocketStack(env, cluster, tcp_over(IB_EDR))
    return env, cluster, stack


def connect_pair(env, stack, loop):
    stack_listener = stack.listen(0, 9000)
    holder = {}

    def server(env):
        holder["server_sock"] = yield stack_listener.accept()

    def client(env):
        sock = yield from stack.connect(1, SocketAddress("node0", 9000))
        holder["client"] = Channel(loop, sock)

    env.process(server(env))
    env.process(client(env))
    env.run()
    return holder["client"], holder["server_sock"]


class TestSelectNow:
    def test_empty_selector(self, rig):
        env, cluster, stack = rig
        selector = Selector(env)
        assert selector.select_now() == []
        assert selector.select_now_calls == 1

    def test_readable_channel_reported(self, rig):
        env, cluster, stack = rig
        loop = EventLoop(env)
        channel, server_sock = connect_pair(env, stack, loop)
        selector = Selector(env)
        key = selector.register_channel(channel)
        assert selector.select_now() == []
        server_sock.send("data", 10)
        env.run()
        ready = selector.select_now()
        assert ready == [key]
        assert key.is_readable()

    def test_acceptable_listener_reported(self, rig):
        env, cluster, stack = rig
        selector = Selector(env)
        listener = stack.listen(0, 9001)
        key = selector.register_acceptor(listener, lambda ch: None)

        def client(env):
            yield from stack.connect(1, SocketAddress("node0", 9001))

        env.process(client(env))
        env.run()
        assert selector.select_now() == [key]
        assert key.is_acceptable()

    def test_deregister_removes_key(self, rig):
        env, cluster, stack = rig
        loop = EventLoop(env)
        channel, server_sock = connect_pair(env, stack, loop)
        selector = Selector(env)
        selector.register_channel(channel)
        selector.deregister(channel)
        server_sock.send("data", 10)
        env.run()
        assert selector.select_now() == []


class TestBlockingSelect:
    def test_select_blocks_until_readable(self, rig):
        env, cluster, stack = rig
        loop = EventLoop(env)
        channel, server_sock = connect_pair(env, stack, loop)
        selector = Selector(env)
        selector.register_channel(channel)

        def selecting(env):
            ready = yield from selector.select()
            return (env.now, len(ready))

        def sender(env):
            yield env.timeout(5.0)
            server_sock.send("late", 10)

        p = env.process(selecting(env))
        env.process(sender(env))
        env.run()
        t, n = p.value
        assert t >= 5.0 and n == 1

    def test_wakeup_unblocks_select(self, rig):
        env, cluster, stack = rig
        selector = Selector(env)

        def selecting(env):
            ready = yield from selector.select()
            return (env.now, ready)

        def waker(env):
            yield env.timeout(2.0)
            selector.wakeup()

        p = env.process(selecting(env))
        env.process(waker(env))
        env.run()
        t, ready = p.value
        assert t == pytest.approx(2.0)
        assert ready == []  # nothing readable, just a wakeup

    def test_select_with_timeout(self, rig):
        env, cluster, stack = rig
        selector = Selector(env)

        def selecting(env):
            ready = yield from selector.select(timeout=1.5)
            return (env.now, ready)

        p = env.process(selecting(env))
        env.run()
        t, ready = p.value
        assert t == pytest.approx(1.5)
        assert ready == []

    def test_select_counts(self, rig):
        env, cluster, stack = rig
        selector = Selector(env)

        def selecting(env):
            yield from selector.select(timeout=0.1)

        env.process(selecting(env))
        env.run()
        assert selector.select_calls == 1
