"""Unit + property tests for ByteBuf and frame encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netty.bytebuf import ByteBuf, ByteBufError, PooledByteBufAllocator
from repro.netty.frame import (
    WireFrame,
    decode_frame_header,
    encode_frame_header,
)


class TestByteBuf:
    def test_write_read_roundtrip(self):
        buf = ByteBuf()
        buf.write_byte(7).write_int(-123).write_long(1 << 40).write_string("hello")
        assert buf.read_byte() == 7
        assert buf.read_int() == -123
        assert buf.read_long() == 1 << 40
        assert buf.read_string() == "hello"
        assert buf.readable_bytes() == 0

    def test_big_endian_layout(self):
        buf = ByteBuf()
        buf.write_int(1)
        assert buf.to_bytes() == b"\x00\x00\x00\x01"

    def test_read_past_end_raises(self):
        with pytest.raises(ByteBufError):
            ByteBuf(b"ab").read_int()

    def test_byte_range_check(self):
        with pytest.raises(ByteBufError):
            ByteBuf().write_byte(256)

    def test_reader_writer_independence(self):
        buf = ByteBuf()
        buf.write_int(1)
        assert buf.read_int() == 1
        buf.write_int(2)
        assert buf.read_int() == 2

    def test_peek_does_not_consume(self):
        buf = ByteBuf()
        buf.write_long(99).write_byte(3)
        assert buf.peek_long() == 99
        assert buf.peek_byte(8) == 3
        assert buf.read_long() == 99  # still there

    def test_peek_past_end_raises(self):
        with pytest.raises(ByteBufError):
            ByteBuf(b"x").peek_long()

    def test_negative_string_length_rejected(self):
        buf = ByteBuf()
        buf.write_int(-5)
        with pytest.raises(ByteBufError):
            buf.read_string()

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**63), 2**63 - 1))
    def test_int_long_roundtrip_property(self, i, l):
        buf = ByteBuf()
        buf.write_int(i).write_long(l)
        assert buf.read_int() == i
        assert buf.read_long() == l

    @given(st.text(max_size=200))
    def test_string_roundtrip_property(self, text):
        buf = ByteBuf()
        buf.write_string(text)
        assert buf.read_string() == text

    def test_allocator_accounting(self):
        alloc = PooledByteBufAllocator()
        alloc.direct_buffer(b"abcd")
        alloc.direct_buffer()
        assert alloc.allocations == 2
        assert alloc.bytes_allocated == 4


class TestWireFrame:
    def test_nbytes_sums_header_and_body(self):
        frame = WireFrame(header=b"12345", body=object(), body_nbytes=100)
        assert frame.nbytes == 105

    def test_size_only_body_allowed(self):
        # Trace-driven payloads charge bytes without materializing data.
        frame = WireFrame(header=b"h", body=None, body_nbytes=10)
        assert frame.nbytes == 11

    def test_negative_body_rejected(self):
        with pytest.raises(ValueError):
            WireFrame(header=b"h", body="x", body_nbytes=-1)

    def test_header_buf(self):
        frame = WireFrame(header=b"\x00\x01")
        buf = frame.header_buf()
        assert buf.read_byte() == 0
        assert buf.read_byte() == 1


class TestFrameHeaderCodec:
    @given(
        st.integers(0, 255),
        st.binary(max_size=64),
        st.integers(0, 10**12),
    )
    def test_roundtrip_property(self, tag, fields, body_nbytes):
        header = encode_frame_header(tag, fields, body_nbytes)
        got_tag, got_body, buf = decode_frame_header(header)
        assert got_tag == tag
        assert got_body == body_nbytes
        assert buf.to_bytes() == fields

    def test_frame_length_includes_body(self):
        header = encode_frame_header(5, b"", 1000)
        buf = ByteBuf(header)
        assert buf.read_long() == len(header) + 1000
