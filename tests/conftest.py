"""Shared tier-1 test configuration.

The full-run result cache (``repro.harness.runcache``) defaults to *on*
and stores under ``results/.runcache``. Tests must never read entries
left by benchmarks, examples, or earlier test runs — a warm cache would
let a cell skip simulation and quietly hollow out whatever the test was
proving about execution. Every test gets a private, cold store; tests
that exercise the cache itself opt in to warmth explicitly by priming
within the test.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_cache(tmp_path, monkeypatch):
    from repro.harness import runcache

    monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "runcache"))
    runcache.clear_memory_cache()
    yield
    runcache.clear_memory_cache()
