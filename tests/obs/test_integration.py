"""Integration: metrics and traces from real simulated-cluster runs."""

import json

import pytest

from repro.faults.chaos import make_chaos_profile
from repro.harness.systems import INTERNAL_CLUSTER
from repro.obs import (
    iprobe_calls,
    loop_busy_fraction,
    obs_from_conf,
    polling_tax_seconds,
)
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster


def _run(transport, **kwargs):
    sim = SparkSimCluster(
        INTERNAL_CLUSTER, 2, transport, cores_per_executor=2, **kwargs
    )
    sim.launch()
    result = sim.run_profile(make_chaos_profile(2, 2, shuffle_bytes=8 << 20))
    sim.shutdown()
    return sim, result


class TestObsFromConf:
    def test_defaults_off(self):
        assert obs_from_conf(SparkConf()) == (False, False)

    def test_enabled(self):
        conf = SparkConf({"spark.repro.obs.enabled": "true"})
        assert obs_from_conf(conf) == (True, False)

    def test_trace_implies_enabled(self):
        conf = SparkConf({"spark.repro.obs.trace": "true"})
        assert obs_from_conf(conf) == (True, True)

    def test_cluster_from_conf(self):
        conf = SparkConf(
            {"spark.repro.transport": "mpi-opt", "spark.repro.obs.trace": "true"}
        )
        sim = SparkSimCluster.from_conf(INTERNAL_CLUSTER, 2, conf)
        assert sim.transport.name == "mpi-opt"
        assert sim.obs_enabled and sim.obs_trace
        assert sim.env.tracer.enabled


class TestDisabledPath:
    def test_no_snapshot_no_tracer_by_default(self):
        sim, result = _run("nio")
        assert result.metrics is None
        assert not sim.env.tracer.enabled

    def test_registry_still_counts_for_backcompat(self):
        # EventLoop.iterations/messages_read are registry-backed properties
        # and must keep counting even with obs off.
        sim, _ = _run("nio")
        loops = [loop for ex in sim.executors for loop in ex.loops.loops]
        assert sum(loop.iterations for loop in loops) > 0
        assert sum(loop.messages_read for loop in loops) > 0


class TestEnabledRun:
    @pytest.fixture(scope="class")
    def run(self):
        return _run("mpi-opt", obs_enabled=True)

    def test_snapshot_attached(self, run):
        _, result = run
        assert result.metrics is not None
        assert len(result.metrics) > 0

    def test_metrics_from_at_least_four_layers(self, run):
        _, result = run
        snap = result.metrics
        layers = [
            "netty.loop.*",
            "mpi.rank.*",
            "simnet.link.*",
            "spark.scheduler.*",
            "transport.*",
        ]
        present = [p for p in layers if snap.names(p)]
        assert len(present) >= 4, f"layers present: {present}"

    def test_scheduler_phases_accounted(self, run):
        _, result = run
        snap = result.metrics
        assert snap.value("spark.scheduler.tasks_finished") == 12  # 3 stages * 4
        assert snap.value("spark.scheduler.compute_s") > 0
        assert snap.value("spark.scheduler.write_s") > 0
        assert snap.value("spark.scheduler.fetch_wait_s") > 0
        assert "spark.scheduler.task_fetch_wait_s" in snap.histograms

    def test_optimized_split_visible(self, run):
        # The Optimized design's header-on-socket / body-over-MPI split.
        _, result = run
        snap = result.metrics
        assert snap.total("transport.mpi-opt.header.bytes") > 0
        assert snap.total("transport.mpi-opt.body.bytes") > 0
        assert (
            snap.total("transport.mpi-opt.body.bytes")
            > snap.total("transport.mpi-opt.header.bytes")
        )

    def test_link_traffic_recorded(self, run):
        _, result = run
        snap = result.metrics
        assert snap.total("simnet.link.*.tx_bytes") > 0
        assert snap.total("simnet.link.*.rx_bytes") > 0


class TestPollingTax:
    def test_basic_pays_optimized_does_not(self):
        _, basic = _run("mpi-basic", obs_enabled=True)
        _, opt = _run("mpi-opt", obs_enabled=True)
        tax_basic = polling_tax_seconds(basic.metrics)
        tax_opt = polling_tax_seconds(opt.metrics)
        assert tax_basic > 0.0
        assert tax_basic >= 10.0 * tax_opt
        assert iprobe_calls(basic.metrics) > 0
        assert 0.0 < loop_busy_fraction(basic.metrics) < 1.0


class TestTracedRun:
    def test_stage_and_task_spans_export_valid_json(self, tmp_path):
        sim, result = _run("mpi-opt", obs_trace=True)
        assert result.metrics is not None  # trace implies enabled
        tracer = sim.env.tracer
        tracks = {s.track for s in tracer.spans}
        assert "driver" in tracks
        assert any(t.startswith("exec") for t in tracks)
        cats = {s.cat for s in tracer.spans}
        assert {"stage", "task"} <= cats
        # every span closed by the run
        assert all(s.end_s is not None for s in tracer.spans)
        trace = json.loads(tracer.dumps())
        assert trace["traceEvents"]
        path = tracer.write(str(tmp_path / "t.json"))
        assert json.load(open(path))["traceEvents"]

    def test_read_task_spans_annotated_with_fetch_wait(self):
        sim, _ = _run("mpi-opt", obs_trace=True)
        read_spans = [
            s for s in sim.env.tracer.spans if s.cat == "task" and "read" in s.name
        ]
        assert read_spans
        assert all("fetch_wait_s" in s.args for s in read_spans)
