"""Critical-path analysis: synthetic DAG decomposition + the HTML report.

The synthetic tests hand-build a flight log whose segment decomposition
is computable on paper, then check ``analyze`` reproduces it — including
the per-transport classification (matching dwell is poll-tax only under
MPI4Spark-Basic).  The integration tests run a real traced cluster.
"""

from types import SimpleNamespace

import pytest

from repro.faults.chaos import make_chaos_profile
from repro.harness.systems import INTERNAL_CLUSTER
from repro.obs import analyze, critical_path, render_report, write_report
from repro.obs.causal import TraceContext
from repro.obs.critpath import SEGMENTS, CriticalPathReport
from repro.obs.flightrec import FlightRecorder
from repro.spark.deploy import SparkSimCluster


def synthetic_flight() -> FlightRecorder:
    """Two stages; the read stage's critical task has a known chain.

    Read-task chain (trace 1): request span 10 sent 0.1 → received 0.2,
    response span 11 (child of 10) sent 0.25 → received 0.40 after an
    0.03 s matching dwell.  Task fetch wait 0.35, compute 0.05+0.02.
    """
    rec = FlightRecorder()
    t1, t2, t3 = TraceContext(1, 1), TraceContext(2, 2), TraceContext(3, 3)
    req = TraceContext(1, 10, 1)
    resp = TraceContext(1, 11, 10)

    rec.record(0.0, "stage.start", None, stage="Job0-write", n_tasks=1)
    rec.record(0.0, "task.start", t3, task="Job0-write-task0", exec=0)
    rec.record(0.45, "task.finish", t3, task="Job0-write-task0",
               compute_s=0.1, write_s=0.3)
    rec.record(0.45, "stage.finish", None, stage="Job0-write", seconds=0.45)

    rec.record(0.45, "stage.start", None, stage="Job0-read", n_tasks=2)
    rec.record(0.0, "task.start", t1, task="Job0-read-task1", exec=0)
    rec.record(0.0, "task.start", t2, task="Job0-read-task0", exec=1)
    rec.record(0.1, "msg.send", req, type=0, nbytes=32, ch="c0")
    rec.record(0.2, "msg.recv", req, type=0, nbytes=32, ch="c0")
    rec.record(0.25, "msg.send", resp, type=1, nbytes=4096, ch="s0")
    rec.record(0.37, "mpi.match", resp, waited_s=0.03, buffered=True)
    rec.record(0.40, "msg.recv", resp, type=1, nbytes=4096, ch="s0")
    # the non-critical task finishes first
    rec.record(0.45, "task.finish", t2, task="Job0-read-task0",
               fetch_wait_s=0.1, combine_s=0.02)
    rec.record(0.5, "task.finish", t1, task="Job0-read-task1",
               fetch_wait_s=0.35, compute_s=0.05, combine_s=0.02)
    rec.record(0.5, "stage.finish", None, stage="Job0-read", seconds=0.05)
    return rec


class TestSyntheticAnalysis:
    def test_segment_decomposition_under_basic(self):
        report = analyze(synthetic_flight(), "mpi-basic")
        assert [s.stage for s in report.stages] == ["Job0-write", "Job0-read"]
        read = report.stage("Job0-read")
        assert read.task == "Job0-read-task1"  # last finisher wins
        assert read.seconds("compute") == pytest.approx(0.07)
        # wire = both legs minus the matching dwell
        assert read.seconds("wire") == pytest.approx((0.2 - 0.1) + (0.15 - 0.03))
        assert read.seconds("queue") == pytest.approx(0.25 - 0.2)
        assert read.seconds("poll-tax") == pytest.approx(0.03)
        # fetch wait not covered by the extracted chain (0.40 - 0.10)
        assert read.seconds("fetch-wait") == pytest.approx(0.35 - 0.30)
        write = report.stage("Job0-write")
        assert write.segments == pytest.approx(
            {"compute": 0.1, "serialize": 0.3}
        )

    def test_dwell_is_queue_not_poll_tax_off_basic(self):
        for transport in ("nio", "rdma", "mpi-opt"):
            report = analyze(synthetic_flight(), transport)
            read = report.stage("Job0-read")
            assert read.seconds("poll-tax") == 0.0
            assert read.seconds("queue") == pytest.approx(0.05 + 0.03)
            # total is invariant under the classification
            assert report.total_seconds == pytest.approx(
                analyze(synthetic_flight(), "mpi-basic").total_seconds
            )

    def test_rollups_and_shares(self):
        report = analyze(synthetic_flight(), "mpi-basic")
        assert report.total_seconds == pytest.approx(0.42 + 0.4)
        assert sum(report.share(seg) for seg in SEGMENTS) == pytest.approx(1.0)
        assert report.share("poll-tax") == pytest.approx(0.03 / 0.82)
        assert report.stage("nope") is None

    def test_render_table(self):
        text = analyze(synthetic_flight(), "mpi-basic").render()
        lines = text.splitlines()
        assert lines[0] == "critical path [mpi-basic]"
        for col in ("stage", "crit task", *SEGMENTS, "total"):
            assert col in lines[1]
        assert lines[-1].startswith("TOTAL")

    def test_empty_flight_yields_empty_report(self):
        report = analyze(FlightRecorder(), "nio")
        assert report.stages == []
        assert report.total_seconds == 0.0
        assert report.share("wire") == 0.0


def multi_tenant_flight() -> FlightRecorder:
    """The synthetic DAG plus job-server arrival events for two apps.

    ``app-b`` waits 0.2 s between submission and start, ``app-a`` 0.5 s;
    ``app-c`` starts the instant it is submitted (no pseudo-stage).
    """
    rec = synthetic_flight()
    rec.record(0.0, "job.submit", None, app="app-b")
    rec.record(0.1, "job.submit", None, app="app-a")
    rec.record(0.2, "job.start", None, app="app-b")
    rec.record(0.6, "job.start", None, app="app-a")
    rec.record(0.7, "job.submit", None, app="app-c")
    rec.record(0.7, "job.start", None, app="app-c")
    return rec


class TestRollupAccessors:
    """The report's roll-up surface: shares, per-stage chains, pseudo-stages."""

    def test_sched_wait_pseudo_stages_ordered_by_submission(self):
        report = analyze(multi_tenant_flight(), "mpi-basic")
        pseudo = [s for s in report.stages if s.stage.endswith(":sched-wait")]
        assert [s.stage for s in pseudo] == ["app-b:sched-wait", "app-a:sched-wait"]
        b, a = pseudo
        assert b.segments == {"sched-wait": pytest.approx(0.2)}
        assert a.segments == {"sched-wait": pytest.approx(0.5)}
        assert (b.start_s, b.end_s) == (0.0, 0.2)
        # app-c started instantly: queueing contributed nothing, no row.
        assert report.stage("app-c:sched-wait") is None

    def test_sched_wait_rolls_up_like_any_segment(self):
        report = analyze(multi_tenant_flight(), "mpi-basic")
        assert report.segment_seconds("sched-wait") == pytest.approx(0.7)
        base = analyze(synthetic_flight(), "mpi-basic").total_seconds
        assert report.total_seconds == pytest.approx(base + 0.7)
        assert report.share("sched-wait") == pytest.approx(0.7 / (base + 0.7))
        # Shares still partition the whole path, pseudo-stages included.
        assert sum(report.share(seg) for seg in SEGMENTS) == pytest.approx(1.0)

    def test_single_tenant_flight_has_no_sched_wait(self):
        report = analyze(synthetic_flight(), "mpi-basic")
        assert report.segment_seconds("sched-wait") == 0.0
        assert not [s for s in report.stages if "sched-wait" in s.stage]

    def test_per_stage_chain_decomposition_sums_to_stage_total(self):
        report = analyze(multi_tenant_flight(), "mpi-basic")
        for s in report.stages:
            assert s.total_s == pytest.approx(sum(s.segments.values()))
            # seconds() is total over the chain's occurrences of a segment
            # and 0.0 for segments the chain never touched.
            for seg in SEGMENTS:
                assert s.seconds(seg) >= 0.0
            assert s.seconds("no-such-segment") == 0.0
        read = report.stage("Job0-read")
        assert read.total_s == pytest.approx(
            sum(read.seconds(seg) for seg in SEGMENTS)
        )

    def test_segment_seconds_is_sum_over_stages(self):
        report = analyze(multi_tenant_flight(), "mpi-basic")
        for seg in SEGMENTS:
            assert report.segment_seconds(seg) == pytest.approx(
                sum(s.seconds(seg) for s in report.stages)
            )


class TestCriticalPathEntryPoint:
    def test_raises_without_flight(self):
        result = SimpleNamespace(flight=None, transport="nio")
        with pytest.raises(ValueError, match="spark.repro.obs.causal"):
            critical_path(result)

    def test_real_run_decomposes(self):
        sim = SparkSimCluster(
            INTERNAL_CLUSTER, 2, "mpi-basic", cores_per_executor=2,
            obs_causal=True,
        )
        sim.launch()
        result = sim.run_profile(make_chaos_profile(2, 2, shuffle_bytes=8 << 20))
        sim.shutdown()
        report = critical_path(result)
        assert report.transport == "mpi-basic"
        assert [s.stage for s in report.stages] == list(result.stage_seconds)
        read = report.stages[-1]
        assert read.seconds("wire") > 0
        assert read.total_s <= result.total_seconds


class TestHtmlReport:
    def _result(self, flight):
        return SimpleNamespace(
            flight=flight,
            transport="mpi-basic",
            workload="GroupByTest",
            system="Internal",
            n_workers=2,
            total_cores=8,
            total_seconds=0.5,
            stage_seconds={"Job0-write": 0.45, "Job0-read": 0.05},
        )

    def test_page_contains_sections(self):
        flight = synthetic_flight()
        page = render_report(
            [(self._result(flight), analyze(flight, "mpi-basic"))],
            title="unit <report>",
        )
        assert page.startswith("<!DOCTYPE html>")
        assert "unit &lt;report&gt;" in page  # titles are escaped
        assert "transport: mpi-basic" in page
        assert page.count("<svg") >= 3  # gantt + timeline + share bar
        assert "poll-tax" in page and "message spans" in page

    def test_no_flight_still_renders(self):
        report = CriticalPathReport(transport="nio")
        page = render_report([(self._result(None), report)])
        assert "transport: mpi-basic" in page
        assert "<svg" not in page.split("critical path")[0]

    def test_write_report(self, tmp_path):
        flight = synthetic_flight()
        path = write_report(
            str(tmp_path / "r.html"),
            [(self._result(flight), analyze(flight, "mpi-basic"))],
        )
        assert open(path).read().startswith("<!DOCTYPE html>")
