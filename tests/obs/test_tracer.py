"""Unit tests for the span tracer and its Chrome-trace export."""

import json

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.simnet.engine import SimEngine


@pytest.fixture
def env():
    return SimEngine()


@pytest.fixture
def tracer(env):
    t = Tracer(env)
    env.tracer = t
    return t


class TestNullTracer:
    def test_engine_default_is_null(self, env):
        assert isinstance(env.tracer, NullTracer)
        assert not env.tracer.enabled

    def test_null_span_is_shared_noop(self):
        a = NULL_TRACER.span("x")
        b = NULL_TRACER.span("y", cat="c", track="t", k=1)
        assert a is b
        with a as ctx:
            ctx.annotate(ignored=True)
        NULL_TRACER.instant("nothing")


class TestSpans:
    def test_span_records_sim_interval(self, env, tracer):
        def proc(env):
            with tracer.span("task", cat="task", track="exec0"):
                yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        (span,) = tracer.spans
        assert span.name == "task"
        assert span.start_s == 0.0
        assert span.end_s == 2.0
        assert span.duration_s == 2.0

    def test_annotate_merges_args(self, env, tracer):
        with tracer.span("t", k1=1) as ctx:
            ctx.annotate(k2=2)
        assert tracer.spans[0].args == {"k1": 1, "k2": 2}

    def test_exception_marks_span_failed(self, env, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("x")
        span = tracer.spans[0]
        assert span.args["failed"] is True
        assert span.end_s is not None

    def test_nested_spans_on_tracks(self, env, tracer):
        def proc(env):
            with tracer.span("stage", track="driver"):
                with tracer.span("task", track="exec0"):
                    yield env.timeout(1.0)
                yield env.timeout(0.5)

        env.process(proc(env))
        env.run()
        by = {s.name: s for s in tracer.spans}
        assert by["task"].end_s == 1.0
        assert by["stage"].end_s == 1.5
        assert by["stage"].start_s <= by["task"].start_s


class TestChromeExport:
    def _trace(self, env, tracer):
        def proc(env):
            with tracer.span("stage", cat="stage", track="driver"):
                with tracer.span("task", cat="task", track="exec0", t=0):
                    yield env.timeout(1.0)
            tracer.instant("fault", track="driver", kind="crash")

        env.process(proc(env))
        env.run()
        return tracer.to_chrome_trace()

    def test_valid_json_roundtrip(self, env, tracer):
        self._trace(env, tracer)
        blob = tracer.dumps()
        back = json.loads(blob)
        assert back["traceEvents"]
        assert back["displayTimeUnit"] == "ms"

    def test_event_shapes(self, env, tracer):
        trace = self._trace(env, tracer)
        by_ph = {}
        for ev in trace["traceEvents"]:
            by_ph.setdefault(ev["ph"], []).append(ev)
        # metadata: one process_name + one thread_name per track
        meta = by_ph["M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        track_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert track_names == {"driver", "exec0"}
        # complete events carry µs timestamps of simulated time
        task = next(e for e in by_ph["X"] if e["name"] == "task")
        assert task["ts"] == 0.0
        assert task["dur"] == pytest.approx(1e6)
        # distinct tracks get distinct tids
        stage = next(e for e in by_ph["X"] if e["name"] == "stage")
        assert stage["tid"] != task["tid"]
        # the instant marker
        (inst,) = by_ph["i"]
        assert inst["name"] == "fault" and inst["args"]["kind"] == "crash"

    def test_open_span_closed_at_export_and_flagged(self, env, tracer):
        def proc(env):
            tracer.span("leaked", track="exec0")  # never exited
            yield env.timeout(3.0)

        env.process(proc(env))
        env.run()
        trace = tracer.to_chrome_trace()
        leaked = next(e for e in trace["traceEvents"] if e["name"] == "leaked")
        assert leaked["dur"] == pytest.approx(3e6)
        assert leaked["args"]["unfinished"] is True
        # the span itself is untouched (export is read-only)
        assert tracer.spans[0].end_s is None

    def test_write_creates_loadable_file(self, env, tracer, tmp_path):
        self._trace(env, tracer)
        path = tracer.write(str(tmp_path / "trace.json"))
        loaded = json.loads(open(path).read())
        assert loaded["traceEvents"]


class TestTimeline:
    def test_empty(self, env, tracer):
        assert "no spans" in tracer.render_timeline()

    def test_renders_bar_per_span(self, env, tracer):
        def proc(env):
            with tracer.span("a", track="driver"):
                yield env.timeout(1.0)
            with tracer.span("b", track="driver"):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        out = tracer.render_timeline(width=20)
        lines = out.splitlines()
        assert "2 spans" in lines[0]
        assert any("driver:a" in line and "#" in line for line in lines)
        assert any("driver:b" in line for line in lines)
