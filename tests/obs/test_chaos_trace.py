"""Flight recording under fault injection (satellite of the causal PR).

The invariant: a traced run that dies — channel death on the socket
transports, world abort on MPI — must not leave dangling sends.  Every
open span is closed with a ``span.aborted`` record and the log ends with
an explicit terminal event (``channel.dead`` / ``mpi.abort``), so a
crashed run's trace is still a complete, analyzable artifact.
"""

import pytest

from repro.faults import (
    ChaosScenario,
    ExecutorCrash,
    FaultPlan,
    NicDegradation,
)
from repro.faults.chaos import run_scenario
from repro.faults.injector import FaultInjector
from repro.faults.recovery import JobFailedError, ResilientScheduler
from repro.harness.profile import ShuffleReadStage
from repro.harness.systems import INTERNAL_CLUSTER
from repro.mpi.errors import MPIError
from repro.simnet.events import SimError
from repro.util.units import MiB


def crash_plan(seed=7):
    return (
        FaultPlan(seed=seed, name="crash+degrade")
        .add(NicDegradation(at_s=0.002, node_index=2, factor=4.0, duration_s=0.5))
        .add(ExecutorCrash(at_s=0.005, exec_id=1))
    )


def traced_scenario(transport, mode="abort"):
    return ChaosScenario(
        name="trace-cell",
        system=INTERNAL_CLUSTER,
        n_workers=4,
        transport=transport,
        plan=crash_plan(),
        mpi_fault_mode=mode,
        cores_per_executor=4,
        shuffle_bytes=64 * MiB,
        deadline_s=60.0,
        obs_causal=True,
    )


def run_faulted(scenario):
    """The faulted half of :func:`run_scenario`, keeping the flight log."""
    sim = scenario.build_cluster()
    sim.launch()
    injector = FaultInjector(
        sim.cluster,
        mpi_world=sim.transport.mpi_world,
        executors=sim.executors,
    )
    injector.install(scenario.plan)
    sched = ResilientScheduler(sim, scenario.policy)

    def arm_at_read(stage):
        if isinstance(stage, ShuffleReadStage) and not injector._armed:
            injector.arm()

    sched.on_stage_start = arm_at_read
    failure = None
    try:
        sched.run_profile(scenario.build_profile(), scenario.deadline_s)
    except (JobFailedError, MPIError, SimError) as exc:
        failure = exc
    flight = sim.env.causal.flight
    sim.shutdown()
    return flight, failure


class TestChannelDeath:
    @pytest.fixture(scope="class", params=["nio", "rdma"])
    def crashed(self, request):
        return run_faulted(traced_scenario(request.param))

    def test_faults_are_recorded(self, crashed):
        flight, failure = crashed
        assert failure is None  # sockets recover via resubmission
        kinds = [ev.attrs["kind"] for ev in flight.named("fault.inject")]
        assert "ExecutorCrash" in kinds and "NicDegradation" in kinds

    def test_dead_channels_leave_terminals(self, crashed):
        flight, _ = crashed
        terminals = flight.named("channel.dead")
        assert terminals
        assert all(ev.attrs["ch"] and ev.attrs["reason"] for ev in terminals)

    def test_no_dangling_spans(self, crashed):
        flight, _ = crashed
        assert flight.open_spans() == []
        # aborted spans were really open: each had a send, never a recv
        recvd = {ev.span for ev in flight.named("msg.recv")}
        matched = {ev.span for ev in flight.named("mpi.match")}
        sent = {ev.span for ev in flight.named("msg.send")}
        for ev in flight.named("span.aborted"):
            assert ev.span in sent
            assert ev.span not in recvd | matched


class TestMpiAbort:
    @pytest.fixture(scope="class", params=["mpi-basic", "mpi-opt"])
    def aborted(self, request):
        return run_faulted(traced_scenario(request.param, mode="abort"))

    def test_job_dies_with_tombstone(self, aborted):
        flight, failure = aborted
        assert failure is not None
        tombs = flight.named("mpi.abort")
        assert len(tombs) == 1
        assert tombs[0].attrs["reason"]

    def test_abort_sweep_closes_everything(self, aborted):
        flight, _ = aborted
        assert flight.open_spans() == []

    def test_trace_still_has_the_story(self, aborted):
        flight, _ = aborted
        assert flight.named("fault.inject")
        assert flight.named("msg.send")  # traffic before the abort
        # the tombstone is the last word on the trace's own timeline
        assert flight.events[-1].t >= max(
            ev.t for ev in flight.named("msg.send")
        )


class TestShrinkRecovery:
    def test_shrink_mode_keeps_spans_closed_without_abort(self):
        flight, failure = run_faulted(traced_scenario("mpi-opt", mode="shrink"))
        assert failure is None
        assert not flight.named("mpi.abort")
        assert flight.open_spans() == []

    def test_run_scenario_accepts_obs_causal(self):
        report = run_scenario(traced_scenario("nio"))
        assert report.job_completed
