"""Causal tracing: context minting, transport propagation, zero-cost-off.

The propagation tests run the same small shuffle job under every
transport with ``spark.repro.obs.causal`` on and inspect the flight log;
the zero-cost tests assert the tracing side channel leaves frames,
envelopes and simulated timings untouched when (and even when not)
disabled — the property the figure-suite goldens depend on.
"""

import pickle
from dataclasses import replace

import pytest

from repro.faults.chaos import make_chaos_profile
from repro.harness.systems import INTERNAL_CLUSTER
from repro.mpi.envelope import Envelope, Protocol
from repro.obs import NULL_CAUSAL, causal_from_conf, obs_from_conf
from repro.obs.causal import CausalTracer, NullCausal, TraceContext
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster
from repro.spark.messages import (
    ChunkFetchRequest,
    RpcRequest,
    StreamChunkId,
    encode_message,
    ensure_trace,
)


class _Env:
    now = 0.25


def _run(transport, **kwargs):
    sim = SparkSimCluster(
        INTERNAL_CLUSTER, 2, transport, cores_per_executor=2, **kwargs
    )
    sim.launch()
    result = sim.run_profile(make_chaos_profile(2, 2, shuffle_bytes=8 << 20))
    sim.shutdown()
    return sim, result


class TestContexts:
    def test_mint_is_deterministic(self):
        a, b = CausalTracer(_Env()), CausalTracer(_Env())
        ids = lambda t: [(c.trace_id, c.span_id) for c in (t.mint(), t.mint())]
        assert ids(a) == ids(b) == [(1, 1), (2, 2)]

    def test_child_shares_trace_links_parent(self):
        tracer = CausalTracer(_Env())
        root = tracer.mint()
        kid = tracer.child(root)
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id

    def test_child_of_none_is_a_root(self):
        kid = CausalTracer(_Env()).child(None)
        assert kid.parent_id == 0

    def test_null_causal_is_free(self):
        assert not NULL_CAUSAL.enabled
        assert NULL_CAUSAL.mint() is None
        assert NULL_CAUSAL.child(None) is None
        # every op is a no-op; none may raise
        NULL_CAUSAL.send(None, 0, 0)
        NULL_CAUSAL.recv(None, 0, 0)
        NULL_CAUSAL.match(None, 0.0, False)
        NULL_CAUSAL.join(None, 0)
        NULL_CAUSAL.event("x")
        NULL_CAUSAL.channel_closed("ch", "r")
        NULL_CAUSAL.abort("r")

    def test_ensure_trace_mints_once_and_respects_disabled(self):
        msg = RpcRequest(request_id=1)
        assert ensure_trace(msg, NullCausal()) is None
        assert msg.trace_ctx is None
        tracer = CausalTracer(_Env())
        ctx = ensure_trace(msg, tracer)
        assert ctx is msg.trace_ctx
        assert ensure_trace(msg, tracer) is ctx  # kept, not re-minted


class TestConfWiring:
    def test_causal_from_conf(self):
        assert causal_from_conf(SparkConf()) is False
        assert causal_from_conf(
            SparkConf({"spark.repro.obs.causal": "true"})
        ) is True

    def test_causal_implies_enabled_without_trace(self):
        conf = SparkConf({"spark.repro.obs.causal": "true"})
        assert obs_from_conf(conf) == (True, False)

    def test_cluster_from_conf_installs_tracer(self):
        conf = SparkConf(
            {"spark.repro.transport": "mpi-opt", "spark.repro.obs.causal": "true"}
        )
        sim = SparkSimCluster.from_conf(INTERNAL_CLUSTER, 2, conf)
        assert sim.obs_causal and sim.obs_enabled
        assert sim.env.causal.enabled

    def test_default_engine_has_null_causal(self):
        sim = SparkSimCluster(INTERNAL_CLUSTER, 2, "nio")
        assert not sim.env.causal.enabled


class TestPropagation:
    @pytest.fixture(scope="class", params=["nio", "rdma", "mpi-basic", "mpi-opt"])
    def traced(self, request):
        sim, result = _run(request.param, obs_causal=True)
        return request.param, sim.env.causal.flight, result

    def test_every_send_is_received_and_closed(self, traced):
        _, flight, _ = traced
        sends = flight.named("msg.send")
        assert sends
        closed = {ev.span for ev in flight.named("msg.recv")}
        closed |= {ev.span for ev in flight.named("mpi.match")}
        assert {ev.span for ev in sends} <= closed
        assert flight.open_spans() == []
        assert flight.dropped == 0

    def test_responses_are_children_of_requests(self, traced):
        _, flight, _ = traced
        send_spans = {ev.span: ev for ev in flight.named("msg.send")}
        task_spans = {ev.span for ev in flight.named("task.start")}
        with_parent = [ev for ev in send_spans.values() if ev.parent]
        assert with_parent
        # requests hang off the task span that issued them...
        assert any(ev.parent in task_spans for ev in with_parent)
        # ...responses off the request span, within the same trace
        responses = [ev for ev in with_parent if ev.parent in send_spans]
        assert responses
        for ev in responses:
            req = send_spans[ev.parent]
            assert req.trace == ev.trace
            assert req.t <= ev.t

    def test_task_and_stage_events_present(self, traced):
        _, flight, result = traced
        n_tasks = sum(1 for ev in flight.events if ev.name == "task.finish")
        assert n_tasks == 12  # 3 stages * 4 tasks
        stages = [ev.attrs["stage"] for ev in flight.named("stage.finish")]
        assert stages == list(result.stage_seconds)

    def test_result_carries_picklable_flight(self, traced):
        _, flight, result = traced
        assert result.flight is flight
        back = pickle.loads(pickle.dumps(result))
        assert len(back.flight) == len(flight)

    def test_transport_specific_edges(self, traced):
        transport, flight, _ = traced
        matches = flight.named("mpi.match")
        joins = flight.named("msg.join")
        if transport in ("nio", "rdma"):
            assert not matches and not joins
        elif transport == "mpi-basic":
            # every message rides MPI; discovery dwell is the polling tax
            assert len(matches) == len(flight.named("msg.send"))
            assert not joins
            assert any(ev.attrs["waited_s"] > 0 for ev in matches)
        else:  # mpi-opt: only bulk bodies ride MPI, as child body legs
            assert joins
            assert len(matches) == len(joins)
            body_legs = [
                ev for ev in flight.named("msg.send")
                if ev.attrs.get("leg") == "mpi-body"
            ]
            assert len(body_legs) == len(joins)
            frame_spans = {ev.span for ev in flight.named("msg.send")}
            assert all(ev.parent in frame_spans for ev in body_legs)


class TestZeroCostWhenDisabled:
    def test_frames_byte_identical_with_and_without_context(self):
        for make in (
            lambda: ChunkFetchRequest(StreamChunkId(7, 0), num_blocks=3),
            lambda: RpcRequest(request_id=9, payload=None, payload_nbytes=128),
        ):
            plain, traced = make(), make()
            ensure_trace(traced, CausalTracer(_Env()))
            f0, f1 = encode_message(plain), encode_message(traced)
            assert f1.header == f0.header
            assert f1.nbytes == f0.nbytes
            assert f1 == f0  # trace_ctx excluded from dataclass equality

    def test_envelopes_compare_equal_across_trace_ctx(self):
        env = Envelope(
            src_gid=0, src_rank=0, dst_gid=1, context_id=0, tag=5,
            payload=None, nbytes=64, protocol=Protocol.EAGER,
        )
        traced = replace(env, trace_ctx=TraceContext(1, 1))
        assert traced == env

    @pytest.mark.parametrize("transport", ["mpi-basic", "mpi-opt"])
    def test_identical_timings_and_event_counts(self, transport):
        sim_off, off = _run(transport)
        sim_on, on = _run(transport, obs_causal=True)
        assert on.total_seconds == off.total_seconds
        assert dict(on.stage_seconds) == dict(off.stage_seconds)
        assert sim_on.env.events_processed == sim_off.env.events_processed
        assert off.flight is None and on.flight is not None
