"""Unit tests for the sim-clock-native metrics registry."""

import json

import pytest

from repro.obs.registry import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.simnet.engine import SimEngine


@pytest.fixture
def env():
    return SimEngine()


class TestRegistryBasics:
    def test_engine_owns_a_registry(self, env):
        assert isinstance(env.metrics, MetricsRegistry)
        assert env.metrics.env is env

    def test_get_or_create_returns_same_object(self, env):
        a = env.metrics.counter("a.b.c")
        b = env.metrics.counter("a.b.c")
        assert a is b
        assert len(env.metrics) == 1

    def test_kind_mismatch_raises(self, env):
        env.metrics.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            env.metrics.gauge("x")

    def test_counter_increments(self, env):
        c = env.metrics.counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_set_inc_dec(self, env):
        g = env.metrics.gauge("depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_on_snapshot_hook_publishes_lazily(self, env):
        # The hot-path pattern: a plain attribute counter synced into the
        # registry only when a snapshot is taken.
        c = env.metrics.counter("lazy.total")
        state = {"n": 0}
        env.metrics.on_snapshot(lambda: c.__setattr__("value", float(state["n"])))
        state["n"] = 41
        assert c.value == 0.0  # nothing published yet
        assert env.metrics.snapshot().value("lazy.total") == 41.0
        state["n"] = 42
        assert env.metrics.snapshot().value("lazy.total") == 42.0  # idempotent re-sync


class TestTimeWeightedGauge:
    def test_time_average_weights_by_duration(self, env):
        g = env.metrics.time_gauge("active")

        def proc(env):
            g.set(2.0)  # at t=0
            yield env.timeout(1.0)
            g.set(4.0)  # held 2.0 for [0,1)
            yield env.timeout(3.0)
            g.set(0.0)  # held 4.0 for [1,4)

        env.process(proc(env))
        env.run()
        # integral = 2*1 + 4*3 = 14 over 4s
        assert g.time_average() == pytest.approx(14.0 / 4.0)

    def test_time_average_before_any_time_passes(self, env):
        g = env.metrics.time_gauge("idle")
        g.set(7.0)
        assert g.time_average() == 7.0


class TestHistogram:
    def test_summary_has_exact_moments(self, env):
        h = env.metrics.histogram("lat")
        for x in (1.0, 2.0, 3.0, 4.0):
            h.observe(x)
        s = h.summary()
        assert s.n == 4
        assert s.mean == 2.5
        assert s.min == 1.0 and s.max == 4.0
        assert s.total == 10.0
        assert s.p50 == 2.5
        assert s.p95 <= s.p99 <= s.max

    def test_empty_summary_is_none_and_dropped_from_snapshot(self, env):
        env.metrics.histogram("never_observed")
        assert env.metrics.histogram("never_observed").summary() is None
        snap = env.metrics.snapshot()
        assert "never_observed" not in snap.histograms

    def test_decimation_caps_samples_keeps_exact_moments(self, env):
        h = env.metrics.histogram("big")
        n = 3 * HISTOGRAM_SAMPLE_CAP
        for i in range(n):
            h.observe(float(i))
        assert len(h._samples) <= HISTOGRAM_SAMPLE_CAP
        s = h.summary()
        assert s.n == n  # moments never decimated
        assert s.mean == pytest.approx((n - 1) / 2.0)
        assert s.min == 0.0 and s.max == float(n - 1)
        # decimated percentiles stay in the right ballpark
        assert s.p50 == pytest.approx(n / 2, rel=0.05)

    def test_decimation_is_deterministic(self, env):
        h1 = env.metrics.histogram("h1")
        h2 = env.metrics.histogram("h2")
        for i in range(2 * HISTOGRAM_SAMPLE_CAP):
            h1.observe(float(i))
            h2.observe(float(i))
        assert h1._samples == h2._samples

    def test_decimation_boundary_exactly_at_cap(self, env):
        # Exactly CAP observations: the window is full but untouched —
        # decimation must not fire one observation early.
        h = env.metrics.histogram("edge")
        for i in range(HISTOGRAM_SAMPLE_CAP):
            h.observe(float(i))
        assert len(h._samples) == HISTOGRAM_SAMPLE_CAP
        assert h._samples == [float(i) for i in range(HISTOGRAM_SAMPLE_CAP)]
        assert h._stride == 1
        # Observation CAP+1 halves retention (keep every other sample,
        # double the stride) and, landing on the new stride, is kept.
        h.observe(float(HISTOGRAM_SAMPLE_CAP))
        assert h._stride == 2
        assert len(h._samples) == HISTOGRAM_SAMPLE_CAP // 2 + 1
        assert h._samples[:3] == [0.0, 2.0, 4.0]
        assert h._samples[-1] == float(HISTOGRAM_SAMPLE_CAP)
        # moments never decimate
        assert h.summary().n == HISTOGRAM_SAMPLE_CAP + 1
        assert h.summary().max == float(HISTOGRAM_SAMPLE_CAP)

    def test_decimation_boundary_is_deterministic_across_registries(self):
        # Two registries on two engines, same feed, stopped exactly at
        # the halving point: byte-identical windows (no RNG anywhere).
        snaps = []
        for _ in range(2):
            e = SimEngine()
            h = e.metrics.histogram("lat")
            for i in range(HISTOGRAM_SAMPLE_CAP + 1):
                h.observe(float(i))
            snaps.append((list(h._samples), h._stride, h.summary()))
        assert snaps[0] == snaps[1]

    def test_observe_many_respects_the_cap(self, env):
        h = env.metrics.histogram("bulk")
        for i in range(HISTOGRAM_SAMPLE_CAP):
            h.observe(float(i))
        h.observe_many(-5.0, 1000)  # window full: moments only
        assert len(h._samples) == HISTOGRAM_SAMPLE_CAP
        assert -5.0 not in h._samples
        s = h.summary()
        assert s.n == HISTOGRAM_SAMPLE_CAP + 1000
        assert s.min == -5.0


class TestSnapshot:
    def _populated(self, env):
        m = env.metrics
        m.counter("netty.loop.a.busy_s").inc(1.5)
        m.counter("netty.loop.b.busy_s").inc(0.5)
        m.counter("mpi.rank.r0.iprobe_calls").inc(10)
        m.gauge("window").set(3)
        m.time_gauge("flows").set(2)
        m.histogram("wait").observe(0.25)
        return m.snapshot()

    def test_len_and_names_glob(self, env):
        snap = self._populated(env)
        assert len(snap) == 6
        assert snap.names("netty.loop.*.busy_s") == [
            "netty.loop.a.busy_s",
            "netty.loop.b.busy_s",
        ]

    def test_total_sums_matching_counters_only(self, env):
        snap = self._populated(env)
        assert snap.total("netty.loop.*.busy_s") == 2.0
        assert snap.total("no.such.*") == 0.0
        # gauges/histograms are not counters: excluded from total()
        assert snap.total("window") == 0.0

    def test_value_lookup(self, env):
        snap = self._populated(env)
        assert snap.value("mpi.rank.r0.iprobe_calls") == 10
        assert snap.value("window") == 3
        assert snap.value("missing", default=-1.0) == -1.0

    def test_snapshot_is_frozen(self, env):
        snap = self._populated(env)
        with pytest.raises(AttributeError):
            snap.taken_at = 99.0

    def test_delta_across_registries_drops_zeros(self, env):
        snap_a = self._populated(env)
        env2 = SimEngine()
        m2 = env2.metrics
        m2.counter("netty.loop.a.busy_s").inc(4.5)
        m2.counter("spark.scheduler.tasks_finished").inc(7)
        snap_b = m2.snapshot()
        d = snap_b.delta(snap_a)
        assert d["netty.loop.a.busy_s"] == 3.0
        assert d["spark.scheduler.tasks_finished"] == 7
        # b's missing counters with a zero diff don't appear
        assert "netty.loop.b.busy_s" not in d
        assert snap_b.delta(snap_a, "spark.*") == {
            "spark.scheduler.tasks_finished": 7
        }

    def test_delta_across_registries_with_disjoint_lazy_counters(self):
        # Two fresh engines whose counters are *disjoint* and published
        # only by on_snapshot hooks — the A/B pattern the diff engine
        # leans on: a clean run vs a faulted run of two same-seed
        # clusters, each with its own lazily-synced hot-path counters.
        def lazy_registry(name, value):
            e = SimEngine()
            c = e.metrics.counter(name)
            state = {"n": 0}
            e.metrics.on_snapshot(
                lambda: c.__setattr__("value", float(state["n"]))
            )
            state["n"] = value
            return e.metrics

        m_a = lazy_registry("netty.loop.a.polls", 100)
        m_b = lazy_registry("mpi.rank.r0.iprobe_calls", 7)
        snap_a, snap_b = m_a.snapshot(), m_b.snapshot()
        # hooks fired on each side independently
        assert snap_a.value("netty.loop.a.polls") == 100.0
        assert snap_b.value("mpi.rank.r0.iprobe_calls") == 7.0
        # disjoint names: b's counters count from zero against a...
        assert snap_b.delta(snap_a) == {"mpi.rank.r0.iprobe_calls": 7.0}
        # ...and delta is one-directional by contract: names present
        # only in the baseline do not appear as negative entries.
        assert "netty.loop.a.polls" not in snap_b.delta(snap_a)
        assert snap_a.delta(snap_b) == {"netty.loop.a.polls": 100.0}
        # glob filtering still applies across the disjoint sets
        assert snap_b.delta(snap_a, "netty.*") == {}

    def test_as_dict_is_json_roundtrippable(self, env):
        snap = self._populated(env)
        blob = json.dumps(snap.as_dict(), sort_keys=True)
        back = json.loads(blob)
        assert back["counters"]["mpi.rank.r0.iprobe_calls"] == 10
        assert back["histograms"]["wait"]["n"] == 1

    def test_elapsed_uses_sim_clock(self, env):
        def proc(env):
            yield env.timeout(2.5)

        env.process(proc(env))
        env.run()
        snap = env.metrics.snapshot()
        assert snap.taken_at == 2.5
        assert snap.elapsed_s == 2.5
