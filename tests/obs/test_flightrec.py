"""FlightRecorder unit behaviour: bounded log, open spans, failure sweeps."""

import json
import pickle

from repro.obs.causal import TraceContext
from repro.obs.flightrec import DEFAULT_CAPACITY, FlightEvent, FlightRecorder


def ctx(trace=1, span=1, parent=0):
    return TraceContext(trace, span, parent)


class TestRecording:
    def test_record_stamps_fields(self):
        rec = FlightRecorder()
        ev = rec.record(0.5, "msg.send", ctx(3, 7, 2), type=1, nbytes=64)
        assert (ev.t, ev.name) == (0.5, "msg.send")
        assert (ev.trace, ev.span, ev.parent) == (3, 7, 2)
        assert ev.attrs == {"type": 1, "nbytes": 64}
        assert len(rec) == 1

    def test_as_dict_omits_zero_ids(self):
        plain = FlightRecorder().record(1.0, "stage.start", None, stage="s")
        assert plain.as_dict() == {"t": 1.0, "ev": "stage.start", "stage": "s"}
        traced = FlightRecorder().record(1.0, "msg.send", ctx(2, 5))
        d = traced.as_dict()
        assert d["trace"] == 2 and d["span"] == 5 and "parent" not in d

    def test_capacity_bound_drops_oldest_and_counts(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(float(i), "ev", None, i=i)
        assert len(rec) == 4
        assert rec.dropped == 6
        assert [ev.attrs["i"] for ev in rec.events] == [6, 7, 8, 9]

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestEviction:
    """The bounded buffer under pressure — what a committed baseline
    recorded near capacity must still guarantee."""

    def test_exactly_at_capacity_evicts_nothing(self):
        rec = FlightRecorder(capacity=4)
        for i in range(4):
            rec.record(float(i), "ev", None, i=i)
        assert len(rec) == 4 and rec.dropped == 0
        rec.record(4.0, "ev", None, i=4)  # one past: oldest goes first
        assert rec.dropped == 1
        assert [ev.attrs["i"] for ev in rec.events] == [1, 2, 3, 4]

    def test_tombstones_survive_eviction_of_their_spans(self):
        # A span's open-era events may be evicted while its abort
        # tombstone (recorded later, so younger) survives — the failure
        # story must outlive the chatter that preceded it.
        rec = FlightRecorder(capacity=4)
        rec.span_open(ctx(1, 1), channel="c0")
        rec.record(0.1, "msg.send", ctx(1, 1), nbytes=8)
        rec.close_channel(0.2, "c0", "connection reset")  # abort + dead
        for i in range(2):
            rec.record(1.0 + i, "ev", None, i=i)  # push the send out
        assert rec.dropped == 1
        names = [ev.name for ev in rec.events]
        assert "msg.send" not in names
        assert "span.aborted" in names and "channel.dead" in names

    def test_evicted_recording_round_trips_without_dangling_edges(self):
        # Survivors can reference evicted parents; the JSONL round trip
        # must preserve them verbatim, not resolve (or drop) the edge.
        rec = FlightRecorder(capacity=3)
        rec.record(0.0, "msg.send", ctx(1, 1), nbytes=8)       # evicted
        rec.record(0.1, "msg.recv", ctx(1, 1), nbytes=8)       # evicted
        rec.record(0.2, "msg.send", ctx(1, 2, 1), nbytes=16)   # parent=1
        rec.record(0.3, "msg.recv", ctx(1, 2, 1), nbytes=16)
        rec.record(0.4, "stage.finish", None, stage="s", seconds=0.4)
        assert rec.dropped == 2
        back = FlightRecorder.from_jsonl(rec.to_jsonl())
        assert back.to_jsonl() == rec.to_jsonl()
        assert len(back) == 3
        # the child still names span 1 as parent even though span 1's
        # own events are gone
        survivors = back.by_trace(1)
        assert {ev.parent for ev in survivors} == {1}
        assert back.open_spans() == []

    def test_from_events_grows_capacity_to_fit(self):
        # Rebuilding from a big recorded log must not re-evict its head.
        events = [FlightEvent(float(i), "ev", attrs={"i": i})
                  for i in range(DEFAULT_CAPACITY + 10)]
        rec = FlightRecorder.from_events(events)
        assert len(rec) == DEFAULT_CAPACITY + 10
        assert rec.dropped == 0
        assert rec.events[0].attrs["i"] == 0

    def test_from_events_explicit_capacity_and_dropped(self):
        events = [FlightEvent(float(i), "ev", attrs={"i": i}) for i in range(6)]
        rec = FlightRecorder.from_events(events, capacity=4, dropped=9)
        assert len(rec) == 4
        assert [ev.attrs["i"] for ev in rec.events] == [2, 3, 4, 5]
        # 9 pre-declared + 2 evicted while replaying
        assert rec.dropped == 11

    def test_gzip_write_and_load_round_trip(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.record(float(i), "ev", ctx(1, i + 1), i=i)
        path = rec.write(str(tmp_path / "flight.jsonl.gz"))
        assert path.endswith(".gz")
        raw = open(path, "rb").read()
        assert raw[:2] == b"\x1f\x8b"  # actually gzip on disk
        back = FlightRecorder.load_jsonl(path)
        assert back.to_jsonl() == rec.to_jsonl()

    def test_gzip_write_is_byte_deterministic(self, tmp_path):
        # committed baselines diff clean only if the bytes never wobble
        rec = FlightRecorder()
        rec.record(0.0, "run.meta", None, transport="nio")
        a = rec.write(str(tmp_path / "a.jsonl.gz"))
        b = rec.write(str(tmp_path / "b.jsonl.gz"))
        assert open(a, "rb").read() == open(b, "rb").read()


class TestOpenSpans:
    def test_open_close_lifecycle(self):
        rec = FlightRecorder()
        a, b = ctx(1, 1), ctx(1, 2, 1)
        rec.span_open(a, channel="ch-0")
        rec.span_open(b, channel="ch-1")
        assert rec.open_spans() == [1, 2]
        assert rec.open_on("ch-0") and rec.open_on("ch-1")
        rec.span_close(1)
        assert rec.open_spans() == [2]
        assert not rec.open_on("ch-0")
        rec.span_close(1)  # idempotent
        assert rec.open_spans() == [2]

    def test_close_channel_aborts_only_that_channels_spans(self):
        rec = FlightRecorder()
        rec.span_open(ctx(1, 1), channel="dead")
        rec.span_open(ctx(1, 2, 1), channel="dead")
        rec.span_open(ctx(2, 3), channel="alive")
        closed = rec.close_channel(4.0, "dead", "connection reset")
        assert closed == 2
        assert rec.open_spans() == [3]
        aborted = rec.named("span.aborted")
        assert [ev.span for ev in aborted] == [1, 2]
        assert all(ev.t == 4.0 and ev.attrs["reason"] == "connection reset"
                   for ev in aborted)
        terminal = rec.named("channel.dead")
        assert len(terminal) == 1
        assert terminal[0].attrs == {
            "ch": "dead", "reason": "connection reset", "closed": 2,
        }

    def test_close_all_emits_requested_terminal(self):
        rec = FlightRecorder()
        rec.span_open(ctx(1, 1), channel="x")
        rec.span_open(ctx(2, 2), channel="y")
        closed = rec.close_all(9.0, "world aborted", terminal="mpi.abort")
        assert closed == 2
        assert rec.open_spans() == []
        assert len(rec.named("span.aborted")) == 2
        (tomb,) = rec.named("mpi.abort")
        assert tomb.t == 9.0 and tomb.attrs["closed"] == 2


class TestQueriesAndExport:
    def _sample(self):
        rec = FlightRecorder()
        rec.record(0.0, "msg.send", ctx(1, 1), nbytes=8)
        rec.record(0.1, "msg.recv", ctx(1, 1), nbytes=8)
        rec.record(0.2, "msg.send", ctx(2, 2), nbytes=16)
        return rec

    def test_named_and_by_trace(self):
        rec = self._sample()
        assert [ev.t for ev in rec.named("msg.send")] == [0.0, 0.2]
        assert [ev.name for ev in rec.by_trace(1)] == ["msg.send", "msg.recv"]

    def test_to_jsonl_round_trips(self):
        rec = self._sample()
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert rows[0] == {"t": 0.0, "ev": "msg.send", "trace": 1, "span": 1,
                           "nbytes": 8}

    def test_write(self, tmp_path):
        rec = self._sample()
        path = rec.write(str(tmp_path / "flight.jsonl"))
        assert open(path).read() == rec.to_jsonl()

    def test_empty_jsonl_is_empty_string(self):
        assert FlightRecorder().to_jsonl() == ""

    def test_from_events(self):
        rec = self._sample()
        rebuilt = FlightRecorder.from_events(rec.events)
        assert [ev.name for ev in rebuilt.events] == [
            "msg.send", "msg.recv", "msg.send",
        ]


class TestJsonlImport:
    """`from_jsonl`/`load_jsonl` — the exact inverse of `to_jsonl`."""

    def _rich_recorder(self):
        """Spans, matches with edges, and failure tombstones in one log."""
        rec = FlightRecorder()
        rec.record(0.0, "run.meta", None, transport="mpi-basic", n_workers=2,
                   slots_per_executor=4, rendezvous_threshold=16384)
        rec.record(0.1, "msg.send", ctx(1, 1), type=3, nbytes=64, ch="c0")
        rec.record(0.2, "mpi.match", ctx(1, 1), waited_s=0.05, unexpected=True)
        rec.record(0.3, "msg.send", ctx(1, 2, 1), type=4, nbytes=1 << 20)
        rec.record(0.4, "msg.recv", ctx(1, 2, 1), nbytes=1 << 20)
        # A dangling span closed by a channel death, then the world abort:
        # the tombstone tail every crashed trace ends with.
        rec.span_open(ctx(2, 3), channel="c1")
        rec.close_channel(0.5, "c1", "connection reset")
        rec.span_open(ctx(2, 4), channel="c2")
        rec.close_all(0.6, "world aborted", terminal="mpi.abort")
        return rec

    def test_jsonl_round_trip_is_identity(self):
        rec = self._rich_recorder()
        text = rec.to_jsonl()
        assert FlightRecorder.from_jsonl(text).to_jsonl() == text

    def test_events_compare_equal_field_for_field(self):
        rec = self._rich_recorder()
        back = FlightRecorder.from_jsonl(rec.to_jsonl())
        assert len(back) == len(rec)
        for orig, loaded in zip(rec.events, back.events):
            assert (loaded.t, loaded.name) == (orig.t, orig.name)
            assert (loaded.trace, loaded.span, loaded.parent) == (
                orig.trace, orig.span, orig.parent,
            )
            assert loaded.attrs == orig.attrs

    def test_tombstones_survive_the_round_trip(self):
        back = FlightRecorder.from_jsonl(self._rich_recorder().to_jsonl())
        assert [ev.span for ev in back.named("span.aborted")] == [3, 4]
        assert len(back.named("channel.dead")) == 1
        (tomb,) = back.named("mpi.abort")
        assert tomb.attrs == {"reason": "world aborted", "closed": 1}

    def test_load_jsonl_reads_write_output(self, tmp_path):
        rec = self._rich_recorder()
        path = rec.write(str(tmp_path / "flight.jsonl"))
        assert FlightRecorder.load_jsonl(path).to_jsonl() == rec.to_jsonl()

    def test_blank_lines_ignored(self):
        rec = FlightRecorder.from_jsonl('\n{"t": 1.0, "ev": "x"}\n\n')
        assert len(rec) == 1 and rec.events[0].name == "x"

    def test_empty_text_empty_recorder(self):
        assert len(FlightRecorder.from_jsonl("")) == 0


class TestPickling:
    def test_event_and_context_round_trip(self):
        ev = FlightEvent(1.5, "msg.send", trace=2, span=3, parent=1,
                         attrs={"nbytes": 4})
        back = pickle.loads(pickle.dumps(ev))
        assert back.as_dict() == ev.as_dict()
        c = pickle.loads(pickle.dumps(ctx(5, 6, 4)))
        assert (c.trace_id, c.span_id, c.parent_id) == (5, 6, 4)

    def test_recorder_round_trips_through_worker_boundary(self):
        rec = FlightRecorder(capacity=8)
        rec.record(0.0, "msg.send", ctx(1, 1))
        rec.span_open(ctx(1, 2), channel="ch")
        back = pickle.loads(pickle.dumps(rec))
        assert len(back) == 1 and back.events[0].name == "msg.send"
        assert back.open_spans() == [2]
