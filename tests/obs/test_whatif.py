"""What-if replay engine: synthetic exactness, knob scaling, real runs.

The synthetic tests hand-build a flight log whose bucket decomposition
is computable on paper (one eager + one rendezvous transfer, a single
slot forcing wave serialization), then check the replay reproduces the
recorded schedule exactly and shifts it by exactly the hand-computed
delta under each knob.  The integration tests run a real traced cluster
and close the loop through the JSONL export.
"""

import pytest

from repro.obs.causal import TraceContext
from repro.obs.flightrec import FlightRecorder
from repro.obs.whatif import (
    DEFAULT_GRID,
    IDENTITY,
    Perturbation,
    ReplayModel,
    StageRecord,
    TaskRecord,
    load_model,
)

RNDV = 16384


def synthetic_flight(transport="mpi-basic", with_meta=True, local_s=0.05):
    """Two stages; every bucket of every task is computable by hand.

    Read-stage geometry (1 executor, 1 slot — waves serialize):

    * task0: starts 1.0, finishes 1.5; fetch window [1.1, 1.4] with a
      0.05 s local read.  An eager transfer is wire [1.15, 1.20] then
      dwells 0.05 s to its match; a rendezvous transfer (1 MiB > 16 KiB)
      moves after its match, wire [1.30, 1.38].  So wire = 0.13,
      exposed dwell = 0.05, rest = 0.07.
    * task1: starts 1.5 (the recorded slot grant), finishes 1.8, pure
      compute.
    """
    rec = FlightRecorder()
    if with_meta:
        rec.record(
            0.0, "run.meta", None,
            workload="Synthetic", transport=transport, system="TestSys",
            n_workers=1, cores_per_executor=1, slots_per_executor=1,
            rendezvous_threshold=RNDV,
        )
    t_map, t_a, t_b = TraceContext(1, 1), TraceContext(2, 2), TraceContext(3, 3)
    eager = TraceContext(2, 20, 2)
    rndv = TraceContext(2, 21, 2)

    rec.record(0.0, "stage.start", None, stage="S-map", n_tasks=1)
    rec.record(0.0, "task.start", t_map, task="S-map-task0", exec=0)
    rec.record(0.9, "task.finish", t_map, task="S-map-task0",
               compute_s=0.4, write_s=0.3)
    rec.record(1.0, "stage.finish", None, stage="S-map", seconds=1.0)

    rec.record(1.0, "stage.start", None, stage="S-read", n_tasks=2)
    rec.record(1.0, "task.start", t_a, task="S-read-task0", exec=0)
    rec.record(1.15, "msg.send", eager, type=3, nbytes=512, ch="c0")
    rec.record(1.25, "mpi.match", eager, waited_s=0.05, unexpected=True)
    rec.record(1.20, "msg.send", rndv, type=4, nbytes=1 << 20, ch="c0")
    rec.record(1.30, "mpi.match", rndv, waited_s=0.0, unexpected=False)
    rec.record(1.38, "msg.recv", rndv, nbytes=1 << 20, ch="c0")
    finish_attrs = dict(
        task="S-read-task0", exec=0,
        compute_s=0.1, combine_s=0.1, fetch_wait_s=0.3,
    )
    if local_s is not None:
        finish_attrs["local_s"] = local_s
    rec.record(1.5, "task.finish", t_a, **finish_attrs)
    rec.record(1.5, "task.start", t_b, task="S-read-task1", exec=0)
    rec.record(1.8, "task.finish", t_b, task="S-read-task1", exec=0,
               compute_s=0.3)
    rec.record(2.0, "stage.finish", None, stage="S-read", seconds=1.0)
    return rec


class TestModelConstruction:
    def test_meta_supplies_geometry(self):
        model = ReplayModel.from_flight(synthetic_flight())
        assert model.transport == "mpi-basic"
        assert model.slots_per_executor == 1
        assert model.n_executors == 1
        assert model.meta["workload"] == "Synthetic"
        assert [s.label for s in model.stages] == ["S-map", "S-read"]

    def test_bucket_decomposition_by_hand(self):
        model = ReplayModel.from_flight(synthetic_flight())
        read = model.stages[1]
        a, b = read.tasks
        assert (a.index, b.index) == (0, 1)
        assert a.local == pytest.approx(0.05)
        assert a.wire == pytest.approx(0.13)
        assert a.dwell == pytest.approx(0.05)
        assert a.rest == pytest.approx(0.07)
        assert a.compute == pytest.approx(0.2)
        assert b.compute == pytest.approx(0.3)
        # every bucket sums back to the recorded duration
        for t in (a, b):
            assert (
                t.fixed + t.compute + t.write + t.local + t.wire + t.dwell + t.rest
            ) == pytest.approx(t.duration)

    def test_local_read_falls_back_to_first_send_gap(self):
        # Pre-local_s traces: the fetch-start → first-send gap stands in.
        model = ReplayModel.from_flight(synthetic_flight(local_s=None))
        a = model.stages[1].tasks[0]
        assert a.local == pytest.approx(0.05)  # 1.15 - 1.10

    def test_dwell_bucket_only_under_basic(self):
        model = ReplayModel.from_flight(synthetic_flight(transport="mpi-opt"))
        a = model.stages[1].tasks[0]
        assert a.dwell == 0.0
        assert a.wire == pytest.approx(0.13)
        assert a.rest == pytest.approx(0.12)  # absorbs the overlapped dwell

    def test_missing_meta_requires_explicit_geometry(self):
        flight = synthetic_flight(with_meta=False)
        with pytest.raises(ValueError, match="transport unknown"):
            ReplayModel.from_flight(flight)
        with pytest.raises(ValueError, match="slot width unknown"):
            ReplayModel.from_flight(flight, transport="mpi-basic")
        model = ReplayModel.from_flight(
            flight, transport="mpi-basic", slots_per_executor=1
        )
        assert model.n_executors == 1  # inferred from observed exec ids

    def test_jobserver_traces_rejected(self):
        flight = synthetic_flight()
        flight.record(2.1, "job.submit", None, app="app-a")
        with pytest.raises(ValueError, match="multi-tenant"):
            ReplayModel.from_flight(flight)

    def test_from_result_requires_flight(self):
        from types import SimpleNamespace

        with pytest.raises(ValueError, match="no flight recording"):
            ReplayModel.from_result(
                SimpleNamespace(flight=None, transport="nio")
            )


class TestRetime:
    @pytest.fixture()
    def model(self):
        return ReplayModel.from_flight(synthetic_flight())

    def test_identity_is_exact(self, model):
        pred = model.retime(IDENTITY)
        assert pred.wall_s == model.wall_s == 2.0
        assert pred.stage_seconds == {"S-map": 1.0, "S-read": 1.0}
        assert pred.speedup == 1.0

    def test_default_retime_is_identity(self, model):
        assert model.retime().wall_s == model.wall_s

    def test_link_rate_scales_wire_bucket_only(self, model):
        pred = model.retime(Perturbation(name="2x NIC", link_rate=2.0))
        # task0's 0.13 s wire halves; the wave shift propagates to task1.
        assert pred.stage_seconds["S-read"] == pytest.approx(1.0 - 0.065)
        assert pred.stage_seconds["S-map"] == 1.0
        assert pred.wall_s == pytest.approx(2.0 - 0.065)

    def test_poll_tax_scales_exposed_dwell(self, model):
        pred = model.retime(Perturbation(name="0 poll", poll_tax=0.0))
        assert pred.wall_s == pytest.approx(2.0 - 0.05)

    def test_serializer_scales_write_bucket(self, model):
        pred = model.retime(Perturbation(name="2x ser", serializer_rate=2.0))
        assert pred.stage_seconds["S-map"] == pytest.approx(1.0 - 0.15)
        assert pred.stage_seconds["S-read"] == 1.0

    def test_local_read_rate_scales_local_bucket(self, model):
        pred = model.retime(Perturbation(name="2x ram", local_read_rate=2.0))
        assert pred.wall_s == pytest.approx(2.0 - 0.025)

    def test_compute_knob_shifts_waves(self, model):
        pred = model.retime(Perturbation(name="2x cpu", compute=0.5))
        # map: -0.2; read: task0 -0.1 shifts task1's grant, task1 -0.15.
        assert pred.stage_seconds["S-map"] == pytest.approx(0.8)
        assert pred.stage_seconds["S-read"] == pytest.approx(0.75)

    def test_executor_rewidth_unserializes_the_wave(self, model):
        pred = model.retime(Perturbation(name="2 exec", executors=2))
        # task1 no longer waits for task0's slot: ends at 1.3, so the
        # stage is bounded by task0's 1.5 finish (delta -0.3).
        assert pred.stage_seconds["S-read"] == pytest.approx(0.7)
        assert pred.wall_s == pytest.approx(1.7)

    def test_executors_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.retime(Perturbation(name="bad", executors=0))

    def test_slower_knobs_slow_the_replay(self, model):
        assert model.retime(
            Perturbation(name="half NIC", link_rate=0.5)
        ).wall_s == pytest.approx(2.0 + 0.13)

    def test_sensitivity_ranks_by_speedup(self, model):
        ranked = model.sensitivity()
        speedups = [p.speedup for p in ranked]
        assert speedups == sorted(speedups, reverse=True)
        assert len(ranked) == len(DEFAULT_GRID) + 1  # + doubled executors
        assert model.sensitivity(top_k=3) == ranked[:3]

    def test_bucket_seconds_totals(self, model):
        buckets = model.bucket_seconds()
        assert buckets["wire"] == pytest.approx(0.13)
        assert buckets["dwell"] == pytest.approx(0.05)
        assert buckets["write"] == pytest.approx(0.3)
        total_dur = sum(t.duration for s in model.stages for t in s.tasks)
        assert sum(buckets.values()) == pytest.approx(total_dur)


class TestPerturbation:
    def test_identity_predicate_and_describe(self):
        assert IDENTITY.is_identity()
        assert IDENTITY.describe() == "identity"
        p = Perturbation(name="x", link_rate=2.0, poll_tax=0.0, executors=4)
        assert not p.is_identity()
        assert p.describe() == "link_rate x2, poll_tax x0, executors=4"

    def test_grid_names_unique(self):
        names = [p.name for p in DEFAULT_GRID]
        assert len(names) == len(set(names))


@pytest.fixture(scope="module")
def traced_run():
    """One small causally-traced GroupBy cell (shared across tests)."""
    from repro.harness.systems import FRONTERA
    from repro.spark.deploy import SparkSimCluster
    from repro.util.units import GiB
    from repro.workloads.ohb import GROUP_BY

    sim = SparkSimCluster(
        FRONTERA, 2, "mpi-basic", obs_enabled=True, obs_causal=True
    )
    sim.launch()
    profile = GROUP_BY.build_profile(FRONTERA, 2, 2 * GiB, fidelity=0.05)
    result = sim.run_profile(profile)
    sim.shutdown()
    return result


class TestRealRun:
    def test_identity_reproduces_recorded_wall_exactly(self, traced_run):
        model = ReplayModel.from_result(traced_run)
        pred = model.retime(IDENTITY)
        assert pred.wall_s == traced_run.total_seconds
        assert pred.stage_seconds == dict(traced_run.stage_seconds)

    def test_meta_header_recorded(self, traced_run):
        model = ReplayModel.from_result(traced_run)
        assert model.meta["workload"] == "GroupByTest"
        assert model.meta["transport"] == "mpi-basic"
        assert model.meta["rendezvous_threshold"] == RNDV
        assert model.n_executors == 2

    def test_jsonl_round_trip_predicts_identically(self, traced_run, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        traced_run.flight.write(path)
        loaded = load_model(path)
        live = ReplayModel.from_result(traced_run)
        assert loaded.retime(IDENTITY).wall_s == traced_run.total_seconds
        for p in DEFAULT_GRID:
            assert loaded.retime(p).wall_s == live.retime(p).wall_s

    def test_faster_knobs_never_slow_the_run(self, traced_run):
        model = ReplayModel.from_result(traced_run)
        base = model.wall_s
        for p in DEFAULT_GRID:
            if p.name == "0.5x NIC":
                assert model.retime(p).wall_s >= base
            else:
                assert model.retime(p).wall_s <= base


class TestPlannerReport:
    def test_planner_section_in_run_report(self, traced_run):
        from repro.obs import critical_path, render_report

        page = render_report([(traced_run, critical_path(traced_run))])
        assert "capacity planner (what-if replay)" in page
        assert "zero poll-tax" in page

    def test_standalone_planner_page(self, traced_run):
        from repro.obs import render_planner_page

        model = ReplayModel.from_result(traced_run)
        rows = [
            {"label": "2x NIC", "predicted_s": 1.0, "simulated_s": 1.02},
            {"label": "way off", "predicted_s": 2.0, "simulated_s": 1.0},
        ]
        page = render_planner_page(model, rows, title="planner test")
        assert "planner test" in page
        assert "GroupByTest" in page
        assert "predicted vs simulated" in page
        # in-band points draw blue, out-of-band red
        assert "#4c78a8" in page and "#e45756" in page
