"""Differential run analysis: synthetic A/B diffs with paper-computable blame.

Hand-built flight logs (the ``test_critpath`` idiom) make every
attribution term computable by hand; the tests pin the three contracts
the engine rests on: self-diff identity, the residual sum identity, and
structural mismatches as first-class nodes. Real-cluster diffs live in
``benchmarks/test_diff.py``.
"""

import math

import pytest

from repro.obs import diff_runs
from repro.obs.causal import TraceContext
from repro.obs.critpath import SEGMENTS
from repro.obs.diff import IDENTITY_TOL, STRUCTURAL_KINDS, DiffReport, StructuralNode
from repro.obs.flightrec import FlightRecorder


def build_flight(
    read_end: float = 0.5,
    compute_s: float = 0.05,
    meta: dict | None = None,
    read_tasks: int = 2,
    extra_stage: bool = False,
) -> FlightRecorder:
    """The ``test_critpath`` synthetic DAG, parameterized for A/B pairs.

    Two stages: ``Job0-write`` wall 0.45 (fixed), ``Job0-read`` wall
    ``read_end − 0.45`` whose critical task records ``compute_s``.
    """
    rec = FlightRecorder()
    if meta is not None:
        rec.record(0.0, "run.meta", None, **meta)
    t1, t2, t3 = TraceContext(1, 1), TraceContext(2, 2), TraceContext(3, 3)
    req = TraceContext(1, 10, 1)
    resp = TraceContext(1, 11, 10)

    rec.record(0.0, "stage.start", None, stage="Job0-write", n_tasks=1)
    rec.record(0.0, "task.start", t3, task="Job0-write-task0", exec=0)
    rec.record(0.45, "task.finish", t3, task="Job0-write-task0",
               compute_s=0.1, write_s=0.3)
    rec.record(0.45, "stage.finish", None, stage="Job0-write", seconds=0.45)

    rec.record(0.45, "stage.start", None, stage="Job0-read", n_tasks=read_tasks)
    rec.record(0.0, "task.start", t1, task="Job0-read-task1", exec=0)
    rec.record(0.0, "task.start", t2, task="Job0-read-task0", exec=1)
    rec.record(0.1, "msg.send", req, type=0, nbytes=32, ch="c0")
    rec.record(0.2, "msg.recv", req, type=0, nbytes=32, ch="c0")
    rec.record(0.25, "msg.send", resp, type=1, nbytes=4096, ch="s0")
    rec.record(0.37, "mpi.match", resp, waited_s=0.03, buffered=True)
    rec.record(0.40, "msg.recv", resp, type=1, nbytes=4096, ch="s0")
    rec.record(0.45, "task.finish", t2, task="Job0-read-task0",
               fetch_wait_s=0.1, combine_s=0.02)
    rec.record(0.5, "task.finish", t1, task="Job0-read-task1",
               fetch_wait_s=0.35, compute_s=compute_s, combine_s=0.02)
    rec.record(read_end, "stage.finish", None, stage="Job0-read",
               seconds=read_end - 0.45)
    if extra_stage:
        rec.record(read_end, "stage.start", None, stage="Job2-extra", n_tasks=1)
        rec.record(read_end + 0.25, "stage.finish", None, stage="Job2-extra",
                   seconds=0.25)
    return rec


BASIC = dict(transport_a="mpi-basic", transport_b="mpi-basic")


class TestSelfDiffIdentity:
    def test_same_recording_is_exact_zero(self):
        rec = build_flight()
        diff = diff_runs(rec, rec, **BASIC)
        assert diff.is_identity()
        assert diff.wall_delta_s == 0.0
        assert diff.residual_s == 0.0
        assert diff.structural == []
        assert all(diff.segment_delta(seg) == 0.0 for seg in SEGMENTS)
        assert diff.contributions() == []
        assert diff.top_contributor() is None
        diff.check()  # must not raise
        assert "identical runs" in diff.render()

    def test_identity_holds_per_transport_classification(self):
        # dwell classifies as poll-tax only under basic; identity must
        # hold under every classification, not just one.
        for transport in ("nio", "rdma", "mpi-basic", "mpi-opt"):
            rec = build_flight()
            diff = diff_runs(rec, rec, transport_a=transport,
                             transport_b=transport)
            assert diff.is_identity(), transport

    def test_equal_rebuilt_recordings_are_identity(self):
        # Not the same object: two independently built, equal recordings.
        diff = diff_runs(build_flight(), build_flight(), **BASIC)
        assert diff.is_identity()


class TestResidualContract:
    def test_attributions_sum_to_measured_delta(self):
        a = build_flight(read_end=0.5, compute_s=0.05)
        b = build_flight(read_end=0.6, compute_s=0.09)
        diff = diff_runs(a, b, **BASIC)
        # read wall grew 0.1; instrumented compute grew only 0.04 — the
        # uninstrumented 0.06 must land in the residual, not vanish.
        assert diff.wall_delta_s == pytest.approx(0.1)
        assert diff.segment_delta("compute") == pytest.approx(0.04)
        assert diff.residual_s == pytest.approx(0.06)
        diff.check()
        read = next(s for s in diff.stages if s.stage == "Job0-read")
        assert read.delta_s == pytest.approx(0.1)
        assert read.residual_s == pytest.approx(
            read.delta_s - math.fsum(
                read.segment_delta(seg) for seg in read.segments
            )
        )

    def test_check_raises_on_manufactured_leak(self):
        diff = diff_runs(build_flight(), build_flight(read_end=0.6), **BASIC)
        diff.check()
        # breaking a residual by more than the tolerance must be caught
        diff.stages[-1].residual_s += 1000 * IDENTITY_TOL
        with pytest.raises(AssertionError, match="attribution leak"):
            diff.check()

    def test_direction_is_b_minus_a(self):
        fast, slow = build_flight(read_end=0.5), build_flight(read_end=0.7)
        assert diff_runs(fast, slow, **BASIC).wall_delta_s > 0
        assert diff_runs(slow, fast, **BASIC).wall_delta_s < 0


class TestInflationResplit:
    META = dict(transport="mpi-basic", workload="GroupByTest")

    def test_inflated_compute_is_charged_to_poll_tax(self):
        a = build_flight(meta=dict(self.META, compute_inflation=1.0))
        b = build_flight(meta=dict(self.META, compute_inflation=1.3))
        diff = diff_runs(a, b)  # transports come from run.meta
        assert diff.transport_a == diff.transport_b == "mpi-basic"
        # identical events: zero wall delta, but B's recorded compute
        # (0.07 read + 0.1 write) is 30% busy-poll interference — the
        # re-split moves exactly that tax from compute to poll-tax,
        # summing to zero.
        tax = 0.17 - 0.17 / 1.3
        assert diff.wall_delta_s == 0.0
        assert diff.segment_delta("compute") == pytest.approx(-tax)
        assert diff.segment_delta("poll-tax") == pytest.approx(tax)
        assert diff.residual_s == pytest.approx(0.0)
        diff.check()

    def test_same_inflation_both_sides_is_identity(self):
        a = build_flight(meta=dict(self.META, compute_inflation=1.3))
        b = build_flight(meta=dict(self.META, compute_inflation=1.3))
        assert diff_runs(a, b).is_identity()


class TestStructuralNodes:
    def test_stage_added_and_removed_carry_their_walls(self):
        plain, extra = build_flight(), build_flight(extra_stage=True)
        diff = diff_runs(plain, extra, **BASIC)
        assert [n.kind for n in diff.structural] == ["stage-added"]
        node = diff.structural[0]
        assert node.stage == "Job2-extra"
        assert node.delta_s == pytest.approx(0.25)
        assert diff.wall_delta_s == pytest.approx(0.25)
        diff.check()
        assert not diff.is_identity()

        back = diff_runs(extra, plain, **BASIC)
        assert [n.kind for n in back.structural] == ["stage-removed"]
        assert back.structural[0].delta_s == pytest.approx(-0.25)
        assert back.wall_delta_s == pytest.approx(-0.25)
        back.check()

    def test_task_count_drift_is_annotated_not_charged(self):
        diff = diff_runs(build_flight(read_tasks=2),
                         build_flight(read_tasks=4), **BASIC)
        read = next(s for s in diff.stages if s.stage == "Job0-read")
        assert [n.kind for n in read.nodes] == ["task-count"]
        assert read.nodes[0].delta_s == 0.0  # annotation, not a charge
        assert "2 -> 4" in read.nodes[0].detail
        assert diff.wall_delta_s == 0.0  # same walls; nodes don't leak time
        diff.check()
        assert not diff.is_identity()

    def test_wave_repack_detected_from_slot_geometry(self):
        meta_a = dict(transport="mpi-basic", n_workers=1, slots_per_executor=1)
        meta_b = dict(transport="mpi-basic", n_workers=1, slots_per_executor=2)
        diff = diff_runs(build_flight(meta=meta_a), build_flight(meta=meta_b))
        read = next(s for s in diff.stages if s.stage == "Job0-read")
        # 2 tasks: 2 waves on 1 slot, 1 wave on 2 slots
        assert [n.kind for n in read.nodes] == ["wave-repack"]
        assert "2 -> 1" in read.nodes[0].detail
        assert diff.meta_mismatches()["slots_per_executor"] == (1, 2)

    def test_all_kinds_are_known(self):
        assert set(STRUCTURAL_KINDS) == {
            "stage-added", "stage-removed", "task-count", "wave-repack",
        }


class TestSchedWaitPseudoStages:
    def test_new_queueing_shows_as_added_pseudo_stages(self):
        plain = build_flight()
        tenant = build_flight()
        tenant.record(0.0, "job.submit", None, app="app-b")
        tenant.record(0.2, "job.start", None, app="app-b")
        tenant.record(0.1, "job.submit", None, app="app-a")
        tenant.record(0.6, "job.start", None, app="app-a")
        diff = diff_runs(plain, tenant, **BASIC)
        added = {n.stage: n.delta_s for n in diff.structural
                 if n.kind == "stage-added"}
        assert added == {
            "app-b:sched-wait": pytest.approx(0.2),
            "app-a:sched-wait": pytest.approx(0.5),
        }
        assert diff.wall_delta_s == pytest.approx(0.7)
        diff.check()


class TestApiSurface:
    def test_rejects_undiffable_objects(self):
        with pytest.raises(ValueError, match="cannot diff int"):
            diff_runs(42, build_flight(), **BASIC)

    def test_requires_a_transport_from_somewhere(self):
        with pytest.raises(ValueError, match="transport unknown"):
            diff_runs(build_flight(), build_flight())

    def test_render_and_as_dict(self):
        diff = diff_runs(build_flight(), build_flight(read_end=0.6,
                                                      compute_s=0.09), **BASIC)
        text = diff.render()
        assert "run diff:" in text
        assert "Job0-read" in text
        assert "blame (terms sum to the measured delta):" in text
        d = diff.as_dict()
        assert d["wall_delta_s"] == pytest.approx(0.1)
        assert set(d["segment_deltas"]) == set(SEGMENTS)
        total = math.fsum(c["delta_s"] for c in d["contributions"])
        assert total == pytest.approx(d["wall_delta_s"])
        stage_names = [s["stage"] for s in d["stages"]]
        assert stage_names == ["Job0-write", "Job0-read"]

    def test_empty_report_is_identity(self):
        diff = DiffReport("a", "b", "nio", "nio")
        assert diff.is_identity()
        assert diff.wall_delta_s == 0.0
        diff.check()
        assert isinstance(StructuralNode("task-count", "s", "d"), StructuralNode)
