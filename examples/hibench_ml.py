#!/usr/bin/env python
"""The HiBench ML workloads actually training, at sample scale.

The paper evaluates SVM, Logistic Regression, GMM and LDA from Intel
HiBench (Table IV). This reproduction implements each as a real RDD
program; here they run end-to-end and report model quality.

Run:  python examples/hibench_ml.py
"""

import numpy as np

from repro.spark import SparkConf, SparkContext
from repro.workloads.hibench import datagen
from repro.workloads.hibench.ml import (
    classify,
    train_gmm,
    train_lda,
    train_logistic_regression,
    train_svm,
)


def accuracy(sc, w, n=500, dim=10):
    pts = datagen.labeled_points(sc, n, dim, 2, seed=99).collect()
    hits = sum(1 for label, x in pts if classify(w, x) == label)
    return hits / len(pts)


def main() -> None:
    sc = SparkContext(SparkConf({"spark.default.parallelism": "4"}))

    w = train_logistic_regression(sc, n_points=2000, dim=10, iterations=8)
    print(f"Logistic Regression: held-out accuracy {accuracy(sc, w):.2%}")

    w = train_svm(sc, n_points=2000, dim=10, iterations=8)
    print(f"SVM:                 held-out accuracy {accuracy(sc, w):.2%}")

    weights, means = train_gmm(sc, n_points=1500, dim=3, k=3, iterations=6)
    order = np.argsort(means[:, 0])
    print(f"GMM: recovered component means (first dim) "
          f"{np.round(means[order, 0], 2).tolist()} (true: [0.0, 3.0, 6.0])")
    print(f"GMM: mixture weights {np.round(weights[order], 2).tolist()}")

    word_topic = train_lda(sc, n_docs=300, vocab=100, n_topics=4, iterations=3)
    top_word = max(word_topic, key=lambda w: word_topic[w].max())
    print(f"LDA: {len(word_topic)} word-topic rows; "
          f"most concentrated word {top_word} -> "
          f"{np.round(word_topic[top_word], 2).tolist()}")

    shuffles = [
        st for job in sc.tracer.jobs for st in job.stages if st.total_shuffle_bytes
    ]
    print(f"\n{len(shuffles)} shuffle stages executed "
          f"({sum(st.total_shuffle_bytes for st in shuffles)} bytes moved) — "
          f"the traffic MPI4Spark accelerates at scale")


if __name__ == "__main__":
    main()
