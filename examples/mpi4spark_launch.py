#!/usr/bin/env python
"""Walkthrough of the paper's Fig-3 launch flow, step by step.

Step A — four wrapper processes start under ``mpiexec`` with ranks in
         MPI_COMM_WORLD (here: 2 workers + master + driver).
Step B — each wrapper forks its Spark role.
Step C — the workers allgather executor launch specs across the world and
         spawn executors collectively with MPI_Comm_spawn_multiple(),
         creating DPM_COMM (the executors' world) and the parent<->child
         intercommunicator. Executors then talk over DPM_COMM; parents
         reach them over the intercomm.

Run:  python examples/mpi4spark_launch.py
"""

from repro.mpi import MPIWorld, RankSpec, SpawnSpec
from repro.simnet import IB_HDR, SimCluster, SimEngine, mpi_over
from repro.util.units import fmt_time

N_WORKERS = 2


def main() -> None:
    env = SimEngine()
    cluster = SimCluster(env, IB_HDR, n_nodes=N_WORKERS + 2, cores_per_node=8)
    world = MPIWorld(env, cluster, mpi_over(IB_HDR))

    def executor_main(proc):
        comm = proc.comm_world  # DPM_COMM
        print(
            f"[{fmt_time(proc.env.now)}] executor rank {comm.rank}/{comm.size} "
            f"up on {proc.node.name} (world: {comm.name})"
        )
        # Executors exchange greetings over DPM_COMM (paper: "Communication
        # between executors is carried out using DPM_COMM").
        peers = yield from comm.allgather(f"exec{comm.rank}@{proc.node.name}")
        if comm.rank == 0:
            print(f"[{fmt_time(proc.env.now)}] DPM_COMM allgather -> {peers}")
        # ... and receive work from the parent world over the intercomm.
        task = yield from proc.parent_comm.recv(source=0, tag=1)
        yield from proc.parent_comm.send(f"done({task})", dest=0, tag=2)

    def wrapper_main(proc):
        comm = proc.comm_world
        role = ["worker", "worker", "master", "driver"][comm.rank]
        print(
            f"[{fmt_time(proc.env.now)}] Step A/B: rank {comm.rank} on "
            f"{proc.node.name} forks Spark {role}"
        )
        # Step C: allgather the executor specs across the world, then spawn.
        spec = (
            SpawnSpec(main=executor_main, node=comm.rank, count=1, name="executor")
            if role == "worker"
            else None
        )
        specs = [s for s in (yield from comm.allgather(spec)) if s is not None]
        intercomm = yield from comm.spawn_multiple(
            specs if comm.rank == 0 else None, root=0
        )
        if comm.rank == 0:
            print(
                f"[{fmt_time(proc.env.now)}] Step C: spawned "
                f"{intercomm.remote_size} executors via MPI_Comm_spawn_multiple"
            )
            # Worker 0 hands each executor a task over the intercomm.
            for dest in range(intercomm.remote_size):
                yield from intercomm.send(f"task-{dest}", dest=dest, tag=1)
            for dest in range(intercomm.remote_size):
                reply = yield from intercomm.recv(source=dest, tag=2)
                print(f"[{fmt_time(proc.env.now)}] worker0 <- executor{dest}: {reply}")

    specs = [RankSpec(main=wrapper_main, node=i, name="wrapper") for i in range(N_WORKERS)]
    specs.append(RankSpec(main=wrapper_main, node=N_WORKERS, name="wrapper"))
    specs.append(RankSpec(main=wrapper_main, node=N_WORKERS + 1, name="wrapper"))
    world.launch(specs)
    env.run()
    print(f"\nsimulated launch completed at t={fmt_time(env.now)}")


if __name__ == "__main__":
    main()
