#!/usr/bin/env python
"""Causal tracing quickstart: explain a run, build the HTML report.

Runs one small GroupByTest cell on 2 simulated Frontera workers under
MPI4Spark-Basic and MPI4Spark-Optimized with causal message tracing
(``spark.repro.obs.causal``), then:

* prints each run's critical-path breakdown (compute / serialize /
  queue / wire / poll-tax / fetch-wait),
* writes ``results/obs_report_groupby.html`` — the Spark-UI-style page
  with the stage Gantt, the message timeline and the same tables,
* exits non-zero if the Basic run's critical path shows no poll-tax
  segment (the CI obs-smoke gate: the busy-poll cost must be visible).

Run:  python examples/obs_report.py
"""

import pathlib
import sys

from repro.harness.systems import FRONTERA
from repro.obs import critical_path, write_report
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB, fmt_time
from repro.workloads.ohb import GROUP_BY

OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "results"
    / "obs_report_groupby.html"
)


def run_one(transport: str, n_workers: int = 2, data: int = 4 * GiB):
    conf = SparkConf(
        {
            "spark.repro.transport": transport,
            "spark.repro.obs.causal": "true",
        }
    )
    sim = SparkSimCluster.from_conf(FRONTERA, n_workers, conf)
    sim.launch()
    profile = GROUP_BY.build_profile(FRONTERA, n_workers, data, fidelity=0.1)
    result = sim.run_profile(profile)
    sim.shutdown()
    return result


def main() -> int:
    runs = []
    for transport in ("mpi-basic", "mpi-opt"):
        result = run_one(transport)
        cp = critical_path(result)
        runs.append((result, cp))
        print(
            f"GroupByTest 4 GiB / 2 workers / {transport}: "
            f"{fmt_time(result.total_seconds)} total, "
            f"{len(result.flight.events)} flight events"
        )
        print(cp.render())
        print()

    OUT.parent.mkdir(exist_ok=True)
    write_report(OUT, runs, title="GroupByTest 4 GiB — causal run report")
    print(f"HTML report: {OUT}")

    # The smoke gate: Basic busy-polls, so its critical path must carry a
    # poll-tax segment; if it doesn't, the causal wiring is broken.
    basic_cp = runs[0][1]
    if basic_cp.segment_seconds("poll-tax") <= 0:
        print("FAIL: mpi-basic critical path has no poll-tax segment",
              file=sys.stderr)
        return 1
    print(
        f"poll-tax share under mpi-basic: {basic_cp.share('poll-tax'):.1%} "
        f"(opt: {runs[1][1].share('poll-tax'):.1%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
