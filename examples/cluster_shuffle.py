#!/usr/bin/env python
"""OHB GroupByTest on the simulated Frontera cluster, across transports.

Reproduces one cell of the paper's Fig-10: a 28 GiB GroupByTest on 2
Frontera workers (112 cores), run under Vanilla Spark (IPoIB), RDMA-Spark,
MPI4Spark (both designs) and the collective shuffle plan, printing the
per-stage breakdown.

Run:  python examples/cluster_shuffle.py
"""

from repro.harness.systems import FRONTERA
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB, fmt_time
from repro.workloads.ohb import GROUP_BY

TRANSPORTS = ["nio", "rdma", "mpi-basic", "mpi-opt", "mpi-coll"]
LEGEND = {
    "nio": "Vanilla Spark (IPoIB)",
    "rdma": "RDMA-Spark",
    "mpi-basic": "MPI4Spark-Basic",
    "mpi-opt": "MPI4Spark-Optimized",
    "mpi-coll": "MPI4Spark-Collective",
}


def main() -> None:
    n_workers, data = 2, 28 * GiB
    results = {}
    for transport in TRANSPORTS:
        sim = SparkSimCluster(FRONTERA, n_workers, transport)
        sim.launch()
        profile = GROUP_BY.build_profile(FRONTERA, n_workers, data, fidelity=0.25)
        results[transport] = sim.run_profile(profile)
        sim.shutdown()

    print(f"GroupByTest, {data >> 30} GiB on {n_workers} Frontera workers "
          f"({n_workers * 56} cores)\n")
    stage_labels = list(results["nio"].stage_seconds)
    header = f"{'stage':26s}" + "".join(f"{LEGEND[t]:>24s}" for t in TRANSPORTS)
    print(header)
    for label in stage_labels:
        row = f"{label:26s}"
        for t in TRANSPORTS:
            row += f"{fmt_time(results[t].stage_seconds[label]):>24s}"
        print(row)
    row = f"{'TOTAL':26s}"
    for t in TRANSPORTS:
        row += f"{fmt_time(results[t].total_seconds):>24s}"
    print(row)

    vanilla = results["nio"]
    mpi = results["mpi-opt"]
    print(f"\nMPI4Spark-Optimized vs Vanilla: "
          f"{vanilla.total_seconds / mpi.total_seconds:.2f}x total, "
          f"{vanilla.shuffle_read_seconds() / mpi.shuffle_read_seconds():.2f}x "
          f"shuffle read")


if __name__ == "__main__":
    main()
