#!/usr/bin/env python
"""Collective shuffle smoke — and the CI ``coll-smoke`` gate.

Runs the fig9-style GroupBy cell (2 simulated Frontera workers, 4 GiB,
fidelity 0.1) with causal flight recording under MPI4Spark-Optimized
(per-block ChunkFetch) and the collective transport (one alltoallv per
stage boundary), then:

* prints both critical-path decompositions and asserts the collective
  plan cuts the fetch-wait+queue sum by at least 30%,
* diffs the two recordings with ``repro.obs.diff`` — the sum identity
  must hold and the blame must land on the fetch segments,
* writes ``results/coll_critpath.html`` (both runs' critical paths,
  Gantt and planner sections) and ``results/coll_opt_vs_coll.html``
  (the per-segment delta waterfall) for CI to upload.

Exit is non-zero unless (a) the fetch-wait+queue reduction clears 30%,
(b) the diff's attribution identity checks, and (c) fetch-wait+queue
explain at least half of the measured wall delta.

Run:   python examples/coll_smoke.py
"""

import pathlib
import sys

from repro.harness.parallel import run_ohb_cells
from repro.obs import critical_path, diff_runs, write_diff_report, write_report
from repro.util.units import GiB

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_CRITPATH = ROOT / "results" / "coll_critpath.html"
OUT_DIFF = ROOT / "results" / "coll_opt_vs_coll.html"

# The acceptance threshold: the collective plan must remove at least
# this share of the per-block critical path's fetch-wait+queue time.
MIN_REDUCTION = 0.30
# And the diff must attribute at least this share of the wall delta to
# the fetch segments (measured share is ~1.0; see EXPERIMENTS.md).
MIN_FETCH_BLAME_SHARE = 0.5

TRANSPORTS = ("mpi-opt", "mpi-coll")


def check(name: str, ok: bool, detail: str = "") -> bool:
    print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail else ""))
    return ok


def main() -> int:
    specs = [
        ("GroupByTest", 2, 4 * GiB, transport, 0.1, "Frontera", True)
        for transport in TRANSPORTS
    ]
    cells = run_ohb_cells(specs)
    results = {c.transport: c.result for c in cells}
    reports = {t: critical_path(results[t]) for t in TRANSPORTS}

    for t in TRANSPORTS:
        print(f"\n=== critical path [{t}] ===")
        print(reports[t].render())

    fwq = {
        t: reports[t].segment_seconds("fetch-wait")
        + reports[t].segment_seconds("queue")
        for t in TRANSPORTS
    }
    reduction = 1.0 - fwq["mpi-coll"] / fwq["mpi-opt"]
    print(
        f"\nfetch-wait+queue: opt={fwq['mpi-opt']:.4f}s "
        f"coll={fwq['mpi-coll']:.4f}s  reduction={reduction:.1%}"
    )

    diff = diff_runs(
        results["mpi-opt"], results["mpi-coll"],
        a_label="mpi-opt", b_label="mpi-coll",
    )
    print()
    print(diff.render())

    OUT_CRITPATH.parent.mkdir(exist_ok=True)
    write_report(
        str(OUT_CRITPATH),
        [(results[t], reports[t]) for t in TRANSPORTS],
        title="GroupByTest 4 GiB — per-block vs collective critical paths",
    )
    print(f"\nwrote {OUT_CRITPATH}")
    write_diff_report(
        str(OUT_DIFF),
        diff,
        results["mpi-opt"].flight,
        results["mpi-coll"].flight,
        title="blame report: mpi-opt vs mpi-coll [GroupByTest 4 GiB]",
    )
    print(f"wrote {OUT_DIFF}")

    print("\nchecks:")
    ok = check(
        f"fetch-wait+queue reduced >= {MIN_REDUCTION:.0%}",
        fwq["mpi-opt"] > 0 and reduction >= MIN_REDUCTION,
        f"{reduction:.1%}",
    )
    try:
        diff.check()
        ok &= check("diff attribution identity", True)
    except AssertionError as exc:
        ok &= check("diff attribution identity", False, str(exc))
    ok &= check(
        "collective run is faster", diff.wall_delta_s < 0,
        f"wall delta {diff.wall_delta_s:+.4f}s",
    )
    fetch_side = diff.segment_delta("fetch-wait") + diff.segment_delta("queue")
    share = abs(fetch_side) / abs(diff.wall_delta_s) if diff.wall_delta_s else 0.0
    ok &= check(
        f"fetch segments explain >= {MIN_FETCH_BLAME_SHARE:.0%} of the delta",
        fetch_side < 0 and share >= MIN_FETCH_BLAME_SHARE,
        f"{share:.1%}",
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
