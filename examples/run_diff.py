#!/usr/bin/env python
"""Differential run analysis quickstart — and the CI ``diff-smoke`` gate.

Records the blame proxy cell (GroupByTest, 4 GiB, 2 simulated Frontera
workers) under MPI4Spark-Basic and MPI4Spark-Optimized with causal
flight recording, then:

* diffs the two recordings with ``repro.obs.diff`` and prints the
  attribution table (compute / serialize / queue / wire / poll-tax /
  fetch-wait / sched-wait + residual, provably summing to the measured
  wall delta),
* writes ``results/diff_basic_vs_opt.html`` — the side-by-side stage
  Gantt plus the per-segment delta waterfall,
* checks each transport's fresh recording against its committed
  baseline under ``baselines/`` (must be the zero-identity diff),
* forces a regression with the ``REPRO_BLAME_INJECT`` knob and checks
  the blame report names the injected segment,
* appends the headline walls to the perf ledger and prints any EWMA
  step-change flags.

Exit is non-zero unless (a) the basic-vs-opt diff blames poll-tax for
at least half the wall delta, (b) every baseline self-diff is the zero
identity, and (c) the injected regression is blamed on the injected
segment.

Run:   python examples/run_diff.py
       python examples/run_diff.py --record-baselines   # refresh baselines/
"""

import pathlib
import sys

from repro.harness import ledger
from repro.harness.perfbench import (
    BLAME_TRANSPORTS,
    baseline_path,
    blame_report,
    record_blame_baselines,
    record_cell_flight,
)
from repro.obs import diff_runs, write_diff_report
from repro.util.units import fmt_time

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "results" / "diff_basic_vs_opt.html"

# The diff must attribute at least this share of the basic-vs-opt wall
# delta to poll-tax (measured share is ~1.0; see EXPERIMENTS.md).
MIN_POLL_TAX_SHARE = 0.5


def check(name: str, ok: bool, detail: str = "") -> bool:
    print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail else ""))
    return ok


def main() -> int:
    if "--record-baselines" in sys.argv:
        for path in record_blame_baselines():
            print(f"recorded {path}")
        return 0

    ok = True

    # -- A/B diff: mpi-basic vs mpi-opt --------------------------------------
    basic = record_cell_flight("mpi-basic")
    opt = record_cell_flight("mpi-opt")
    diff = diff_runs(opt, basic, a_label="mpi-opt", b_label="mpi-basic")
    diff.check()  # attribution sum identity (raises on a leak)
    print(diff.render())
    write_diff_report(str(OUT), diff, opt.flight, basic.flight,
                      title="GroupByTest 4 GiB / 2w: mpi-opt vs mpi-basic")
    print(f"wrote {OUT}")

    wall = diff.wall_delta_s
    poll_tax = diff.segment_delta("poll-tax")
    share = poll_tax / wall if wall else 0.0
    print(f"\nbasic is slower by {fmt_time(wall)}; "
          f"poll-tax contributes {fmt_time(poll_tax)} (share {share:.2f})")
    print("checks:")
    ok &= check("basic slower than opt", wall > 0, f"delta {fmt_time(wall)}")
    ok &= check(
        f"poll-tax share >= {MIN_POLL_TAX_SHARE}",
        share >= MIN_POLL_TAX_SHARE,
        f"{share:.2f}",
    )

    # -- baseline identity: fresh tree vs committed recordings ---------------
    for transport in BLAME_TRANSPORTS:
        if not baseline_path(transport).exists():
            ok &= check(f"baseline {transport}", False, "missing recording")
            continue
        bdiff, html = blame_report(transport, inject=None)
        ok &= check(
            f"baseline identity {transport}",
            bdiff.is_identity(),
            f"wall delta {bdiff.wall_delta_s!r} -> {html}",
        )

    # -- forced regression: the blame report must name the injected segment --
    for segment, factor in (("serialize", 4.0), ("poll-tax", 2.0)):
        transport = "mpi-opt" if segment == "serialize" else "mpi-basic"
        idiff, html = blame_report(transport, inject=(segment, factor))
        ok &= check(
            f"injected {segment} x{factor:g} blamed",
            idiff.top_contributor() == segment and idiff.wall_delta_s > 0,
            f"top {idiff.top_contributor()}, "
            f"delta {fmt_time(idiff.wall_delta_s)} -> {html}",
        )

    # -- perf ledger: append headline walls, surface step changes ------------
    entry = ledger.record_figure(
        "diff_smoke",
        {"cells": [
            {"workload": "GroupByTest", "n_workers": 2, "transport": "mpi-opt",
             "total_seconds": opt.total_seconds},
            {"workload": "GroupByTest", "n_workers": 2, "transport": "mpi-basic",
             "total_seconds": basic.total_seconds},
        ]},
    )
    if entry is not None:
        book = ledger.PerfLedger()
        flags = book.flagged("fig:diff_smoke")
        print(f"ledger: {book.path} now {len(book.entries())} entries; "
              f"{len(flags)} step-change flag(s)")
        for point in flags:
            print(f"  step: {point.cell} {point.value:.4f}s "
                  f"vs ewma {point.ewma:.4f}s ({point.rel_dev:+.0%})")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
