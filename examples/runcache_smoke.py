#!/usr/bin/env python
"""Full-run result cache smoke: simulate a cell once, replay many.

Runs one fig9-sized GroupBy cell three times against a fresh private
cache store:

1. **cold** — empty store, the cell really simulates;
2. **warm (memo)** — same process, served from the in-process memo;
3. **warm (disk)** — memo dropped, served from the disk store, which is
   what a fresh CI run or a parallel-harness worker would hit.

Exits non-zero unless every replay's rows are byte-identical to the cold
run's and each warm tier is >= 5x faster than the cold simulation (in
practice a warm hit is one unpickle — thousands of times faster).

Run:  PYTHONPATH=src python examples/runcache_smoke.py
"""

import os
import sys
import tempfile
import time

MIN_WARM_SPEEDUP = 5.0

SPEC = ("GroupByTest", 2, 28 * 2**30, "mpi-basic", 0.25, "Frontera")


def canon(cell) -> str:
    """Canonical textual form of one cell's result rows."""
    return repr(
        (
            cell.workload,
            cell.n_workers,
            cell.total_cores,
            cell.data_bytes,
            cell.transport,
            cell.result.launch_seconds,
            sorted(cell.result.stage_seconds.items()),
        )
    )


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def main() -> int:
    os.environ["REPRO_RUN_CACHE_DIR"] = tempfile.mkdtemp(
        prefix="runcache-smoke-"
    )
    from repro.harness import runcache
    from repro.harness.parallel import run_ohb_cell

    runcache.clear_memory_cache()
    cold, cold_wall = timed(lambda: run_ohb_cell(SPEC))
    memo, memo_wall = timed(lambda: run_ohb_cell(SPEC))
    runcache.clear_memory_cache()
    disk, disk_wall = timed(lambda: run_ohb_cell(SPEC))
    stats = runcache.run_cache_stats()

    print(f"cold (simulated):   {cold_wall * 1e3:9.1f} ms")
    print(
        f"warm (memo hit):    {memo_wall * 1e3:9.1f} ms"
        f"   {cold_wall / memo_wall:,.0f}x"
    )
    print(
        f"warm (disk hit):    {disk_wall * 1e3:9.1f} ms"
        f"   {cold_wall / disk_wall:,.0f}x"
    )
    print(
        f"stats: {stats['cell_runs']} simulation(s), "
        f"{stats['hits_mem']} memo hit(s), {stats['hits_disk']} disk hit(s)"
    )

    failures = []
    if stats["cell_runs"] != 1:
        failures.append(f"expected exactly 1 simulation, ran {stats['cell_runs']}")
    if canon(memo) != canon(cold):
        failures.append("memo-hit rows differ from the simulated rows")
    if canon(disk) != canon(cold):
        failures.append("disk-hit rows differ from the simulated rows")
    for name, wall in (("memo", memo_wall), ("disk", disk_wall)):
        if cold_wall / wall < MIN_WARM_SPEEDUP:
            failures.append(
                f"warm {name} hit only {cold_wall / wall:.1f}x faster "
                f"than cold (need >= {MIN_WARM_SPEEDUP}x)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("runcache smoke OK: 1 simulation, byte-identical replays")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
