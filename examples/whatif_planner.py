#!/usr/bin/env python
"""What-if capacity planner: answer perturbation questions from one trace.

Two modes:

* **Record mode** (no arguments): run one causally-traced fig9 GroupBy
  cell (28 GiB on 2 simulated Frontera workers, MPI4Spark-Basic), build
  its replay model, and — because the cell spec is known — *validate*
  the headline predictions ("2x NIC", "zero poll-tax") against real
  re-simulations with the knob changed in the simulator.  Exits non-zero
  if the unperturbed replay does not reproduce the recorded wall exactly
  or any validated prediction misses the ±10% gate (the CI
  ``whatif-smoke`` gate).

* **Trace mode** (``python examples/whatif_planner.py trace.jsonl``):
  load an exported flight-recorder log (``FlightRecorder.write``) and
  answer the questions analytically — no cluster, no re-simulation.
  The trace's ``run.meta`` header supplies transport and geometry.

Both modes print the sensitivity ranking (top knobs by predicted
speedup) and write ``results/whatif_planner.html``.

Run:  python examples/whatif_planner.py [trace.jsonl]
"""

import pathlib
import sys

from repro.harness.systems import FRONTERA
from repro.harness.whatif import run_whatif_truth_cell, truth_spec
from repro.obs import render_planner_page
from repro.obs.whatif import IDENTITY, Perturbation, ReplayModel, load_model
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB, fmt_time
from repro.workloads.ohb import GROUP_BY

OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "results"
    / "whatif_planner.html"
)

# Record-mode cell: the fig9 GroupBy 28 GiB / 2-worker / Basic cell at
# benchmark fidelity — the run whose poll-tax story the paper tells.
CELL = {
    "workload": GROUP_BY.name,
    "n_workers": 2,
    "data_bytes": 28 * GiB,
    "transport": "mpi-basic",
}
FIDELITY = 0.25
TOLERANCE = 0.10

VALIDATED = (
    Perturbation(name="2x NIC", link_rate=2.0),
    Perturbation(name="zero poll-tax", poll_tax=0.0),
)


def record_cell():
    conf = SparkConf(
        {
            "spark.repro.transport": CELL["transport"],
            "spark.repro.obs.causal": "true",
        }
    )
    sim = SparkSimCluster.from_conf(FRONTERA, CELL["n_workers"], conf)
    sim.launch()
    profile = GROUP_BY.build_profile(
        FRONTERA, CELL["n_workers"], CELL["data_bytes"], fidelity=FIDELITY
    )
    result = sim.run_profile(profile)
    sim.shutdown()
    return result


def main() -> int:
    validation_rows = []
    failed = False

    if len(sys.argv) > 1:
        trace = sys.argv[1]
        model = load_model(trace)
        recorded = model.wall_s
        print(f"loaded {trace}: {model!r}")
    else:
        result = record_cell()
        model = ReplayModel.from_result(result)
        recorded = result.total_seconds
        print(
            f"recorded {CELL['workload']} {CELL['data_bytes'] // GiB} GiB / "
            f"{CELL['n_workers']} workers / {CELL['transport']}: "
            f"{fmt_time(recorded)}, {len(result.flight.events)} flight events"
        )

    # Self-test: the identity perturbation must reproduce the recorded
    # wall exactly — otherwise the replay model failed to reconstruct
    # the recorded schedule and no prediction can be trusted.
    identity = model.retime(IDENTITY)
    if identity.wall_s != recorded:
        print(
            f"FAIL: identity replay {identity.wall_s!r} != recorded "
            f"{recorded!r}",
            file=sys.stderr,
        )
        return 1
    print(f"identity replay reproduces the recorded wall exactly ({recorded:.4f}s)")

    print("\nsensitivity (top knobs by predicted speedup):")
    for pred in model.sensitivity(top_k=8):
        print(
            f"  {pred.perturbation.name:<18} {pred.perturbation.describe():<22} "
            f"wall {pred.wall_s:8.4f}s  speedup {pred.speedup:6.3f}x"
        )

    if len(sys.argv) <= 1:
        print("\nvalidating against ground-truth re-simulations:")
        for p in VALIDATED:
            pred = model.retime(p)
            sim_wall, _, _ = run_whatif_truth_cell(
                truth_spec(CELL, p, FIDELITY, FRONTERA.name)
            )
            err = pred.wall_s / sim_wall - 1.0
            ok = abs(err) <= TOLERANCE
            failed |= not ok
            validation_rows.append(
                {
                    "label": f"{CELL['transport']} {p.name}",
                    "predicted_s": pred.wall_s,
                    "simulated_s": sim_wall,
                }
            )
            print(
                f"  {p.name:<18} predicted {pred.wall_s:8.4f}s  "
                f"simulated {sim_wall:8.4f}s  error {err:+.2%}  "
                f"{'ok' if ok else 'OUT OF BAND'}"
            )

    OUT.parent.mkdir(exist_ok=True)
    OUT.write_text(
        render_planner_page(
            model,
            validation_rows or None,
            title="what-if capacity planner — " + (model.meta.get("workload") or "trace"),
        )
    )
    print(f"\nplanner report: {OUT}")

    if failed:
        print("FAIL: a validated prediction missed the ±10% gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
