#!/usr/bin/env python
"""Multi-tenant quickstart: a job stream under three inter-job schedulers.

Builds one seeded 8-job Poisson arrival trace (GroupBy/SortBy plus
HiBench LR/GMM/TeraSort, sizes and parallelism sampled per job) and
replays it on a long-lived 4-worker simulated cluster under FIFO,
fair-share and executor-packing scheduling, on vanilla NIO and on
MPI4Spark-Optimized, then:

* prints the per-cell p50/p99 JCT + queueing-delay table (the same
  layer that writes ``results/BENCH_jobserver.json``),
* re-runs one contended FIFO cell with causal tracing and prints its
  critical path — queueing shows up as per-application ``sched-wait``
  pseudo-stages next to compute/wire/poll-tax,
* demos the Gym-style env: steps the same trace decision-by-decision
  with a scripted policy and shows the return (−Σ JCT).

Run:  python examples/jobserver_demo.py
"""

from repro.harness.systems import FRONTERA
from repro.jobserver import (
    FifoScheduler,
    JobServer,
    JobServerEnv,
    JobServerReport,
    SCHEDULERS,
    poisson_trace,
    run_trace,
)
from repro.obs import analyze
from repro.spark.deploy import SparkSimCluster
from repro.util.units import MiB

TRACE = poisson_trace(
    seed=42,
    n_jobs=8,
    mean_interarrival_s=0.2,
    min_bytes=64 * MiB,
    max_bytes=192 * MiB,
    parallelism_choices=(8, 16, 24),
    fidelity=0.25,
)


def cluster(transport: str, **kw) -> SparkSimCluster:
    return SparkSimCluster(
        FRONTERA, n_workers=4, transport_name=transport,
        cores_per_executor=8, seed=7, **kw,
    )


def main() -> None:
    print(f"arrival trace: {len(TRACE)} jobs, last arrival "
          f"{TRACE.makespan_floor_s:.1f}s")
    for job in TRACE.jobs[:3]:
        print(f"  t={job.submit_s:5.2f}s  {job.workload:<12} "
              f"{job.nominal_bytes // MiB:4d} MiB  parallelism {job.parallelism}")
    print("  ...")

    results = [
        run_trace(cluster(transport), SCHEDULERS.create(name), TRACE)
        for transport in ("nio", "mpi-opt")
        for name in ("fifo", "fair", "pack")
    ]
    print()
    print(JobServerReport.from_results(results).render())

    # Queueing as a critical-path segment: per-app sched-wait pseudo-stages.
    # mpi-basic is the interesting cell: its polling tax shrinks the slot
    # pool, so FIFO head-of-line blocking queues deepest there.
    sim = cluster("mpi-basic", obs_causal=True)
    run_trace(sim, FifoScheduler(), TRACE, shutdown=False)
    report = analyze(sim.env.causal.flight, sim.transport.name)
    waits = [s for s in report.stages if s.seconds("sched-wait") > 0]
    sim.shutdown()
    print()
    print(f"critical path carries {len(waits)} sched-wait pseudo-stages:")
    for s in waits:
        print(f"  {s.stage:<40} {s.seconds('sched-wait'):.2f}s")

    # The Gym-style surface: observe -> plan -> step, one decision at a time.
    sim = cluster("mpi-opt")
    policy = FifoScheduler()
    env = JobServerEnv(JobServer(sim, policy, TRACE))
    obs = env.reset()
    done, total_reward, steps = False, 0.0, 0
    while not done:
        obs, reward, done, info = env.step(policy.plan(obs))
        total_reward += reward
        steps += 1
    sim.shutdown()
    print()
    print(f"gym env: {steps} decision points, return (-sum JCT) = "
          f"{total_reward:.2f}s over {info['n_finished']} jobs")


if __name__ == "__main__":
    main()
