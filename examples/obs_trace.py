#!/usr/bin/env python
"""Observability quickstart: trace a GroupByTest run, export Chrome JSON.

Runs one 4 GiB GroupByTest cell on 2 simulated Frontera workers with
MPI4Spark-Optimized, metrics + tracing enabled via SparkConf, then:

* prints the Spark-UI-style text timeline (stage + task spans),
* prints key metric rollups (polling tax, loop busy %, fetch wait),
* writes ``results/groupby_trace.json`` — open it in ``chrome://tracing``
  or https://ui.perfetto.dev to browse the run span by span.

Run:  python examples/obs_trace.py
"""

import pathlib

from repro.harness.systems import FRONTERA
from repro.obs import iprobe_calls, loop_busy_fraction, polling_tax_seconds
from repro.spark.conf import SparkConf
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB, fmt_time
from repro.workloads.ohb import GROUP_BY

OUT = pathlib.Path(__file__).resolve().parent.parent / "results" / "groupby_trace.json"


def main() -> None:
    conf = SparkConf(
        {
            "spark.repro.transport": "mpi-opt",
            "spark.repro.obs.enabled": "true",
            "spark.repro.obs.trace": "true",
        }
    )
    n_workers, data = 2, 4 * GiB
    sim = SparkSimCluster.from_conf(FRONTERA, n_workers, conf)
    sim.launch()
    profile = GROUP_BY.build_profile(FRONTERA, n_workers, data, fidelity=0.1)
    result = sim.run_profile(profile)
    sim.shutdown()

    print(f"GroupByTest {data >> 30} GiB / {n_workers} workers / "
          f"{sim.transport.name}: {fmt_time(result.total_seconds)} total\n")
    print(sim.env.tracer.render_timeline())

    snap = result.metrics
    print(f"\nmetrics: {len(snap)} series from one run")
    print(f"  polling tax:     {fmt_time(polling_tax_seconds(snap))}")
    print(f"  loop busy:       {100 * loop_busy_fraction(snap):.1f}%")
    print(f"  MPI_Iprobe:      {iprobe_calls(snap):.0f} calls")
    print(f"  fetch wait:      {fmt_time(snap.total('spark.scheduler.fetch_wait_s'))}")
    print(f"  remote fetched:  {snap.total('spark.scheduler.remote_fetch_bytes') / GiB:.2f} GiB")

    OUT.parent.mkdir(exist_ok=True)
    sim.env.tracer.write(OUT)
    print(f"\nChrome trace: {OUT}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load it")


if __name__ == "__main__":
    main()
