#!/usr/bin/env python
"""Fig-8 microbenchmark: Netty NIO vs Netty+MPI ping-pong latency.

Reproduces the paper's internal-cluster (IB-EDR) measurement, where
Netty+MPI reaches ~9x lower latency at 4 MB messages.

Run:  python examples/netty_pingpong.py
"""

from repro.harness.experiments import fig8_pingpong
from repro.harness.report import render_fig8


def main() -> None:
    results = fig8_pingpong(iterations=4)
    print(render_fig8(results))
    nio, mpi = results["netty-nio"], results["netty-mpi"]
    best = max(nio.latency_s[s] / mpi.latency_s[s] for s in nio.latency_s)
    print(f"\nbest Netty+MPI speedup: {best:.2f}x (paper: up to ~9x at 4MB)")


if __name__ == "__main__":
    main()
