#!/usr/bin/env python
"""Quickstart: the mini-Spark engine computing real results.

The reproduction's Spark substrate is a working data engine — RDDs,
transformations, wide (shuffling) operations and actions all execute.

Run:  python examples/quickstart.py
"""

from repro.spark import SparkConf, SparkContext


def main() -> None:
    conf = SparkConf({"spark.app.name": "quickstart", "spark.default.parallelism": "4"})
    sc = SparkContext(conf)

    # 1. Word count (the classic): flatMap -> map -> reduceByKey.
    lines = sc.parallelize(
        [
            "spark meets mpi",
            "mpi meets netty",
            "netty meets spark",
        ],
        num_partitions=2,
    )
    counts = (
        lines.flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
    )
    print("word counts:", dict(sorted(counts.collect())))

    # 2. A wide dependency: groupByKey moves every record across the
    #    shuffle -- this is the operation the paper's GroupByTest stresses.
    grouped = (
        sc.range(20)
        .map(lambda x: (x % 4, x))
        .group_by_key(num_partitions=4)
        .map_values(sorted)
    )
    print("groups:", dict(sorted(grouped.collect())))

    # 3. sortByKey triggers a sampling job first (which is why the paper's
    #    SortByTest breakdown labels its sort stages "Job2").
    ranked = sc.parallelize([(9, "i"), (3, "c"), (7, "g"), (1, "a")], 2).sort_by_key()
    print("sorted:", ranked.collect())

    # 4. Joins build two shuffle-map stages feeding one result stage.
    users = sc.parallelize([(1, "ada"), (2, "grace")], 2)
    visits = sc.parallelize([(1, "login"), (1, "query"), (2, "login")], 2)
    print("join:", sorted(users.join(visits).collect()))

    # 5. Every job left a trace (the raw material for the performance
    #    simulation): stage labels match the Spark UI names the paper uses.
    print("\nstages executed:")
    for job in sc.tracer.jobs:
        for stage in job.stages:
            shuffle = (
                f", shuffled {stage.total_shuffle_bytes} bytes"
                if stage.total_shuffle_bytes
                else ""
            )
            print(f"  {stage.label:24s} tasks={stage.num_tasks}{shuffle}")


if __name__ == "__main__":
    main()
