#!/usr/bin/env python
"""CI smoke: low-fidelity Fig-9 sweep with metrics, sanity-asserted.

Runs ``fig9_basic_vs_optimized(fidelity=0.05)`` (obs is enabled for every
harness cell) and asserts each cell carries a non-empty
``MetricsSnapshot`` with all instrumented layers present, and that the
measured polling tax separates Basic from Optimized. Exits non-zero on
any violation — cheap enough for a per-push CI job.

Run:  python examples/obs_smoke.py
"""

from repro.harness.experiments import fig9_basic_vs_optimized
from repro.harness.report import render_ohb
from repro.obs import polling_tax_seconds

LAYERS = ("netty.loop.*", "simnet.link.*", "spark.scheduler.*", "transport.*")


def main() -> None:
    cells = fig9_basic_vs_optimized(fidelity=0.05)
    assert cells, "no cells produced"
    for cell in cells:
        snap = cell.result.metrics
        assert snap is not None and len(snap) > 0, f"empty snapshot: {cell.transport}"
        layers = LAYERS + (("mpi.rank.*",) if cell.transport.startswith("mpi") else ())
        for pattern in layers:
            assert snap.names(pattern), f"{cell.transport}: no {pattern} metrics"
    by = {}
    for cell in cells:
        by.setdefault((cell.workload, cell.n_workers), {})[cell.transport] = cell
    for key, per_t in by.items():
        basic = polling_tax_seconds(per_t["mpi-basic"].result.metrics)
        opt = polling_tax_seconds(per_t["mpi-opt"].result.metrics)
        assert basic > 0.0, f"{key}: Basic measured no polling tax"
        assert basic >= 10.0 * opt, f"{key}: tax basic={basic} opt={opt}"
    print(render_ohb(cells, "obs smoke — Fig 9 at fidelity 0.05"))
    print(f"\nOK: {len(cells)} cells, all layers instrumented, "
          f"polling tax separates Basic from Optimized")


if __name__ == "__main__":
    main()
