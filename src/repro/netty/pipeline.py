"""ChannelPipeline: the ordered handler chain attached to every channel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.netty.handler import ChannelHandler, HandlerContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.netty.channel import Channel
    from repro.simnet.events import Event


class _HeadHandler(ChannelHandler):
    """Sentinel at the head: inbound entry point, outbound exit to transport."""


class _TailHandler(ChannelHandler):
    """Sentinel at the tail: swallows un-consumed inbound events."""

    def channel_read(self, ctx: HandlerContext, msg: Any) -> None:
        # Netty logs and releases; we record for debugging/tests.
        ctx.pipeline.unhandled_reads.append(msg)

    def exception_caught(self, ctx: HandlerContext, exc: BaseException) -> None:
        ctx.pipeline.on_unhandled_exception(exc)


class PipelineError(RuntimeError):
    """Duplicate or missing handler names."""


class ChannelPipeline:
    """Doubly linked list of named handlers between head and tail sentinels."""

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel
        self.unhandled_reads: list[Any] = []
        self.unhandled_exceptions: list[BaseException] = []
        self._head = HandlerContext(self, "HEAD", _HeadHandler())
        self._tail = HandlerContext(self, "TAIL", _TailHandler())
        self._head.next = self._tail
        self._tail.prev = self._head
        self._by_name: dict[str, HandlerContext] = {}

    # -- construction ----------------------------------------------------------
    def add_last(self, name: str, handler: ChannelHandler) -> "ChannelPipeline":
        if name in self._by_name:
            raise PipelineError(f"duplicate handler name {name!r}")
        ctx = HandlerContext(self, name, handler)
        prev = self._tail.prev
        assert prev is not None
        prev.next = ctx
        ctx.prev = prev
        ctx.next = self._tail
        self._tail.prev = ctx
        self._by_name[name] = ctx
        handler.handler_added(ctx)
        return self

    def add_first(self, name: str, handler: ChannelHandler) -> "ChannelPipeline":
        if name in self._by_name:
            raise PipelineError(f"duplicate handler name {name!r}")
        ctx = HandlerContext(self, name, handler)
        nxt = self._head.next
        assert nxt is not None
        self._head.next = ctx
        ctx.prev = self._head
        ctx.next = nxt
        nxt.prev = ctx
        self._by_name[name] = ctx
        handler.handler_added(ctx)
        return self

    def remove(self, name: str) -> ChannelHandler:
        ctx = self._by_name.pop(name, None)
        if ctx is None:
            raise PipelineError(f"no handler named {name!r}")
        assert ctx.prev is not None and ctx.next is not None
        ctx.prev.next = ctx.next
        ctx.next.prev = ctx.prev
        return ctx.handler

    def get(self, name: str) -> ChannelHandler:
        ctx = self._by_name.get(name)
        if ctx is None:
            raise PipelineError(f"no handler named {name!r}")
        return ctx.handler

    def names(self) -> list[str]:
        out = []
        ctx = self._head.next
        while ctx is not None and ctx is not self._tail:
            out.append(ctx.name)
            ctx = ctx.next
        return out

    # -- event entry points ------------------------------------------------------
    def fire_channel_active(self) -> None:
        self._head.fire_channel_active()

    def fire_channel_read(self, msg: Any) -> None:
        self._head.fire_channel_read(msg)

    def fire_channel_inactive(self) -> None:
        self._head.fire_channel_inactive()

    def fire_exception_caught(self, exc: BaseException) -> None:
        self._head.fire_exception_caught(exc)

    def write(self, msg: Any, promise: "Event") -> None:
        """Outbound entry: starts at the tail, ends at the transport."""
        assert self._tail.prev is not None
        self._tail.prev.handler.write(self._tail.prev, msg, promise)

    def on_unhandled_exception(self, exc: BaseException) -> None:
        self.unhandled_exceptions.append(exc)
