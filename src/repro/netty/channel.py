"""Channels: the Netty-side face of a connection.

A :class:`Channel` wraps a :class:`~repro.simnet.sockets.SimSocket`; its
:class:`ChannelId` is the identity MPI4Spark maps to an MPI rank at
connection establishment (paper Sec. VI-B). The default transport write
goes to the socket (NIO); the MPI transports in :mod:`repro.core` override
:meth:`Channel._transport_write` / the read path.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.netty.bytebuf import PooledByteBufAllocator
from repro.netty.frame import WireFrame
from repro.netty.pipeline import ChannelPipeline
from repro.util.serialization import sizeof

if TYPE_CHECKING:  # pragma: no cover
    from repro.netty.eventloop import EventLoop
    from repro.simnet.events import Event
    from repro.simnet.sockets import SimSocket, SocketAddress


class ChannelId:
    """Globally unique channel identity (Netty's ChannelId abstraction)."""

    _alloc = itertools.count(1)

    def __init__(self) -> None:
        self._value = next(ChannelId._alloc)

    def as_long_text(self) -> str:
        return f"channel-{self._value:08x}"

    def __hash__(self) -> int:
        return hash(self._value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChannelId) and other._value == self._value

    def __repr__(self) -> str:
        return self.as_long_text()


class Channel:
    """One endpoint of a Netty connection, bound to an event loop."""

    def __init__(self, event_loop: "EventLoop", socket: "SimSocket") -> None:
        self.event_loop = event_loop
        self.socket = socket
        self.id = ChannelId()
        self.pipeline = ChannelPipeline(self)
        self.alloc = PooledByteBufAllocator()
        self.attributes: dict[str, Any] = {}
        self.active = True
        m = event_loop.env.metrics
        self._c_socket_messages = m.counter("transport.socket.messages")
        self._c_socket_bytes = m.counter("transport.socket.bytes")

    # -- addressing ---------------------------------------------------------
    @property
    def local_address(self) -> "SocketAddress":
        return self.socket.local

    @property
    def remote_address(self) -> "SocketAddress":
        return self.socket.remote

    @property
    def env(self):
        return self.event_loop.env

    # -- I/O ------------------------------------------------------------------
    def write_and_flush(self, msg: Any) -> "Event":
        """Send ``msg`` through the outbound pipeline; returns the write promise."""
        promise = self.env.event()
        self.pipeline.write(msg, promise)
        return promise

    def _transport_write(self, msg: Any, promise: "Event") -> None:
        """Default NIO transport: everything goes over the Java socket."""
        nbytes = self._wire_size(msg)
        self.socket.send(msg, nbytes)
        self._c_socket_messages.inc()
        self._c_socket_bytes.inc(nbytes)
        if not promise.triggered:
            promise.succeed()

    @staticmethod
    def _wire_size(msg: Any) -> int:
        if isinstance(msg, WireFrame):
            return msg.nbytes
        return sizeof(msg)

    def close(self) -> None:
        if self.active:
            self.active = False
            self.socket.close()
            self.event_loop.deregister(self)
            self.pipeline.fire_channel_inactive()
            # Sweep spans the pipeline handlers didn't close (e.g. responses
            # encoded on a dying server channel that will never arrive) so a
            # dead channel can't leave dangling sends in the flight log.
            causal = self.env.causal
            if causal.enabled and causal.flight.open_on(self.id.as_long_text()):
                causal.channel_closed(self.id.as_long_text(), "channel closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.id} {self.local_address}->{self.remote_address}>"
