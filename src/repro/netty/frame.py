"""Wire frames: what actually crosses the transport between channels.

Spark's ``MessageWithHeader`` (paper Fig. 6) is a header + body pair where
the header encodes the frame length, message type and body size. We keep
the header as *real encoded bytes* (so codecs round-trip bit-exactly) and
the body as a payload reference with an explicit size — the analogue of
Netty's zero-copy ``FileRegion`` that Spark uses for shuffle blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.netty.bytebuf import ByteBuf


@dataclass
class WireFrame:
    """One framed message: encoded header bytes plus an optional body."""

    header: bytes
    body: Any = None
    body_nbytes: int = 0
    # Causal trace context (repro.obs.causal), carried as an in-memory side
    # channel only — never serialized into the header bytes, so frames are
    # byte-identical with tracing on or off.
    trace_ctx: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        # A None body with body_nbytes > 0 is valid: the simulation often
        # moves size-only payloads (the bytes are charged, not materialized).
        if self.body_nbytes < 0:
            raise ValueError(f"body_nbytes must be >= 0, got {self.body_nbytes}")

    @property
    def nbytes(self) -> int:
        """Total frame size on the wire."""
        return len(self.header) + self.body_nbytes

    def header_buf(self) -> ByteBuf:
        """The header wrapped for decoding (zero-copy: ByteBuf is COW)."""
        return ByteBuf(self.header)


# Frame layout constants (mirroring Spark's MessageEncoder):
#   8 bytes  frame length (header + body)
#   1 byte   message type tag
#   ...      message-specific header fields
#   N bytes  body (not materialized in the header bytes)
FRAME_LENGTH_SIZE = 8
TYPE_TAG_SIZE = 1


def encode_frame_header(type_tag: int, header_fields: bytes, body_nbytes: int) -> bytes:
    """Build the on-wire header: length-prefix + type + fields."""
    buf = ByteBuf()
    frame_len = FRAME_LENGTH_SIZE + TYPE_TAG_SIZE + len(header_fields) + body_nbytes
    buf.write_long(frame_len)
    buf.write_byte(type_tag)
    buf.write_bytes(header_fields)
    return buf.to_bytes()


def decode_frame_header(header: bytes) -> tuple[int, int, ByteBuf]:
    """Split a header into (type_tag, body_nbytes, fields buffer).

    Zero-copy: the returned fields buffer wraps ``header`` directly
    (ByteBuf is copy-on-write for immutable inputs) with its reader
    positioned past the length prefix and type tag — the header bytes
    are never duplicated on the decode path.
    """
    buf = ByteBuf(header)
    frame_len = buf.read_long()
    type_tag = buf.read_byte()
    body_nbytes = frame_len - len(header)
    if body_nbytes < 0:
        raise ValueError(f"frame length {frame_len} shorter than header {len(header)}")
    return type_tag, body_nbytes, buf
