"""A from-scratch Netty: event-driven network framework over sim sockets.

Substitutes for Netty 4.1 — the layer the paper modifies. Provides
ByteBufs, channels with handler pipelines, the NIO selector loop (Fig. 5),
and client/server bootstraps. Spark's network-common layer
(:mod:`repro.spark.network`) and the MPI transports (:mod:`repro.core`)
build directly on these classes.
"""

from repro.netty.bootstrap import Bootstrap, NettyServer, ServerBootstrap
from repro.netty.bytebuf import ByteBuf, ByteBufError, PooledByteBufAllocator
from repro.netty.channel import Channel, ChannelId
from repro.netty.eventloop import (
    READ_EVENT_COST_S,
    TASK_COST_S,
    WAKEUP_COST_S,
    EventLoop,
)
from repro.netty.frame import (
    FRAME_LENGTH_SIZE,
    TYPE_TAG_SIZE,
    WireFrame,
    decode_frame_header,
    encode_frame_header,
)
from repro.netty.handler import (
    ChannelDuplexHandler,
    ChannelHandler,
    ChannelInboundHandler,
    ChannelOutboundHandler,
    HandlerContext,
)
from repro.netty.pipeline import ChannelPipeline, PipelineError
from repro.netty.selector import OP_ACCEPT, OP_READ, SelectionKey, Selector

__all__ = [
    "ByteBuf",
    "ByteBufError",
    "PooledByteBufAllocator",
    "Channel",
    "ChannelId",
    "ChannelPipeline",
    "PipelineError",
    "ChannelHandler",
    "ChannelInboundHandler",
    "ChannelOutboundHandler",
    "ChannelDuplexHandler",
    "HandlerContext",
    "EventLoop",
    "WAKEUP_COST_S",
    "READ_EVENT_COST_S",
    "TASK_COST_S",
    "Selector",
    "SelectionKey",
    "OP_READ",
    "OP_ACCEPT",
    "WireFrame",
    "encode_frame_header",
    "decode_frame_header",
    "FRAME_LENGTH_SIZE",
    "TYPE_TAG_SIZE",
    "Bootstrap",
    "ServerBootstrap",
    "NettyServer",
]
