"""ByteBuf: Netty's byte container with independent reader/writer indices.

Headers in this reproduction are encoded into *real bytes* through ByteBufs
(so the MessageWithHeader format of Fig 6 round-trips exactly), while bulk
bodies stay as payload references with explicit sizes — the moral
equivalent of Netty's zero-copy ``FileRegion`` path that Spark uses for
shuffle blocks.
"""

from __future__ import annotations

import struct

_unpack_from = struct.unpack_from


class ByteBufError(RuntimeError):
    """Out-of-bounds read or malformed buffer content."""


class ByteBuf:
    """A growable byte buffer with ``reader_index``/``writer_index``.

    Only the operations Spark's message codecs need are implemented:
    byte / int (4B big-endian) / long (8B big-endian) / raw bytes / UTF-8
    strings (length-prefixed, as Spark's ``Encoders.Strings`` does).

    Decode-side buffers are copy-on-write: wrapping immutable ``bytes``
    (or a ``memoryview``) stores the object as-is — the frame decoder
    reads headers without ever duplicating them — and the first write
    converts to a private ``bytearray``. A ``bytearray`` input is copied
    up front, preserving isolation from the caller's buffer.
    """

    __slots__ = ("_data", "reader_index")

    def __init__(self, data: bytes | bytearray | memoryview = b"") -> None:
        self._data = bytearray(data) if type(data) is bytearray else data
        self.reader_index = 0

    def _writable(self) -> bytearray:
        data = self._data
        if type(data) is not bytearray:
            data = self._data = bytearray(data)
        return data

    # -- introspection -------------------------------------------------------
    @property
    def writer_index(self) -> int:
        return len(self._data)

    def readable_bytes(self) -> int:
        return len(self._data) - self.reader_index

    def to_bytes(self) -> bytes:
        """The unread portion as immutable bytes."""
        return bytes(self._data[self.reader_index :])

    def __len__(self) -> int:
        return self.readable_bytes()

    # -- writes --------------------------------------------------------------
    def write_byte(self, value: int) -> "ByteBuf":
        if not 0 <= value < 256:
            raise ByteBufError(f"byte out of range: {value}")
        self._writable().append(value)
        return self

    def write_int(self, value: int) -> "ByteBuf":
        self._writable().extend(struct.pack(">i", value))
        return self

    def write_long(self, value: int) -> "ByteBuf":
        self._writable().extend(struct.pack(">q", value))
        return self

    def write_bytes(self, data: bytes) -> "ByteBuf":
        self._writable().extend(data)
        return self

    def write_string(self, text: str) -> "ByteBuf":
        encoded = text.encode("utf-8")
        self.write_int(len(encoded))
        self.write_bytes(encoded)
        return self

    # -- reads ---------------------------------------------------------------
    def _take(self, n: int) -> bytes:
        ri = self.reader_index
        data = self._data
        if len(data) - ri < n:
            raise ByteBufError(
                f"read of {n} bytes but only {len(data) - ri} readable"
            )
        self.reader_index = ri + n
        chunk = data[ri : ri + n]
        return chunk if type(chunk) is bytes else bytes(chunk)

    def read_byte(self) -> int:
        return self._take(1)[0]

    def read_int(self) -> int:
        ri = self.reader_index
        if len(self._data) - ri < 4:
            raise ByteBufError(
                f"read of 4 bytes but only {len(self._data) - ri} readable"
            )
        self.reader_index = ri + 4
        return _unpack_from(">i", self._data, ri)[0]

    def read_long(self) -> int:
        ri = self.reader_index
        if len(self._data) - ri < 8:
            raise ByteBufError(
                f"read of 8 bytes but only {len(self._data) - ri} readable"
            )
        self.reader_index = ri + 8
        return _unpack_from(">q", self._data, ri)[0]

    def read_bytes(self, n: int) -> bytes:
        return self._take(n)

    def read_slice(self, n: int) -> memoryview:
        """Zero-copy read: a ``memoryview`` over the next ``n`` bytes.

        The view aliases the buffer's storage, so it stays valid only
        until the buffer is written to again (writing to a ``bytearray``
        with live exports raises ``BufferError`` — by design, the decode
        path never writes).
        """
        ri = self.reader_index
        data = self._data
        if len(data) - ri < n:
            raise ByteBufError(
                f"read of {n} bytes but only {len(data) - ri} readable"
            )
        self.reader_index = ri + n
        return memoryview(data)[ri : ri + n]

    def read_string(self) -> str:
        n = self.read_int()
        if n < 0:
            raise ByteBufError(f"negative string length {n}")
        return str(self.read_slice(n), "utf-8")

    # -- peeking (frame decoding needs lookahead) ------------------------------
    def peek_byte(self, offset: int = 0) -> int:
        idx = self.reader_index + offset
        if idx >= len(self._data):
            raise ByteBufError("peek past end of buffer")
        return self._data[idx]

    def peek_long(self, offset: int = 0) -> int:
        idx = self.reader_index + offset
        if idx + 8 > len(self._data):
            raise ByteBufError("peek past end of buffer")
        return _unpack_from(">q", self._data, idx)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ByteBuf readable={self.readable_bytes()}>"


class PooledByteBufAllocator:
    """Allocation bookkeeping standing in for Netty's pooled allocator.

    The paper notes MPI ranks are exchanged "through the Netty Java sockets
    using PooledDirectByteBufs" — we track allocation counts/bytes so tests
    can assert the connection-establishment path really goes through here.
    """

    def __init__(self) -> None:
        self.allocations = 0
        self.bytes_allocated = 0

    def direct_buffer(self, initial: bytes = b"") -> ByteBuf:
        self.allocations += 1
        self.bytes_allocated += len(initial)
        return ByteBuf(initial)
