"""The Netty event loop: one simulated I/O thread driving many channels.

Implements the Fig-5 cycle: ``select`` → handle channel state changes →
run queued tasks → repeat. Inbound handlers run *on the loop thread*; a
handler that must block (the Optimized design's ``MPI_Recv`` inside a
ChannelHandler) registers a *blocking continuation* which the loop runs to
completion before selecting again — exactly the semantics of blocking the
Netty I/O thread, which is what the paper's design does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.netty.channel import Channel
from repro.netty.selector import Selector
from repro.simnet.resources import Store
from repro.util.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine
    from repro.simnet.events import Process
    from repro.simnet.sockets import ListeningSocket

# Per-iteration / per-event CPU costs of the loop machinery.
WAKEUP_COST_S = 0.3 * US  # returning from select + key iteration
READ_EVENT_COST_S = 0.4 * US  # pipeline traversal bookkeeping per message
TASK_COST_S = 0.2 * US  # dequeue + dispatch of one submitted task


class EventLoopGroup:
    """A pool of event loops; channels are assigned round-robin.

    Mirrors Netty's ``NioEventLoopGroup`` — Spark's transport pools run
    ``spark.shuffle.io.{server,client}Threads`` loops so one blocked
    channel handler never stalls every connection.
    """

    def __init__(self, loops: list["EventLoop"]) -> None:
        if not loops:
            raise ValueError("EventLoopGroup needs at least one loop")
        self.loops = list(loops)
        self._next = 0

    def next(self) -> "EventLoop":
        loop = self.loops[self._next % len(self.loops)]
        self._next += 1
        return loop

    def start(self) -> None:
        for loop in self.loops:
            if loop._proc is None:
                loop.start()

    def stop(self) -> None:
        for loop in self.loops:
            loop.stop()


class EventLoop:
    """A single-threaded I/O loop owning a selector, channels and tasks."""

    def __init__(self, env: "SimEngine", name: str = "event-loop") -> None:
        self.env = env
        self.name = name
        self.selector = Selector(env)
        self.tasks: Store = Store(env)
        self.running = False
        self._proc: "Process | None" = None
        self._blocking: list[Generator] = []
        # Set by the MPI transports: this loop's JVM-level MPI identity.
        self.mpi_endpoint = None
        # Loop metrics, published into the registry as
        # ``netty.loop.<name>.*`` lazily at snapshot time (repro.obs) —
        # the loop body itself only pays plain int/float adds. Keep loop
        # names unique per cluster (the executors' "exec{N}-io{M}" scheme
        # does), or colliding loops will overwrite each other's values.
        self._n_iterations = 0
        self._n_messages_read = 0
        self._n_select_wakeups = 0
        self._busy_s = 0.0
        self._blocked_s = 0.0
        m = env.metrics
        self._c_iterations = m.counter(f"netty.loop.{name}.iterations")
        self._c_messages_read = m.counter(f"netty.loop.{name}.messages_read")
        self._c_select_wakeups = m.counter(f"netty.loop.{name}.select_wakeups")
        self._c_busy = m.counter(f"netty.loop.{name}.busy_s")
        self._c_blocked = m.counter(f"netty.loop.{name}.blocked_s")
        m.on_snapshot(self._publish_metrics)

    def _publish_metrics(self) -> None:
        self._c_iterations.value = float(self._n_iterations)
        self._c_messages_read.value = float(self._n_messages_read)
        self._c_select_wakeups.value = float(self._n_select_wakeups)
        self._c_busy.value = self._busy_s
        self._c_blocked.value = self._blocked_s

    # -- back-compat counter views (pre-obs attributes) ---------------------
    @property
    def iterations(self) -> int:
        """Loop iterations so far (snapshots as ``netty.loop.<name>.iterations``)."""
        return self._n_iterations

    @property
    def messages_read(self) -> int:
        """Messages read so far (snapshots as ``netty.loop.<name>.messages_read``)."""
        return self._n_messages_read

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Process":
        if self._proc is not None:
            raise RuntimeError(f"{self.name} already started")
        self.running = True
        self._proc = self.env.process(self._run(), name=self.name)
        return self._proc

    def stop(self) -> None:
        self.running = False
        self.selector.wakeup()

    # -- registration --------------------------------------------------------
    def register(self, channel: Channel) -> None:
        self.selector.register_channel(channel)
        channel.pipeline.fire_channel_active()

    def deregister(self, channel: Channel) -> None:
        self.selector.deregister(channel)

    def register_acceptor(
        self,
        listener: "ListeningSocket",
        child_initializer: Callable[[Channel], None],
        child_group: "EventLoopGroup | None" = None,
    ) -> None:
        self.selector.register_acceptor(listener, child_initializer, child_group)

    # -- task & blocking-continuation submission ---------------------------------
    def submit(self, fn: Callable[[], Any]) -> None:
        """Run ``fn()`` on the loop thread at the next iteration."""
        self.tasks.put(fn)
        self.selector.wakeup()

    def run_blocking(self, gen: Generator) -> None:
        """Ask the loop to run ``gen`` to completion on its own thread.

        Called by inbound handlers; the loop thread is occupied until the
        generator finishes (this is how a blocking ``MPI_Recv`` inside a
        ChannelHandler behaves in the paper's Optimized design).
        """
        self._blocking.append(gen)

    # -- the loop (paper Fig. 5) ----------------------------------------------
    def _run(self) -> Generator:
        env = self.env
        while self.running:
            keys = yield from self.selector.select()
            if not self.running:
                return
            self._n_select_wakeups += 1
            t_busy = env.now
            self._n_iterations += 1
            yield env.timeout(WAKEUP_COST_S)

            for key in keys:
                if key.is_acceptable():
                    yield from self._accept_all(key)
                elif key.is_readable():
                    yield from self._read_all(key.channel)

            # Handlers may have parked blocking continuations.
            yield from self._drain_blocking()

            # Run queued tasks.
            while self.tasks.items:
                ev = self.tasks.get()
                assert ev.triggered
                fn = ev.value
                yield env.timeout(TASK_COST_S)
                fn()
                yield from self._drain_blocking()
            self._busy_s += env.now - t_busy

    def _accept_all(self, key) -> Generator:
        listener = key.listener
        while listener.acceptable:
            ev = listener.accept()
            assert ev.triggered
            socket = ev.value
            target = key.child_group.next() if key.child_group is not None else self
            child = Channel(target, socket)
            if key.child_initializer is not None:
                key.child_initializer(child)
            target.selector.register_channel(child)
            child.pipeline.fire_channel_active()
            yield self.env.timeout(TASK_COST_S)

    def _read_all(self, channel: Channel) -> Generator:
        env = self.env
        while True:
            seg = channel.socket.recv_nowait()
            if seg is None:
                return
            if seg.eof:
                channel.active = False
                self.deregister(channel)
                channel.pipeline.fire_channel_inactive()
                return
            self._n_messages_read += 1
            yield env.timeout(READ_EVENT_COST_S)
            try:
                channel.pipeline.fire_channel_read(seg.payload)
            except Exception as exc:  # handler errors go back down the pipeline
                channel.pipeline.fire_exception_caught(exc)
            yield from self._drain_blocking()

    def _drain_blocking(self) -> Generator:
        if not self._blocking:
            return
        t0 = self.env.now
        while self._blocking:
            gen = self._blocking.pop(0)
            yield from gen
        # Time the loop thread spent inside blocking continuations (the
        # Optimized design's MPI_Recv-in-handler stalls land here).
        self._blocked_s += self.env.now - t0
