"""The NIO selector (paper Fig. 5).

Netty's event loop revolves around ``Selector.select(..)``: it blocks until
a registered channel changes state (readable / acceptable) or a wakeup is
issued, then the loop handles ready keys and queued tasks. MPI4Spark-Basic
replaces the blocking ``select`` with ``selectNow`` + ``MPI_Iprobe``
polling — which is why :meth:`Selector.select_now` exists as a first-class
operation and counts its invocations (the polling tax the paper measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.simnet.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.netty.channel import Channel
    from repro.simnet.engine import SimEngine
    from repro.simnet.events import Event
    from repro.simnet.sockets import ListeningSocket

OP_READ = 1
OP_ACCEPT = 16


@dataclass
class SelectionKey:
    """A registered interest: either a connected channel or a listener."""

    ops: int
    channel: "Channel | None" = None
    listener: "ListeningSocket | None" = None
    # server-side: how to initialize accepted child channels
    child_initializer: Callable[["Channel"], None] | None = None
    # server-side: loop group accepted channels are spread over (None =
    # register them on the accepting loop itself)
    child_group: Any = None

    def is_readable(self) -> bool:
        return (
            self.ops & OP_READ != 0
            and self.channel is not None
            and self.channel.socket.readable
        )

    def is_acceptable(self) -> bool:
        return (
            self.ops & OP_ACCEPT != 0
            and self.listener is not None
            and self.listener.acceptable
        )


class Selector:
    """Tracks registered keys and provides select / selectNow."""

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.keys: list[SelectionKey] = []
        self._wakeups: Store = Store(env)
        self._pending_events: dict[int, "Event"] = {}
        self.select_calls = 0
        self.select_now_calls = 0

    # -- registration ------------------------------------------------------
    def register_channel(self, channel: "Channel") -> SelectionKey:
        for existing in self.keys:
            if existing.channel is channel:
                raise ValueError(
                    f"channel {channel.id} already registered with this selector"
                )
        key = SelectionKey(ops=OP_READ, channel=channel)
        self.keys.append(key)
        self.wakeup()  # a blocked select must notice the new registration
        return key

    def register_acceptor(
        self,
        listener: "ListeningSocket",
        child_initializer: Callable[["Channel"], None],
        child_group: Any = None,
    ) -> SelectionKey:
        key = SelectionKey(
            ops=OP_ACCEPT,
            listener=listener,
            child_initializer=child_initializer,
            child_group=child_group,
        )
        self.keys.append(key)
        self.wakeup()
        return key

    def deregister(self, channel: "Channel") -> None:
        self.keys = [k for k in self.keys if k.channel is not channel]

    # -- selection -----------------------------------------------------------
    def select_now(self) -> list[SelectionKey]:
        """Non-blocking poll of ready keys (NIO selectNow)."""
        self.select_now_calls += 1
        return [k for k in self.keys if k.is_readable() or k.is_acceptable()]

    def select(self, timeout: float | None = None) -> Generator:
        """Blocking select (generator): waits until a key is ready, a
        wakeup arrives, or ``timeout`` elapses. Returns ready keys."""
        self.select_calls += 1
        ready = self.select_now()
        self.select_now_calls -= 1  # internal poll, not a user selectNow
        self._drain_wakeups()
        if ready:
            return ready

        while True:
            events = []
            for i, key in enumerate(self.keys):
                ev = self._pending_events.get(id(key))
                if ev is None or ev.triggered:
                    if key.channel is not None:
                        ev = key.channel.socket.when_readable()
                    elif key.listener is not None:
                        ev = key.listener.when_acceptable()
                    else:  # pragma: no cover - defensive
                        continue
                    self._pending_events[id(key)] = ev
                events.append(ev)
            wake = self._wakeups.when_nonempty()
            events.append(wake)
            if timeout is not None:
                events.append(self.env.timeout(timeout))
            yield self.env.any_of(events)
            self._drain_wakeups()
            ready = self.select_now()
            self.select_now_calls -= 1
            if ready or timeout is not None:
                return ready
            # A wakeup (e.g. task submission) with nothing readable: return
            # control so the loop can run its tasks.
            return ready

    def wakeup(self) -> None:
        """Unblock a pending select (NIO Selector.wakeup)."""
        self._wakeups.put(None)

    def _drain_wakeups(self) -> None:
        while self._wakeups.items:
            ev = self._wakeups.get()
            assert ev.triggered
