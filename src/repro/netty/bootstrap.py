"""Client/server bootstraps: how channels come into existence."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.netty.channel import Channel
from repro.netty.eventloop import EventLoop

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.sockets import ListeningSocket, SocketAddress, SocketStack
    from repro.simnet.topology import SimNode


class ServerBootstrap:
    """Binds a listening socket and hands accepted channels to an event loop.

    Mirrors Netty's builder idiom::

        server = (ServerBootstrap(stack)
                  .group(loop)
                  .child_handler(init_fn)
                  .bind(node, port))
    """

    def __init__(self, stack: "SocketStack") -> None:
        self.stack = stack
        self._loop: EventLoop | None = None
        self._child_group = None
        self._child_initializer: Callable[[Channel], None] | None = None

    def group(self, loop: EventLoop, child_group=None) -> "ServerBootstrap":
        """``loop`` accepts connections; ``child_group`` (optional
        EventLoopGroup) hosts the accepted channels, Netty boss/worker style."""
        self._loop = loop
        self._child_group = child_group
        return self

    def child_handler(self, initializer: Callable[[Channel], None]) -> "ServerBootstrap":
        self._child_initializer = initializer
        return self

    def bind(self, node: "SimNode | str | int", port: int) -> "NettyServer":
        if self._loop is None:
            raise RuntimeError("ServerBootstrap needs an event loop (call group())")
        listener = self.stack.listen(node, port)
        self._loop.register_acceptor(
            listener,
            self._child_initializer or (lambda ch: None),
            self._child_group,
        )
        return NettyServer(listener, self._loop)


class NettyServer:
    """A bound server: the listener plus its event loop."""

    def __init__(self, listener: "ListeningSocket", loop: EventLoop) -> None:
        self.listener = listener
        self.loop = loop

    @property
    def address(self) -> "SocketAddress":
        return self.listener.addr

    def close(self) -> None:
        self.listener.close()


class Bootstrap:
    """Client-side connector."""

    def __init__(self, stack: "SocketStack") -> None:
        self.stack = stack
        self._loop: EventLoop | None = None
        self._initializer: Callable[[Channel], None] | None = None

    def group(self, loop: EventLoop) -> "Bootstrap":
        self._loop = loop
        return self

    def handler(self, initializer: Callable[[Channel], None]) -> "Bootstrap":
        self._initializer = initializer
        return self

    def connect(
        self, node: "SimNode | str | int", remote: "SocketAddress"
    ) -> Generator:
        """Establish a connection (generator); returns the client Channel."""
        if self._loop is None:
            raise RuntimeError("Bootstrap needs an event loop (call group())")
        socket = yield from self.stack.connect(node, remote)
        channel = Channel(self._loop, socket)
        if self._initializer is not None:
            self._initializer(channel)
        self._loop.register(channel)
        return channel
