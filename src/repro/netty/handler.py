"""Channel handlers and handler contexts (Netty's extension points).

Inbound events (connection active, message read, connection closed) travel
head → tail; outbound operations (write) travel tail → head, ending at the
channel's transport. MPI4Spark-Optimized hooks exactly here: its header-
parsing handlers (paper Fig. 7) sit in these pipelines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.netty.channel import Channel
    from repro.netty.pipeline import ChannelPipeline
    from repro.simnet.events import Event


class ChannelHandler:
    """Base marker; concrete handlers override inbound/outbound callbacks."""

    def handler_added(self, ctx: "HandlerContext") -> None:
        """Called when the handler joins a pipeline."""

    # -- inbound -------------------------------------------------------------
    def channel_active(self, ctx: "HandlerContext") -> None:
        ctx.fire_channel_active()

    def channel_read(self, ctx: "HandlerContext", msg: Any) -> None:
        ctx.fire_channel_read(msg)

    def channel_inactive(self, ctx: "HandlerContext") -> None:
        ctx.fire_channel_inactive()

    def exception_caught(self, ctx: "HandlerContext", exc: BaseException) -> None:
        ctx.fire_exception_caught(exc)

    # -- outbound ------------------------------------------------------------
    def write(self, ctx: "HandlerContext", msg: Any, promise: "Event") -> None:
        ctx.write(msg, promise)


# Aliases matching Netty terminology; both directions share one base here
# because the simulation dispatches explicitly.
ChannelInboundHandler = ChannelHandler
ChannelOutboundHandler = ChannelHandler
ChannelDuplexHandler = ChannelHandler


class HandlerContext:
    """A handler's position in its pipeline (doubly linked)."""

    def __init__(self, pipeline: "ChannelPipeline", name: str, handler: ChannelHandler) -> None:
        self.pipeline = pipeline
        self.name = name
        self.handler = handler
        self.prev: HandlerContext | None = None
        self.next: HandlerContext | None = None

    @property
    def channel(self) -> "Channel":
        return self.pipeline.channel

    # -- inbound propagation ---------------------------------------------------
    def fire_channel_active(self) -> None:
        if self.next is not None:
            self.next.handler.channel_active(self.next)

    def fire_channel_read(self, msg: Any) -> None:
        if self.next is not None:
            self.next.handler.channel_read(self.next, msg)

    def fire_channel_inactive(self) -> None:
        if self.next is not None:
            self.next.handler.channel_inactive(self.next)

    def fire_exception_caught(self, exc: BaseException) -> None:
        if self.next is not None:
            self.next.handler.exception_caught(self.next, exc)
        else:
            # Tail of pipeline: nobody handled it.
            self.pipeline.on_unhandled_exception(exc)

    # -- outbound propagation ----------------------------------------------------
    def write(self, msg: Any, promise: "Event") -> None:
        if self.prev is not None:
            self.prev.handler.write(self.prev, msg, promise)
        else:
            # Head of pipeline: hand to the transport.
            self.pipeline.channel._transport_write(msg, promise)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HandlerContext {self.name}>"
