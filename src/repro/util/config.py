"""A ``SparkConf``-style string-keyed configuration map.

Spark configures everything through dotted string keys
(``spark.executor.memory`` etc.); the reproduction keeps that idiom so the
examples read like real Spark programs, while adding typed accessors.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.util.units import parse_bytes


class ConfigError(KeyError):
    """Raised when a required configuration key is missing or malformed."""


_TRUE = {"true", "1", "yes", "on"}
_FALSE = {"false", "0", "no", "off"}


class Config:
    """An immutable-by-convention key/value configuration.

    >>> conf = Config({"spark.executor.cores": "4"})
    >>> conf.get_int("spark.executor.cores")
    4
    """

    def __init__(self, values: Mapping[str, Any] | None = None) -> None:
        self._values: dict[str, Any] = dict(values or {})

    # -- mutation (builder style, returns self for chaining) ---------------
    def set(self, key: str, value: Any) -> "Config":
        self._values[key] = value
        return self

    def set_all(self, values: Mapping[str, Any]) -> "Config":
        self._values.update(values)
        return self

    def set_if_missing(self, key: str, value: Any) -> "Config":
        self._values.setdefault(key, value)
        return self

    # -- access -------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(sorted(self._values.items()))

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def require(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise ConfigError(f"missing required config key {key!r}") from None

    def get_int(self, key: str, default: int | None = None) -> int:
        value = self._values.get(key, default)
        if value is None:
            raise ConfigError(f"missing required config key {key!r}")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ConfigError(f"config key {key!r}={value!r} is not an int") from None

    def get_float(self, key: str, default: float | None = None) -> float:
        value = self._values.get(key, default)
        if value is None:
            raise ConfigError(f"missing required config key {key!r}")
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ConfigError(f"config key {key!r}={value!r} is not a float") from None

    def get_bool(self, key: str, default: bool | None = None) -> bool:
        value = self._values.get(key, default)
        if value is None:
            raise ConfigError(f"missing required config key {key!r}")
        if isinstance(value, bool):
            return value
        text = str(value).strip().lower()
        if text in _TRUE:
            return True
        if text in _FALSE:
            return False
        raise ConfigError(f"config key {key!r}={value!r} is not a bool")

    def get_bytes(self, key: str, default: str | int | None = None) -> int:
        value = self._values.get(key, default)
        if value is None:
            raise ConfigError(f"missing required config key {key!r}")
        try:
            return parse_bytes(value)
        except ValueError as exc:
            raise ConfigError(f"config key {key!r}: {exc}") from None

    def copy(self) -> "Config":
        return Config(self._values)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"Config({body})"
