"""Seeded, forkable random streams for reproducible simulations.

Every stochastic decision in the simulator (fault schedules, message-chaos
coin flips, stochastic plans) must come from a :class:`SeededRng` so that two
runs with the same seed replay *byte-identically*. Substreams are derived
with SHA-256 over ``(seed, *keys)`` rather than Python's built-in ``hash()``,
which is salted per interpreter run and would silently break replay.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def derive_seed(seed: int, *keys: Any) -> int:
    """Deterministically derive a child seed from a parent seed and keys.

    Keys are hashed through their ``repr``; use only primitives (str, int,
    float, tuples thereof) whose repr is stable across interpreter runs.
    """
    h = hashlib.sha256()
    h.update(repr(int(seed)).encode("utf-8"))
    for key in keys:
        h.update(b"\x00")
        h.update(repr(key).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


class SeededRng(random.Random):
    """A :class:`random.Random` that remembers its seed and can fork.

    ``substream(*keys)`` returns an independent stream whose state depends
    only on ``(self.seed, *keys)`` — not on how much of the parent stream has
    been consumed — so adding one draw in a subsystem never perturbs another.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed_value = int(seed)
        super().__init__(self.seed_value)

    def substream(self, *keys: Any) -> "SeededRng":
        return SeededRng(derive_seed(self.seed_value, *keys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeededRng seed={self.seed_value}>"
