"""Byte/time unit constants and human-readable formatting.

Conventions used throughout the reproduction:

* Sizes are plain ``int``/``float`` **bytes**. Decimal units (``KB`` = 1e3)
  match how network line rates are quoted (100 Gb/s); binary units
  (``KiB`` = 1024) match how message sizes are quoted in the paper's
  ping-pong figure (4 KB ... 4 MB are powers of two there).
* Times are ``float`` **seconds**; ``US``/``MS`` are convenience multipliers
  so cost-model constants can be written as ``2 * US``.
"""

from __future__ import annotations

import re

# --- byte units -----------------------------------------------------------
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

# --- time units (seconds) -------------------------------------------------
US = 1e-6
MS = 1e-3
SEC = 1.0


def gbps(rate: float) -> float:
    """Convert a line rate in gigabits/second to bytes/second.

    >>> gbps(100) == 12.5e9
    True
    """
    return rate * 1e9 / 8.0


_SUFFIXES = [
    ("TiB", TiB),
    ("GiB", GiB),
    ("MiB", MiB),
    ("KiB", KiB),
    ("TB", TB),
    ("GB", GB),
    ("MB", MB),
    ("KB", KB),
    ("B", 1),
]

_PARSE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<suffix>[KMGT]?i?B?)\s*$", re.IGNORECASE
)

_PARSE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}


def parse_bytes(text: str | int | float) -> int:
    """Parse a Spark-style size string (``"48m"``, ``"120GB"``) into bytes.

    Spark interprets bare ``k``/``m``/``g`` suffixes as binary units, so we
    do too. Plain numbers pass through unchanged.
    """
    if isinstance(text, (int, float)):
        return int(text)
    m = _PARSE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    mult = _PARSE_SUFFIXES.get(m.group("suffix").lower())
    if mult is None:
        raise ValueError(f"unknown size suffix in {text!r}")
    return int(float(m.group("num")) * mult)


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary-unit suffix (``"4.0MiB"``)."""
    neg = n < 0
    n = abs(n)
    for suffix, mult in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if n >= mult:
            return f"{'-' if neg else ''}{n / mult:.1f}{suffix}"
    return f"{'-' if neg else ''}{n:.0f}B"


def fmt_time(seconds: float) -> str:
    """Render a duration at an appropriate scale (``"12.3us"``, ``"4.5s"``)."""
    neg = seconds < 0
    s = abs(seconds)
    if s >= 60.0:
        text = f"{s / 60.0:.1f}min"
    elif s >= 1.0:
        text = f"{s:.2f}s"
    elif s >= 1e-3:
        text = f"{s * 1e3:.2f}ms"
    elif s >= 1e-6:
        text = f"{s * 1e6:.2f}us"
    else:
        text = f"{s * 1e9:.1f}ns"
    return ("-" if neg else "") + text
