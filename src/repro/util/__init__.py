"""Shared utilities: units, configuration, statistics, serialization sizing.

These helpers are deliberately dependency-light; every other subpackage in
:mod:`repro` builds on them.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    KiB,
    MiB,
    GiB,
    TiB,
    US,
    MS,
    SEC,
    fmt_bytes,
    fmt_time,
    parse_bytes,
    gbps,
)
from repro.util.config import Config, ConfigError
from repro.util.stats import OnlineStats, percentile, summarize
from repro.util.serialization import estimate_size, size_cache_stats, sizeof, SizedPayload

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "US",
    "MS",
    "SEC",
    "fmt_bytes",
    "fmt_time",
    "parse_bytes",
    "gbps",
    "Config",
    "ConfigError",
    "OnlineStats",
    "percentile",
    "summarize",
    "estimate_size",
    "size_cache_stats",
    "sizeof",
    "SizedPayload",
]
