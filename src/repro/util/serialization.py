"""Serialized-size accounting.

The simulator moves *sample-scale* Python objects while charging wire time
for *nominal-scale* byte counts. That requires a consistent answer to "how
many bytes would this object be on the wire?". We approximate Java/Kryo
serialization with pickle sizes plus a cache for common shapes, and provide
:class:`SizedPayload` for callers that want to pin an explicit nominal size
to a payload (the trace-scaling path).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

# Fixed-size primitives get a flat cost so sizing is O(1) on the hot path
# (per-record sizing during shuffle writes) instead of a pickle round-trip.
_PRIMITIVE_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    type(None): 1,
}

# estimate_size memo: shape key -> serialized size. Only shapes whose size
# is provably content-independent are cached (see _shape_key), so a cache
# hit always returns exactly what sizeof() would have computed.
_SIZE_CACHE: dict[Any, int] = {}
_cache_hits = 0
_cache_misses = 0


def _shape_key(obj: Any) -> Any:
    """Hashable shape key, or None when the size depends on content.

    Shapes covered: fixed-size primitives, length-keyed bytes/bytearray,
    ASCII strings (utf-8 length == character length), and tuples/lists
    composed of the above. Anything else — dicts, non-ASCII strings,
    arbitrary objects — returns None and is sized directly.
    """
    t = type(obj)
    if t in _PRIMITIVE_SIZES:
        return t
    if t is bytes or t is bytearray:
        return (t, len(obj))
    if t is str:
        return (t, len(obj)) if obj.isascii() else None
    if t is tuple or t is list:
        parts = []
        for x in obj:
            k = _shape_key(x)
            if k is None:
                return None
            parts.append(k)
        return (t, tuple(parts))
    if t is np.ndarray:
        # nbytes is a pure function of (dtype, shape) — content-free.
        return (t, obj.dtype.str, obj.shape)
    if isinstance(obj, np.generic):
        # numpy scalars (np.float64 labels etc.): fixed itemsize per type.
        return t
    return None


def estimate_size(obj: Any) -> int:
    """:func:`sizeof` with memoization over repeated shapes.

    Shuffle writes size every record of a bucket, and real workloads emit
    millions of records of a handful of shapes (``(int, bytes(1000))`` in
    the OHB kernels). The cache maps shape keys to sizes; shapes whose
    size is content-dependent fall through to :func:`sizeof` uncached.
    """
    global _cache_hits, _cache_misses
    key = _shape_key(obj)
    if key is None:
        return sizeof(obj)
    size = _SIZE_CACHE.get(key)
    if size is None:
        _cache_misses += 1
        size = _SIZE_CACHE[key] = sizeof(obj)
    else:
        _cache_hits += 1
    return size


def estimate_batch(records: Iterable[Any]) -> int:
    """Exact ``sum(estimate_size(r) for r in records)``, chunked.

    The shuffle write path sizes whole buckets at once; for the dominant
    shape — a bucket of uniform-arity tuples, e.g. ``(int, bytes)`` pairs
    — the sum is computed column-wise with C-level ``map``/``sum`` calls
    instead of one Python-level sizing call per record. Columns that are
    not uniformly primitive fall back to per-element :func:`estimate_size`
    (which still memoizes repeated shapes), so the result is the exact
    per-record sum by construction for every input.
    """
    if not isinstance(records, (list, tuple)):
        records = list(records)
    n = len(records)
    if n == 0:
        return 0
    if n > 1 and set(map(type, records)) == {tuple} and len(set(map(len, records))) == 1:
        total = 8 * n  # per-tuple container overhead (see sizeof)
        for col in zip(*records):
            col_types = set(map(type, col))
            if len(col_types) == 1:
                (ct,) = col_types
                flat = _PRIMITIVE_SIZES.get(ct)
                if flat is not None:
                    total += flat * n
                    continue
                if ct is bytes or ct is bytearray:
                    total += sum(map(len, col))
                    continue
            total += sum(map(estimate_size, col))
        return total
    return sum(map(estimate_size, records))


def size_cache_stats() -> tuple[int, int]:
    """Process-lifetime ``(hits, misses)`` of the estimate_size cache.

    Callers that attribute cache traffic to one run (the obs snapshot
    hook in ``spark.deploy``) record a baseline at start and publish the
    difference.
    """
    return _cache_hits, _cache_misses


def sizeof(obj: Any) -> int:
    """Estimated serialized size of ``obj`` in bytes.

    Estimates, not exact pickle lengths, for primitives and small containers
    — the point is a *stable, monotone* size model, matching how Spark's
    ``SizeEstimator`` is itself approximate.
    """
    t = type(obj)
    flat = _PRIMITIVE_SIZES.get(t)
    if flat is not None:
        return flat
    if t is bytes or t is bytearray:
        return len(obj)
    if t is str:
        return len(obj.encode("utf-8", errors="replace"))
    if t is tuple or t is list:
        return 8 + sum(sizeof(x) for x in obj)
    if t is dict:
        return 16 + sum(sizeof(k) + sizeof(v) for k, v in obj.items())
    if isinstance(obj, SizedPayload):
        return obj.nbytes
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, float)):
        # numpy arrays and anything else exposing a buffer size
        return int(nbytes)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # opaque, unpicklable object: charge a token cost


@dataclass(frozen=True)
class SizedPayload:
    """A payload with an explicit wire size, decoupled from its sample data.

    The trace-replay path wraps a (small) sample object together with the
    nominal byte count the same message would carry at paper scale; every
    layer that charges wire time consults ``nbytes`` via :func:`sizeof`.
    """

    data: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")

    def scaled(self, factor: float) -> "SizedPayload":
        """Return a copy whose nominal size is multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return SizedPayload(self.data, int(self.nbytes * factor))
