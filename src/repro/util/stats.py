"""Small statistics helpers used by the harness and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class OnlineStats:
    """Welford-style running mean/variance with min/max tracking.

    Used by the simulator's trace module and the benchmark harness to
    summarize large event populations without storing them.
    """

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (Chan's parallel-merge formula)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        self._mean = (self._mean * self.n + other._mean * other.n) / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(n={self.n}, mean={self.mean:.4g}, stdev={self.stdev:.4g})"


def percentile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not xs:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(xs)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    # lo + (hi - lo) * frac is exact when the two samples are equal,
    # unlike the convex-combination form (one-ulp drift).
    return data[lo] + (data[hi] - data[lo]) * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    stdev: float
    min: float
    p50: float
    p95: float
    p99: float
    max: float
    total: float


def summarize(xs: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``xs`` (must be non-empty)."""
    stats = OnlineStats()
    stats.extend(xs)
    return Summary(
        n=stats.n,
        mean=stats.mean,
        stdev=stats.stdev,
        min=stats.min,
        p50=percentile(xs, 50),
        p95=percentile(xs, 95),
        p99=percentile(xs, 99),
        max=stats.max,
        total=stats.total,
    )
