"""Rendering of experiment results in the paper's shape."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.harness.experiments import HiBenchCell, OhbCell
from repro.harness.pingpong import PingPongResult
from repro.obs import loop_busy_fraction, polling_tax_seconds
from repro.util.units import fmt_bytes, fmt_time

LEGEND = {"nio": "IPoIB", "rdma": "RDMA", "mpi-opt": "MPI", "mpi-basic": "MPI-Basic"}


def render_table(rows: Sequence[dict[str, str]], title: str = "") -> str:
    """Plain-text table from a list of homogeneous dicts."""
    if not rows:
        return f"{title}\n(empty)"
    cols: list[str] = []
    for r in rows:
        for c in r:
            if c not in cols:
                cols.append(c)
    widths = {
        c: max(len(c), max(len(str(r.get(c, ""))) for r in rows)) for c in cols
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        lines.append(" | ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def render_fig8(results: dict[str, PingPongResult]) -> str:
    """Fig-8 latency table: NIO vs Netty+MPI with speedups."""
    nio = results["netty-nio"]
    mpi = results["netty-mpi"]
    rows = []
    for size in sorted(nio.latency_s):
        rows.append(
            {
                "Message size": fmt_bytes(size),
                "Netty (NIO)": fmt_time(nio.latency_s[size]),
                "Netty+MPI": fmt_time(mpi.latency_s[size]),
                "Speedup": f"{nio.latency_s[size] / mpi.latency_s[size]:.2f}x",
            }
        )
    return render_table(
        rows, "Fig 8 — Netty ping-pong latency (internal cluster, IB-EDR)"
    )


def _group_ohb(cells: Iterable[OhbCell]):
    grouped: dict[tuple[str, int, int], dict[str, OhbCell]] = defaultdict(dict)
    for cell in cells:
        grouped[(cell.workload, cell.n_workers, cell.data_bytes)][cell.transport] = cell
    return grouped


def render_ohb(cells: Iterable[OhbCell], title: str) -> str:
    """OHB breakdown table with the paper's stage labels and speedups."""
    rows = []
    for (workload, n_workers, data), per_t in sorted(_group_ohb(cells).items()):
        for transport, cell in per_t.items():
            row = {
                "Workload": workload,
                "Workers": str(n_workers),
                "Cores": str(cell.total_cores),
                "Data": fmt_bytes(data),
                "Transport": LEGEND.get(transport, transport),
            }
            for label, secs in cell.result.stage_seconds.items():
                row[label] = fmt_time(secs)
            row["Total"] = fmt_time(cell.total_seconds)
            snap = cell.result.metrics
            if snap is not None:
                # Measured CPU seconds burned in selectNow+MPI_Iprobe spins
                # (Sec. VI-D) and the event loops' mean busy fraction.
                row["Poll tax"] = fmt_time(polling_tax_seconds(snap))
                row["Loop busy"] = f"{100.0 * loop_busy_fraction(snap):.1f}%"
            if "nio" in per_t and transport != "nio":
                row["vs IPoIB"] = (
                    f"{per_t['nio'].total_seconds / cell.total_seconds:.2f}x"
                )
            else:
                row["vs IPoIB"] = ""
            rows.append(row)
    return render_table(rows, title)


def ohb_speedups(cells: Iterable[OhbCell]) -> dict:
    """Machine-readable speedups: {(workload, workers): {pair: ratio}}."""
    out = {}
    for key, per_t in _group_ohb(cells).items():
        entry = {}
        mpi = per_t.get("mpi-opt")
        if mpi is not None:
            if "nio" in per_t:
                entry["total_mpi_vs_vanilla"] = (
                    per_t["nio"].total_seconds / mpi.total_seconds
                )
                entry["read_mpi_vs_vanilla"] = (
                    per_t["nio"].result.shuffle_read_seconds()
                    / mpi.result.shuffle_read_seconds()
                )
            if "rdma" in per_t:
                entry["total_mpi_vs_rdma"] = (
                    per_t["rdma"].total_seconds / mpi.total_seconds
                )
                entry["read_mpi_vs_rdma"] = (
                    per_t["rdma"].result.shuffle_read_seconds()
                    / mpi.result.shuffle_read_seconds()
                )
        out[(key[0], key[1])] = entry
    return out


def render_fig12(cells: Iterable[HiBenchCell]) -> str:
    grouped: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for cell in cells:
        grouped[(cell.system, cell.workload)][cell.transport] = cell.total_seconds
    rows = []
    for (system, workload), per_t in grouped.items():
        row = {"System": system, "Workload": workload}
        for transport in ("nio", "rdma", "mpi-opt"):
            name = LEGEND[transport]
            row[name] = fmt_time(per_t[transport]) if transport in per_t else "-"
        if "nio" in per_t and "mpi-opt" in per_t:
            row["MPI vs IPoIB"] = f"{per_t['nio'] / per_t['mpi-opt']:.2f}x"
        if "rdma" in per_t and "mpi-opt" in per_t:
            row["MPI vs RDMA"] = f"{per_t['rdma'] / per_t['mpi-opt']:.2f}x"
        else:
            row["MPI vs RDMA"] = "-"
        rows.append(row)
    return render_table(rows, "Fig 12 — Intel HiBench (Huge)")


def hibench_speedups(cells: Iterable[HiBenchCell]) -> dict:
    grouped: dict[tuple[str, str], dict[str, float]] = defaultdict(dict)
    for cell in cells:
        grouped[(cell.system, cell.workload)][cell.transport] = cell.total_seconds
    return {
        key: {
            "mpi_vs_vanilla": per_t["nio"] / per_t["mpi-opt"],
            **(
                {"mpi_vs_rdma": per_t["rdma"] / per_t["mpi-opt"]}
                if "rdma" in per_t
                else {}
            ),
        }
        for key, per_t in grouped.items()
        if "nio" in per_t and "mpi-opt" in per_t
    }
