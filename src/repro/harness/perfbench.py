"""Pinned wall-clock perf suite for the simulator kernel.

A small, fixed set of figure-suite cells (Fig 8 ping-pong, Fig 9
basic-vs-opt, one Fig 10 scale point, one Fig 12 HiBench cell) is run
serially and timed for real; each cell reports wall seconds, kernel
events dispatched, and events/sec.  ``run_perf_suite`` returns the full
payload that ``benchmarks/test_perf_suite.py`` writes to
``results/BENCH_perf.json``.

Two comparisons hang off that file:

* ``PRE_PR_BASELINE`` — wall seconds of the same cells on the tree
  before the fast-path work (min of 3 alternating runs, same machine).
  The payload records per-cell speedups against it.
* ``regressions(current, committed)`` — events/sec of a fresh run vs
  the committed ``results/BENCH_perf.json``; CI gates on it when
  ``REPRO_PERF_GATE=1`` (>30% drop fails).

Simulated results are unaffected by any of this: the suite only times
runs whose outputs are already covered by the figure benchmarks.
"""

from __future__ import annotations

import gc
import os
import platform
import resource
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.harness.experiments import FIG8_LARGE_SIZES, FIG8_SMALL_SIZES
from repro.harness.pingpong import run_pingpong
from repro.harness.systems import FRONTERA, INTERNAL_CLUSTER
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB
from repro.workloads.hibench import SPECS
from repro.workloads.ohb import GROUP_BY

SCHEMA = "repro-perf/1"

# Pre-PR wall seconds for the pinned cells: min of 3 runs alternating
# old/new interpreter processes on the same machine (see DESIGN.md §10
# for the methodology).  Used only to report speedups in the payload.
PRE_PR_BASELINE: dict[str, float] = {
    "fig8_pingpong_nio": 0.0079,
    "fig8_pingpong_mpi": 0.0128,
    "fig9_groupby_2w_nio": 0.301,
    "fig9_groupby_2w_mpi-basic": 0.467,
    "fig9_groupby_2w_mpi-opt": 0.427,
    "fig10_groupby_8w_mpi-basic": 13.48,
    "fig12_terasort_frontera_mpi-opt": 4.69,
}

# Speedups from the paired measurement itself (old and new trees in
# alternating fresh processes, min of 3 per side, per cell).  Unlike the
# live ``speedup_vs_baseline`` division — whose denominator moves with
# whatever else the machine is doing — the paired ratio exposes both
# trees to the same noise, so it is the authoritative before/after
# number.  The win grows with worker count because the removed matching
# scans grew with channel count and queue depth.
PRE_PR_PAIRED_SPEEDUP: dict[str, float] = {
    "fig8_pingpong_nio": 0.96,
    "fig8_pingpong_mpi": 1.01,
    "fig9_groupby_2w_nio": 1.06,
    "fig9_groupby_2w_mpi-basic": 1.13,
    "fig9_groupby_2w_mpi-opt": 1.11,
    "fig10_groupby_8w_mpi-basic": 3.08,
    "fig12_terasort_frontera_mpi-opt": 1.27,
}

# Paired measurement for the fluid-rerate / event-loop work (vectorized
# re-rating, persistent park waiters, wire-delay memoization): same
# alternating-process min-of-N methodology as PRE_PR_PAIRED_SPEEDUP,
# taken on the flow-heavy GroupBy cells this pass targets.  The ratios
# grow with worker count because the removed costs — per-arm timer
# closures, per-park waiter list rebuilds, re-computed wire delays —
# all scale with channel and flow count, not with data volume.
PRE_VEC_BASELINE: dict[str, float] = {
    "fig10_groupby_8w_mpi-basic": 3.73,
    "fig10_groupby_32w_mpi-basic": 43.00,
    "scale_groupby_64w_mpi-basic": 38.20,
}

# Wall-clock ratios (old wall / new wall) from the paired runs.
PRE_VEC_PAIRED_SPEEDUP: dict[str, float] = {
    "fig10_groupby_8w_mpi-basic": 1.03,
    "fig10_groupby_32w_mpi-basic": 1.34,
    "scale_groupby_64w_mpi-basic": 1.42,
}

# Events/sec ratios (new eps / old eps) from the same paired runs.  The
# event totals differ across trees (the park-waiter rewrite removed
# no-op dispatch hops), so the wall ratio and the eps ratio are both
# recorded: wall is what a user waits for, eps is kernel throughput.
PRE_VEC_PAIRED_EPS_RATIO: dict[str, float] = {
    "fig10_groupby_8w_mpi-basic": 1.02,
    "fig10_groupby_32w_mpi-basic": 1.24,
    "scale_groupby_64w_mpi-basic": 1.22,
}

# Paired measurement for the collective-shuffle pass.  Unlike PRE_PR /
# PRE_VEC — where old and new are two *trees* timing identical cells —
# both shuffle plans ship in this tree, so the "old" side is the same
# fig9 GroupBy cell drained by per-block ChunkFetch (mpi-opt) and the
# pair is re-measured live on every suite run (coll_baseline block).
# The committed reference ratio below is min-of-3 alternating processes
# on the machine that produced this file.  The host-wall win is an
# event-count collapse — one alltoallv per boundary replaces ~60k
# per-chunk kernel events with ~800 — so events/sec stays flat while
# wall drops ~80x.  Simulated-time wins (the >=30% fetch-wait+queue
# cut) are gated in benchmarks/test_fig9_opt_vs_coll.py, not here.
COLL_PAIRS: list[tuple[str, str]] = [
    ("fig9_groupby_2w_mpi-opt", "fig9_groupby_2w_mpi-coll"),
]
PRE_COLL_PAIRED_WALL_RATIO: dict[str, float] = {
    "fig9_groupby_2w_mpi-coll": 80.7,
}


@dataclass
class PerfCell:
    """One timed cell of the pinned suite."""

    name: str
    wall_seconds: float
    events_processed: int
    events_per_sec: float


def _pingpong_cell(transport: str) -> int:
    sizes = FIG8_SMALL_SIZES + FIG8_LARGE_SIZES
    res = run_pingpong(transport, sizes, INTERNAL_CLUSTER.fabric, iterations=4)
    return res.events_processed


def _ohb_cell(
    n_workers: int,
    data_bytes: int,
    transport: str,
    obs_causal: bool = False,
    fidelity: float = 0.25,
) -> int:
    sim = SparkSimCluster(
        FRONTERA, n_workers, transport, obs_enabled=True, obs_causal=obs_causal
    )
    sim.launch()
    profile = GROUP_BY.build_profile(
        FRONTERA, n_workers, data_bytes, fidelity=fidelity
    )
    sim.run_profile(profile)
    sim.shutdown()
    return sim.env.events_processed


def _hibench_cell(name: str, transport: str) -> int:
    sim = SparkSimCluster(FRONTERA, 16, transport)
    sim.launch()
    profile = SPECS[name].build_profile(FRONTERA, 16, fidelity=0.25)
    sim.run_profile(profile)
    sim.shutdown()
    return sim.env.events_processed


def _trace_cell_fig10(warm: bool) -> int:
    """Fig-10-shaped profile build: sample trace -> scaled profile.

    Cold clears both cache tiers first, so every repeat re-executes the
    sample run; warm hits the in-process memo and must skip sample
    execution entirely. The warm/cold wall ratio is the perf suite's
    trace-cache gate (>= 2x on these trace-generation-dominated cells).
    """
    from repro.harness import tracecache

    if warm:
        GROUP_BY.sample_trace()  # prime both tiers
    else:
        tracecache.clear_memory_cache()
        tracecache.clear_disk_cache()
    before = tracecache.trace_cache_stats()["sample_runs"]
    trace = GROUP_BY.sample_trace()
    GROUP_BY.build_profile(FRONTERA, 8, 8 * 14 * GiB, fidelity=0.25)
    ran = tracecache.trace_cache_stats()["sample_runs"] - before
    # Enabled: cold runs the sample once (build_profile then hits the
    # memo), warm skips execution entirely. Disabled: both calls run.
    if tracecache.cache_enabled():
        assert ran == (0 if warm else 1), f"warm={warm} ran {ran} samples"
    return trace.total_records


def _trace_cell_fig12(warm: bool) -> int:
    """Fig-12 TeraSort sample-trace generation, cold vs warm.

    HiBench profiles are analytic, so the trace-generation cost lives in
    the sample program itself (the correctness-test path); the cell
    times exactly what the cache elides.
    """
    from repro.harness import tracecache

    spec = SPECS["TeraSort"]
    if warm:
        spec.sample_trace()  # prime both tiers
    else:
        tracecache.clear_memory_cache()
        tracecache.clear_disk_cache()
    before = tracecache.trace_cache_stats()["sample_runs"]
    trace = spec.sample_trace()
    spec.build_profile(FRONTERA, 16, fidelity=0.25)
    ran = tracecache.trace_cache_stats()["sample_runs"] - before
    if tracecache.cache_enabled():
        assert ran == (0 if warm else 1), f"warm={warm} ran {ran} samples"
    return trace.total_records


# Private disk store for the run-cache cold/warm pair: the pair must
# control its own cache temperature without clearing (or being served
# by) the user's shared ``results/.runcache`` store.  One directory per
# process, created lazily, removed at exit by the OS tmp reaper.
_PERF_RUNCACHE_DIR: str | None = None


def _perf_runcache_dir() -> str:
    global _PERF_RUNCACHE_DIR
    if _PERF_RUNCACHE_DIR is None:
        _PERF_RUNCACHE_DIR = tempfile.mkdtemp(prefix="repro-perf-runcache-")
    return _PERF_RUNCACHE_DIR


def _runcache_cell(warm: bool) -> int:
    """Full-run result cache, cold vs warm, on a fig9-sized GroupBy cell.

    Cold empties both tiers (memo + the suite's private disk store) so
    the cell re-simulates; warm relies on the cold twin having populated
    the store and must serve the result without running the simulation
    (asserted via the cell-run counter).  Timed against each other they
    are the perf suite's full-run-cache gate (>= 5x warm speedup; in
    practice a warm hit is one unpickle, orders of magnitude faster).
    """
    from repro.harness import runcache
    from repro.harness.parallel import run_ohb_cell

    spec = ("GroupByTest", 4, 4 * 14 * GiB, "mpi-basic", 0.25, "Frontera")
    directory = _perf_runcache_dir()
    old_dir = os.environ.get("REPRO_RUN_CACHE_DIR")
    os.environ["REPRO_RUN_CACHE_DIR"] = directory
    try:
        if warm:
            run_ohb_cell(spec)  # prime: a hit once the cold twin has run
        else:
            runcache.clear_memory_cache()
            shutil.rmtree(directory, ignore_errors=True)
        before = runcache.run_cache_stats()["cell_runs"]
        cell = run_ohb_cell(spec)
        ran = runcache.run_cache_stats()["cell_runs"] - before
        if runcache.cache_enabled():
            assert ran == (0 if warm else 1), f"warm={warm} ran {ran} cells"
    finally:
        if old_dir is None:
            os.environ.pop("REPRO_RUN_CACHE_DIR", None)
        else:
            os.environ["REPRO_RUN_CACHE_DIR"] = old_dir
    # A deterministic digest of the simulated outcome: identical across
    # repeats (and across cache temperatures — the byte-identity tests
    # in tests/harness/test_runcache.py assert the full row equality).
    return int(cell.result.total_seconds * 1e6)


def trace_cache_sweep() -> dict:
    """Multi-transport sweep proving sample execution count = 1 per
    unique (workload, sample-params).

    Builds profiles for 2 OHB workloads x 3 worker counts x 3 transports
    (18 cells; transports don't enter build_profile, mirroring how the
    figure sweeps share one trace per workload) from a fully cold cache
    and reports the observed sample runs against the unique-trace count.
    """
    from repro.harness import tracecache
    from repro.workloads.ohb import SORT_BY

    tracecache.clear_memory_cache()
    tracecache.clear_disk_cache()
    before = tracecache.trace_cache_stats()
    workloads = (GROUP_BY, SORT_BY)
    worker_counts = (2, 4, 8)
    transports = ("nio", "rdma", "mpi-opt")
    cells = 0
    for workload in workloads:
        for n_workers in worker_counts:
            for _transport in transports:
                workload.build_profile(
                    FRONTERA, n_workers, n_workers * 14 * GiB, fidelity=0.25
                )
                cells += 1
    after = tracecache.trace_cache_stats()
    delta = {k: after[k] - before[k] for k in after}
    return {
        "sweep_cells": cells,
        "unique_samples": len(workloads),
        "sample_runs": delta["sample_runs"],
        "stats_delta": delta,
        "enabled": tracecache.cache_enabled(),
    }


@dataclass(frozen=True)
class CellSpec:
    """One pinned cell's runner plus its explicit noise policy.

    ``noise_exempt`` excludes the cell from the events/sec regression
    gate — with the *reason recorded here*, not inferred from a name
    pattern: an exempted cell must name the gate that really covers it.
    ``min_repeats``/``max_repeats`` bound the min-of-N estimator per
    cell (heavy cells cap at 1 to keep the suite's wall time sane; the
    30% regression threshold absorbs 1-repeat noise).
    """

    fn: Callable[[], int]
    noise_exempt: bool = False
    exempt_reason: str = ""
    min_repeats: int = 1
    max_repeats: int | None = None


# The cache-temperature pair's exemption: the warm twin's wall is tens of
# microseconds (its events/sec is scheduler noise) and the cold twin's
# includes cache-clearing disk I/O. Their real gate is the run_cache
# block's warm_speedup ratio, asserted in benchmarks/test_perf_suite.py.
_RUNCACHE_EXEMPT = "gated by run_cache.warm_speedup, not events/sec"

CELL_SPECS: dict[str, CellSpec] = {
    "fig8_pingpong_nio": CellSpec(lambda: _pingpong_cell("nio")),
    "fig8_pingpong_mpi": CellSpec(lambda: _pingpong_cell("mpi-basic")),
    "fig9_groupby_2w_nio": CellSpec(lambda: _ohb_cell(2, 28 * GiB, "nio")),
    "fig9_groupby_2w_mpi-basic": CellSpec(
        lambda: _ohb_cell(2, 28 * GiB, "mpi-basic")
    ),
    # Same cell with causal flight recording on: the pair measures the
    # tracing overhead, and the payload's obs_causal_overhead reports it.
    "fig9_groupby_2w_mpi-basic_causal": CellSpec(
        lambda: _ohb_cell(2, 28 * GiB, "mpi-basic", obs_causal=True)
    ),
    "fig9_groupby_2w_mpi-opt": CellSpec(lambda: _ohb_cell(2, 28 * GiB, "mpi-opt")),
    # The collective-shuffle pair's new side (old side = the mpi-opt cell
    # above); also the kernel-cost pin for the alltoallv exchange path.
    "fig9_groupby_2w_mpi-coll": CellSpec(lambda: _ohb_cell(2, 28 * GiB, "mpi-coll")),
    "fig10_groupby_8w_mpi-basic": CellSpec(
        lambda: _ohb_cell(8, 8 * 14 * GiB, "mpi-basic")
    ),
    # Scale proof for the vectorized fluid re-rating: the same GroupBy
    # shape at 32 workers (full fig-10 data scaling) and a 64-worker
    # smoke cell (reduced data + fidelity — at this scale the event count
    # is poll/channel-dominated, so the cell still exercises ~1.8M kernel
    # events).  Both cap at one repeat to keep the suite's wall time
    # sane; the 30% regression gate absorbs 1-repeat noise.
    "fig10_groupby_32w_mpi-basic": CellSpec(
        lambda: _ohb_cell(32, 32 * 14 * GiB, "mpi-basic"), max_repeats=1
    ),
    "scale_groupby_64w_mpi-basic": CellSpec(
        lambda: _ohb_cell(64, 64 * 2 * GiB, "mpi-basic", fidelity=0.1),
        max_repeats=1,
    ),
    "fig12_terasort_frontera_mpi-opt": CellSpec(
        lambda: _hibench_cell("TeraSort", "mpi-opt")
    ),
    # The collective plan at fig-10 scale: 8 workers keep the cell's
    # event count high enough for a stable events/sec pin.
    "fig10_groupby_8w_mpi-coll": CellSpec(
        lambda: _ohb_cell(8, 8 * 14 * GiB, "mpi-coll")
    ),
    # Trace-cache cold/warm pairs: same fig-10 / fig-12 cells' profile
    # construction, differing only in cache temperature. Warm must skip
    # sample execution (asserted inside) and be >= 2x faster than cold.
    "fig10_trace_groupby_8w_cold": CellSpec(lambda: _trace_cell_fig10(warm=False)),
    "fig10_trace_groupby_8w_warm": CellSpec(lambda: _trace_cell_fig10(warm=True)),
    "fig12_trace_terasort_cold": CellSpec(lambda: _trace_cell_fig12(warm=False)),
    "fig12_trace_terasort_warm": CellSpec(lambda: _trace_cell_fig12(warm=True)),
    # Full-run result cache cold/warm pair: cold simulates the cell,
    # warm must serve it from the store without simulating (>= 5x gate).
    "runcache_groupby_4w_cold": CellSpec(
        lambda: _runcache_cell(warm=False),
        noise_exempt=True, exempt_reason=_RUNCACHE_EXEMPT,
    ),
    "runcache_groupby_4w_warm": CellSpec(
        lambda: _runcache_cell(warm=True),
        noise_exempt=True, exempt_reason=_RUNCACHE_EXEMPT,
    ),
}

# Back-compat views of the spec table (pre-CellSpec import surface).
PINNED_CELLS: dict[str, Callable[[], int]] = {
    name: spec.fn for name, spec in CELL_SPECS.items()
}
CELL_REPEATS: dict[str, int] = {
    name: spec.max_repeats
    for name, spec in CELL_SPECS.items()
    if spec.max_repeats is not None
}


def noise_exempt_cells() -> list[str]:
    """Cells excluded from the events/sec gate, in pinned order."""
    return [name for name, spec in CELL_SPECS.items() if spec.noise_exempt]


# (cold, warm) pinned-cell pairs gated at warm >= 2x cold.
TRACE_CACHE_PAIRS: list[tuple[str, str]] = [
    ("fig10_trace_groupby_8w_cold", "fig10_trace_groupby_8w_warm"),
    ("fig12_trace_terasort_cold", "fig12_trace_terasort_warm"),
]

# (cold, warm) full-run cache pair gated at warm >= 5x cold.
RUN_CACHE_PAIRS: list[tuple[str, str]] = [
    ("runcache_groupby_4w_cold", "runcache_groupby_4w_warm"),
]


def run_cell(name: str, repeats: int = 3) -> PerfCell:
    """Time one pinned cell, keeping the fastest of ``repeats`` runs.

    Min-of-N is the same estimator the committed baseline used; anything
    else conflates kernel speed with scheduler noise on busy machines.
    The event count is identical across repeats (the cells are
    deterministic), which run 2+ assert as a free sanity check.
    """
    spec = CELL_SPECS[name]
    fn = spec.fn
    repeats = max(spec.min_repeats, min(repeats, spec.max_repeats or repeats))
    wall = float("inf")
    events = None
    for _ in range(max(1, repeats)):
        gc.collect()  # keep earlier cells' garbage out of this timing
        t0 = time.perf_counter()
        n = fn()
        wall = min(wall, time.perf_counter() - t0)
        assert events is None or events == n, f"{name}: nondeterministic events"
        events = n
    return PerfCell(
        name=name,
        wall_seconds=wall,
        events_processed=events,
        events_per_sec=events / wall if wall > 0 else 0.0,
    )


def run_perf_suite(
    cells: list[str] | None = None, repeats: int | None = None
) -> dict:
    """Run the pinned cells serially; return the BENCH_perf payload."""
    if repeats is None:
        repeats = int(os.environ.get("REPRO_PERF_REPEATS", "3") or "3")
    names = list(PINNED_CELLS) if cells is None else cells
    rows = [run_cell(name, repeats) for name in names]
    speedups = {
        r.name: PRE_PR_BASELINE[r.name] / r.wall_seconds
        for r in rows
        if PRE_PR_BASELINE.get(r.name) and r.wall_seconds > 0
    }
    # Causal-tracing overhead: wall ratio of the paired obs-on/obs-off
    # cell (>1 means tracing costs wall time; the figure rows themselves
    # are unaffected — tracing schedules nothing).
    by_name = {r.name: r for r in rows}
    obs_overhead = None
    off = by_name.get("fig9_groupby_2w_mpi-basic")
    on = by_name.get("fig9_groupby_2w_mpi-basic_causal")
    if off is not None and on is not None and off.wall_seconds > 0:
        obs_overhead = {
            "pair": [off.name, on.name],
            "wall_ratio": on.wall_seconds / off.wall_seconds,
            "events_identical": on.events_processed == off.events_processed,
        }
    # Trace-cache block: the cold/warm pinned pairs' wall ratios plus the
    # multi-transport sweep proving one sample execution per unique
    # (workload, sample-params).
    pair_speedups = {}
    for cold_name, warm_name in TRACE_CACHE_PAIRS:
        cold, warm = by_name.get(cold_name), by_name.get(warm_name)
        if cold is not None and warm is not None and warm.wall_seconds > 0:
            pair_speedups[cold_name] = cold.wall_seconds / warm.wall_seconds
    trace_cache_block = {
        "pairs": [list(p) for p in TRACE_CACHE_PAIRS],
        "warm_speedup": pair_speedups,
        "sweep": trace_cache_sweep(),
    }
    # Full-run cache block: warm/cold wall ratio of the runcache pair
    # plus the process-lifetime cache counters.
    from repro.harness.runcache import cache_enabled, run_cache_stats

    run_pair_speedups = {}
    for cold_name, warm_name in RUN_CACHE_PAIRS:
        cold, warm = by_name.get(cold_name), by_name.get(warm_name)
        if cold is not None and warm is not None and warm.wall_seconds > 0:
            run_pair_speedups[cold_name] = cold.wall_seconds / warm.wall_seconds
    run_cache_block = {
        "pairs": [list(p) for p in RUN_CACHE_PAIRS],
        "warm_speedup": run_pair_speedups,
        "enabled": cache_enabled(),
        "stats": run_cache_stats(),
    }
    vec_speedups = {
        r.name: PRE_VEC_BASELINE[r.name] / r.wall_seconds
        for r in rows
        if PRE_VEC_BASELINE.get(r.name) and r.wall_seconds > 0
    }
    # Collective-shuffle pair: both plans run in this tree, so the
    # old/new wall ratio is re-measured live each suite run and reported
    # next to the committed alternating-process reference.
    coll_wall_ratio = {}
    for old_name, new_name in COLL_PAIRS:
        old, new = by_name.get(old_name), by_name.get(new_name)
        if old is not None and new is not None and new.wall_seconds > 0:
            coll_wall_ratio[new_name] = old.wall_seconds / new.wall_seconds
    return {
        "schema": SCHEMA,
        "host": {
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "cells": [asdict(r) for r in rows],
        "trace_cache": trace_cache_block,
        "run_cache": run_cache_block,
        "obs_causal_overhead": obs_overhead,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "baseline": {
            "description": (
                "pre-PR tree, min of 3 runs alternating old/new processes "
                "on the machine that produced this file; paired_speedup is "
                "the ratio from that alternating measurement (noise-immune), "
                "speedup_vs_baseline divides this run's walls by the frozen "
                "pre-PR walls"
            ),
            "wall_seconds": dict(PRE_PR_BASELINE),
            "speedup_vs_baseline": speedups,
            "paired_speedup": dict(PRE_PR_PAIRED_SPEEDUP),
            "best_speedup": max(
                (*speedups.values(), *PRE_PR_PAIRED_SPEEDUP.values()),
                default=None,
            ),
        },
        "coll_baseline": {
            "description": (
                "per-block ChunkFetch (mpi-opt) vs one alltoallv per "
                "stage boundary (mpi-coll) on the same fig9 GroupBy "
                "cell; wall_ratio is old/new host wall measured live "
                "this run, paired_wall_ratio the committed min-of-3 "
                "alternating-process reference; simulated-time wins are "
                "gated in benchmarks/test_fig9_opt_vs_coll.py"
            ),
            "pairs": [list(p) for p in COLL_PAIRS],
            "wall_ratio": coll_wall_ratio,
            "paired_wall_ratio": dict(PRE_COLL_PAIRED_WALL_RATIO),
        },
        "fluid_baseline": {
            "description": (
                "pre-vectorization tree (before the fluid re-rate / park-"
                "waiter / wire-memo pass), min of 3 alternating runs per "
                "side on the machine that produced this file; "
                "paired_speedup is old/new wall, paired_eps_ratio is "
                "new/old events-per-sec (event totals differ across trees)"
            ),
            "wall_seconds": dict(PRE_VEC_BASELINE),
            "speedup_vs_baseline": vec_speedups,
            "paired_speedup": dict(PRE_VEC_PAIRED_SPEEDUP),
            "paired_eps_ratio": dict(PRE_VEC_PAIRED_EPS_RATIO),
        },
    }


def regressions(
    current: dict, committed: dict, threshold: float = 0.30
) -> list[str]:
    """Cells whose events/sec dropped more than ``threshold`` vs a
    committed payload.  Missing cells are skipped (renames don't fail CI).
    """
    committed_eps = {
        c["name"]: c["events_per_sec"] for c in committed.get("cells", [])
    }
    out = []
    for cell in current.get("cells", []):
        spec = CELL_SPECS.get(cell["name"])
        if spec is not None and spec.noise_exempt:
            # Exempted in the pinned-cell spec, each with the gate that
            # really covers it named in spec.exempt_reason.
            continue
        base = committed_eps.get(cell["name"])
        if not base:
            continue
        drop = 1.0 - cell["events_per_sec"] / base
        if drop > threshold:
            out.append(
                f"{cell['name']}: events/sec {cell['events_per_sec']:.0f} "
                f"vs committed {base:.0f} ({drop:.0%} drop)"
            )
    return out


# -- blame reports: diff a failing cell against a committed baseline ---------
#
# When the regression gate (or a golden-row identity check) fails, CI
# should explain *why*, not just that. For each transport a small causal
# proxy cell — the obs_report.py GroupBy shape, cheap enough to re-record
# inside a failing CI job — has a committed baseline recording under
# baselines/; blame_report() re-records it on the current tree, diffs the
# two flight logs with repro.obs.diff and writes the HTML blame page.
#
# Caveat, stated where it matters: a *host-side* slowdown (slower
# machine, interpreter regression) does not move simulated time, so its
# diff is the zero identity — the report then says exactly that, which is
# itself the answer ("no simulated drift; the regression is host-side").
# A behavior change (code edit, knob, injected slowdown) shows up as
# named segment deltas.

# Where the committed baseline recordings live. Deliberately *not* under
# results/ — results/ holds regenerated outputs, baselines/ holds
# committed references (see the canonical-results policy in .gitignore).
BLAME_BASELINE_DIR = Path("baselines")

# The blame proxy cell per transport: the examples/obs_report.py GroupBy
# shape (2 workers, 4 GiB, fidelity 0.1) as a parallel-harness spec with
# causal recording on. Simulated time is seeded and deterministic, so the
# recording is byte-identical across machines — what makes a *committed*
# baseline meaningful.
BLAME_TRANSPORTS = ("nio", "mpi-basic", "mpi-opt")


def blame_spec(transport: str) -> tuple:
    """Primitive 7-tuple spec of the blame proxy cell for ``transport``."""
    return ("GroupByTest", 2, 4 * GiB, transport, 0.1, "Frontera", True)


def baseline_path(transport: str, directory: Path | None = None) -> Path:
    """Committed baseline recording path for one transport's proxy cell."""
    directory = BLAME_BASELINE_DIR if directory is None else Path(directory)
    return directory / f"blame_groupby_2w_{transport}.jsonl.gz"


def parse_blame_inject(value: str | None = None) -> tuple[str, float] | None:
    """Parse ``REPRO_BLAME_INJECT`` = ``segment[:factor]`` (default 2.0).

    The CI-verifiable fault injection: slow one modeled cost down by
    ``factor`` so the blame report must name that segment. Supported
    segments are ``serialize`` (ramdisk shuffle-write bandwidth) and
    ``poll-tax`` (Basic's poll period and per-poll costs).
    """
    if value is None:
        value = os.environ.get("REPRO_BLAME_INJECT", "")
    if not value:
        return None
    segment, _, factor = value.partition(":")
    segment = segment.strip()
    if segment not in ("serialize", "poll-tax"):
        raise ValueError(
            f"REPRO_BLAME_INJECT={value!r}: segment must be 'serialize' "
            "or 'poll-tax'"
        )
    return segment, float(factor) if factor else 2.0


def record_cell_flight(transport: str, inject: tuple[str, float] | None = None):
    """Record the proxy cell's flight log on the live tree.

    ``inject`` applies the slowdown knob while simulating (constants are
    restored in ``finally``); the patched constants enter the run-cache
    key via ``runcache.live_constants``, so injected and clean runs can
    never serve each other's cached results. Returns the RunResult.
    """
    import repro.spark.deploy as deploy
    from repro.harness.parallel import run_ohb_cell
    from repro.transports.mpi_basic import MpiBasicTransport

    saved = (deploy.RAMDISK_WRITE_BPS, MpiBasicTransport.compute_inflation)
    try:
        if inject is not None:
            segment, factor = inject
            if segment == "serialize":
                deploy.RAMDISK_WRITE_BPS = saved[0] / factor
            else:
                # poll-tax: scale Basic's busy-poll interference tax
                # (the compute-inflation excess over 1.0). The diff
                # engine re-splits inflated compute into pure compute +
                # poll-tax from each side's recorded inflation, so this
                # lands squarely in the poll-tax bucket.
                MpiBasicTransport.compute_inflation = 1.0 + (saved[1] - 1.0) * factor
        cell = run_ohb_cell(blame_spec(transport))
    finally:
        deploy.RAMDISK_WRITE_BPS, MpiBasicTransport.compute_inflation = saved
    return cell.result


def record_blame_baselines(
    directory: Path | None = None, jobs: int | None = None
) -> list[Path]:
    """(Re)record the committed baseline recordings, one per transport.

    Run via ``examples/run_diff.py --record-baselines`` after a change
    that intentionally moves simulated time; the diff-smoke CI job fails
    if a stale baseline no longer self-diffs to zero.
    """
    from repro.harness.parallel import run_flight_cells

    directory = BLAME_BASELINE_DIR if directory is None else Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    flights = run_flight_cells(
        [blame_spec(t) for t in BLAME_TRANSPORTS], jobs=jobs
    )
    paths = []
    for transport, flight in zip(BLAME_TRANSPORTS, flights):
        paths.append(Path(flight.write(str(baseline_path(transport, directory)))))
    return paths


def blame_report(
    transport: str,
    out_dir: Path | str = "results",
    baseline_dir: Path | None = None,
    inject: tuple[str, float] | None = None,
):
    """Diff the live tree's proxy cell against its committed baseline.

    Returns ``(DiffReport, html_path)``; the page is the CI artifact a
    failing perf gate uploads. ``inject`` defaults to the
    ``REPRO_BLAME_INJECT`` environment knob.
    """
    from repro.obs.diff import diff_runs
    from repro.obs.flightrec import FlightRecorder
    from repro.obs.report_html import write_diff_report

    if inject is None:
        inject = parse_blame_inject()
    path = baseline_path(transport, baseline_dir)
    baseline = FlightRecorder.load_jsonl(str(path))
    current = record_cell_flight(transport, inject=inject)
    diff = diff_runs(
        baseline,
        current,
        a_label="baseline",
        b_label="current",
        transport_a=transport,
    )
    diff.check()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    html = write_diff_report(
        str(out_dir / f"blame_groupby_2w_{transport}.html"),
        diff,
        baseline,
        current.flight,
        title=f"blame report: GroupByTest proxy cell [{transport}]",
    )
    return diff, html


def blame_failing_cells(
    failures: list[str], out_dir: Path | str = "results"
) -> list[str]:
    """Emit blame reports for the transports behind failing perf cells.

    ``failures`` are :func:`regressions` strings; each is mapped to its
    transport's proxy cell (cell names end ``_<transport>`` modulo
    suffixes). Baseline-less transports are skipped — this is CI-side
    best-effort explanation, never a new failure mode.
    """
    transports = []
    for failure in failures:
        name = failure.split(":", 1)[0]
        for transport in BLAME_TRANSPORTS:
            if transport in name and transport not in transports:
                transports.append(transport)
    reports = []
    for transport in transports:
        if not baseline_path(transport).exists():
            continue
        try:
            _diff, html = blame_report(transport, out_dir=out_dir)
        except Exception as exc:  # noqa: BLE001 - explanation must not mask the gate
            reports.append(f"{transport}: blame report failed ({exc})")
        else:
            reports.append(html)
    return reports
