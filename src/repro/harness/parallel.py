"""Parallel experiment harness: fan independent cells over processes.

Every experiment cell (one ``(system, workload, transport, scale)``
combination) owns its own :class:`~repro.simnet.engine.SimEngine` and
seed, so a cell's rows are a pure function of its spec — identical
whether it runs in this process, a worker process, or any worker count.
That makes parallelism free of determinism risk: the only requirements
are (1) cell specs built from primitives so they pickle under both fork
and spawn start methods, and (2) an order-preserving merge, which
``ProcessPoolExecutor.map`` gives us directly (results come back in
submission order regardless of completion order).

``--jobs N`` on the benchmark suite and the ``REPRO_JOBS`` environment
variable both route through :func:`resolve_jobs`; ``jobs=1`` bypasses
multiprocessing entirely (no pool, no pickling) so the serial path stays
exactly what it was.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Sequence

# Cell specs are plain tuples of primitives; workers re-resolve registry
# objects (workloads, systems) by name so specs pickle under any start
# method and never drag a half-built simulation across the fork.


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalize a worker count: explicit arg > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    return max(1, int(jobs))


def parallel_map(
    fn: Callable[[Any], Any], items: Sequence[Any], jobs: int | None = None
) -> list[Any]:
    """``[fn(x) for x in items]``, fanned over ``jobs`` processes.

    Results are returned in input order (order-preserving merge). With
    ``jobs <= 1`` or fewer than two items this runs inline — the serial
    path involves no pool, no pickling and no subprocess.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs <= 1 or len(items) < 2:
        return [fn(x) for x in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=1))


# -- module-level workers (must be importable by worker processes) ----------

def run_ohb_cell(spec: tuple) -> Any:
    """Worker: one OHB cell from a primitive spec.

    ``spec`` is ``(workload_name, n_workers, data_bytes, transport,
    fidelity, system_name[, obs_causal])`` — the argument order of
    ``experiments._run_ohb`` with the system passed by name.  The
    optional seventh element turns on causal flight recording
    (``spark.repro.obs.causal``); six-element specs stay valid.
    """
    workload_name, n_workers, data_bytes, transport, fidelity, system_name = spec[:6]
    obs_causal = bool(spec[6]) if len(spec) > 6 else False
    from repro.harness.runcache import get_or_run

    def _run():
        from repro.harness.experiments import _run_ohb
        from repro.harness.systems import SYSTEMS
        from repro.workloads.ohb import GROUP_BY, SORT_BY

        workloads = {w.name: w for w in (GROUP_BY, SORT_BY)}
        return _run_ohb(
            workloads[workload_name],
            n_workers,
            data_bytes,
            transport,
            fidelity,
            system=SYSTEMS[system_name],
            obs_causal=obs_causal,
        )

    canon = (
        workload_name, n_workers, data_bytes, transport, fidelity,
        system_name, obs_causal,
    )
    return get_or_run("ohb", canon, _run)


def run_hibench_cell(spec: tuple) -> Any:
    """Worker: one HiBench cell from a primitive spec.

    ``spec`` is ``(workload_name, system_name, n_workers, transport,
    cores_per_executor, fidelity)``; ``cores_per_executor`` may be None.
    """
    workload_name, system_name, n_workers, transport, cores, fidelity = spec
    from repro.harness.runcache import get_or_run

    def _run():
        from repro.harness.experiments import HiBenchCell
        from repro.harness.systems import SYSTEMS
        from repro.spark.deploy import SparkSimCluster
        from repro.workloads.hibench import SPECS

        system = SYSTEMS[system_name]
        sim = SparkSimCluster(system, n_workers, transport, cores_per_executor=cores)
        sim.launch()
        prof = SPECS[workload_name].build_profile(
            system, n_workers, cores_per_executor=cores, fidelity=fidelity
        )
        res = sim.run_profile(prof)
        sim.shutdown()
        return HiBenchCell(workload_name, system.name, transport, res.total_seconds)

    canon = (workload_name, system_name, n_workers, transport, cores, fidelity)
    return get_or_run("hibench", canon, _run)


def run_jobserver_cell(spec: tuple) -> Any:
    """Worker: one job-server contention cell from a primitive spec.

    ``spec`` is ``(transport, scheduler_name, system_name, n_workers,
    cores_per_executor, cluster_seed, trace_spec)`` with ``trace_spec`` =
    ``(seed, n_jobs, mean_interarrival_s, min_bytes, max_bytes,
    parallelism_choices, fidelity)`` — primitives only, so cells pickle
    under any start method. Returns a
    :class:`~repro.jobserver.server.JobServerResult`.
    """
    transport, sched_name, system_name, n_workers, cores, cluster_seed, ts = spec
    seed, n_jobs, mean_ia, min_bytes, max_bytes, par_choices, fidelity = ts
    from repro.harness.runcache import get_or_run

    def _run():
        from repro.harness.systems import SYSTEMS
        from repro.jobserver import SCHEDULERS, poisson_trace, run_trace
        from repro.spark.deploy import SparkSimCluster

        trace = poisson_trace(
            seed=seed,
            n_jobs=n_jobs,
            mean_interarrival_s=mean_ia,
            min_bytes=min_bytes,
            max_bytes=max_bytes,
            parallelism_choices=tuple(par_choices),
            fidelity=fidelity,
        )
        sim = SparkSimCluster(
            SYSTEMS[system_name],
            n_workers,
            transport,
            cores_per_executor=cores,
            seed=cluster_seed,
        )
        return run_trace(sim, SCHEDULERS.create(sched_name), trace)

    canon = (
        transport, sched_name, system_name, n_workers, cores, cluster_seed,
        (seed, n_jobs, mean_ia, min_bytes, max_bytes, tuple(par_choices), fidelity),
    )
    return get_or_run("jobserver", canon, _run)


def run_flight_cell(spec: tuple) -> Any:
    """Worker: one causal OHB cell, returning its flight recording.

    ``spec`` is the 7-tuple :func:`run_ohb_cell` spec with ``obs_causal``
    forced on; the return value is the run's
    :class:`~repro.obs.flightrec.FlightRecorder` (picklable), which is
    what baseline recording and blame reports need.
    """
    spec = tuple(spec[:6]) + (True,)
    cell = run_ohb_cell(spec)
    return cell.result.flight


def run_ohb_cells(specs: Iterable[tuple], jobs: int | None = None) -> list[Any]:
    """Run OHB cell specs, preserving spec order in the result list."""
    return parallel_map(run_ohb_cell, list(specs), jobs)


def run_flight_cells(specs: Iterable[tuple], jobs: int | None = None) -> list[Any]:
    """Run causal cell specs, returning flight recordings in spec order."""
    return parallel_map(run_flight_cell, list(specs), jobs)


def run_hibench_cells(specs: Iterable[tuple], jobs: int | None = None) -> list[Any]:
    """Run HiBench cell specs, preserving spec order in the result list."""
    return parallel_map(run_hibench_cell, list(specs), jobs)


def run_jobserver_cells(specs: Iterable[tuple], jobs: int | None = None) -> list[Any]:
    """Run job-server cell specs, preserving spec order in the result list."""
    return parallel_map(run_jobserver_cell, list(specs), jobs)
