"""Ablation studies over the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the MPI4Spark design and measures
its contribution on a fixed GroupByTest scenario:

* ``ablate_io_threads``     — Netty event-loop pool size (the Optimized
  design blocks a loop thread per in-flight body; §5.1(3) of DESIGN.md),
* ``ablate_rendezvous_threshold`` — MPI's eager→rendezvous switch point,
* ``ablate_in_flight_window``     — Spark's ``maxBytesInFlight`` fetch window,
* ``ablate_poll_period``          — the Basic design's busy-poll granularity.

These run on a small fixed geometry (2 workers) so they complete quickly;
the *relative* effects are the point.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.core.mpi_netty as mpi_netty
import repro.spark.deploy as deploy
from repro.harness.systems import FRONTERA
from repro.spark.deploy import SparkSimCluster
from repro.util.units import GiB, KiB, MiB
from repro.workloads.ohb import GROUP_BY


@dataclass
class AblationPoint:
    parameter: str
    value: object
    shuffle_read_s: float
    total_s: float


def _run(transport: str, n_workers: int = 2, data=14 * GiB, io_threads: int = 8,
         fidelity: float = 0.25) -> tuple[float, float]:
    sim = SparkSimCluster(FRONTERA, n_workers, transport, io_threads=io_threads)
    sim.launch()
    profile = GROUP_BY.build_profile(FRONTERA, n_workers, data, fidelity=fidelity)
    result = sim.run_profile(profile)
    sim.shutdown()
    return result.shuffle_read_seconds(), result.total_seconds


def ablate_io_threads(values=(1, 2, 4, 8)) -> list[AblationPoint]:
    """How many Netty IO threads does the Optimized design need?

    With one loop, every blocking MPI_Recv serializes all sources —
    head-of-line blocking the paper's real deployment avoids via Spark's
    multi-threaded transport pools.
    """
    points = []
    for n in values:
        # Needs several remote sources per executor for head-of-line
        # blocking to exist: use 6 workers (5 source channels each).
        read, total = _run("mpi-opt", n_workers=6, data=6 * 14 * GiB, io_threads=n)
        points.append(AblationPoint("io_threads", n, read, total))
    return points


def ablate_rendezvous_threshold(values=(4 * KiB, 16 * KiB, 256 * KiB, 4 * MiB)) -> list[AblationPoint]:
    """Eager/rendezvous switch: eager copies buffer large payloads; late
    rendezvous handshakes delay large transfers behind recv posting."""
    from repro.simnet import interconnect

    original = interconnect.mpi_over
    points = []
    try:
        for threshold in values:
            def patched(fabric, _t=threshold):
                return original(fabric).scaled(rendezvous_threshold=_t)

            interconnect.mpi_over = patched
            # transports/mpi_opt imported the symbol; patch there too.
            import repro.transports.mpi_opt as mo

            saved = mo.mpi_over
            mo.mpi_over = patched
            try:
                read, total = _run("mpi-opt")
            finally:
                mo.mpi_over = saved
            points.append(AblationPoint("rendezvous_threshold", threshold, read, total))
    finally:
        interconnect.mpi_over = original
    return points


def ablate_in_flight_window(values=(4 * MiB, 16 * MiB, 48 * MiB, 192 * MiB)) -> list[AblationPoint]:
    """Spark's maxBytesInFlight: too small starves the NIC, too large
    mostly saturates (diminishing returns)."""
    original = deploy.MAX_BYTES_IN_FLIGHT
    points = []
    try:
        for window in values:
            deploy.MAX_BYTES_IN_FLIGHT = window
            read, total = _run("nio")
            points.append(AblationPoint("max_bytes_in_flight", window, read, total))
    finally:
        deploy.MAX_BYTES_IN_FLIGHT = original
    return points


def ablate_poll_period(values=(1e-6, 5e-6, 50e-6, 500e-6)) -> list[AblationPoint]:
    """The Basic design's poll period: coarser polling adds discovery
    latency to every MPI message (the cost the paper abandoned it over)."""
    original = mpi_netty.BASIC_POLL_PERIOD_S
    points = []
    try:
        for period in values:
            mpi_netty.BASIC_POLL_PERIOD_S = period
            read, total = _run("mpi-basic")
            points.append(AblationPoint("poll_period_s", period, read, total))
    finally:
        mpi_netty.BASIC_POLL_PERIOD_S = original
    return points
