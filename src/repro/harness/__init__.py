"""Experiment harness: system configs (Table III), workload profiles,
per-figure experiment drivers and report rendering."""

from repro.harness.pingpong import PingPongResult, run_pingpong
from repro.harness.profile import (
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
    WorkloadProfile,
    scaled_read_matrices,
    spread_cpu,
)
from repro.harness.systems import (
    FRONTERA,
    INTERNAL_CLUSTER,
    STAMPEDE2,
    SYSTEMS,
    SystemConfig,
)

__all__ = [
    "SystemConfig",
    "FRONTERA",
    "STAMPEDE2",
    "INTERNAL_CLUSTER",
    "SYSTEMS",
    "WorkloadProfile",
    "ComputeStage",
    "ShuffleWriteStage",
    "ShuffleReadStage",
    "scaled_read_matrices",
    "spread_cpu",
    "run_pingpong",
    "PingPongResult",
]
