"""Two-tier full-run result cache: simulate a cell once, replay many.

The sample-trace cache (:mod:`repro.harness.tracecache`) stopped the
harness re-executing identical laptop-scale sample runs; the *simulation*
of each figure cell still re-ran from scratch on every benchmark
invocation even when nothing relevant had changed. Every cell result is a
pure function of its primitive spec — that is the parallel harness's
founding invariant — so a cell's :class:`RunResult` can be cached exactly
like a trace:

* an **in-process memo** (dict) — free hits within one process;
* a **content-addressed disk store** under ``results/.runcache/`` —
  shared across the ``ProcessPoolExecutor`` workers of
  :mod:`repro.harness.parallel` and across repeated CI runs.

The key is a sha256 over a canonical textual repr of (schema, cell kind,
the full primitive spec tuple, the live values of every module constant
the what-if harness patches, a code-version fingerprint of ``src/repro``,
and the Python minor version). The code fingerprint — a sha256 over the
sorted (path, content-hash) pairs of every ``repro`` source file — means
*any* source edit invalidates every entry cleanly: stale entries are
never read because the address they were stored under no longer matches
anything the code asks for. The live patchable constants guard the other
direction: a what-if truth re-simulation that monkeypatches poll costs or
ramdisk rates inside an unchanged source tree must not poison (or read)
the unpatched entries.

Both tiers store the *pickled* result blob and every hit unpickles it
afresh, so a cached cell is byte-identical to a recomputed one and no two
callers ever alias the same mutable result object.

Corrupted or stale entries (truncated pickle, garbage bytes, an entry
whose recorded key disagrees with its filename) are treated as misses:
the cell re-simulates and the entry is rewritten. Disk writes are atomic
(tmp file + ``os.replace``) so concurrent workers never observe a
half-written entry.

Set ``REPRO_RUN_CACHE=0`` to disable both tiers (every call re-simulates
the cell); ``REPRO_RUN_CACHE_DIR`` overrides the store location.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Any, Callable

RUN_SCHEMA = "run-result/1"

# In-process memo: key -> pickled result blob (never the live object).
_MEMO: dict[str, bytes] = {}

# Process-lifetime stats. Callers that attribute traffic to one run (the
# obs snapshot hook in ``spark.deploy``) snapshot a baseline and publish
# deltas, mirroring the trace-cache pattern.
_STATS = {
    "hits_mem": 0,
    "hits_disk": 0,
    "misses": 0,
    "cell_runs": 0,
    "bytes_read": 0,
    "bytes_written": 0,
    "errors": 0,
}

# Cached code fingerprint; recomputed per process (and droppable by tests
# via _reset_fingerprint_cache when they fake a source tree).
_FINGERPRINT: str | None = None


def run_cache_stats() -> dict[str, int]:
    """Process-lifetime cache stats (copy; safe to mutate)."""
    return dict(_STATS)


def cache_enabled() -> bool:
    """Both tiers are on unless ``REPRO_RUN_CACHE=0``."""
    return os.environ.get("REPRO_RUN_CACHE", "1") != "0"


def cache_dir() -> Path:
    """On-disk store location (``REPRO_RUN_CACHE_DIR`` overrides)."""
    override = os.environ.get("REPRO_RUN_CACHE_DIR")
    if override:
        return Path(override)
    return Path("results") / ".runcache"


def _source_root() -> Path:
    """The ``repro`` package directory whose sources key the cache."""
    return Path(__file__).resolve().parent.parent


def code_fingerprint() -> str:
    """sha256 over the sorted (relpath, content-sha) of ``src/repro``.

    Computed once per process: any edit to any repro source file changes
    the fingerprint and therefore every cache address. This is what lets
    the cache default to *on* — a stale entry is unreachable by
    construction rather than detected after the fact.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = _source_root()
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            h.update(rel.encode("utf-8"))
            h.update(b"\x00")
            h.update(hashlib.sha256(path.read_bytes()).digest())
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


def _reset_fingerprint_cache() -> None:
    """Testing hook: force the fingerprint to recompute."""
    global _FINGERPRINT
    _FINGERPRINT = None


def live_constants() -> tuple:
    """Current values of every module constant the what-if harness patches.

    The code fingerprint covers the constants' *source* values; these are
    their *runtime* values. A truth re-simulation that monkeypatches poll
    costs or ramdisk bandwidth gets distinct cache addresses, so patched
    and unpatched runs can never serve each other's entries.
    """
    from repro.core import mpi_netty
    from repro.spark import deploy
    from repro.transports.mpi_basic import MpiBasicTransport

    return (
        ("mpi_netty.SELECT_NOW_COST_S", mpi_netty.SELECT_NOW_COST_S),
        ("mpi_netty.IPROBE_COST_S", mpi_netty.IPROBE_COST_S),
        ("mpi_netty.BASIC_POLL_PERIOD_S", mpi_netty.BASIC_POLL_PERIOD_S),
        ("deploy.RAMDISK_WRITE_BPS", deploy.RAMDISK_WRITE_BPS),
        ("deploy.RAMDISK_READ_BPS", deploy.RAMDISK_READ_BPS),
        (
            "mpi_basic.MpiBasicTransport.compute_inflation",
            MpiBasicTransport.compute_inflation,
        ),
    )


def run_key(kind: str, spec: tuple) -> str:
    """Content hash addressing one (kind, spec, code-version) cell result.

    Canonical-repr hashing, not ``hash()``: PYTHONHASHSEED salts the
    builtin hash per process, and the whole point of the disk tier is
    that different processes agree on the address.
    """
    material = repr(
        (
            RUN_SCHEMA,
            kind,
            spec,
            live_constants(),
            code_fingerprint(),
            f"py{sys.version_info.major}.{sys.version_info.minor}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.pkl"


def _load_disk(key: str) -> bytes | None:
    """Read one disk entry's result blob; any defect (missing, truncated,
    garbage, wrong recorded key) is a miss, never an error for the caller."""
    path = _entry_path(key)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    try:
        payload = pickle.loads(blob)
        if payload["schema"] != RUN_SCHEMA or payload["key"] != key:
            raise ValueError("stale or mismatched cache entry")
        result_blob = payload["result"]
        if not isinstance(result_blob, bytes):
            raise TypeError("cache entry does not hold a pickled result")
    except Exception:
        _STATS["errors"] += 1
        return None
    _STATS["bytes_read"] += len(blob)
    return result_blob


def _store_disk(key: str, result_blob: bytes) -> None:
    """Atomic write (tmp + rename); failures are silently tolerated —
    the cache is an accelerator, never a correctness dependency."""
    payload = {"schema": RUN_SCHEMA, "key": key, "result": result_blob}
    try:
        directory = cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, _entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _STATS["bytes_written"] += len(blob)
    except Exception:
        _STATS["errors"] += 1


def get_or_run(kind: str, spec: tuple, runner: Callable[[], Any]) -> Any:
    """Return the result for (kind, spec), simulating at most once per
    machine while the cache holds.

    Lookup order: in-process memo, disk store, then ``runner()`` (the
    real cell simulation) with the pickled result promoted into both
    tiers. Hits unpickle a fresh object every time. With the cache
    disabled every call simulates. Unpicklable results (a runner
    returning live simulation state) run uncached rather than failing.
    """
    if not cache_enabled():
        _STATS["cell_runs"] += 1
        return runner()
    key = run_key(kind, spec)
    blob = _MEMO.get(key)
    if blob is not None:
        _STATS["hits_mem"] += 1
        return pickle.loads(blob)
    blob = _load_disk(key)
    if blob is not None:
        _STATS["hits_disk"] += 1
        _MEMO[key] = blob
        return pickle.loads(blob)
    _STATS["misses"] += 1
    _STATS["cell_runs"] += 1
    result = runner()
    try:
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        _STATS["errors"] += 1
        return result
    _MEMO[key] = blob
    _store_disk(key, blob)
    return pickle.loads(blob)


def clear_memory_cache() -> None:
    """Drop the in-process memo (disk entries survive)."""
    _MEMO.clear()


def clear_disk_cache() -> int:
    """Remove every entry from the disk store; returns entries removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
