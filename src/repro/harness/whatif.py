"""Empirical validation harness for the what-if replay engine.

The replay engine (:mod:`repro.obs.whatif`) answers capacity-planning
questions analytically from a recorded trace.  This module keeps it
honest: for every fig9/fig10 cell it records a causally-traced baseline,
re-times it under each validation perturbation, then *re-simulates* the
same cell with the knob actually changed in the simulator and compares
the two walls.  The truth knobs map onto the simulator exactly:

* ``link_rate`` — a scaled :class:`~repro.simnet.interconnect.Fabric`
  line rate (every transport derives its ``per_byte_s`` from it);
* ``poll_tax`` — the Basic event loop's poll constants
  (``SELECT_NOW_COST_S`` / ``IPROBE_COST_S`` / ``BASIC_POLL_PERIOD_S``);
* ``serializer_rate`` / ``local_read_rate`` — the ramdisk shuffle
  write/read bandwidths.

Module-global patching follows the ablation-harness idiom: constants are
swapped under ``try/finally`` inside the worker process, so parallel
truth cells never see each other's knobs (each cell owns its process or
runs serially; nothing is patched across an ``await``-style boundary).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Iterable, Sequence

from repro.obs.whatif import IDENTITY, Perturbation, ReplayModel
from repro.util.units import GiB

# The three perturbation kinds the acceptance gate requires (link rate,
# poll tax, serializer cost), one decisive step each.
WHATIF_PERTURBATIONS: tuple[Perturbation, ...] = (
    Perturbation(name="2x NIC", link_rate=2.0),
    Perturbation(name="zero poll-tax", poll_tax=0.0),
    Perturbation(name="2x serializer", serializer_rate=2.0),
)

# Prediction-vs-simulation agreement gate (relative error).
WHATIF_TOLERANCE = 0.10


def perturbed_system(system, link_rate: float):
    """``system`` with its fabric line rate scaled by ``link_rate``."""
    if link_rate == 1.0:
        return system
    fabric = dataclasses.replace(
        system.fabric, line_rate_Bps=system.fabric.line_rate_Bps * link_rate
    )
    return dataclasses.replace(system, fabric=fabric)


def run_whatif_truth_cell(spec: tuple) -> tuple[float, dict[str, float], float]:
    """Worker: one ground-truth re-simulation with the knobs applied.

    ``spec`` is ``(workload_name, n_workers, data_bytes, transport,
    fidelity, system_name, link_rate, poll_tax, serializer_rate,
    local_read_rate)`` — primitives only, so specs pickle across the
    parallel harness.  Returns ``(total_seconds, stage_seconds,
    sim_wall_elapsed_s)``; the last element is host wall-clock spent
    simulating, used for the replay-vs-resim speed comparison.
    """
    (
        workload_name,
        n_workers,
        data_bytes,
        transport,
        fidelity,
        system_name,
        link_rate,
        poll_tax,
        serializer_rate,
        local_read_rate,
    ) = spec
    import repro.core.mpi_netty as mpi_netty
    import repro.spark.deploy as deploy
    from repro.harness.systems import SYSTEMS
    from repro.spark.deploy import SparkSimCluster
    from repro.workloads.ohb import GROUP_BY, SORT_BY

    workloads = {w.name: w for w in (GROUP_BY, SORT_BY)}
    system = perturbed_system(SYSTEMS[system_name], link_rate)

    saved = (
        mpi_netty.SELECT_NOW_COST_S,
        mpi_netty.IPROBE_COST_S,
        mpi_netty.BASIC_POLL_PERIOD_S,
        deploy.RAMDISK_WRITE_BPS,
        deploy.RAMDISK_READ_BPS,
    )
    t0 = time.perf_counter()
    try:
        # Poll-tax scaling: cheaper polls *and* a proportionally shorter
        # poll period — poll_tax=0.0 is a free, instantly-reactive poll
        # loop, the simulator's closest realization of "no polling tax".
        mpi_netty.SELECT_NOW_COST_S = saved[0] * poll_tax
        mpi_netty.IPROBE_COST_S = saved[1] * poll_tax
        mpi_netty.BASIC_POLL_PERIOD_S = saved[2] * poll_tax
        deploy.RAMDISK_WRITE_BPS = saved[3] * serializer_rate
        deploy.RAMDISK_READ_BPS = saved[4] * local_read_rate
        sim = SparkSimCluster(system, n_workers, transport, obs_enabled=True)
        sim.launch()
        profile = workloads[workload_name].build_profile(
            system, n_workers, data_bytes, fidelity=fidelity
        )
        result = sim.run_profile(profile)
        sim.shutdown()
    finally:
        (
            mpi_netty.SELECT_NOW_COST_S,
            mpi_netty.IPROBE_COST_S,
            mpi_netty.BASIC_POLL_PERIOD_S,
            deploy.RAMDISK_WRITE_BPS,
            deploy.RAMDISK_READ_BPS,
        ) = saved
    elapsed = time.perf_counter() - t0
    return result.total_seconds, dict(result.stage_seconds), elapsed


def truth_spec(
    cell: dict[str, Any], p: Perturbation, fidelity: float, system_name: str
) -> tuple:
    """Primitive spec for :func:`run_whatif_truth_cell`."""
    if p.compute != 1.0 or p.executors is not None:
        raise ValueError(
            f"no simulator ground truth for perturbation {p.name!r}: compute "
            "and executor re-width knobs are analytic-only"
        )
    return (
        cell["workload"],
        cell["n_workers"],
        cell["data_bytes"],
        cell["transport"],
        fidelity,
        system_name,
        p.link_rate,
        p.poll_tax,
        p.serializer_rate,
        p.local_read_rate,
    )


def whatif_cells(workers: Sequence[int] = (2, 4, 8)) -> list[dict[str, Any]]:
    """The validation matrix: the union of the fig9 and fig10 cell grids.

    fig9 (Basic vs Optimized) runs 2/4 workers at 28/56 GiB over
    ``nio``/``mpi-basic``/``mpi-opt``; fig10 (weak scaling) runs
    ``workers`` at 14 GiB/worker over ``nio``/``rdma``/``mpi-opt``.  The
    grids overlap (both scale 14 GiB per worker), so shared cells are
    simulated once and tagged with both figures.
    """
    from repro.harness.experiments import OHB_TRANSPORTS
    from repro.workloads.ohb import GROUP_BY, SORT_BY

    cells: dict[tuple, dict[str, Any]] = {}

    def add(figure: str, workload: str, n_workers: int, data: int, transport: str):
        key = (workload, n_workers, data, transport)
        cell = cells.setdefault(
            key,
            {
                "workload": workload,
                "n_workers": n_workers,
                "data_bytes": data,
                "transport": transport,
                "figures": [],
            },
        )
        if figure not in cell["figures"]:
            cell["figures"].append(figure)

    for workload in (GROUP_BY, SORT_BY):
        for n_workers, data in ((2, 28 * GiB), (4, 56 * GiB)):
            for transport in ("nio", "mpi-basic", "mpi-opt"):
                add("fig9", workload.name, n_workers, data, transport)
    for workload in (GROUP_BY, SORT_BY):
        for n_workers in workers:
            for transport in OHB_TRANSPORTS:
                add("fig10", workload.name, n_workers, n_workers * 14 * GiB, transport)
    return list(cells.values())


def validate_matrix(
    cells: Iterable[dict[str, Any]] | None = None,
    perturbations: Sequence[Perturbation] = WHATIF_PERTURBATIONS,
    fidelity: float = 0.25,
    jobs: int | None = None,
    system_name: str = "Frontera",
    tolerance: float = WHATIF_TOLERANCE,
) -> dict[str, Any]:
    """Record, replay and re-simulate every cell; return the BENCH payload.

    For each cell: one causally-traced baseline run, an identity replay
    (must reproduce the recorded wall exactly), and per perturbation an
    analytic prediction plus a ground-truth re-simulation.  The payload's
    ``cells`` rows carry ``predicted_s`` / ``simulated_s`` / ``error``
    (relative, prediction vs truth); ``summary`` aggregates the gate
    verdict and ``replay`` the analytic-vs-simulated speed comparison.
    """
    from repro.harness.parallel import parallel_map, run_ohb_cells

    cells = list(whatif_cells() if cells is None else cells)
    perturbations = list(perturbations)

    base_specs = [
        (
            c["workload"],
            c["n_workers"],
            c["data_bytes"],
            c["transport"],
            fidelity,
            system_name,
            True,
        )
        for c in cells
    ]
    recorded = run_ohb_cells(base_specs, jobs)

    t0 = time.perf_counter()
    models = [ReplayModel.from_result(r.result) for r in recorded]
    model_build_s = time.perf_counter() - t0

    truth_specs = [
        truth_spec(c, p, fidelity, system_name) for c in cells for p in perturbations
    ]
    truths = parallel_map(run_whatif_truth_cell, truth_specs, jobs)

    out_cells: list[dict[str, Any]] = []
    retime_total_s = 0.0
    resim_total_s = 0.0
    errors: list[float] = []
    ti = 0
    for c, rec, model in zip(cells, recorded, models):
        t0 = time.perf_counter()
        identity = model.retime(IDENTITY)
        rows = []
        for p in perturbations:
            pred = model.retime(p)
            rows.append((p, pred))
        retime_total_s += time.perf_counter() - t0

        row_dicts = []
        for p, pred in rows:
            sim_wall, _sim_stages, elapsed = truths[ti]
            ti += 1
            resim_total_s += elapsed
            error = pred.wall_s / sim_wall - 1.0
            errors.append(abs(error))
            row_dicts.append(
                {
                    "perturbation": p.name,
                    "knobs": p.describe(),
                    "predicted_s": pred.wall_s,
                    "simulated_s": sim_wall,
                    "error": error,
                    "within_tolerance": abs(error) <= tolerance,
                    "predicted_speedup": rec.total_seconds / pred.wall_s,
                    "simulated_speedup": rec.total_seconds / sim_wall,
                }
            )
        out_cells.append(
            {
                "workload": c["workload"],
                "n_workers": c["n_workers"],
                "data_bytes": c["data_bytes"],
                "transport": c["transport"],
                "figures": list(c["figures"]),
                "recorded_s": rec.total_seconds,
                "identity_replay_s": identity.wall_s,
                "identity_exact": identity.wall_s == rec.total_seconds,
                "rows": row_dicts,
            }
        )

    return {
        "fidelity": fidelity,
        "tolerance": tolerance,
        "perturbations": [
            {"name": p.name, "knobs": p.describe()} for p in perturbations
        ],
        "cells": out_cells,
        "summary": {
            "n_cells": len(out_cells),
            "n_rows": len(errors),
            "max_abs_error": max(errors) if errors else 0.0,
            "mean_abs_error": sum(errors) / len(errors) if errors else 0.0,
            "all_within_tolerance": all(
                r["within_tolerance"] for c in out_cells for r in c["rows"]
            ),
            "identity_all_exact": all(c["identity_exact"] for c in out_cells),
        },
        # Host wall-clock, machine-dependent: excluded from golden
        # comparisons, kept for the "why replay instead of resim" story.
        "replay": {
            "model_build_s": model_build_s,
            "retime_total_s": retime_total_s,
            "resim_total_s": resim_total_s,
            "speedup": (
                resim_total_s / retime_total_s if retime_total_s > 0 else float("inf")
            ),
        },
    }
