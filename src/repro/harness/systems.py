"""The three evaluation systems (paper Table III)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.interconnect import IB_EDR, IB_HDR, OPA, Fabric
from repro.util.units import GiB


@dataclass(frozen=True)
class SystemConfig:
    """Hardware description of one testbed."""

    name: str
    num_nodes: int
    processor: str
    clock_ghz: float
    sockets: int
    cores_per_socket: int
    ram_bytes: int
    hyperthreading: bool
    fabric: Fabric

    @property
    def cores_per_node(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def threads_per_node(self) -> int:
        return self.cores_per_node * (2 if self.hyperthreading else 1)

    @property
    def interconnect(self) -> str:
        return self.fabric.name


# Table III, verbatim.
FRONTERA = SystemConfig(
    name="Frontera",
    num_nodes=18,
    processor="Xeon Platinum",
    clock_ghz=2.7,
    sockets=2,
    cores_per_socket=28,
    ram_bytes=192 * GiB,
    hyperthreading=False,
    fabric=IB_HDR,
)

STAMPEDE2 = SystemConfig(
    name="Stampede2",
    num_nodes=10,
    processor="Xeon Platinum",
    clock_ghz=2.1,
    sockets=2,
    cores_per_socket=28,
    ram_bytes=192 * GiB,
    hyperthreading=True,
    fabric=OPA,
)

INTERNAL_CLUSTER = SystemConfig(
    name="Internal Cluster",
    num_nodes=2,
    processor="Xeon Broadwell",
    clock_ghz=2.1,
    sockets=2,
    cores_per_socket=14,
    ram_bytes=128 * GiB,
    hyperthreading=False,
    fabric=IB_EDR,
)

SYSTEMS = {s.name: s for s in (FRONTERA, STAMPEDE2, INTERNAL_CLUSTER)}
