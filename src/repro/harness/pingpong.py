"""Netty-level ping-pong latency benchmark (paper Fig. 8).

Measures, per message size, the average fetch round-trip through the full
channel/pipeline/codec stack on a two-node cluster — Netty's NIO transport
vs. the Netty+MPI transport. The paper ran this on the internal IB-EDR
cluster and reports Netty+MPI speedups up to ~9x at 4 MB.

Methodology: a client fetches S-byte chunks from a server; latency is
RTT/2 (OSU-style). The request message is tiny, so large-message latency
is dominated by the S-byte response — the term the transports differ on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.endpoint import MpiEndpoint
from repro.mpi.runtime import RankSpec
from repro.netty.eventloop import EventLoop
from repro.simnet.engine import SimEngine
from repro.simnet.interconnect import IB_EDR, Fabric
from repro.simnet.sockets import SocketAddress, SocketStack
from repro.simnet.topology import SimCluster
from repro.spark.network import OneForOneStreamManager, TransportContext
from repro.transports import make_transport

PORT = 7337


@dataclass
class PingPongResult:
    """Latency per message size for one transport."""

    transport: str
    fabric: str
    latency_s: dict[int, float]  # message size -> seconds
    events_processed: int = 0  # kernel events dispatched for the whole run

    def speedup_over(self, other: "PingPongResult") -> dict[int, float]:
        return {
            size: other.latency_s[size] / self.latency_s[size]
            for size in self.latency_s
            if size in other.latency_s
        }


def _idle_main(proc):
    """MPI ranks for the ping-pong only serve the matching engine."""
    yield proc.env.timeout(0)


def run_pingpong(
    transport_name: str,
    sizes: list[int],
    fabric: Fabric = IB_EDR,
    iterations: int = 4,
    warmup: int = 1,
) -> PingPongResult:
    """Run the ping-pong for one transport; returns per-size latency."""
    env = SimEngine()
    cluster = SimCluster(env, fabric, n_nodes=2, cores_per_node=28)
    transport = make_transport(transport_name, env, cluster)

    # MPI transports: one rank per endpoint (server=0 on node0, client=1).
    server_ep = client_ep = None
    if transport.uses_mpi:
        assert transport.mpi_world is not None
        procs, _ = transport.mpi_world.create_processes(
            [RankSpec(main=_idle_main, node=0, name="pp-server"),
             RankSpec(main=_idle_main, node=1, name="pp-client")],
            comm_name="MPI_COMM_WORLD",
        )
        server_ep = MpiEndpoint(procs[0])
        client_ep = MpiEndpoint(procs[1])

    # Server: a stream whose chunk_index encodes the requested size.
    streams = OneForOneStreamManager()
    context = TransportContext(
        transport.data_stack,
        stream_manager=streams,
        pipeline_hook=transport.pipeline_hook,
    )
    stream_id = streams.register_stream(lambda idx, n: (None, idx))

    server_loop = transport.make_loop("pp-server-loop", server_ep)
    client_loop = transport.make_loop("pp-client-loop", client_ep)
    server_loop.start()
    client_loop.start()
    context.create_server(server_loop, 0, PORT)

    latencies: dict[int, float] = {}

    def client_main(env):
        client = yield from context.create_client(
            client_loop, 1, SocketAddress("node0", PORT)
        )
        yield from transport.establish(client.channel, client_ep)
        for size in sizes:
            # warmup + timed iterations
            for _ in range(warmup):
                yield client.fetch_chunk(stream_id, size)
            t0 = env.now
            for _ in range(iterations):
                yield client.fetch_chunk(stream_id, size)
            latencies[size] = (env.now - t0) / iterations / 2.0  # RTT/2
        server_loop.stop()
        client_loop.stop()

    env.process(client_main(env))
    env.run()
    return PingPongResult(
        transport=transport_name,
        fabric=fabric.name,
        latency_s=dict(latencies),
        events_processed=env.events_processed,
    )
