"""Experiment definitions: one function per paper table/figure.

Each function runs the relevant workloads across the paper's transport
matrix on the simulated system and returns structured rows; the report
module renders them in the shape the paper presents. ``fidelity`` trades
simulated-task granularity for wall-clock time (totals and therefore
stage-time ratios are preserved — see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.harness.parallel import run_hibench_cells, run_ohb_cells
from repro.harness.pingpong import PingPongResult, run_pingpong
from repro.harness.systems import FRONTERA, INTERNAL_CLUSTER, STAMPEDE2, SYSTEMS
from repro.spark.deploy import RunResult, SparkSimCluster
from repro.util.units import GiB, KiB, MiB
from repro.workloads.hibench import SPECS
from repro.workloads.ohb import GROUP_BY, SORT_BY

# Paper figure legends: IPoIB = Vanilla Spark, RDMA = RDMA-Spark,
# MPI = MPI4Spark (Optimized).
OHB_TRANSPORTS = ("nio", "rdma", "mpi-opt")

FIG8_SMALL_SIZES = [1, 64, 256, 1 * KiB, 4 * KiB]
FIG8_LARGE_SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]


@dataclass
class OhbCell:
    """One (workload, scale, transport) end-to-end run."""

    workload: str
    n_workers: int
    total_cores: int
    data_bytes: int
    transport: str
    result: RunResult

    @property
    def total_seconds(self) -> float:
        return self.result.total_seconds


def _run_ohb(
    workload,
    n_workers: int,
    data_bytes: int,
    transport: str,
    fidelity: float,
    system=FRONTERA,
    obs_causal: bool = False,
) -> OhbCell:
    # Observability on: cells carry a MetricsSnapshot so reports can show
    # measured polling tax / event-loop busy fractions (Sec. VI-D).
    # ``obs_causal`` additionally attaches a flight recording
    # (spark.repro.obs.causal) for critical-path analysis / the run report.
    sim = SparkSimCluster(
        system, n_workers, transport, obs_enabled=True, obs_causal=obs_causal
    )
    sim.launch()
    profile = workload.build_profile(system, n_workers, data_bytes, fidelity=fidelity)
    result = sim.run_profile(profile)
    sim.shutdown()
    return OhbCell(
        workload=workload.name,
        n_workers=n_workers,
        total_cores=n_workers * sim.cores_per_executor,
        data_bytes=data_bytes,
        transport=transport,
        result=result,
    )


# ---------------------------------------------------------------------------
# Fig 8 — Netty-level ping-pong on the internal cluster (IB-EDR)
# ---------------------------------------------------------------------------

def fig8_pingpong(
    iterations: int = 4,
) -> dict[str, PingPongResult]:
    """Netty NIO vs Netty+MPI latency, small and large message sizes.

    The "Netty+MPI" curve uses the all-messages-over-MPI transport (the
    raw MPI-based Netty path the paper microbenchmarks); the paper's
    headline is ~9x at 4 MB.
    """
    sizes = FIG8_SMALL_SIZES + FIG8_LARGE_SIZES
    fabric = INTERNAL_CLUSTER.fabric
    return {
        "netty-nio": run_pingpong("nio", sizes, fabric, iterations),
        "netty-mpi": run_pingpong("mpi-basic", sizes, fabric, iterations),
    }


# ---------------------------------------------------------------------------
# Fig 9 — MPI4Spark-Basic vs MPI4Spark-Optimized vs Vanilla
# ---------------------------------------------------------------------------

def fig9_basic_vs_optimized(
    fidelity: float = 0.25, jobs: int | None = None
) -> list[OhbCell]:
    """GroupByTest and SortByTest at 28 GB / 112 cores and 56 GB / 224
    cores on Frontera (2 and 4 workers).

    Cells are independent simulations; ``jobs`` fans them over worker
    processes (row order and values are identical for any ``jobs``).
    """
    specs = [
        (workload.name, n_workers, data, transport, fidelity, FRONTERA.name)
        for workload in (GROUP_BY, SORT_BY)
        for n_workers, data in ((2, 28 * GiB), (4, 56 * GiB))
        for transport in ("nio", "mpi-basic", "mpi-opt")
    ]
    return run_ohb_cells(specs, jobs)


def fig9_critical_path(
    fidelity: float = 0.25,
    jobs: int | None = None,
    report_path: str | None = None,
) -> list[tuple[OhbCell, "CriticalPathReport"]]:
    """Causal critical-path decomposition of the Fig-9 GroupBy contrast.

    Runs the 2-worker / 28 GB GroupBy cell under every Fig-9 transport
    with ``spark.repro.obs.causal`` on, and decomposes each run's
    critical path into compute / serialize / queue / wire / poll-tax /
    fetch-wait segments.  The Basic design's poll-tax share is the
    measured form of the paper's Sec VI-D starvation claim.

    ``report_path`` additionally writes the Spark-UI-style HTML run
    report (stage Gantt, message timelines, the same tables) next to the
    ``BENCH_*.json`` files — e.g. ``results/fig9_critical_path.html``.
    """
    from repro.obs import analyze, write_report

    specs = [
        (GROUP_BY.name, 2, 28 * GiB, transport, fidelity, FRONTERA.name, True)
        for transport in ("nio", "mpi-basic", "mpi-opt")
    ]
    cells = run_ohb_cells(specs, jobs)
    pairs = [(cell, analyze(cell.result.flight, cell.transport)) for cell in cells]
    if report_path is not None:
        write_report(
            report_path,
            [(cell.result, cp) for cell, cp in pairs],
            title="Fig 9 GroupByTest — causal critical paths",
        )
    return pairs


# ---------------------------------------------------------------------------
# Fig 10 — weak scaling (14 GB/worker: 8 -> 112GB, 16 -> 224GB, 32 -> 448GB)
# ---------------------------------------------------------------------------

def fig10_weak_scaling(
    workers: Sequence[int] = (8, 16, 32),
    fidelity: float = 0.25,
    jobs: int | None = None,
) -> list[OhbCell]:
    specs = [
        (workload.name, n_workers, n_workers * 14 * GiB, transport, fidelity,
         FRONTERA.name)
        for workload in (GROUP_BY, SORT_BY)
        for n_workers in workers
        for transport in OHB_TRANSPORTS
    ]
    return run_ohb_cells(specs, jobs)


# ---------------------------------------------------------------------------
# Fig 11 — strong scaling (224 GB on 448..1792 cores)
# ---------------------------------------------------------------------------

def fig11_strong_scaling(
    workers: Sequence[int] = (8, 16, 32),
    data_bytes: int = 224 * GiB,
    fidelity: float = 0.25,
    jobs: int | None = None,
) -> list[OhbCell]:
    specs = [
        (workload.name, n_workers, data_bytes, transport, fidelity, FRONTERA.name)
        for workload in (GROUP_BY, SORT_BY)
        for n_workers in workers
        for transport in OHB_TRANSPORTS
    ]
    return run_ohb_cells(specs, jobs)


# ---------------------------------------------------------------------------
# Fig 12 — Intel HiBench on Frontera (a, b) and Stampede2 (c)
# ---------------------------------------------------------------------------

@dataclass
class HiBenchCell:
    workload: str
    system: str
    transport: str
    total_seconds: float


FIG12A_WORKLOADS = ("LDA", "SVM", "GMM", "Repartition")
FIG12B_WORKLOADS = ("NWeight", "TeraSort")
FIG12C_WORKLOADS = ("LR", "GMM", "SVM", "Repartition")


def fig12_hibench(
    fidelity: float = 0.25, jobs: int | None = None
) -> list[HiBenchCell]:
    """The full Fig-12 matrix.

    Frontera: 16 workers, 896 cores, transports nio/rdma/mpi-opt
    (RDMA-Spark numbers are omitted for GMM and Repartition, as in the
    paper — HiBench 7.0 did not support them).
    Stampede2: 8 workers, 96 threads each; no RDMA (OPA has no IB verbs).
    """
    rdma_unsupported = {"GMM", "Repartition"}  # HiBench 7.0 gap (paper)
    specs = [
        (name, FRONTERA.name, 16, transport, None, fidelity)
        for name in dict.fromkeys(FIG12A_WORKLOADS + FIG12B_WORKLOADS)
        for transport in OHB_TRANSPORTS
        if not (transport == "rdma" and name in rdma_unsupported)
    ]
    specs += [
        (name, STAMPEDE2.name, 8, transport, 96, fidelity)
        for name in dict.fromkeys(FIG12C_WORKLOADS)
        for transport in ("nio", "mpi-opt")  # no RDMA on Omni-Path
    ]
    return run_hibench_cells(specs, jobs)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_features() -> list[dict[str, str]]:
    """The paper's Table I feature-comparison matrix."""
    return [
        {
            "Features": "Support for Multiple Interconnects",
            "MPI4Spark": "yes", "RDMA-Spark": "no", "SparkUCX": "yes",
            "Spark+MPI": "yes", "Spark-MPI": "yes",
        },
        {
            "Features": "Adheres to Spark API",
            "MPI4Spark": "yes", "RDMA-Spark": "yes", "SparkUCX": "yes",
            "Spark+MPI": "no", "Spark-MPI": "yes",
        },
        {
            "Features": "Studies with Existing Benchmark Suites",
            "MPI4Spark": "yes", "RDMA-Spark": "yes", "SparkUCX": "N/A",
            "Spark+MPI": "yes", "Spark-MPI": "N/A",
        },
        {
            "Features": "Optimization Technique",
            "MPI4Spark": "MPI-Based Netty",
            "RDMA-Spark": "RDMA-Based BlockTransferService",
            "SparkUCX": "UCX-Based Shuffle Manager",
            "Spark+MPI": "Offload to shared memory and use MPI",
            "Spark-MPI": "N/A",
        },
    ]


def table3_systems() -> list[dict[str, str]]:
    """Table III hardware matrix, from the live SystemConfig objects."""
    rows = []
    for system in SYSTEMS.values():
        rows.append(
            {
                "System": system.name,
                "Nodes": str(system.num_nodes),
                "Processor": system.processor,
                "Clock": f"{system.clock_ghz} GHz",
                "Cores/node": str(system.cores_per_node),
                "HT": "2 threads/core" if system.hyperthreading else "no",
                "Interconnect": f"{system.interconnect} (100G)",
            }
        )
    return rows


def table4_workloads() -> list[dict[str, str]]:
    """Table IV benchmark inventory, from the live workload registry."""
    rows = [
        {
            "Suite": "OSU HiBD (OHB)",
            "Workload": w.name,
            "Category": "RDD Benchmarks",
            "Description": (
                "group values per key into one sequence"
                if w.name == "GroupByTest"
                else "sort the RDD by key"
            ),
        }
        for w in (GROUP_BY, SORT_BY)
    ]
    for spec in SPECS.values():
        rows.append(
            {
                "Suite": "Intel HiBench",
                "Workload": spec.name,
                "Category": spec.category,
                "Description": spec.description,
            }
        )
    return rows
