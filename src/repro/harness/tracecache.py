"""Two-tier sample-trace cache: trace once, replay many.

A sample trace (see :class:`~repro.spark.tracing.SampleTrace`) depends
only on the workload and its sample parameters — never on the transport,
system, or worker count being simulated. Yet every figure sweeps the same
workload across 3-4 transports and many cluster sizes, so without a cache
the harness re-executes the identical laptop-scale sample run for every
cell. This module memoizes traces twice:

* an **in-process memo** (dict) — free hits within one process;
* a **content-addressed disk store** under ``results/.tracecache/`` —
  shared across the ``ProcessPoolExecutor`` workers of
  :mod:`repro.harness.parallel` and across repeated CI runs.

The key is a sha256 over a canonical textual repr of (schema, workload
name, version tag, sample params, and the workload's code-relevant cost
constants) — never Python's ``hash()``, which is salted per process.
Bumping a workload's ``TRACE_VERSION`` or editing its cost constants
invalidates its entries; stale entries are never read because the key
they were stored under no longer matches anything the code asks for.

Corrupted or stale entries (truncated pickle, garbage bytes, an entry
whose recorded key disagrees with its filename) are treated as misses:
the sample re-runs and the entry is rewritten. Disk writes are atomic
(tmp file + ``os.replace``) so concurrent workers never observe a
half-written entry.

Set ``REPRO_TRACE_CACHE=0`` to disable both tiers (every call re-executes
the sample); ``REPRO_TRACE_CACHE_DIR`` overrides the store location.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Any, Callable

from repro.spark.tracing import SampleTrace

TRACE_SCHEMA = "sample-trace/1"

# In-process memo: key -> SampleTrace. Shared by every workload in this
# interpreter; cleared explicitly by tests and the cold perf cells.
_MEMO: dict[str, SampleTrace] = {}

# Process-lifetime stats. Callers that attribute traffic to one run (the
# obs snapshot hook in ``spark.deploy``) snapshot a baseline and publish
# deltas, mirroring the estimate_size cache pattern.
_STATS = {
    "hits_mem": 0,
    "hits_disk": 0,
    "misses": 0,
    "sample_runs": 0,
    "bytes_read": 0,
    "bytes_written": 0,
    "errors": 0,
}


def trace_cache_stats() -> dict[str, int]:
    """Process-lifetime cache stats (copy; safe to mutate)."""
    return dict(_STATS)


def cache_enabled() -> bool:
    """Both tiers are on unless ``REPRO_TRACE_CACHE=0``."""
    return os.environ.get("REPRO_TRACE_CACHE", "1") != "0"


def cache_dir() -> Path:
    """On-disk store location (``REPRO_TRACE_CACHE_DIR`` overrides)."""
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return Path(override)
    return Path("results") / ".tracecache"


def trace_key(
    workload: str,
    version: str,
    sample_params: dict[str, Any],
    cost_constants: Any = None,
) -> str:
    """Content hash addressing one (workload, params, code-version) trace.

    Canonical-repr hashing, not ``hash()``: PYTHONHASHSEED salts the
    builtin hash per process, and the whole point of the disk tier is
    that different processes agree on the address.
    """
    material = repr(
        (
            TRACE_SCHEMA,
            workload,
            version,
            tuple(sorted(sample_params.items())),
            repr(cost_constants),
            f"py{sys.version_info.major}.{sys.version_info.minor}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> Path:
    return cache_dir() / f"{key}.pkl"


def _load_disk(key: str) -> SampleTrace | None:
    """Read one disk entry; any defect (missing, truncated, garbage,
    wrong recorded key) is a miss, never an error for the caller."""
    path = _entry_path(key)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    try:
        payload = pickle.loads(blob)
        if payload["schema"] != TRACE_SCHEMA or payload["key"] != key:
            raise ValueError("stale or mismatched cache entry")
        trace = payload["trace"]
        if not isinstance(trace, SampleTrace):
            raise TypeError("cache entry does not hold a SampleTrace")
    except Exception:
        _STATS["errors"] += 1
        return None
    _STATS["bytes_read"] += len(blob)
    return trace


def _store_disk(key: str, trace: SampleTrace) -> None:
    """Atomic write (tmp + rename); failures are silently tolerated —
    the cache is an accelerator, never a correctness dependency."""
    payload = {"schema": TRACE_SCHEMA, "key": key, "trace": trace}
    try:
        directory = cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, _entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _STATS["bytes_written"] += len(blob)
    except Exception:
        _STATS["errors"] += 1


def get_or_trace(
    workload: str,
    version: str,
    sample_params: dict[str, Any],
    runner: Callable[[], SampleTrace],
    cost_constants: Any = None,
) -> SampleTrace:
    """Return the trace for (workload, params), executing ``runner`` at
    most once per machine while the cache holds.

    Lookup order: in-process memo, disk store, then ``runner()`` (the
    real sample execution) with the result promoted into both tiers.
    With the cache disabled every call runs the sample.
    """
    if not cache_enabled():
        _STATS["sample_runs"] += 1
        return runner()
    key = trace_key(workload, version, sample_params, cost_constants)
    trace = _MEMO.get(key)
    if trace is not None:
        _STATS["hits_mem"] += 1
        return trace
    trace = _load_disk(key)
    if trace is not None:
        _STATS["hits_disk"] += 1
        _MEMO[key] = trace
        return trace
    _STATS["misses"] += 1
    _STATS["sample_runs"] += 1
    trace = runner()
    _MEMO[key] = trace
    _store_disk(key, trace)
    return trace


def clear_memory_cache() -> None:
    """Drop the in-process memo (disk entries survive)."""
    _MEMO.clear()


def clear_disk_cache() -> int:
    """Remove every entry from the disk store; returns entries removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
