"""Workload profiles: the scaled, executor-level view of a traced job.

A :class:`WorkloadProfile` is what the simulated cluster executes. It is
built from a *measured* local-backend trace (sample scale) plus the
calibration constants, scaled to the paper's nominal data size and the
target cluster geometry (executors × cores). Three stage shapes cover the
paper's workloads:

* :class:`ComputeStage` — data generation / pure computation,
* :class:`ShuffleWriteStage` — map tasks computing then writing partitioned
  output to the node-local RAM disk,
* :class:`ShuffleReadStage` — reduce tasks fetching blocks from every
  executor over the transport under test, then combining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spark.tracing import StageTrace

# Node-local "RAM disk" bandwidth for shuffle spill/read (paper Sec. VII-C:
# map output goes to local storage — RAM disk — for the shuffle read stage).
RAMDISK_WRITE_BPS = 4.0e9
RAMDISK_READ_BPS = 6.0e9

# Fixed per-task scheduling/dispatch latency on the executor.
TASK_SCHED_DELAY_S = 2e-3


@dataclass
class ComputeStage:
    """n_tasks independent tasks of pure compute."""

    label: str
    seconds_per_task: np.ndarray  # shape (n_tasks,)

    @property
    def n_tasks(self) -> int:
        return len(self.seconds_per_task)


@dataclass
class ShuffleWriteStage:
    """Map side: compute + write partitioned output locally."""

    label: str
    seconds_per_task: np.ndarray  # compute portion, shape (n_tasks,)
    write_bytes_per_task: np.ndarray  # shape (n_tasks,)

    @property
    def n_tasks(self) -> int:
        return len(self.seconds_per_task)


@dataclass
class ShuffleReadStage:
    """Reduce side: fetch from all executors, then combine.

    ``fetch_bytes[t, e]`` — bytes task ``t`` pulls from executor ``e``
    (column ``e == own executor`` is a local RAM-disk read).
    ``blocks[t, e]`` — how many shuffle blocks that traffic represents
    (drives per-block message overheads).
    """

    label: str
    fetch_bytes: np.ndarray  # shape (n_tasks, n_executors)
    blocks: np.ndarray  # shape (n_tasks, n_executors), int
    combine_seconds_per_task: np.ndarray  # shape (n_tasks,)

    @property
    def n_tasks(self) -> int:
        return self.fetch_bytes.shape[0]

    @property
    def total_remote_bytes(self) -> int:
        n_exec = self.fetch_bytes.shape[1]
        owner = np.arange(self.n_tasks) % n_exec
        mask = np.ones_like(self.fetch_bytes, dtype=bool)
        mask[np.arange(self.n_tasks), owner] = False
        return int(self.fetch_bytes[mask].sum())


Stage = ComputeStage | ShuffleWriteStage | ShuffleReadStage


@dataclass
class WorkloadProfile:
    """A full job, scaled and ready for simulation."""

    name: str
    nominal_bytes: int
    n_executors: int
    cores_per_executor: int
    stages: list[Stage] = field(default_factory=list)

    @property
    def total_cores(self) -> int:
        return self.n_executors * self.cores_per_executor


def _spread(total: float, n: int, cv: float, seed: int) -> np.ndarray:
    """Split ``total`` into ``n`` parts with coefficient-of-variation ``cv``.

    Deterministic (seeded); clipped at a small positive floor so no task is
    empty. This reproduces the mild task-size imbalance real hash
    partitioning shows without carrying full sample matrices around.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    if cv <= 0:
        return np.full(n, total / n)
    parts = rng.normal(1.0, cv, size=n)
    parts = np.clip(parts, 0.2, None)
    parts = parts / parts.sum() * total
    return parts


def spread_cpu(
    total_cpu_seconds: float, n_tasks: int, total_cores: int, cv: float, seed: int
) -> np.ndarray:
    """Per-task compute seconds preserving *stage time* under task folding.

    Stage time on a full cluster is ``total_cpu / total_cores`` (perfect
    waves). When fidelity folds many logical tasks into fewer simulated
    tasks, each simulated task must carry one core's worth of work — not
    ``total / n_tasks`` — or compute stages would dilate.
    """
    per_task = total_cpu_seconds / max(total_cores, 1)
    return _spread(per_task * n_tasks, n_tasks, cv, seed)


def measured_cv(trace: StageTrace) -> float:
    """Per-task size imbalance measured from the sample trace."""
    if trace.shuffle_matrix is not None:
        per_reduce = trace.shuffle_matrix.sum(axis=0).astype(float)
        if per_reduce.sum() > 0 and per_reduce.mean() > 0:
            return float(per_reduce.std() / per_reduce.mean())
    if trace.bytes_out:
        arr = np.asarray(trace.bytes_out, dtype=float)
        if arr.mean() > 0:
            return float(arr.std() / arr.mean())
    return 0.0


def scaled_read_matrices(
    total_bytes: float,
    total_records: float,
    n_tasks: int,
    n_executors: int,
    n_map_tasks: int,
    cv: float,
    seed: int = 23,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (fetch_bytes, blocks, records) for a scaled shuffle read.

    Traffic is spread uniformly across source executors (hash partitioning
    over random keys — the OHB case), with per-task jitter of ``cv``.
    Every (reduce task, map task) pair is one block, aggregated here per
    (reduce task, source executor).
    """
    per_task = _spread(total_bytes, n_tasks, cv, seed)
    fetch = np.outer(per_task, np.full(n_executors, 1.0 / n_executors))
    maps_per_exec = max(1, n_map_tasks // n_executors)
    blocks = np.full((n_tasks, n_executors), maps_per_exec, dtype=np.int64)
    records = _spread(total_records, n_tasks, cv, seed + 1)
    return fetch, blocks, records
