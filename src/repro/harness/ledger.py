"""Perf ledger: append-only history of benchmark payloads, with drift flags.

``results/BENCH_*.json`` files are rewritten on every run, so the perf
trajectory across PRs only exists as git archaeology.  The ledger turns
it into a queryable artifact: every perf-suite and figure-benchmark run
appends one JSONL entry — keyed by the :func:`~repro.harness.runcache.
code_fingerprint` of the source tree that produced it plus a wall-clock
timestamp — and :meth:`PerfLedger.drift` walks the history with a
per-cell EWMA to flag step changes (a cell whose latest value deviates
from its smoothed history by more than ``step_threshold``).

Entry schema (one JSON object per line)::

    {"schema": "repro-ledger/1", "source": "perf",
     "fingerprint": "<sha256 of src/repro>", "ts": 1754650000.0,
     "units": "events_per_sec", "cells": {"fig9_groupby_2w_nio": 123456.0}}

The ledger is an observer, never a participant: it does not modify any
``BENCH_*`` payload (byte-identity of the committed results is asserted
by the figure goldens), every write is best-effort (an unwritable ledger
never fails a benchmark), and ``REPRO_LEDGER=0`` disables it entirely.
The default path ``results/ledger.jsonl`` falls under the existing
``results/*.jsonl`` gitignore rule — the ledger is a per-machine /
per-CI-run artifact (uploaded by the ``diff-smoke`` job), not a
committed result.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

LEDGER_SCHEMA = "repro-ledger/1"

# EWMA smoothing weight for the newest observation, and the relative
# deviation from the smoothed history past which a cell is flagged as a
# step change. 0.25 sits above min-of-N timer noise (the perf gate uses
# 0.30 for a single comparison) while still catching real regressions.
DEFAULT_ALPHA = 0.3
DEFAULT_STEP_THRESHOLD = 0.25


def ledger_enabled() -> bool:
    """The ledger records unless ``REPRO_LEDGER=0``."""
    return os.environ.get("REPRO_LEDGER", "1") != "0"


def ledger_path() -> Path:
    """Ledger location (``REPRO_LEDGER_PATH`` overrides)."""
    override = os.environ.get("REPRO_LEDGER_PATH")
    if override:
        return Path(override)
    return Path("results") / "ledger.jsonl"


@dataclass
class DriftPoint:
    """The drift verdict for one cell after the latest observation."""

    cell: str
    value: float
    ewma: float  # smoothed history *before* the latest observation
    rel_dev: float  # value/ewma - 1 (0.0 for a first observation)
    step: bool  # |rel_dev| exceeded the step threshold
    n: int  # observations seen, latest included


class PerfLedger:
    """One append-only JSONL ledger file."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else ledger_path()

    # -- recording ------------------------------------------------------------
    def append(
        self,
        source: str,
        cells: dict[str, float],
        units: str = "",
        fingerprint: str | None = None,
        timestamp: float | None = None,
    ) -> dict[str, Any]:
        """Append one entry; returns it (also when writing was skipped).

        ``source`` names the producing suite (``perf``, ``fig:fig9_...``);
        the fingerprint defaults to the live source tree's, so two
        entries with the same fingerprint compare the same code.
        """
        from repro.harness.runcache import code_fingerprint

        entry = {
            "schema": LEDGER_SCHEMA,
            "source": source,
            "fingerprint": fingerprint or code_fingerprint(),
            "ts": time.time() if timestamp is None else float(timestamp),
            "units": units,
            "cells": {name: float(v) for name, v in cells.items()},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    # -- queries --------------------------------------------------------------
    def entries(self, source: str | None = None) -> list[dict[str, Any]]:
        """All well-formed entries in append order (optionally one source).

        Malformed lines (torn writes, foreign junk) are skipped, never
        fatal — the ledger must stay readable after any crash.
        """
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if (
                    not isinstance(entry, dict)
                    or entry.get("schema") != LEDGER_SCHEMA
                    or not isinstance(entry.get("cells"), dict)
                ):
                    continue
                if source is not None and entry.get("source") != source:
                    continue
                out.append(entry)
        return out

    def drift(
        self,
        source: str,
        alpha: float = DEFAULT_ALPHA,
        step_threshold: float = DEFAULT_STEP_THRESHOLD,
    ) -> dict[str, DriftPoint]:
        """Per-cell EWMA drift over the source's history, latest verdict.

        Walks entries oldest→newest; for each cell the smoothed history
        is ``ewma ← alpha·value + (1−alpha)·ewma`` and an observation is
        a **step change** when it deviates from the pre-update EWMA by
        more than ``step_threshold`` relative.  First observations seed
        the EWMA and are never steps.
        """
        ewma: dict[str, float] = {}
        count: dict[str, int] = {}
        latest: dict[str, DriftPoint] = {}
        for entry in self.entries(source):
            for cell, value in entry["cells"].items():
                n = count.get(cell, 0) + 1
                count[cell] = n
                prior = ewma.get(cell)
                if prior is None or prior == 0.0:
                    rel_dev, step, prior = 0.0, False, float(value)
                else:
                    rel_dev = value / prior - 1.0
                    step = abs(rel_dev) > step_threshold
                latest[cell] = DriftPoint(
                    cell=cell, value=float(value), ewma=prior,
                    rel_dev=rel_dev, step=step, n=n,
                )
                ewma[cell] = alpha * value + (1.0 - alpha) * ewma.get(cell, value)
        return latest

    def flagged(self, source: str, **kwargs: float) -> list[DriftPoint]:
        """Cells whose latest observation is a step change, sorted by |dev|."""
        points = [p for p in self.drift(source, **kwargs).values() if p.step]
        points.sort(key=lambda p: -abs(p.rel_dev))
        return points


# -- payload adapters ---------------------------------------------------------

def perf_cells(payload: dict[str, Any]) -> dict[str, float]:
    """``BENCH_perf`` payload → ``{cell name: events_per_sec}``."""
    return {
        c["name"]: float(c["events_per_sec"])
        for c in payload.get("cells", [])
        if c.get("events_per_sec")
    }


def figure_cells(payload: dict[str, Any]) -> dict[str, float]:
    """Figure payload → ``{derived cell key: headline seconds}``.

    Handles the two row shapes the benchmarks emit: OHB/HiBench cells
    (``total_seconds`` keyed by workload/workers/transport) and
    job-server rows (``mean_jct_s`` keyed by scheduler/transport).
    Payloads without per-row timings (e.g. fig8's latency curves) yield
    ``{}`` and are simply not ledgered.
    """
    rows = payload.get("cells") or payload.get("rows") or []
    out: dict[str, float] = {}
    for row in rows:
        if not isinstance(row, dict):
            continue
        if "total_seconds" in row:
            value = row["total_seconds"]
        elif "mean_jct_s" in row:
            value = row["mean_jct_s"]
        else:
            continue
        bits = [
            str(row[k])
            for k in ("workload", "system", "scheduler")
            if row.get(k) is not None
        ]
        if row.get("n_workers") is not None:
            bits.append(f"{row['n_workers']}w")
        if row.get("transport") is not None:
            bits.append(str(row["transport"]))
        key = "_".join(bits) or f"row{len(out)}"
        out[key] = float(value)
    return out


def record_perf(payload: dict[str, Any]) -> dict[str, Any] | None:
    """Ledger one perf-suite payload (no-op when disabled/empty)."""
    if not ledger_enabled():
        return None
    cells = perf_cells(payload)
    if not cells:
        return None
    try:
        return PerfLedger().append("perf", cells, units="events_per_sec")
    except OSError:
        return None


def record_figure(figure: str, payload: dict[str, Any]) -> dict[str, Any] | None:
    """Ledger one figure payload (no-op when disabled or shapeless)."""
    if not ledger_enabled():
        return None
    cells = figure_cells(payload)
    if not cells:
        return None
    try:
        return PerfLedger().append(f"fig:{figure}", cells, units="seconds")
    except OSError:
        return None
