"""The chaos harness: run one fault plan against one transport, measure.

A :class:`ChaosScenario` names everything needed to reproduce one cell of
the fault-recovery matrix: cluster geometry, transport, MPI fault mode,
workload size and the fault plan. :func:`run_scenario` executes the cell
twice on fresh same-seed clusters — once clean for the baseline, once with
the injector armed at the start of the shuffle-read stage — and returns an
:class:`~repro.faults.report.AvailabilityReport` whose rendering is
byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import JobFailedError, RecoveryPolicy, ResilientScheduler
from repro.faults.report import AvailabilityReport
from repro.harness.profile import (
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
    WorkloadProfile,
)
from repro.mpi.errors import MPIError
from repro.simnet.events import SimError
from repro.spark.deploy import SparkSimCluster
from repro.util.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.systems import SystemConfig


def make_chaos_profile(
    n_executors: int,
    cores_per_executor: int = 4,
    shuffle_bytes: int = 256 * MiB,
    name: str = "chaos",
) -> WorkloadProfile:
    """A small gen → write → read job with a uniform shuffle matrix."""
    n_tasks = n_executors * cores_per_executor
    fetch = np.full((n_tasks, n_executors), shuffle_bytes / (n_tasks * n_executors))
    blocks = np.ones((n_tasks, n_executors), dtype=np.int64)
    return WorkloadProfile(
        name=name,
        nominal_bytes=shuffle_bytes,
        n_executors=n_executors,
        cores_per_executor=cores_per_executor,
        stages=[
            ComputeStage("gen", np.full(n_tasks, 0.01)),
            ShuffleWriteStage(
                "write",
                np.full(n_tasks, 0.005),
                np.full(n_tasks, shuffle_bytes / n_tasks),
            ),
            ShuffleReadStage("read", fetch, blocks, np.full(n_tasks, 0.002)),
        ],
    )


@dataclass
class ChaosScenario:
    """One reproducible cell of the fault-recovery matrix."""

    name: str
    system: "SystemConfig"
    n_workers: int
    transport: str
    plan: FaultPlan
    mpi_fault_mode: str = "abort"
    cores_per_executor: int = 4
    shuffle_bytes: int = 256 * MiB
    deadline_s: float = 120.0
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    # Causal tracing of the faulted run (flight log of span aborts).
    obs_causal: bool = False

    def build_cluster(self) -> SparkSimCluster:
        return SparkSimCluster(
            self.system,
            self.n_workers,
            self.transport,
            cores_per_executor=self.cores_per_executor,
            seed=self.plan.seed,
            mpi_fault_mode=self.mpi_fault_mode,
            obs_causal=self.obs_causal,
        )

    def build_profile(self) -> WorkloadProfile:
        return make_chaos_profile(
            self.n_workers, self.cores_per_executor, self.shuffle_bytes
        )


def run_scenario(scenario: ChaosScenario) -> AvailabilityReport:
    """Baseline run, then the faulted run; both from the same seed."""
    report = AvailabilityReport(
        scenario=scenario.name,
        transport=scenario.transport,
        fault_mode=(
            scenario.mpi_fault_mode
            if scenario.transport.startswith("mpi")
            else "n/a"
        ),
        seed=scenario.plan.seed,
    )

    # -- baseline: same cluster/seed, no injector ---------------------------
    sim = scenario.build_cluster()
    sim.launch()
    sched = ResilientScheduler(sim, scenario.policy)
    result = sched.run_profile(scenario.build_profile(), scenario.deadline_s)
    report.baseline_seconds = result.total_seconds
    baseline_snap = sim.env.metrics.snapshot()
    sim.shutdown()

    # -- faulted: identical cluster, injector armed at the read stage -------
    sim = scenario.build_cluster()
    sim.launch()
    injector = FaultInjector(
        sim.cluster,
        mpi_world=sim.transport.mpi_world,
        executors=sim.executors,
        report=report,
    )
    injector.install(scenario.plan)
    sched = ResilientScheduler(sim, scenario.policy, report=report)

    def arm_at_read(stage) -> None:
        if isinstance(stage, ShuffleReadStage) and not injector._armed:
            injector.arm()

    sched.on_stage_start = arm_at_read
    t0 = sim.env.now
    try:
        sched.run_profile(scenario.build_profile(), scenario.deadline_s)
        report.job_completed = True
    except JobFailedError as exc:
        report.job_failure = str(exc)
    except (MPIError, SimError) as exc:
        # The transport tore the job down below the scheduler (e.g. a
        # world-abort surfacing through an event loop).
        report.job_failure = f"{type(exc).__name__}: {exc}"
    report.faulted_seconds = sim.env.now - t0
    # What the faults cost, counter by counter: extra tasks run, extra MPI
    # traffic, extra polling. Both runs share a seed, so nonzero deltas are
    # attributable to the injected faults (plus recovery work).
    faulted_snap = sim.env.metrics.snapshot()
    for pattern in ("spark.scheduler.*", "mpi.world.*", "netty.loop.*.poll_tax_s"):
        report.metric_deltas.update(faulted_snap.delta(baseline_snap, pattern))
    sim.shutdown()
    return report
