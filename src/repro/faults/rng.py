"""Seeded randomness for fault injection.

Thin facade over :mod:`repro.util.rng`: every stochastic decision in the
chaos engine (which message to drop, when a random fault fires) comes from
a :class:`SeededRng` substream derived from the plan seed, so one integer
reproduces an entire faulted simulation — including its availability
report, byte for byte.
"""

from __future__ import annotations

from repro.util.rng import SeededRng, derive_seed

__all__ = ["SeededRng", "derive_seed", "plan_stream", "chaos_stream"]


def plan_stream(seed: int) -> SeededRng:
    """RNG used to *build* a stochastic fault plan (spec times/targets)."""
    return SeededRng(derive_seed(seed, "faults", "plan"))


def chaos_stream(seed: int) -> SeededRng:
    """RNG used to *execute* per-message chaos (drop/delay/corrupt rolls)."""
    return SeededRng(derive_seed(seed, "faults", "chaos"))
