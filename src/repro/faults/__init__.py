"""repro.faults — fault injection & recovery for the simulated cluster.

The chaos engine for this reproduction: declarative fault plans
(:mod:`plan`), a simnet-level injector (:mod:`injector`), Spark-side
recovery semantics (:mod:`recovery`), a scenario harness (:mod:`chaos`),
and deterministic availability reports (:mod:`report`). The paper's Sec.
VI-A caveat — MPI's fault model is all-or-nothing unless ULFM-style
shrinking is assumed — becomes measurable here: identical fault plans,
four transports, very different blast radii.
"""

from repro.faults.chaos import ChaosScenario, make_chaos_profile, run_scenario
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ExecutorCrash,
    FaultPlan,
    FaultSpec,
    MessageChaos,
    NicDegradation,
    NodeCrash,
    Partition,
    RankKill,
)
from repro.faults.recovery import (
    ExecutorBlacklist,
    JobFailedError,
    RecoveryPolicy,
    ResilientScheduler,
)
from repro.faults.report import AvailabilityReport, FaultEvent, render_matrix
from repro.faults.rng import SeededRng, chaos_stream, derive_seed, plan_stream

__all__ = [
    "AvailabilityReport",
    "ChaosScenario",
    "ExecutorBlacklist",
    "ExecutorCrash",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "JobFailedError",
    "MessageChaos",
    "NicDegradation",
    "NodeCrash",
    "Partition",
    "RankKill",
    "RecoveryPolicy",
    "ResilientScheduler",
    "SeededRng",
    "chaos_stream",
    "derive_seed",
    "make_chaos_profile",
    "plan_stream",
    "render_matrix",
    "run_scenario",
]
