"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

The injector touches exactly one surface — the simnet layer's
:class:`~repro.simnet.topology.LinkState` and the cluster's per-message
``fault_filter`` hook. Everything above (TCP retransmission, MPI rank
death, Netty channel teardown, Spark task retry) reacts through its own
subscription to that state, so the blast radius of each fault is an
*emergent* property of the protocol stack under test, not something the
injector scripts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.faults.plan import (
    ExecutorCrash,
    FaultPlan,
    FaultSpec,
    MessageChaos,
    NicDegradation,
    NodeCrash,
    Partition,
    RankKill,
)
from repro.faults.rng import chaos_stream

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.report import AvailabilityReport
    from repro.mpi.runtime import MPIWorld
    from repro.simnet.topology import SimCluster, SimNode
    from repro.spark.deploy import SimExecutor


class FaultInjector:
    """Arms a fault plan against one simulated cluster."""

    def __init__(
        self,
        cluster: "SimCluster",
        mpi_world: "MPIWorld | None" = None,
        executors: "list[SimExecutor] | None" = None,
        report: "AvailabilityReport | None" = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.mpi_world = mpi_world
        self.executors = executors or []
        self.report = report
        self.plan: FaultPlan | None = None
        self.fired: list[FaultSpec] = []
        self._chaos_rng = chaos_stream(0)
        self._active_chaos: list[MessageChaos] = []
        self._armed = False

    def install(self, plan: FaultPlan) -> "FaultInjector":
        self.plan = plan
        self._chaos_rng = chaos_stream(plan.seed)
        return self

    def arm(self) -> None:
        """Start the countdowns, anchored at the current simulated time.

        Call this at the moment the plan's relative times should start
        running (e.g. when the shuffle-read stage begins).
        """
        if self.plan is None:
            raise RuntimeError("install() a FaultPlan before arming")
        if self._armed:
            raise RuntimeError("injector already armed")
        for spec in self.plan.specs:
            if isinstance(spec, ExecutorCrash) and not (
                0 <= spec.exec_id < len(self.executors)
            ):
                raise ValueError(
                    f"ExecutorCrash names executor {spec.exec_id}, but the "
                    f"cluster has {len(self.executors)} executors"
                )
        self._armed = True
        for i, spec in enumerate(self.plan.sorted_specs()):
            self.env.process(self._countdown(spec), name=f"fault-{i}")

    # -- firing -------------------------------------------------------------
    def _countdown(self, spec: FaultSpec) -> Generator:
        if spec.at_s > 0:
            yield self.env.timeout(spec.at_s)
        self._fire(spec)

    def _record(self, kind: str, detail: str) -> None:
        if self.report is not None:
            self.report.record(self.env.now, kind, detail)
        self.env.causal.event("fault.inject", None, kind=kind, detail=detail)

    def _fire(self, spec: FaultSpec) -> None:
        self.fired.append(spec)
        self._record(type(spec).__name__, spec.describe())
        if isinstance(spec, ExecutorCrash):
            ex = self.executors[spec.exec_id]
            ex.alive = False
            self.cluster.fail_node(ex.node)
        elif isinstance(spec, NodeCrash):
            self.cluster.fail_node(spec.node_index)
        elif isinstance(spec, NicDegradation):
            node = self.cluster.node(spec.node_index)
            self.cluster.link_state.degrade(node, spec.factor)
            if spec.duration_s is not None:
                self.env.process(
                    self._restore_later(node, spec.duration_s), name="nic-restore"
                )
        elif isinstance(spec, Partition):
            self.cluster.link_state.partition(spec.group_a, spec.group_b)
            if spec.duration_s is not None:
                self.env.process(
                    self._heal_later(spec.duration_s), name="partition-heal"
                )
        elif isinstance(spec, MessageChaos):
            self._active_chaos.append(spec)
            if self.cluster.fault_filter is None:
                self.cluster.fault_filter = self._fault_filter
            if spec.duration_s is not None:
                self.env.process(
                    self._end_chaos_later(spec, spec.duration_s), name="chaos-end"
                )
        elif isinstance(spec, RankKill):
            if self.mpi_world is None:
                self._record("skipped", "RankKill on a non-MPI transport")
            else:
                self.mpi_world.kill_process(spec.gid, reason="injected rank kill")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown fault spec {spec!r}")

    def _restore_later(self, node: "SimNode", after_s: float) -> Generator:
        yield self.env.timeout(after_s)
        self.cluster.link_state.restore(node)
        self._record("NicRestored", f"node {node.index} NIC back to full rate")

    def _heal_later(self, after_s: float) -> Generator:
        yield self.env.timeout(after_s)
        self.cluster.link_state.heal_partitions()
        self._record("Healed", "partitions healed")

    def _end_chaos_later(self, spec: MessageChaos, after_s: float) -> Generator:
        yield self.env.timeout(after_s)
        self._active_chaos.remove(spec)
        # Note ``==`` not ``is``: each ``self._fault_filter`` access builds a
        # fresh bound-method object, so identity would never match.
        if not self._active_chaos and self.cluster.fault_filter == self._fault_filter:
            self.cluster.fault_filter = None
        self._record("ChaosEnded", "message chaos window closed")

    # -- the per-message gremlin -------------------------------------------
    def _fault_filter(
        self, src: "SimNode", dst: "SimNode", nbytes: int, model: Any
    ) -> tuple[str, float] | None:
        for spec in self._active_chaos:
            if nbytes < spec.min_bytes:
                continue
            # One roll per hazard, in severity order, all from the seeded
            # chaos stream — identical seeds replay identical carnage.
            if spec.drop_p > 0 and self._chaos_rng.random() < spec.drop_p:
                return ("drop", 0.0)
            if spec.corrupt_p > 0 and self._chaos_rng.random() < spec.corrupt_p:
                return ("corrupt", 0.0)
            if spec.delay_p > 0 and self._chaos_rng.random() < spec.delay_p:
                return ("delay", spec.delay_s)
        return None
