"""Spark-side recovery: task retry, stage resubmission, blacklisting.

:class:`ResilientScheduler` is a fault-tolerant replacement for
``SparkSimCluster.run_profile``. It runs the same workload stages but
supervises every task: a task that dies with its executor is retried (with
backoff) on a survivor; a reduce task whose fetch fails raises
``FetchFailedException``, which — exactly as in Spark's DAGScheduler —
marks the source executor's map output lost, recomputes those map tasks on
survivors, redistributes the shuffle matrix, and resubmits only the
unfinished reduce tasks. Dead executors are blacklisted so retries never
land on them. Optional speculative execution races a second copy of
stragglers.

What it deliberately does *not* do is reach below the Spark layer: if the
transport underneath cannot survive a fault (MPI in world-abort mode),
every retry fails too and the job dies — that asymmetry between transports
under identical fault plans is the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.harness.profile import (
    RAMDISK_READ_BPS,
    RAMDISK_WRITE_BPS,
    TASK_SCHED_DELAY_S,
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
)
from repro.mpi.errors import WorldAbortedError
from repro.simnet.events import Interrupt, SimError
from repro.spark.deploy import RunResult, SimExecutor
from repro.spark.network import FetchFailedException

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.report import AvailabilityReport
    from repro.harness.profile import Stage, WorkloadProfile
    from repro.simnet.events import Process
    from repro.simnet.topology import SimNode
    from repro.spark.conf import SparkConf
    from repro.spark.deploy import SparkSimCluster


class JobFailedError(RuntimeError):
    """The job could not complete under the active fault plan."""


@dataclass
class RecoveryPolicy:
    """Knobs mirroring Spark's fault-tolerance configuration."""

    max_task_failures: int = 4  # spark.task.maxFailures
    max_stage_attempts: int = 4  # spark.stage.maxConsecutiveAttempts
    retry_backoff_s: float = 0.05
    blacklist_enabled: bool = True  # spark.blacklist.enabled
    speculation: bool = False  # spark.speculation
    speculation_multiplier: float = 1.5
    speculation_quantile: float = 0.75

    @classmethod
    def from_conf(cls, conf: "SparkConf") -> "RecoveryPolicy":
        return cls(
            max_task_failures=conf.get_int("spark.task.maxFailures", 4),
            max_stage_attempts=conf.get_int("spark.stage.maxConsecutiveAttempts", 4),
            blacklist_enabled=conf.get_bool("spark.blacklist.enabled", True),
            speculation=conf.get_bool("spark.speculation", False),
            speculation_multiplier=conf.get_float("spark.speculation.multiplier", 1.5),
            speculation_quantile=conf.get_float("spark.speculation.quantile", 0.75),
        )


class ExecutorBlacklist:
    """Executors the scheduler will no longer place tasks on."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._banned: set[int] = set()

    def add(self, exec_id: int) -> None:
        if self.enabled:
            self._banned.add(exec_id)

    def is_blacklisted(self, exec_id: int) -> bool:
        return exec_id in self._banned

    def __len__(self) -> int:
        return len(self._banned)


class ResilientScheduler:
    """Drives a workload profile with Spark's recovery semantics."""

    def __init__(
        self,
        sim: "SparkSimCluster",
        policy: RecoveryPolicy | None = None,
        report: "AvailabilityReport | None" = None,
    ) -> None:
        self.sim = sim
        self.policy = policy or RecoveryPolicy()
        self.report = report
        self.blacklist = ExecutorBlacklist(self.policy.blacklist_enabled)
        # Running task process -> the executor it occupies, so executor
        # death can interrupt exactly its own tasks.
        self._running: dict["Process", SimExecutor] = {}
        self._last_write: ShuffleWriteStage | None = None
        self._fetch_failed_execs: set[int] = set()
        # Collective transports: the current stage attempt's shared
        # alltoallv exchange (None on per-block transports). Rebuilt per
        # attempt so resubmission re-plans the traffic onto survivors.
        self._current_exchange = None
        # Hook: called with each stage right before it starts (the chaos
        # harness arms the fault injector at the shuffle-read stage).
        self.on_stage_start = None
        sim.cluster.link_state.on_change(self._on_link_event)

    # -- failure detection --------------------------------------------------
    def _on_link_event(self, kind: str, payload: Any) -> None:
        if kind != "node-failed":
            return
        self.sim.env.process(
            self._handle_node_failure(payload), name="driver-detect-failure"
        )

    def _handle_node_failure(self, node: "SimNode") -> Generator:
        # The driver learns of executor loss after the detection delay
        # (heartbeat timeout), not instantly.
        env = self.sim.env
        yield env.timeout(self.sim.cluster.link_state.detect_delay_s)
        for ex in self.sim.executors:
            if ex.node is not node:
                continue
            if ex.alive:
                ex.alive = False
            self.blacklist.add(ex.exec_id)
            if self.report is not None:
                self.report.executors_lost += 1
                self.report.blacklisted = len(self.blacklist)
                self.report.record(
                    env.now, "ExecutorLost", f"driver marked executor {ex.exec_id} lost"
                )
            for proc, owner in list(self._running.items()):
                if owner is ex and proc.is_alive:
                    proc.interrupt(("executor-lost", ex.exec_id))

    # -- job driving --------------------------------------------------------
    def run_profile(
        self, profile: "WorkloadProfile", deadline_s: float | None = None
    ) -> RunResult:
        sim = self.sim
        if not sim._launched:
            sim.launch()
        if profile.n_executors != sim.n_workers:
            raise ValueError(
                f"profile built for {profile.n_executors} executors, "
                f"cluster has {sim.n_workers}"
            )
        result = RunResult(
            workload=profile.name,
            transport=sim.transport.name,
            system=sim.system.name,
            n_workers=sim.n_workers,
            total_cores=sim.n_workers * sim.cores_per_executor,
            launch_seconds=sim.launch_seconds,
        )
        env = sim.env
        job = env.process(self._run_job(profile, result), name="driver-job")
        if deadline_s is None:
            env.run(until=job)
        else:
            env.run(until=env.any_of([job, env.timeout(deadline_s)]))
            if not job.triggered:
                raise JobFailedError(f"job exceeded deadline of {deadline_s:g}s")
        return result

    def _run_job(self, profile: "WorkloadProfile", result: RunResult) -> Generator:
        env = self.sim.env
        for stage in profile.stages:
            if self.on_stage_start is not None:
                self.on_stage_start(stage)
            t0 = env.now
            yield from self._run_stage(stage)
            result.stage_seconds[stage.label] = env.now - t0

    # -- stage machinery ----------------------------------------------------
    def _run_stage(self, stage: "Stage") -> Generator:
        env = self.sim.env
        if isinstance(stage, ShuffleReadStage):
            # Recovery rewrites the fetch matrix; keep the profile pristine.
            stage = ShuffleReadStage(
                stage.label,
                stage.fetch_bytes.copy(),
                stage.blocks.copy(),
                stage.combine_seconds_per_task.copy(),
            )
        if isinstance(stage, ShuffleWriteStage):
            self._last_write = stage
        finished: set[int] = set()
        durations: list[float] = []
        attempt = 0
        while len(finished) < stage.n_tasks:
            attempt += 1
            if attempt > self.policy.max_stage_attempts:
                raise JobFailedError(
                    f"stage {stage.label} exhausted "
                    f"{self.policy.max_stage_attempts} attempts"
                )
            self._fetch_failed_execs = set()
            pending = [t for t in range(stage.n_tasks) if t not in finished]
            self._current_exchange = None
            if isinstance(stage, ShuffleReadStage) and getattr(
                self.sim.transport, "collective_shuffle", False
            ):
                # One alltoallv per stage attempt: aggregate the pending
                # tasks' (possibly recovery-rewritten) fetch rows at their
                # planned executors. A participant dying mid-exchange fails
                # the whole exchange → FetchFailedException → this loop's
                # resubmission path, never a hang.
                placement: dict[int, int] = {}
                for t in pending:
                    ex = self._pick_executor(t)
                    if ex is None:
                        raise JobFailedError("no live executors left")
                    placement[t] = ex.exec_id
                self._current_exchange = self.sim.start_collective_exchange(
                    stage, self.sim.executors, tasks=pending,
                    placement=placement,
                )
            sups = [
                env.process(
                    self._supervise(stage, t, finished, durations),
                    name=f"{stage.label}-sup{t}",
                )
                for t in pending
            ]
            yield env.all_of(sups)
            if len(finished) == stage.n_tasks:
                return
            # Supervisors that hit FetchFailedException returned without
            # finishing: Spark's FetchFailed path — recompute the lost map
            # output, then resubmit only the unfinished reduce tasks.
            if self.report is not None:
                self.report.stage_resubmissions += 1
                self.report.record(
                    env.now,
                    "StageResubmit",
                    f"{stage.label} attempt {attempt} lost map output on "
                    f"executors {sorted(self._fetch_failed_execs)}",
                )
            yield from self._recover_lost_maps(stage)

    def _recover_lost_maps(self, stage: "Stage") -> Generator:
        """Recompute map output lost with dead executors, re-home its bytes."""
        env = self.sim.env
        lost = sorted(
            e
            for e in self._fetch_failed_execs
            if e is not None and not self._is_usable(self.sim.executors[e])
        )
        survivors = [ex for ex in self.sim.executors if self._is_usable(ex)]
        if not survivors:
            raise JobFailedError("no live executors left to recover onto")
        if not lost:
            # Transient fetch failure (chaos window, degraded NIC): nothing
            # to recompute — back off briefly and retry as-is.
            yield env.timeout(self.policy.retry_backoff_s)
            return
        # Re-run the parent write stage's tasks that lived on the lost
        # executors (their RAM-disk output died with the node).
        if self._last_write is not None:
            n_exec = len(self.sim.executors)
            redo = [
                t
                for t in range(self._last_write.n_tasks)
                if (t % n_exec) in lost
            ]
            procs = [
                env.process(
                    self._task_body(survivors[i % len(survivors)], self._last_write, t),
                    name=f"map-redo-{t}",
                )
                for i, t in enumerate(redo)
            ]
            if procs:
                yield env.all_of(procs)
        # The recomputed output now lives on survivors: move the lost
        # executors' fetch columns there, split evenly.
        if isinstance(stage, ShuffleReadStage):
            surv_ids = [ex.exec_id for ex in survivors]
            for e in lost:
                col_bytes = stage.fetch_bytes[:, e].copy()
                col_blocks = stage.blocks[:, e].copy()
                stage.fetch_bytes[:, e] = 0
                stage.blocks[:, e] = 0
                for s in surv_ids:
                    stage.fetch_bytes[:, s] += col_bytes / len(surv_ids)
                base = col_blocks // len(surv_ids)
                rem = col_blocks % len(surv_ids)
                for j, s in enumerate(surv_ids):
                    stage.blocks[:, s] += base + (rem > j)

    # -- task supervision ---------------------------------------------------
    def _is_usable(self, ex: SimExecutor) -> bool:
        return ex.alive and not self.blacklist.is_blacklisted(ex.exec_id)

    def _pick_executor(
        self, t: int, exclude: SimExecutor | None = None
    ) -> SimExecutor | None:
        live = [ex for ex in self.sim.executors if self._is_usable(ex)]
        if exclude is not None and len(live) > 1:
            live = [ex for ex in live if ex is not exclude]
        if not live:
            return None
        preferred = self.sim.executors[t % len(self.sim.executors)]
        if preferred in live:
            return preferred
        return live[t % len(live)]

    def _supervise(
        self, stage: "Stage", t: int, finished: set[int], durations: list[float]
    ) -> Generator:
        env = self.sim.env
        failures = 0
        while True:
            ex = self._pick_executor(t)
            if ex is None:
                raise JobFailedError("no live executors left")
            t0 = env.now
            proc = env.process(
                self._task_body(ex, stage, t), name=f"{stage.label}-t{t}f{failures}"
            )
            self._running[proc] = ex
            outcome = yield from self._await_task(proc, ex, stage, t, durations)
            if outcome == "done":
                durations.append(env.now - t0)
                finished.add(t)
                return
            if outcome == "fetch-failed":
                # Stage-level failure: settle quietly, the stage loop
                # resubmits this task after map recovery.
                return
            failures += 1
            if self.report is not None:
                self.report.task_retries += 1
            if failures > self.policy.max_task_failures:
                raise JobFailedError(
                    f"task {t} of {stage.label} failed "
                    f"{failures} times (> spark.task.maxFailures)"
                )
            yield env.timeout(self.policy.retry_backoff_s * failures)

    def _await_task(
        self,
        proc: "Process",
        ex: SimExecutor,
        stage: "Stage",
        t: int,
        durations: list[float],
    ) -> Generator:
        """Wait for one task attempt (racing a speculative copy if armed).

        Returns "done" | "retry" | "fetch-failed"; raises JobFailedError on
        unrecoverable outcomes.
        """
        env = self.sim.env
        copy: "Process | None" = None
        try:
            thr = self._speculation_threshold(stage, t, durations)
            if thr is not None:
                yield env.any_of([proc, env.timeout(thr)])
                if not proc.triggered:
                    ex2 = self._pick_executor(t, exclude=ex)
                    if ex2 is not None:
                        copy = env.process(
                            self._task_body(ex2, stage, t),
                            name=f"{stage.label}-t{t}spec",
                        )
                        self._running[copy] = ex2
                        if self.report is not None:
                            self.report.speculative_launches += 1
            if copy is None:
                yield proc
            else:
                yield env.any_of([proc, copy])
            return "done"
        except Interrupt:
            return "retry"
        except FetchFailedException as exc:
            if exc.exec_id is not None:
                self._fetch_failed_execs.add(exc.exec_id)
            return "fetch-failed"
        except WorldAbortedError as exc:
            raise JobFailedError(f"MPI world aborted: {exc}") from exc
        finally:
            # Whatever happened, no attempt of this task may keep running.
            for p in (proc, copy):
                if p is not None:
                    self._running.pop(p, None)
                    if p.is_alive:
                        p.interrupt("abandoned")

    def _speculation_threshold(
        self, stage: "Stage", t: int, durations: list[float]
    ) -> float | None:
        """Spark's rule: once a quantile of tasks finished, a task running
        longer than multiplier × median is a straggler. Before enough
        history exists, fall back on the task's nominal duration."""
        if not self.policy.speculation:
            return None
        need = max(1, int(self.policy.speculation_quantile * stage.n_tasks))
        if len(durations) >= need:
            median = sorted(durations)[len(durations) // 2]
            return max(self.policy.speculation_multiplier * median, TASK_SCHED_DELAY_S)
        nominal = self._nominal_seconds(stage, t)
        if nominal is None or nominal <= 0:
            return None
        return self.policy.speculation_multiplier * nominal + TASK_SCHED_DELAY_S

    def _nominal_seconds(self, stage: "Stage", t: int) -> float | None:
        infl = self.sim.transport.compute_inflation
        if isinstance(stage, ComputeStage):
            return float(stage.seconds_per_task[t]) * infl
        if isinstance(stage, ShuffleWriteStage):
            return (
                float(stage.seconds_per_task[t]) * infl
                + float(stage.write_bytes_per_task[t]) / RAMDISK_WRITE_BPS
            )
        return None  # read tasks: fetch time dominates and is not nominal

    # -- the task bodies (fault-aware variants of SimExecutor.run_*) --------
    def _task_body(self, ex: SimExecutor, stage: "Stage", t: int) -> Generator:
        env = self.sim.env
        infl = self.sim.transport.compute_inflation
        req = ex.slots.request()
        try:
            yield req
            if isinstance(stage, ComputeStage):
                yield env.timeout(
                    TASK_SCHED_DELAY_S + float(stage.seconds_per_task[t]) * infl
                )
            elif isinstance(stage, ShuffleWriteStage):
                yield env.timeout(
                    TASK_SCHED_DELAY_S
                    + float(stage.seconds_per_task[t]) * infl
                    + float(stage.write_bytes_per_task[t]) / RAMDISK_WRITE_BPS
                )
            elif isinstance(stage, ShuffleReadStage):
                yield env.timeout(TASK_SCHED_DELAY_S)
                fetch_row = stage.fetch_bytes[t]
                blocks_row = stage.blocks[t]
                local = float(fetch_row[ex.exec_id])
                if local > 0:
                    ex.bytes_read_local += int(local)
                    yield env.timeout(local / RAMDISK_READ_BPS)
                if self._current_exchange is not None:
                    # Collective transport: wait on the attempt's shared
                    # exchange (dead participants fail it → FetchFailed).
                    remote = float(fetch_row.sum() - fetch_row[ex.exec_id])
                    yield from ex.collective_fetch(
                        self._current_exchange, self.sim.executors, remote
                    )
                else:
                    # Dead sources are NOT filtered here: fetching from them
                    # is what raises FetchFailedException, triggering recovery.
                    sources = [
                        (src, int(fetch_row[src.exec_id]), int(blocks_row[src.exec_id]))
                        for src in self.sim.executors
                        if src.exec_id != ex.exec_id and fetch_row[src.exec_id] > 0
                    ]
                    yield from ex.fetch_shuffle(sources)
                yield env.timeout(float(stage.combine_seconds_per_task[t]) * infl)
            else:
                raise TypeError(f"unknown stage type {type(stage)}")
        finally:
            try:
                ex.slots.release(req)
            except SimError:  # pragma: no cover - defensive
                pass
