"""Fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a declarative schedule of :class:`FaultSpec`s.
Times are relative to an *anchor* chosen at arm time (typically the start
of the shuffle-read stage, so the same plan lands mid-shuffle on every
transport regardless of how fast each one reaches that point). Plans are
plain data: they can be built by hand for scripted scenarios or drawn from
a seeded RNG for stochastic soak runs — either way the same plan replays
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.rng import plan_stream


@dataclass(frozen=True)
class FaultSpec:
    """Base: one fault, fired ``at_s`` seconds after the plan's anchor."""

    at_s: float

    def describe(self) -> str:
        return f"{type(self).__name__}@+{self.at_s:g}s"


@dataclass(frozen=True)
class ExecutorCrash(FaultSpec):
    """Kill the node hosting one executor (JVM + host die together)."""

    exec_id: int = 0

    def describe(self) -> str:
        return f"crash executor {self.exec_id} at +{self.at_s:g}s"


@dataclass(frozen=True)
class NodeCrash(FaultSpec):
    """Kill an arbitrary cluster node by index."""

    node_index: int = 0

    def describe(self) -> str:
        return f"crash node {self.node_index} at +{self.at_s:g}s"


@dataclass(frozen=True)
class NicDegradation(FaultSpec):
    """Slow one node's NIC by ``factor`` (2.0 = half bandwidth)."""

    node_index: int = 0
    factor: float = 4.0
    duration_s: float | None = None  # None = until the end of the run

    def describe(self) -> str:
        dur = f" for {self.duration_s:g}s" if self.duration_s else ""
        return (
            f"degrade NIC of node {self.node_index} x{self.factor:g}"
            f" at +{self.at_s:g}s{dur}"
        )


@dataclass(frozen=True)
class Partition(FaultSpec):
    """Cut connectivity between two groups of node indices."""

    group_a: tuple[int, ...] = ()
    group_b: tuple[int, ...] = ()
    duration_s: float | None = None

    def describe(self) -> str:
        dur = f" for {self.duration_s:g}s" if self.duration_s else ""
        return (
            f"partition {list(self.group_a)} | {list(self.group_b)}"
            f" at +{self.at_s:g}s{dur}"
        )


@dataclass(frozen=True)
class MessageChaos(FaultSpec):
    """Probabilistic per-message faults on the wire (gremlin mode).

    Each in-flight message independently rolls against ``drop_p``,
    ``corrupt_p`` and ``delay_p`` (in that order) from the plan's seeded
    chaos stream. Only messages of at least ``min_bytes`` are eligible, so
    tiny control traffic (ACKs, RTS/CTS) can be spared.
    """

    drop_p: float = 0.0
    corrupt_p: float = 0.0
    delay_p: float = 0.0
    delay_s: float = 1e-3
    min_bytes: int = 0
    duration_s: float | None = None

    def describe(self) -> str:
        dur = f" for {self.duration_s:g}s" if self.duration_s else ""
        return (
            f"message chaos drop={self.drop_p:g} corrupt={self.corrupt_p:g} "
            f"delay={self.delay_p:g} at +{self.at_s:g}s{dur}"
        )


@dataclass(frozen=True)
class RankKill(FaultSpec):
    """Kill one MPI rank (the process, not its host) mid-run."""

    gid: int = 0

    def describe(self) -> str:
        return f"kill MPI rank gid={self.gid} at +{self.at_s:g}s"


@dataclass
class FaultPlan:
    """An ordered fault schedule plus the seed that reproduces it."""

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0
    name: str = "plan"

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def sorted_specs(self) -> list[FaultSpec]:
        return sorted(self.specs, key=lambda s: s.at_s)

    def describe(self) -> str:
        lines = [f"fault plan {self.name!r} (seed {self.seed}):"]
        lines.extend(f"  {s.describe()}" for s in self.sorted_specs())
        return "\n".join(lines)

    @classmethod
    def random(
        cls,
        seed: int,
        n_workers: int,
        window_s: float,
        n_faults: int = 3,
        allow_crashes: bool = True,
        name: str = "random",
    ) -> "FaultPlan":
        """Draw a stochastic plan: ``n_faults`` faults spread over a window.

        Same seed → same plan, always. Crashes are capped at one so the
        plan never partitions the job into an unwinnable state by itself.
        """
        rng = plan_stream(seed)
        plan = cls(seed=seed, name=name)
        crashed = False
        for _ in range(n_faults):
            at = rng.uniform(0.0, window_s)
            kind = rng.choice(["crash", "degrade", "chaos"])
            if kind == "crash" and allow_crashes and not crashed:
                crashed = True
                plan.add(ExecutorCrash(at_s=at, exec_id=rng.randrange(n_workers)))
            elif kind == "degrade":
                plan.add(
                    NicDegradation(
                        at_s=at,
                        # Executor i lives on node i+1 (node 0 is the driver).
                        node_index=1 + rng.randrange(n_workers),
                        factor=rng.uniform(2.0, 8.0),
                        duration_s=rng.uniform(0.1, window_s),
                    )
                )
            else:
                plan.add(
                    MessageChaos(
                        at_s=at,
                        drop_p=rng.uniform(0.0, 0.02),
                        delay_p=rng.uniform(0.0, 0.1),
                        delay_s=rng.uniform(1e-4, 5e-3),
                        duration_s=rng.uniform(0.1, window_s),
                    )
                )
        return plan
