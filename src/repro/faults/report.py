"""Availability reports: what happened, how long recovery took.

A :class:`AvailabilityReport` is the output artifact of one chaos run: the
fault timeline as injected, the recovery counters the scheduler recorded,
and the baseline-vs-faulted timing comparison. Rendering is fully
deterministic (fixed-precision formatting, no wall-clock anywhere) so two
same-seed runs produce byte-identical reports — that property is itself
asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as it actually fired (simulated time)."""

    t_s: float
    kind: str
    detail: str

    def render(self) -> str:
        return f"  t={self.t_s:.6f}s  {self.kind:<16} {self.detail}"


@dataclass
class AvailabilityReport:
    """Outcome of one (workload, transport, fault plan) cell."""

    scenario: str
    transport: str
    fault_mode: str  # "abort" | "shrink" | "n/a"
    seed: int
    timeline: list[FaultEvent] = field(default_factory=list)
    # -- recovery counters (filled by the scheduler) ------------------------
    task_retries: int = 0
    stage_resubmissions: int = 0
    executors_lost: int = 0
    speculative_launches: int = 0
    blacklisted: int = 0
    # -- outcome ------------------------------------------------------------
    job_completed: bool = False
    job_failure: str = ""
    baseline_seconds: float = 0.0
    faulted_seconds: float = 0.0
    # Counter-wise faulted-minus-baseline diffs for the scheduler/retry
    # metrics (repro.obs); zero deltas are dropped before they get here.
    metric_deltas: dict[str, float] = field(default_factory=dict)

    @property
    def recovery_seconds(self) -> float:
        """Extra job time attributable to the faults (0 if the job failed)."""
        if not self.job_completed:
            return 0.0
        return max(0.0, self.faulted_seconds - self.baseline_seconds)

    def record(self, t_s: float, kind: str, detail: str) -> None:
        self.timeline.append(FaultEvent(t_s, kind, detail))

    def render(self) -> str:
        lines = [
            f"scenario: {self.scenario}",
            f"transport: {self.transport} (fault mode: {self.fault_mode})",
            f"seed: {self.seed}",
            "faults injected:",
        ]
        if self.timeline:
            lines.extend(ev.render() for ev in self.timeline)
        else:
            lines.append("  (none)")
        lines.extend(
            [
                "recovery:",
                f"  task retries:        {self.task_retries}",
                f"  stage resubmissions: {self.stage_resubmissions}",
                f"  executors lost:      {self.executors_lost}",
                f"  speculative copies:  {self.speculative_launches}",
                f"  blacklisted:         {self.blacklisted}",
                "outcome:",
                f"  job completed:       {'yes' if self.job_completed else 'no'}"
                + (f" ({self.job_failure})" if self.job_failure else ""),
                f"  baseline:            {self.baseline_seconds:.6f}s",
                f"  with faults:         {self.faulted_seconds:.6f}s",
                f"  recovery overhead:   {self.recovery_seconds:.6f}s",
            ]
        )
        if self.metric_deltas:
            lines.append("metric deltas (faulted - baseline):")
            lines.extend(
                f"  {name:<36} {delta:+.6f}"
                for name, delta in sorted(self.metric_deltas.items())
            )
        return "\n".join(lines)


def render_matrix(reports: list[AvailabilityReport]) -> str:
    """One row per transport cell — the benchmark's summary table."""
    header = (
        f"{'transport':<18} {'mode':<7} {'completed':<10} "
        f"{'baseline_s':>12} {'faulted_s':>12} {'recovery_s':>12} "
        f"{'retries':>8} {'resubmits':>10} {'lost':>5}"
    )
    rows = [header, "-" * len(header)]
    for r in reports:
        rows.append(
            f"{r.transport:<18} {r.fault_mode:<7} "
            f"{('yes' if r.job_completed else 'no'):<10} "
            f"{r.baseline_seconds:>12.6f} {r.faulted_seconds:>12.6f} "
            f"{r.recovery_seconds:>12.6f} "
            f"{r.task_retries:>8} {r.stage_resubmissions:>10} "
            f"{r.executors_lost:>5}"
        )
    return "\n".join(rows)
