"""Per-workload compute cost calibration.

The simulation charges task compute time as ``records × per-record cost``.
Record sizes and per-record costs below are the calibration surface for
the end-to-end figures; each constant is derived from either the OHB /
HiBench workload definition or a documented back-of-envelope:

* OHB GroupByTest/SortByTest generate KB-scale key/value pairs; JVM-side
  costs of generating, partitioning+serializing and combining such records
  are single-digit microseconds each on a ~2.5 GHz Xeon core.
* The paper's own observation that shuffle "can account for 80% of total
  execution time" (Sec. VI-E) pins the compute:communication ratio for
  vanilla Spark on the OHB benchmarks: with the wire models of
  :mod:`repro.simnet.interconnect`, these constants put the vanilla
  shuffle-read share at ~80% on Frontera at 448 cores, matching the
  paper's stage breakdowns (Figs. 10-11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import US


@dataclass(frozen=True)
class WorkloadCosts:
    """Per-record task costs (seconds) and the workload's record size."""

    record_bytes: int
    gen_s: float  # generate one record (Job0 data generation)
    map_s: float  # partition + serialize one record (shuffle write)
    combine_s: float  # deserialize + combine one record (shuffle read)
    # Iterative workloads: per-record per-iteration model compute.
    iter_compute_s: float = 0.0
    iterations: int = 1

    def scaled_to_clock(self, clock_ghz: float, ref_ghz: float = 2.7) -> "WorkloadCosts":
        """Scale CPU costs to a slower/faster clock (Stampede2 is 2.1 GHz)."""
        f = ref_ghz / clock_ghz
        return WorkloadCosts(
            record_bytes=self.record_bytes,
            gen_s=self.gen_s * f,
            map_s=self.map_s * f,
            combine_s=self.combine_s * f,
            iter_compute_s=self.iter_compute_s * f,
            iterations=self.iterations,
        )


# --- OHB RDD benchmarks (Table IV) -----------------------------------------
# 1 KiB values, random integer keys. groupByKey moves every byte across the
# wire (no map-side combine); sortByKey adds sort CPU on the read side.
GROUP_BY_TEST = WorkloadCosts(
    record_bytes=1024,
    gen_s=14.0 * US,
    map_s=7.6 * US,
    combine_s=1.4 * US,
)

SORT_BY_TEST = WorkloadCosts(
    record_bytes=1024,
    gen_s=14.0 * US,
    map_s=8.0 * US,
    combine_s=2.4 * US,  # merge-sorting runs costs more than list append
)

# --- Intel HiBench (Table IV) ----------------------------------------------
# ML workloads iterate: per-iteration map-side compute dominates, with an
# aggregation/shuffle each round. record_bytes is the per-sample feature
# vector size at the "Huge" scale; iterations follow HiBench defaults.
HIBENCH_SVM = WorkloadCosts(
    record_bytes=800, gen_s=3.0 * US, map_s=1.2 * US, combine_s=1.0 * US,
    iter_compute_s=2.4 * US, iterations=100,
)
HIBENCH_LR = WorkloadCosts(
    record_bytes=800, gen_s=3.0 * US, map_s=1.2 * US, combine_s=1.0 * US,
    iter_compute_s=1.9 * US, iterations=100,
)
HIBENCH_GMM = WorkloadCosts(
    record_bytes=640, gen_s=3.0 * US, map_s=1.5 * US, combine_s=1.2 * US,
    iter_compute_s=5.5 * US, iterations=40,
)
# LDA shuffles document-topic distributions every iteration: much larger
# comm share than the other ML workloads (hence its 1.74x in Fig. 12a).
HIBENCH_LDA = WorkloadCosts(
    record_bytes=1200, gen_s=3.5 * US, map_s=2.0 * US, combine_s=1.6 * US,
    iter_compute_s=2.2 * US, iterations=20,
)
# Micro benchmarks: Repartition is pure shuffle; TeraSort is sort-heavy
# (compute-bound enough that transports tie, as the paper observes).
HIBENCH_REPARTITION = WorkloadCosts(
    record_bytes=200, gen_s=0.9 * US, map_s=0.55 * US, combine_s=0.4 * US,
)
# TeraSort's map/combine include Spark's sort spill/merge work, which
# keeps the benchmark CPU+HDFS bound (the paper's transports tie on it).
HIBENCH_TERASORT = WorkloadCosts(
    record_bytes=100, gen_s=0.9 * US, map_s=5.0 * US, combine_s=8.0 * US,
)
# NWeight: graph propagation, joins each hop.
HIBENCH_NWEIGHT = WorkloadCosts(
    record_bytes=600, gen_s=2.0 * US, map_s=1.6 * US, combine_s=1.3 * US,
    iter_compute_s=2.0 * US, iterations=3,
)

COSTS: dict[str, WorkloadCosts] = {
    "GroupByTest": GROUP_BY_TEST,
    "SortByTest": SORT_BY_TEST,
    "SVM": HIBENCH_SVM,
    "LR": HIBENCH_LR,
    "GMM": HIBENCH_GMM,
    "LDA": HIBENCH_LDA,
    "Repartition": HIBENCH_REPARTITION,
    "TeraSort": HIBENCH_TERASORT,
    "NWeight": HIBENCH_NWEIGHT,
}
