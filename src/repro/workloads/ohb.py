"""OSU HiBD Benchmarks (OHB) RDD workloads: GroupByTest and SortByTest.

Each workload exists in two coupled forms:

* :meth:`run_sample` — a *real* RDD program executed on the local backend
  at laptop scale, producing correctness results and an execution trace
  (stage structure, shuffle matrices, record counts);
* :meth:`build_profile` — the trace scaled to the paper's nominal data
  size and cluster geometry, ready for the simulated cluster.

OHB's GroupByTest creates (key, value) pairs and calls ``groupByKey`` —
every byte crosses the shuffle (no map-side combine). SortByTest calls
``sortByKey``, which first runs a range-sampling job, so its sort stages
are labeled Job2 (exactly as in the paper's Fig. 10b breakdown).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.harness.profile import (
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
    WorkloadProfile,
    _spread,
    measured_cv,
    scaled_read_matrices,
    spread_cpu,
)
from repro.harness.systems import SystemConfig
from repro.harness.tracecache import get_or_trace
from repro.spark import SparkConf, SparkContext
from repro.spark.tracing import SampleTrace
from repro.workloads.calibration import COSTS, WorkloadCosts

# Cache-key version tag for OHB sample traces: bump on any change to
# run_sample / build_rdd / the data plane that alters what a sample run
# records (stale disk entries then simply stop being addressed).
TRACE_VERSION = "ohb/1"

SAMPLE_DEFAULTS = {"num_pairs": 4000, "num_partitions": 4, "value_bytes": 64}


@dataclass
class OhbWorkload:
    """One OHB RDD benchmark."""

    name: str  # "GroupByTest" | "SortByTest"

    @property
    def costs(self) -> WorkloadCosts:
        return COSTS[self.name]

    # -- real execution (sample scale) ---------------------------------------
    def build_rdd(self, sc: SparkContext, num_pairs: int, num_partitions: int,
                  value_bytes: int = 64, seed: int = 42):
        """The OHB benchmark body as a real RDD program."""

        def gen(split: int):
            rng = random.Random(seed + split)
            per_part = num_pairs // num_partitions
            value = bytes(value_bytes)  # constant payload: build once
            for _ in range(per_part):
                yield (rng.randint(0, num_pairs), value)

        pairs = sc.generated(num_partitions, gen, name=f"{self.name}-datagen")
        if self.name == "GroupByTest":
            return pairs.group_by_key(num_partitions)
        if self.name == "SortByTest":
            return pairs.sort_by_key(num_partitions=num_partitions)
        raise ValueError(f"unknown OHB workload {self.name}")

    def run_sample(
        self, num_pairs: int = 4000, num_partitions: int = 4, value_bytes: int = 64
    ) -> SparkContext:
        """Execute at sample scale; returns the context (traces inside).

        Mirrors OHB's two-job structure: Job0 materializes (counts) the
        generated data, the later job performs the wide operation.
        """
        sc = SparkContext(SparkConf({"spark.default.parallelism": str(num_partitions)}))

        def gen(split: int):
            rng = random.Random(1234 + split)
            per_part = num_pairs // num_partitions
            value = bytes(value_bytes)  # constant payload: build once
            for _ in range(per_part):
                yield (rng.randint(0, num_pairs), value)

        pairs = sc.generated(num_partitions, gen, name=f"{self.name}-datagen").cache()
        assert pairs.count() == (num_pairs // num_partitions) * num_partitions  # Job0
        if self.name == "GroupByTest":
            result = pairs.group_by_key(num_partitions)
        else:
            result = pairs.sort_by_key(num_partitions=num_partitions)
        result.count()  # the shuffle job
        return sc

    def trace_sample(self, **params) -> SampleTrace:
        """Execute the sample run and freeze its traces (no caching)."""
        merged = {**SAMPLE_DEFAULTS, **params}
        sc = self.run_sample(**merged)
        return SampleTrace.from_recorder(sc.tracer, self.name, merged)

    def sample_trace(self, **params) -> SampleTrace:
        """The frozen sample trace, via the two-tier trace cache.

        The cache key covers the workload name, ``TRACE_VERSION``, the
        sample parameters and the workload's cost constants — nothing
        about transport/system/scale, because the trace depends on none
        of those.
        """
        merged = {**SAMPLE_DEFAULTS, **params}
        return get_or_trace(
            self.name,
            TRACE_VERSION,
            merged,
            lambda: self.trace_sample(**merged),
            cost_constants=self.costs,
        )

    # -- scaled profile ------------------------------------------------------------
    def build_profile(
        self,
        system: SystemConfig,
        n_workers: int,
        nominal_bytes: int,
        cores_per_executor: int | None = None,
        tasks_per_core: float = 1.0,
        fidelity: float = 1.0,
    ) -> WorkloadProfile:
        """Scale the sample trace to the paper's geometry.

        ``fidelity`` < 1 reduces the simulated task count (keeping total
        bytes/records constant) to trade event-level detail for runtime;
        stage *times* stay calibrated because per-task work scales up
        accordingly.
        """
        costs = self.costs.scaled_to_clock(system.clock_ghz)
        cores = cores_per_executor or system.threads_per_node
        total_cores = n_workers * cores
        n_tasks = max(n_workers, int(total_cores * tasks_per_core * fidelity))

        trace = self.sample_trace()
        if self.name == "GroupByTest":
            map_label, read_label = "Job1-ShuffleMapStage", "Job1-ResultStage"
        else:
            map_label, read_label = "Job2-ShuffleMapStage", "Job2-ResultStage"
        map_trace = trace.find_stage(map_label)
        cv = measured_cv(map_trace)

        total_records = nominal_bytes / costs.record_bytes

        gen_seconds = spread_cpu(
            total_records * costs.gen_s, n_tasks, total_cores, cv / 2, seed=7
        )
        map_seconds = spread_cpu(
            total_records * costs.map_s, n_tasks, total_cores, cv / 2, seed=11
        )
        write_bytes = _spread(float(nominal_bytes), n_tasks, cv / 2, seed=13)

        fetch, blocks, _records = scaled_read_matrices(
            total_bytes=float(nominal_bytes),
            total_records=total_records,
            n_tasks=n_tasks,
            n_executors=n_workers,
            n_map_tasks=n_tasks,
            cv=cv,
        )
        combine_seconds = spread_cpu(
            total_records * costs.combine_s, n_tasks, total_cores, cv / 2, seed=19
        )

        stages: list = [
            ComputeStage(label="Job0-ResultStage", seconds_per_task=gen_seconds),
        ]
        if self.name == "SortByTest":
            # The range-partitioner sampling job (why the sort is "Job2").
            sample_seconds = spread_cpu(
                total_records * 0.05 * costs.combine_s, n_tasks, total_cores, cv / 2, seed=17
            )
            stages.append(
                ComputeStage(label="Job1-ResultStage", seconds_per_task=sample_seconds)
            )
        stages.append(
            ShuffleWriteStage(
                label=map_label,
                seconds_per_task=map_seconds,
                write_bytes_per_task=write_bytes,
            )
        )
        stages.append(
            ShuffleReadStage(
                label=read_label,
                fetch_bytes=fetch,
                blocks=blocks,
                combine_seconds_per_task=combine_seconds,
            )
        )
        return WorkloadProfile(
            name=self.name,
            nominal_bytes=nominal_bytes,
            n_executors=n_workers,
            cores_per_executor=cores,
            stages=stages,
        )


GROUP_BY = OhbWorkload("GroupByTest")
SORT_BY = OhbWorkload("SortByTest")
