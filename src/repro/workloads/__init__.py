"""Benchmark workloads: OHB RDD benchmarks and the Intel HiBench suite."""

from repro.workloads.calibration import COSTS, WorkloadCosts
from repro.workloads.ohb import GROUP_BY, SORT_BY, OhbWorkload

__all__ = ["COSTS", "WorkloadCosts", "OhbWorkload", "GROUP_BY", "SORT_BY"]
