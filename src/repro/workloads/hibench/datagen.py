"""Synthetic data generators for the HiBench workloads (Table IV).

Each generator produces one RDD partition deterministically from its split
index, at *sample* scale; nominal ("Huge") sizes live in
:mod:`repro.workloads.hibench.suite` and only affect the scaled profiles.
"""

from __future__ import annotations

import random

import numpy as np

from repro.spark.context import SparkContext
from repro.spark.rdd import RDD


def labeled_points(
    sc: SparkContext, n_points: int, dim: int, num_partitions: int, seed: int = 5
) -> RDD:
    """(label, feature-vector) pairs for SVM / LogisticRegression."""

    def gen(split: int):
        rng = np.random.default_rng(seed + split)
        per = n_points // num_partitions
        w = np.linspace(-1, 1, dim)  # rng-free: hoisted out of the loop
        for _ in range(per):
            x = rng.normal(size=dim)
            label = 1.0 if float(x @ w) + rng.normal(0, 0.1) > 0 else -1.0
            yield (label, x)

    return sc.generated(num_partitions, gen, name="labeled-points")


def gaussian_mixture(
    sc: SparkContext, n_points: int, dim: int, k: int, num_partitions: int, seed: int = 9
) -> RDD:
    """Points drawn from k Gaussian components (for GMM)."""

    def gen(split: int):
        rng = np.random.default_rng(seed + split)
        per = n_points // num_partitions
        centers = np.stack([np.full(dim, 3.0 * c) for c in range(k)])
        for _ in range(per):
            c = rng.integers(0, k)
            yield centers[c] + rng.normal(size=dim)

    return sc.generated(num_partitions, gen, name="gmm-points")


def documents(
    sc: SparkContext,
    n_docs: int,
    vocab: int,
    words_per_doc: int,
    num_partitions: int,
    seed: int = 13,
) -> RDD:
    """(doc_id, [word ids]) for LDA (Zipf-ish word frequencies)."""

    def gen(split: int):
        rng = random.Random(seed + split)
        per = n_docs // num_partitions
        base = split * per
        for d in range(per):
            words = [
                min(int(rng.paretovariate(1.3)), vocab - 1)
                for _ in range(words_per_doc)
            ]
            yield (base + d, words)

    return sc.generated(num_partitions, gen, name="lda-docs")


def tera_records(
    sc: SparkContext, n_records: int, num_partitions: int, seed: int = 17
) -> RDD:
    """TeraSort records: 10-byte key, 90-byte payload."""

    def gen(split: int):
        rng = random.Random(seed + split)
        per = n_records // num_partitions
        payload = b"\x00" * 90  # constant: built once, not per record
        for _ in range(per):
            key = bytes(rng.getrandbits(8) for _ in range(10))
            yield (key, payload)

    return sc.generated(num_partitions, gen, name="tera-records")


def kv_records(
    sc: SparkContext, n_records: int, num_partitions: int, value_bytes: int = 92,
    seed: int = 21,
) -> RDD:
    """Generic records for the Repartition micro benchmark."""

    def gen(split: int):
        rng = random.Random(seed + split)
        per = n_records // num_partitions
        value = bytes(value_bytes)  # constant: built once, not per record
        for _ in range(per):
            yield (rng.getrandbits(32), value)

    return sc.generated(num_partitions, gen, name="kv-records")


def graph_edges(
    sc: SparkContext, n_vertices: int, avg_degree: int, num_partitions: int,
    seed: int = 29,
) -> RDD:
    """Weighted directed edges (src, (dst, weight)) for NWeight."""

    def gen(split: int):
        rng = random.Random(seed + split)
        per = n_vertices // num_partitions
        base = split * per
        for v in range(per):
            src = base + v
            for _ in range(avg_degree):
                dst = rng.randrange(n_vertices)
                yield (src, (dst, rng.random()))

    return sc.generated(num_partitions, gen, name="graph-edges")
