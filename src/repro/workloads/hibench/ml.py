"""HiBench machine-learning workloads as real RDD programs.

These are working (sample-scale) implementations of the four ML workloads
in the paper's Table IV: Logistic Regression and linear SVM by
minibatch-free gradient descent, a Gaussian Mixture Model by EM, and a
simplified-EM LDA whose per-iteration word-topic aggregation is a genuine
``reduceByKey`` shuffle — the communication pattern that gives LDA the
largest HiBench speedup in the paper (Fig. 12a).
"""

from __future__ import annotations

import numpy as np

from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.workloads.hibench import datagen


# ---------------------------------------------------------------------------
# Logistic Regression / SVM: map (per-partition gradient) + reduce
# ---------------------------------------------------------------------------

def train_logistic_regression(
    sc: SparkContext,
    n_points: int = 2000,
    dim: int = 10,
    iterations: int = 5,
    lr: float = 0.5,
    num_partitions: int = 4,
) -> np.ndarray:
    """Batch gradient descent on log-loss; returns the weight vector."""
    points = datagen.labeled_points(sc, n_points, dim, num_partitions).cache()
    n = points.count()
    w = np.zeros(dim)
    for _ in range(iterations):
        w_b = w  # "broadcast"

        def grad_part(it):
            g = np.zeros(dim)
            for label, x in it:
                margin = label * float(x @ w_b)
                g += -label * x / (1.0 + np.exp(margin))
            return [g]

        grads = sc.run_job(points, grad_part, description="lr gradient")
        total = np.sum([g[0] for g in grads], axis=0)
        w = w - lr * total / n
    return w


def train_svm(
    sc: SparkContext,
    n_points: int = 2000,
    dim: int = 10,
    iterations: int = 5,
    lr: float = 0.2,
    reg: float = 0.01,
    num_partitions: int = 4,
) -> np.ndarray:
    """Linear SVM by subgradient descent on the hinge loss."""
    points = datagen.labeled_points(sc, n_points, dim, num_partitions).cache()
    n = points.count()
    w = np.zeros(dim)
    for _ in range(iterations):
        w_b = w

        def grad_part(it):
            g = np.zeros(dim)
            for label, x in it:
                if label * float(x @ w_b) < 1.0:
                    g += -label * x
            return [g]

        grads = sc.run_job(points, grad_part, description="svm gradient")
        total = np.sum([g[0] for g in grads], axis=0)
        w = (1.0 - lr * reg) * w - lr * total / n
    return w


def classify(w: np.ndarray, x: np.ndarray) -> float:
    return 1.0 if float(x @ w) > 0 else -1.0


# ---------------------------------------------------------------------------
# Gaussian Mixture Model: EM with aggregated sufficient statistics
# ---------------------------------------------------------------------------

def train_gmm(
    sc: SparkContext,
    n_points: int = 1500,
    dim: int = 3,
    k: int = 3,
    iterations: int = 5,
    num_partitions: int = 4,
    seed: int = 9,
):
    """EM for a spherical GMM; returns (weights, means)."""
    points = datagen.gaussian_mixture(sc, n_points, dim, k, num_partitions, seed).cache()
    n = points.count()
    means = np.stack([np.full(dim, 3.0 * c + 0.5) for c in range(k)])
    weights = np.full(k, 1.0 / k)
    for _ in range(iterations):
        m_b, w_b = means, weights

        def estep(it):
            # sufficient statistics: responsibilities, weighted sums
            counts = np.zeros(k)
            sums = np.zeros((k, dim))
            for x in it:
                d2 = ((x - m_b) ** 2).sum(axis=1)
                resp = w_b * np.exp(-0.5 * d2)
                total = resp.sum()
                resp = resp / total if total > 0 else np.full(k, 1.0 / k)
                counts += resp
                sums += resp[:, None] * x
            return [(counts, sums)]

        stats = sc.run_job(points, estep, description="gmm estep")
        counts = np.sum([s[0][0] for s in stats], axis=0)
        sums = np.sum([s[0][1] for s in stats], axis=0)
        safe = np.maximum(counts, 1e-9)
        means = sums / safe[:, None]
        weights = counts / n
    return weights, means


# ---------------------------------------------------------------------------
# LDA: simplified EM whose word-topic update is a real shuffle
# ---------------------------------------------------------------------------

def train_lda(
    sc: SparkContext,
    n_docs: int = 400,
    vocab: int = 200,
    n_topics: int = 5,
    words_per_doc: int = 30,
    iterations: int = 3,
    num_partitions: int = 4,
    seed: int = 13,
) -> dict[int, np.ndarray]:
    """Returns word → topic-distribution. The per-iteration reduceByKey over
    (word, topic-counts) is the heavy shuffle the paper's LDA numbers show."""
    docs = datagen.documents(sc, n_docs, vocab, words_per_doc, num_partitions, seed)
    docs = docs.cache()
    rng = np.random.default_rng(seed)
    word_topic = {w: rng.dirichlet(np.ones(n_topics)) for w in range(vocab)}
    for _ in range(iterations):
        wt_b = word_topic

        def contributions(kv):
            _doc_id, words = kv
            # doc-topic proportions from current word-topic table
            theta = np.ones(n_topics) / n_topics
            for w in words:
                theta = theta + wt_b.get(w, np.ones(n_topics) / n_topics)
            theta = theta / theta.sum()
            out = []
            for w in words:
                phi = wt_b.get(w, np.ones(n_topics) / n_topics) * theta
                s = phi.sum()
                out.append((w, phi / s if s > 0 else theta))
            return out

        counts = (
            docs.flat_map(contributions)
            .reduce_by_key(lambda a, b: a + b, num_partitions)  # the shuffle
            .collect()
        )
        word_topic = {
            w: c / c.sum() if c.sum() > 0 else np.ones(n_topics) / n_topics
            for w, c in counts
        }
    return word_topic
