"""Intel HiBench workloads (Table IV): ML, micro and graph benchmarks.

Real sample-scale implementations (ml/micro/graph + datagen) plus the
Huge-scale simulation profiles (suite).
"""

from repro.workloads.hibench.suite import MAX_SIMULATED_ROUNDS, SPECS, HiBenchSpec

__all__ = ["SPECS", "HiBenchSpec", "MAX_SIMULATED_ROUNDS"]
