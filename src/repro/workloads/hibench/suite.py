"""HiBench workload specifications and scaled profiles (Fig. 12).

Every Table-IV workload has (a) a *real sample implementation* (see
:mod:`~repro.workloads.hibench.ml`, ``micro``, ``graph``) used by the
correctness tests and examples, and (b) a scaled :class:`WorkloadProfile`
for the simulated cluster, built here.

Profile shapes:

* **iterative** (SVM, LR, GMM, LDA, NWeight): data generation, then per
  iteration a compute stage plus an aggregation/shuffle round. The
  *shuffle volume per round* is each workload's communication knob,
  calibrated (constants below) so the vanilla-transport communication
  share matches what the paper's Fig-12 speedups imply. LDA and NWeight
  move data-proportional state each round (large shuffles); LR/SVM/GMM
  aggregate model-sized partials (small shuffles).
* **one-shot shuffle** (TeraSort, Repartition): generate, shuffle-write,
  shuffle-read — the OHB shape with workload-specific compute costs
  (TeraSort's sort CPU keeps it compute-bound; transports tie, as the
  paper observes).

Round aggregation: simulating 100 gradient-descent barriers individually
is event-count-prohibitive; iterations are folded into at most
``MAX_SIMULATED_ROUNDS`` rounds carrying proportionally more bytes and
compute. Totals (and therefore stage-time ratios) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.harness.profile import (
    ComputeStage,
    ShuffleReadStage,
    ShuffleWriteStage,
    WorkloadProfile,
    _spread,
    scaled_read_matrices,
    spread_cpu,
)
from repro.harness.systems import SystemConfig
from repro.harness.tracecache import get_or_trace
from repro.spark.conf import SparkConf
from repro.spark.context import SparkContext
from repro.spark.tracing import SampleTrace
from repro.util.units import GiB, MiB
from repro.workloads.calibration import COSTS

MAX_SIMULATED_ROUNDS = 8

# Cache-key version tag for HiBench sample traces (bump when a sample
# program or the data plane changes what a sample run records).
TRACE_VERSION = "hibench/1"

# HDFS on the evaluation nodes: effective per-node sequential throughput of
# the datanode path (disk/page-cache + HDFS protocol). HDFS replication
# traffic crosses the network over TCP for *every* transport — MPI4Spark
# only accelerates Spark's shuffle, not HDFS — so HDFS-heavy workloads
# (TeraSort) show small end-to-end gains, exactly as Fig. 12b reports.
HDFS_NODE_BPS = 0.55e9
HDFS_REPLICATION = 3


@dataclass(frozen=True)
class HiBenchSpec:
    """Shape parameters of one HiBench workload at the Huge scale."""

    name: str
    category: str
    nominal_bytes: int
    # iterative workloads: bytes shuffled per iteration
    shuffle_bytes_per_round: int = 0
    one_shot_shuffle: bool = False  # TeraSort / Repartition shape
    hdfs_input: bool = False  # Job0 reads the dataset from HDFS
    hdfs_output_bytes: int = 0  # final stage writes to HDFS
    hdfs_output_replicated: bool = True  # replication-3 pipeline on output
    description: str = ""

    def _hdfs_seconds(self, nbytes: float, n_workers: int, replicated: bool) -> float:
        """Cluster-wide HDFS time: local disk plus (for writes) the
        replication pipeline, which is transport-independent TCP traffic."""
        per_node = nbytes / n_workers
        t = per_node / HDFS_NODE_BPS
        if replicated:
            t *= HDFS_REPLICATION
        return t

    def build_profile(
        self,
        system: SystemConfig,
        n_workers: int,
        cores_per_executor: int | None = None,
        fidelity: float = 1.0,
    ) -> WorkloadProfile:
        costs = COSTS[self.name].scaled_to_clock(system.clock_ghz)
        cores = cores_per_executor or system.threads_per_node
        if system.hyperthreading and cores > system.cores_per_node:
            # Two hyperthreads share one core's pipelines: per-thread
            # throughput is ~60% of a dedicated core (SMT yields ~1.2x per
            # core, not 2x). This is why Stampede2's compute-bound
            # workloads show the paper's smaller speedups (Fig. 12c).
            costs = costs.scaled_to_clock(0.6, ref_ghz=1.0)
        total_cores = n_workers * cores
        n_tasks = max(n_workers, int(total_cores * fidelity))
        total_records = self.nominal_bytes / costs.record_bytes

        gen_cpu = spread_cpu(total_records * costs.gen_s, n_tasks, total_cores, 0.05, 7)
        if self.hdfs_input:
            # All of a node's tasks share its datanode: the per-node drain
            # time stretches every concurrent task, so it adds per task.
            gen_cpu = gen_cpu + self._hdfs_seconds(
                self.nominal_bytes, n_workers, replicated=False
            )
        stages: list = [
            ComputeStage(label="Job0-ResultStage", seconds_per_task=gen_cpu)
        ]

        if self.one_shot_shuffle:
            stages.append(
                ShuffleWriteStage(
                    label="Job1-ShuffleMapStage",
                    seconds_per_task=spread_cpu(
                        total_records * costs.map_s, n_tasks, total_cores, 0.05, 11
                    ),
                    write_bytes_per_task=_spread(
                        float(self.nominal_bytes), n_tasks, 0.05, 13
                    ),
                )
            )
            fetch, blocks, _records = scaled_read_matrices(
                float(self.nominal_bytes), total_records, n_tasks, n_workers, n_tasks, 0.05
            )
            stages.append(
                ShuffleReadStage(
                    label="Job1-ResultStage",
                    fetch_bytes=fetch,
                    blocks=blocks,
                    combine_seconds_per_task=spread_cpu(
                        total_records * costs.combine_s, n_tasks, total_cores, 0.05, 17
                    ),
                )
            )
        else:
            rounds = min(costs.iterations, MAX_SIMULATED_ROUNDS)
            fold = costs.iterations / rounds
            round_bytes = self.shuffle_bytes_per_round * fold
            round_compute = total_records * costs.iter_compute_s * fold
            round_records = round_bytes / max(costs.record_bytes, 1)
            for r in range(rounds):
                stages.append(
                    ComputeStage(
                        label=f"Iter{r}-ComputeStage",
                        seconds_per_task=spread_cpu(
                            round_compute, n_tasks, total_cores, 0.05, 31 + r
                        ),
                    )
                )
                stages.append(
                    ShuffleWriteStage(
                        label=f"Iter{r}-ShuffleMapStage",
                        seconds_per_task=spread_cpu(
                            round_records * costs.map_s, n_tasks, total_cores, 0.05, 47 + r
                        ),
                        write_bytes_per_task=_spread(round_bytes, n_tasks, 0.05, 53 + r),
                    )
                )
                fetch, blocks, _records = scaled_read_matrices(
                    round_bytes, round_records, n_tasks, n_workers, n_tasks, 0.05,
                    seed=61 + r,
                )
                stages.append(
                    ShuffleReadStage(
                        label=f"Iter{r}-ResultStage",
                        fetch_bytes=fetch,
                        blocks=blocks,
                        combine_seconds_per_task=spread_cpu(
                            round_records * costs.combine_s, n_tasks, total_cores,
                            0.05, 71 + r,
                        ),
                    )
                )
        if self.hdfs_output_bytes:
            out_t = self._hdfs_seconds(
                self.hdfs_output_bytes, n_workers,
                replicated=self.hdfs_output_replicated,
            )
            stages.append(
                ComputeStage(
                    label="JobN-HdfsOutputStage",
                    seconds_per_task=np.full(n_tasks, out_t),
                )
            )
        return WorkloadProfile(
            name=self.name,
            nominal_bytes=self.nominal_bytes,
            n_executors=n_workers,
            cores_per_executor=cores,
            stages=stages,
        )

    def trace_sample(self, **params) -> SampleTrace:
        """Execute this workload's real sample program; freeze the traces.

        Unlike OHB, the HiBench profiles above are analytic (calibrated
        constants), so the sample trace feeds correctness tests and the
        perf suite's cold/warm cells rather than ``build_profile``.
        """
        program = SAMPLE_PROGRAMS.get(self.name)
        if program is None:
            raise KeyError(f"no sample program registered for {self.name!r}")
        merged = {**SAMPLE_PARAM_DEFAULTS[self.name], **params}
        sc = SparkContext(SparkConf({"spark.default.parallelism": "4"}))
        program(sc, **merged)
        return SampleTrace.from_recorder(sc.tracer, self.name, merged)

    def sample_trace(self, **params) -> SampleTrace:
        """The frozen sample trace, via the two-tier trace cache."""
        merged = {**SAMPLE_PARAM_DEFAULTS[self.name], **params}
        return get_or_trace(
            self.name,
            TRACE_VERSION,
            merged,
            lambda: self.trace_sample(**merged),
            cost_constants=COSTS[self.name],
        )


# -- sample programs (real executions, traced) ------------------------------
# Imported lazily inside each runner: ml/micro/graph import the hibench
# package, which imports this module at package-init time.

def _sample_svm(sc, **kw):
    from repro.workloads.hibench import ml

    ml.train_svm(sc, **kw)


def _sample_lr(sc, **kw):
    from repro.workloads.hibench import ml

    ml.train_logistic_regression(sc, **kw)


def _sample_gmm(sc, **kw):
    from repro.workloads.hibench import ml

    ml.train_gmm(sc, **kw)


def _sample_lda(sc, **kw):
    from repro.workloads.hibench import ml

    ml.train_lda(sc, **kw)


def _sample_terasort(sc, **kw):
    from repro.workloads.hibench import micro

    micro.terasort(sc, **kw).count()


def _sample_repartition(sc, **kw):
    from repro.workloads.hibench import micro

    micro.repartition(sc, **kw).count()


def _sample_nweight(sc, **kw):
    from repro.workloads.hibench import graph

    graph.nweight(sc, **kw).count()


SAMPLE_PROGRAMS: dict[str, Callable] = {
    "SVM": _sample_svm,
    "LR": _sample_lr,
    "GMM": _sample_gmm,
    "LDA": _sample_lda,
    "TeraSort": _sample_terasort,
    "Repartition": _sample_repartition,
    "NWeight": _sample_nweight,
}

# Fixed sample-scale parameters: part of the trace-cache key, so changing
# them addresses new cache entries rather than invalidating old ones.
SAMPLE_PARAM_DEFAULTS: dict[str, dict] = {
    "SVM": {"n_points": 800, "dim": 8, "iterations": 2},
    "LR": {"n_points": 800, "dim": 8, "iterations": 2},
    "GMM": {"n_points": 600, "dim": 2, "k": 3, "iterations": 2},
    "LDA": {"n_docs": 120, "vocab": 80, "n_topics": 4, "words_per_doc": 12,
            "iterations": 1},
    "TeraSort": {"n_records": 3000, "num_partitions": 4},
    "Repartition": {"n_records": 2000, "num_partitions": 4},
    "NWeight": {"n_vertices": 80, "avg_degree": 3, "hops": 2},
}


# ---------------------------------------------------------------------------
# The Huge-scale specs. shuffle_bytes_per_round values are calibrated so the
# vanilla communication share reproduces the paper's Fig-12 speedups (the
# implied shares: LDA ~46%, SVM ~16%, GMM ~36%, LR ~38% @2.17x on OPA,
# Repartition ~36%, NWeight ~41%, TeraSort ~0 i.e. compute-bound).
# ---------------------------------------------------------------------------

SPECS: dict[str, HiBenchSpec] = {
    "SVM": HiBenchSpec(
        name="SVM", category="Machine Learning", nominal_bytes=48 * GiB,
        shuffle_bytes_per_round=290 * MiB,
        description="Support Vector Machine by hinge-loss gradient descent",
    ),
    "LR": HiBenchSpec(
        name="LR", category="Machine Learning", nominal_bytes=48 * GiB,
        shuffle_bytes_per_round=2500 * MiB,
        description="Logistic Regression by log-loss gradient descent",
    ),
    "GMM": HiBenchSpec(
        name="GMM", category="Machine Learning", nominal_bytes=40 * GiB,
        shuffle_bytes_per_round=2160 * MiB,
        description="Gaussian Mixture Model by EM",
    ),
    "LDA": HiBenchSpec(
        name="LDA", category="Machine Learning", nominal_bytes=48 * GiB,
        shuffle_bytes_per_round=1000 * MiB,
        description="Latent Dirichlet Allocation (word-topic shuffle each round)",
    ),
    "Repartition": HiBenchSpec(
        name="Repartition", category="Micro Benchmarks", nominal_bytes=96 * GiB,
        one_shot_shuffle=True, hdfs_input=True, hdfs_output_bytes=96 * GiB,
        hdfs_output_replicated=False,
        description="Round-robin every record to a new partition (pure shuffle)",
    ),
    "TeraSort": HiBenchSpec(
        name="TeraSort", category="Micro Benchmarks", nominal_bytes=64 * GiB,
        one_shot_shuffle=True, hdfs_input=True, hdfs_output_bytes=64 * GiB,
        description="Sort 100-byte records by 10-byte key (sort + HDFS bound)",
    ),
    "NWeight": HiBenchSpec(
        name="NWeight", category="Graph", nominal_bytes=32 * GiB,
        shuffle_bytes_per_round=1400 * MiB,
        description="n-hop vertex associations (join-shaped shuffle per hop)",
    ),
}
