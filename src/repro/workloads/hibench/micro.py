"""HiBench micro benchmarks: TeraSort and Repartition (Table IV)."""

from __future__ import annotations

from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.workloads.hibench import datagen


def terasort(
    sc: SparkContext, n_records: int = 3000, num_partitions: int = 4
) -> RDD:
    """Sort 100-byte records by their 10-byte key (the TeraSort kernel)."""
    records = datagen.tera_records(sc, n_records, num_partitions)
    return records.sort_by_key(num_partitions=num_partitions)


def repartition(
    sc: SparkContext, n_records: int = 3000, num_partitions: int = 4,
    target_partitions: int | None = None,
) -> RDD:
    """Round-robin every record to a new partition — pure shuffle."""
    records = datagen.kv_records(sc, n_records, num_partitions)
    return records.repartition(target_partitions or num_partitions)
