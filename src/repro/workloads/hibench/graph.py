"""HiBench graph workload: NWeight.

NWeight "computes associations between two vertices that are n-hop away"
(Table IV): starting from direct edge weights, each hop joins the current
association list with the adjacency list and aggregates path weights —
a join-shaped shuffle every hop.
"""

from __future__ import annotations

from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.workloads.hibench import datagen

# Keep only the strongest k associations per vertex each hop (as HiBench does).
TOP_K = 10


def nweight(
    sc: SparkContext,
    n_vertices: int = 120,
    avg_degree: int = 4,
    hops: int = 2,
    num_partitions: int = 4,
) -> RDD:
    """Returns (vertex, [(other_vertex, weight)]) after ``hops`` hops."""
    edges = datagen.graph_edges(sc, n_vertices, avg_degree, num_partitions).cache()
    # associations: (vertex, [(reachable, weight)])
    assoc = edges.map_values(lambda dw: [dw]).reduce_by_key(
        lambda a, b: a + b, num_partitions
    )
    for _ in range(hops - 1):
        # one hop: for each (v -> u, w1) and association (u -> t, w2),
        # produce (v -> t, w1*w2). Join on the intermediate vertex u.
        flipped = edges  # (src, (dst, w))
        hop = (
            flipped.map(lambda kv: (kv[1][0], (kv[0], kv[1][1])))  # (dst, (src, w))
            .join(assoc, num_partitions)  # (u, ((v, w1), [(t, w2)...]))
            .flat_map(
                lambda kv: [
                    (src, (t, w1 * w2))
                    for (src, w1) in [kv[1][0]]
                    for (t, w2) in kv[1][1]
                ]
            )
            .group_by_key(num_partitions)
        )

        def top_k(pairs):
            best: dict[int, float] = {}
            for t, w in pairs:
                if t not in best or w > best[t]:
                    best[t] = w
            ranked = sorted(best.items(), key=lambda tw: -tw[1])[:TOP_K]
            return ranked

        assoc = hop.map_values(top_k)
    return assoc
