"""Multi-tenant job server: continuous arrivals over a long-lived cluster.

The contention-study layer on top of :mod:`repro.spark.deploy` (DESIGN.md
§13): seeded arrival traces (:mod:`~repro.jobserver.arrivals`), pluggable
inter-job schedulers (:mod:`~repro.jobserver.schedulers`), the server
itself (:mod:`~repro.jobserver.server`), a Gym-style decision-point env
(:mod:`~repro.jobserver.env`) and the JCT/queueing-delay report layer
(:mod:`~repro.jobserver.report`).
"""

from repro.jobserver.arrivals import (
    DEFAULT_MIX,
    ArrivalTrace,
    JobRequest,
    poisson_trace,
    trace_from_rows,
)
from repro.jobserver.env import JobServerEnv
from repro.jobserver.report import CellStats, JobServerReport, cell_stats
from repro.jobserver.schedulers import (
    SCHEDULERS,
    Admission,
    ClusterView,
    FairShareScheduler,
    FifoScheduler,
    InterJobScheduler,
    PackingScheduler,
    PendingJob,
    RunningJob,
    SchedulePlan,
    maxmin_allocation,
    scheduler_from_conf,
)
from repro.jobserver.server import (
    JobRecord,
    JobServer,
    JobServerResult,
    build_job_profile,
    run_trace,
)

__all__ = [
    "DEFAULT_MIX",
    "ArrivalTrace",
    "JobRequest",
    "poisson_trace",
    "trace_from_rows",
    "JobServerEnv",
    "CellStats",
    "JobServerReport",
    "cell_stats",
    "SCHEDULERS",
    "Admission",
    "ClusterView",
    "FairShareScheduler",
    "FifoScheduler",
    "InterJobScheduler",
    "PackingScheduler",
    "PendingJob",
    "RunningJob",
    "SchedulePlan",
    "maxmin_allocation",
    "scheduler_from_conf",
    "JobRecord",
    "JobServer",
    "JobServerResult",
    "build_job_profile",
    "run_trace",
]
