"""Pluggable inter-job schedulers for the multi-tenant job server.

A scheduler sees an immutable :class:`ClusterView` (queue + running set +
slot inventory) and returns a :class:`SchedulePlan` (who to admit, with
what concurrency grant, optionally re-capping running jobs). The server
applies the plan; schedulers never touch simulation state directly, which
is what makes them swappable and scriptable (see ``repro.jobserver.env``
for the Gym-style wrapper over the same interface).

Three built-ins mirror the classic inter-job policies:

* :class:`FifoScheduler` — strict arrival order, head-of-line blocking.
* :class:`FairShareScheduler` — max-min (water-filling) slot shares,
  re-capped on every arrival/completion.
* :class:`PackingScheduler` — grants *whole executors* (best-fit subset)
  so tenants never share an executor's task slots; backfills behind a
  blocked head job.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PendingJob:
    """A submitted-but-not-started application, as the scheduler sees it."""

    app_id: int
    workload: str
    submit_s: float
    parallelism: int  # requested concurrent-task slots


@dataclass(frozen=True)
class RunningJob:
    """An admitted application currently executing."""

    app_id: int
    parallelism: int  # original request
    granted: int  # current concurrency grant (gate capacity or subset slots)
    executor_ids: tuple[int, ...] | None = None  # None = runs on all executors


@dataclass(frozen=True)
class ClusterView:
    """Immutable scheduler-facing snapshot of the cluster."""

    now: float
    executor_slots: tuple[tuple[int, int], ...]  # (exec_id, task slots)
    pending: tuple[PendingJob, ...]  # arrival order
    running: tuple[RunningJob, ...]

    @property
    def total_slots(self) -> int:
        return sum(s for _, s in self.executor_slots)

    @property
    def granted_slots(self) -> int:
        return sum(r.granted for r in self.running)

    @property
    def free_slots(self) -> int:
        return self.total_slots - self.granted_slots

    def free_executors(self) -> tuple[tuple[int, int], ...]:
        """Executors not reserved by any running job (packing inventory)."""
        taken: set[int] = set()
        for r in self.running:
            if r.executor_ids is not None:
                taken.update(r.executor_ids)
        return tuple((e, s) for e, s in self.executor_slots if e not in taken)


@dataclass(frozen=True)
class Admission:
    """Start one pending application with the given grant."""

    app_id: int
    slots: int  # concurrency grant (SlotGate capacity)
    executor_ids: tuple[int, ...] | None = None  # packing: dedicated subset


@dataclass(frozen=True)
class SchedulePlan:
    """The scheduler's decision at one decision point."""

    admit: tuple[Admission, ...] = ()
    recap: tuple[tuple[int, int], ...] = ()  # (app_id, new grant) for running


class InterJobScheduler:
    """Interface: map a :class:`ClusterView` to a :class:`SchedulePlan`.

    ``plan`` is called at every decision point (job arrival, job
    completion) and must be a pure function of the view — no hidden
    clock or RNG state — so replays are deterministic.
    """

    name = "abstract"

    def plan(self, view: ClusterView) -> SchedulePlan:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class FifoScheduler(InterJobScheduler):
    """Strict arrival-order admission with head-of-line blocking.

    The head job starts once enough free slots cover its requested
    parallelism; jobs behind it wait even if they would fit (that is the
    policy's defining pathology, and what fair-share/packing fix).
    """

    name = "fifo"

    def plan(self, view: ClusterView) -> SchedulePlan:
        free = view.free_slots
        admissions: list[Admission] = []
        for job in view.pending:
            want = min(job.parallelism, view.total_slots)
            if want > free:
                break  # head-of-line: never skip ahead
            admissions.append(Admission(app_id=job.app_id, slots=want))
            free -= want
        return SchedulePlan(admit=tuple(admissions))


def maxmin_allocation(requests: list[int], capacity: int) -> list[int]:
    """Max-min fair (water-filling) integer allocation.

    Each requester gets ``min(request, fair share)``; capacity freed by
    small requests is redistributed to the still-unsatisfied, largest
    requests first by repeated water-filling. Leftover slots that no
    request wants stay free. Ties in the final single-slot remainder go to
    earlier requesters (stable, deterministic).
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    n = len(requests)
    alloc = [0] * n
    remaining = capacity
    unsat = [i for i in range(n) if requests[i] > 0]
    while unsat and remaining >= len(unsat):
        share = remaining // len(unsat)
        progressed = False
        for i in list(unsat):
            give = min(share, requests[i] - alloc[i])
            if give > 0:
                alloc[i] += give
                remaining -= give
                progressed = True
            if alloc[i] >= requests[i]:
                unsat.remove(i)
        if not progressed:
            break
    # Distribute an integer remainder one slot at a time, earliest first.
    for i in unsat:
        if remaining <= 0:
            break
        alloc[i] += 1
        remaining -= 1
    return alloc


class FairShareScheduler(InterJobScheduler):
    """Max-min fair slot shares across all admitted applications.

    Admits pending jobs (arrival order) while every admitted job can still
    hold at least one slot, then water-fills the whole slot pool over the
    running set. Shares shrink as tenants arrive and grow back as they
    finish — the server applies the ``recap`` entries to each job's
    :class:`~repro.simnet.resources.SlotGate`, which never preempts
    in-flight tasks (caps tighten as tasks drain).
    """

    name = "fair"

    def plan(self, view: ClusterView) -> SchedulePlan:
        total = view.total_slots
        admitted: list[PendingJob] = []
        for job in view.pending:
            if len(view.running) + len(admitted) + 1 > total:
                break  # below 1 slot per job: stop admitting
            admitted.append(job)
        members: list[tuple[int, int]] = [
            (r.app_id, r.parallelism) for r in view.running
        ] + [(j.app_id, min(j.parallelism, total)) for j in admitted]
        alloc = maxmin_allocation([req for _, req in members], total)
        shares = {app_id: a for (app_id, _), a in zip(members, alloc)}
        admissions = tuple(
            Admission(app_id=j.app_id, slots=max(1, shares[j.app_id]))
            for j in admitted
        )
        recaps = tuple(
            (r.app_id, max(1, shares[r.app_id]))
            for r in view.running
            if shares[r.app_id] != r.granted
        )
        return SchedulePlan(admit=admissions, recap=recaps)


class PackingScheduler(InterJobScheduler):
    """Best-fit whole-executor packing with backfill.

    Each admitted job gets a dedicated executor subset whose summed task
    slots cover its requested parallelism; executors are never shared, so
    no tenant can oversubscribe another's slots (shuffle locality also
    stays within the subset). Subsets are chosen best-fit: the feasible
    combination with the least slot waste, smallest executor count as the
    tie-break. If the head job cannot fit, later jobs may backfill onto
    the remaining free executors.
    """

    name = "pack"

    def __init__(self, max_subset: int = 8) -> None:
        self.max_subset = max_subset

    def plan(self, view: ClusterView) -> SchedulePlan:
        free = list(view.free_executors())
        admissions: list[Admission] = []
        for job in view.pending:
            want = min(job.parallelism, view.total_slots)
            subset = self._best_fit(free, want)
            if subset is None:
                continue  # backfill: try the next pending job
            admissions.append(
                Admission(
                    app_id=job.app_id,
                    slots=sum(s for _, s in subset),
                    executor_ids=tuple(e for e, _ in subset),
                )
            )
            chosen = {e for e, _ in subset}
            free = [(e, s) for e, s in free if e not in chosen]
        return SchedulePlan(admit=tuple(admissions))

    def _best_fit(
        self, free: list[tuple[int, int]], want: int
    ) -> list[tuple[int, int]] | None:
        """Smallest-waste executor subset with >= ``want`` summed slots."""
        if sum(s for _, s in free) < want:
            return None
        best: list[tuple[int, int]] | None = None
        best_key: tuple[int, int] | None = None
        # Greedy seed-and-grow: anchor on each executor (largest first),
        # then add the largest remaining until the request is covered.
        # Executor counts are small (<= tens), so this stays cheap while
        # finding tight subsets in practice.
        order = sorted(free, key=lambda es: (-es[1], es[0]))
        for start in range(len(order)):
            subset: list[tuple[int, int]] = []
            got = 0
            for e, s in order[start:]:
                if got >= want or len(subset) >= self.max_subset:
                    break
                subset.append((e, s))
                got += s
            if got < want:
                continue
            key = (got - want, len(subset))
            if best_key is None or key < best_key:
                best, best_key = subset, key
        if best is None:
            return None
        return sorted(best, key=lambda es: es[0])


@dataclass
class SchedulerRegistry:
    """Name → factory map so benchmarks/CLI can select by string."""

    factories: dict = field(
        default_factory=lambda: {
            "fifo": FifoScheduler,
            "fair": FairShareScheduler,
            "pack": PackingScheduler,
        }
    )

    def create(self, name: str) -> InterJobScheduler:
        try:
            return self.factories[name]()
        except KeyError:
            raise KeyError(
                f"unknown scheduler {name!r}; known: {sorted(self.factories)}"
            ) from None


SCHEDULERS = SchedulerRegistry()


def scheduler_from_conf(conf) -> InterJobScheduler:
    """Build the scheduler named by ``spark.repro.jobserver.scheduler``."""
    return SCHEDULERS.create(str(conf.get("spark.repro.jobserver.scheduler", "fifo")))
