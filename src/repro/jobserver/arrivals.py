"""Seeded workload generator: continuous job arrivals for the job server.

The paper (and all five reproduced figures) benchmark one application at
a time; production Spark clusters serve a *stream* of concurrent
applications, where inter-job scheduling and contention dominate observed
latency. This module produces that stream: a Poisson (exponential
inter-arrival) or trace-driven sequence of :class:`JobRequest` submissions
whose workloads are drawn from the reproduced suites (OHB GroupBy/SortBy
plus the HiBench specs) with per-job sizes and parallelism sampled from a
seeded distribution.

Determinism contract: every draw for job ``i`` comes from a substream
keyed ``(trace seed, "job", i)`` — never from a shared sequential stream —
so job ``i`` of a 2-job trace is byte-identical to job ``i`` of a 50-job
trace with the same seed, and adding/removing neighbours can never perturb
an existing job's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.rng import SeededRng, derive_seed
from repro.util.units import GiB, MiB

# Default job mix: OHB micro-shuffles plus a compute-heavy, an
# iterate-heavy and an HDFS-heavy HiBench member, weighted toward the
# shuffle-dominated workloads the paper's transports differentiate on.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("GroupByTest", 0.30),
    ("SortByTest", 0.25),
    ("LR", 0.15),
    ("GMM", 0.15),
    ("TeraSort", 0.15),
)

OHB_WORKLOADS = ("GroupByTest", "SortByTest")


@dataclass(frozen=True)
class JobRequest:
    """One application submission in an arrival trace."""

    app_id: int
    workload: str  # registry name (OHB workload or HiBench spec)
    submit_s: float  # arrival time on the server's clock
    nominal_bytes: int  # per-job data size (seeded sample)
    parallelism: int  # requested concurrent-task slots
    fidelity: float = 0.5  # task-folding fidelity for the scaled profile

    @property
    def name(self) -> str:
        return f"app{self.app_id}-{self.workload}"


@dataclass(frozen=True)
class ArrivalTrace:
    """A frozen, seeded sequence of job submissions."""

    seed: int
    jobs: tuple[JobRequest, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def makespan_floor_s(self) -> float:
        """Last arrival time — a lower bound on the trace's busy period."""
        return self.jobs[-1].submit_s if self.jobs else 0.0

    def head(self, n: int) -> "ArrivalTrace":
        """The first ``n`` arrivals (same seed, same per-job draws)."""
        return replace(self, jobs=self.jobs[:n])

    def as_rows(self) -> list[dict]:
        return [
            {
                "app_id": j.app_id,
                "workload": j.workload,
                "submit_s": j.submit_s,
                "nominal_bytes": j.nominal_bytes,
                "parallelism": j.parallelism,
                "fidelity": j.fidelity,
            }
            for j in self.jobs
        ]


def _pick_weighted(rng: SeededRng, mix: tuple[tuple[str, float], ...]) -> str:
    total = sum(w for _, w in mix)
    x = rng.random() * total
    acc = 0.0
    for name, w in mix:
        acc += w
        if x < acc:
            return name
    return mix[-1][0]


def poisson_trace(
    seed: int,
    n_jobs: int,
    mean_interarrival_s: float = 4.0,
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX,
    min_bytes: int = 256 * MiB,
    max_bytes: int = 2 * GiB,
    parallelism_choices: tuple[int, ...] = (2, 4, 6, 8),
    fidelity: float = 0.5,
) -> ArrivalTrace:
    """A Poisson arrival process over a seeded workload mix.

    Inter-arrival gaps are exponential with the given mean; sizes are
    log-uniform in ``[min_bytes, max_bytes]``; parallelism is drawn
    uniformly from ``parallelism_choices``. Each job's draws come from its
    own ``(seed, "job", i)`` substream (see the module determinism
    contract); the arrival *clock* accumulates gap ``i`` from job ``i``'s
    substream, so truncating a trace never re-times its prefix.
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    if min_bytes > max_bytes:
        raise ValueError("min_bytes > max_bytes")
    import math

    jobs: list[JobRequest] = []
    t = 0.0
    for i in range(n_jobs):
        rng = SeededRng(derive_seed(seed, "job", i))
        t += rng.expovariate(1.0 / mean_interarrival_s)
        size = int(
            math.exp(
                rng.uniform(math.log(float(min_bytes)), math.log(float(max_bytes)))
            )
        )
        jobs.append(
            JobRequest(
                app_id=i,
                workload=_pick_weighted(rng, mix),
                submit_s=t,
                nominal_bytes=size,
                parallelism=rng.choice(parallelism_choices),
                fidelity=fidelity,
            )
        )
    return ArrivalTrace(seed=seed, jobs=tuple(jobs))


def trace_from_rows(seed: int, rows: list[dict]) -> ArrivalTrace:
    """Build a trace from explicit rows (replay of a recorded schedule).

    Rows need ``workload`` and ``submit_s``; everything else defaults.
    """
    jobs = tuple(
        JobRequest(
            app_id=int(row.get("app_id", i)),
            workload=str(row["workload"]),
            submit_s=float(row["submit_s"]),
            nominal_bytes=int(row.get("nominal_bytes", 512 * MiB)),
            parallelism=int(row.get("parallelism", 4)),
            fidelity=float(row.get("fidelity", 0.5)),
        )
        for i, row in enumerate(rows)
    )
    return ArrivalTrace(seed=seed, jobs=jobs)
