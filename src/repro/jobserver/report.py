"""JCT report layer: percentile tables and the BENCH payload.

Aggregates :class:`~repro.jobserver.server.JobServerResult` sweeps (one
per transport × scheduler) into the paper-style comparison the contention
study needs: per-cell p50/p99 job completion time and queueing delay,
plus makespan. ``payload()`` is the canonical JSON written to
``results/BENCH_jobserver.json`` (sorted keys, fixed float repr through
``json``), and ``digest()`` is the SHA-256 over that canonical form — the
CI smoke job asserts the digest is reproducible run-over-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.jobserver.server import JobServerResult
from repro.util.stats import percentile


@dataclass(frozen=True)
class CellStats:
    """One (transport, scheduler) cell of the contention study."""

    transport: str
    scheduler: str
    n_jobs: int
    n_failed: int
    p50_jct_s: float
    p99_jct_s: float
    mean_jct_s: float
    p50_queue_s: float
    p99_queue_s: float
    max_queue_s: float
    makespan_s: float

    def as_row(self) -> dict:
        return {
            "transport": self.transport,
            "scheduler": self.scheduler,
            "n_jobs": self.n_jobs,
            "n_failed": self.n_failed,
            "p50_jct_s": self.p50_jct_s,
            "p99_jct_s": self.p99_jct_s,
            "mean_jct_s": self.mean_jct_s,
            "p50_queue_s": self.p50_queue_s,
            "p99_queue_s": self.p99_queue_s,
            "max_queue_s": self.max_queue_s,
            "makespan_s": self.makespan_s,
        }


def cell_stats(result: JobServerResult) -> CellStats:
    jcts = result.jcts()
    queues = result.queue_delays()
    if not jcts:
        raise ValueError(
            f"no finished jobs in {result.transport}/{result.scheduler} cell"
        )
    return CellStats(
        transport=result.transport,
        scheduler=result.scheduler,
        n_jobs=len(result.records),
        n_failed=sum(1 for r in result.records if r.failed is not None),
        p50_jct_s=percentile(jcts, 50),
        p99_jct_s=percentile(jcts, 99),
        mean_jct_s=sum(jcts) / len(jcts),
        p50_queue_s=percentile(queues, 50),
        p99_queue_s=percentile(queues, 99),
        max_queue_s=max(queues),
        makespan_s=result.makespan_s,
    )


@dataclass
class JobServerReport:
    """The full contention study: cells keyed (transport, scheduler)."""

    system: str
    n_workers: int
    seed: int
    n_jobs: int
    cells: list[CellStats] = field(default_factory=list)

    @classmethod
    def from_results(cls, results: list[JobServerResult]) -> "JobServerReport":
        if not results:
            raise ValueError("no results to report")
        first = results[0]
        report = cls(
            system=first.system,
            n_workers=first.n_workers,
            seed=first.seed,
            n_jobs=len(first.records),
        )
        for res in results:
            report.cells.append(cell_stats(res))
        return report

    def cell(self, transport: str, scheduler: str) -> CellStats | None:
        return next(
            (c for c in self.cells
             if c.transport == transport and c.scheduler == scheduler),
            None,
        )

    def payload(self) -> dict:
        """The canonical BENCH_jobserver.json content."""
        return {
            "figure": "jobserver",
            "system": self.system,
            "n_workers": self.n_workers,
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "rows": [c.as_row() for c in self.cells],
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical row JSON (the CI determinism gate)."""
        canon = json.dumps(
            [c.as_row() for c in self.cells], sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Text table, one row per (transport, scheduler) cell."""
        cols = (
            "transport", "sched", "jobs",
            "p50 JCT", "p99 JCT", "mean JCT",
            "p50 queue", "p99 queue", "makespan",
        )
        rows = [
            (
                c.transport, c.scheduler, str(c.n_jobs),
                f"{c.p50_jct_s:.2f}", f"{c.p99_jct_s:.2f}", f"{c.mean_jct_s:.2f}",
                f"{c.p50_queue_s:.2f}", f"{c.p99_queue_s:.2f}",
                f"{c.makespan_s:.2f}",
            )
            for c in self.cells
        ]
        widths = [
            max(len(cols[i]), *(len(r[i]) for r in rows)) if rows else len(cols[i])
            for i in range(len(cols))
        ]
        lines = [
            f"jobserver contention study [{self.system}, {self.n_workers} workers, "
            f"{self.n_jobs} jobs, seed {self.seed}]",
            "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        lines.append(f"digest: {self.digest()}")
        return "\n".join(lines)
