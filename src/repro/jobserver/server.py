"""The long-lived multi-tenant job server over :class:`SparkSimCluster`.

``JobServer`` owns one launched cluster for the whole arrival trace: a
submission process feeds :class:`~repro.jobserver.arrivals.JobRequest`\\ s
in at their arrival times, an :class:`InterJobScheduler` decides at every
decision point (arrival or completion) which queued applications start
and with what concurrency grant, and each admitted application runs as
its own simulation process via ``SparkSimCluster.run_application`` —
concurrent tenants contend for executor slots under their grants.

Observable surface:

* metrics — ``jobserver.submitted`` / ``.started`` / ``.finished``
  counters plus ``jobserver.jct_s`` and ``jobserver.queue_delay_s``
  histograms in the cluster's registry;
* causal — ``job.submit`` / ``job.start`` / ``job.finish`` events, which
  the critical-path analyzer turns into per-application ``sched-wait``
  segments (queueing delay as a first-class critical-path citizen);
* :class:`JobRecord` per job (submit/start/finish timestamps, grant,
  stage seconds) collected into a :class:`JobServerResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.jobserver.arrivals import OHB_WORKLOADS, ArrivalTrace, JobRequest
from repro.jobserver.schedulers import (
    ClusterView,
    InterJobScheduler,
    PendingJob,
    RunningJob,
    SchedulePlan,
)
from repro.simnet.resources import SlotGate

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.profile import WorkloadProfile
    from repro.spark.deploy import SparkSimCluster


@dataclass
class JobRecord:
    """Lifecycle of one application through the server."""

    request: JobRequest
    submit_s: float = 0.0
    start_s: float | None = None
    finish_s: float | None = None
    granted: int = 0
    n_executors: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    failed: str | None = None

    @property
    def queue_delay_s(self) -> float | None:
        return None if self.start_s is None else self.start_s - self.submit_s

    @property
    def jct_s(self) -> float | None:
        """Job completion time: submission to finish (queueing included)."""
        return None if self.finish_s is None else self.finish_s - self.submit_s

    @property
    def run_s(self) -> float | None:
        if self.finish_s is None or self.start_s is None:
            return None
        return self.finish_s - self.start_s


@dataclass
class JobServerResult:
    """One (transport, scheduler) sweep over an arrival trace."""

    transport: str
    scheduler: str
    system: str
    n_workers: int
    seed: int
    records: list[JobRecord] = field(default_factory=list)
    makespan_s: float = 0.0

    @property
    def finished(self) -> list[JobRecord]:
        return [r for r in self.records if r.finish_s is not None]

    def jcts(self) -> list[float]:
        return [r.jct_s for r in self.finished]

    def queue_delays(self) -> list[float]:
        return [r.queue_delay_s for r in self.finished]


def build_job_profile(
    request: JobRequest,
    system,
    n_workers: int,
    cores_per_executor: int | None = None,
) -> "WorkloadProfile":
    """The scaled profile for one job, at the *granted* geometry.

    OHB workloads take the per-job size directly; HiBench specs are
    rescaled with :func:`dataclasses.replace` so per-round shuffle volume
    and HDFS output shrink proportionally with the sampled input size
    (the suite's Huge-scale constants stay untouched).
    """
    name = request.workload
    if name in OHB_WORKLOADS:
        from repro.workloads.ohb import GROUP_BY, SORT_BY

        workload = {w.name: w for w in (GROUP_BY, SORT_BY)}[name]
        return workload.build_profile(
            system,
            n_workers,
            nominal_bytes=request.nominal_bytes,
            cores_per_executor=cores_per_executor,
            fidelity=request.fidelity,
        )
    from repro.workloads.hibench import SPECS

    spec = SPECS[name]
    scale = request.nominal_bytes / spec.nominal_bytes
    spec = replace(
        spec,
        nominal_bytes=request.nominal_bytes,
        shuffle_bytes_per_round=int(spec.shuffle_bytes_per_round * scale),
        hdfs_output_bytes=int(spec.hdfs_output_bytes * scale),
    )
    return spec.build_profile(
        system,
        n_workers,
        cores_per_executor=cores_per_executor,
        fidelity=request.fidelity,
    )


class JobServer:
    """Admit a continuous stream of applications onto one live cluster.

    The cluster must already be constructed (it is launched here if
    needed); the server never tears it down — callers own shutdown, so a
    server can be followed by another trace on the same cluster, and the
    shutdown-with-in-flight-apps path stays testable.
    """

    def __init__(
        self,
        cluster: "SparkSimCluster",
        scheduler: InterJobScheduler,
        trace: ArrivalTrace,
        profile_builder: Callable[..., "WorkloadProfile"] = build_job_profile,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.trace = trace
        self.profile_builder = profile_builder
        self.records: dict[int, JobRecord] = {}
        self._pending: list[JobRequest] = []  # arrival order
        self._running: dict[int, RunningJob] = {}
        self._gates: dict[int, SlotGate] = {}
        self._n_finished = 0
        self._all_done = cluster.env.event()
        self._started = False
        # Manual-decision hook for the Gym-style env wrapper: when set, the
        # server records the view and defers to the driver instead of
        # calling scheduler.plan synchronously.
        self._decision_hook: Callable[[ClusterView], None] | None = None
        m = cluster.env.metrics
        self._m_submitted = m.counter("jobserver.submitted")
        self._m_started = m.counter("jobserver.started")
        self._m_finished = m.counter("jobserver.finished")
        self._m_failed = m.counter("jobserver.failed")
        self._h_jct = m.histogram("jobserver.jct_s")
        self._h_queue = m.histogram("jobserver.queue_delay_s")

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Launch the cluster (if needed) and spawn the submission process."""
        if self._started:
            raise RuntimeError("job server already started")
        self._started = True
        if not self.cluster._launched:
            self.cluster.launch()
        self.cluster.env.process(self._submission_main(), name="jobserver-submit")

    def run(self) -> JobServerResult:
        """Drive the simulation until every job in the trace has finished."""
        self.start()
        env = self.cluster.env
        if len(self.trace) == 0:
            self._all_done.succeed()
        env.run(until=self._all_done)
        return self.result()

    def result(self) -> JobServerResult:
        records = [self.records[j.app_id] for j in self.trace.jobs]
        return JobServerResult(
            transport=self.cluster.transport.name,
            scheduler=self.scheduler.name,
            system=self.cluster.system.name,
            n_workers=self.cluster.n_workers,
            seed=self.trace.seed,
            records=records,
            makespan_s=self.cluster.env.now,
        )

    # -- simulation processes ------------------------------------------------
    def _submission_main(self):
        env = self.cluster.env
        for job in self.trace.jobs:
            if job.submit_s > env.now:
                yield env.timeout(job.submit_s - env.now)
            self.records[job.app_id] = JobRecord(request=job, submit_s=env.now)
            self._pending.append(job)
            self._m_submitted.inc()
            env.causal.event(
                "job.submit", None,
                app=job.name, workload=job.workload, parallelism=job.parallelism,
            )
            self._decide()

    def _app_main(self, job: JobRequest, profile, app):
        env = self.cluster.env
        record = self.records[job.app_id]
        try:
            stage_seconds = yield from self.cluster.run_application(profile, app)
            record.stage_seconds = stage_seconds
        except Exception as exc:  # noqa: BLE001 - a tenant failure is data
            record.failed = f"{type(exc).__name__}: {exc}"
            self._m_failed.inc()
        record.finish_s = env.now
        self._m_finished.inc()
        self._h_jct.observe(record.jct_s)
        env.causal.event(
            "job.finish", None,
            app=job.name, jct_s=record.jct_s, failed=record.failed is not None,
        )
        self._running.pop(job.app_id, None)
        self._gates.pop(job.app_id, None)
        self._n_finished += 1
        if self._n_finished == len(self.trace) and not self._all_done.triggered:
            self._all_done.succeed()
        else:
            self._decide()

    # -- scheduling ----------------------------------------------------------
    def view(self) -> ClusterView:
        """The immutable scheduler-facing snapshot, at ``env.now``."""
        return ClusterView(
            now=self.cluster.env.now,
            executor_slots=tuple(
                (ex.exec_id, ex.slots.capacity) for ex in self.cluster.executors
            ),
            pending=tuple(
                PendingJob(
                    app_id=j.app_id,
                    workload=j.workload,
                    submit_s=self.records[j.app_id].submit_s,
                    parallelism=j.parallelism,
                )
                for j in self._pending
            ),
            running=tuple(self._running[k] for k in sorted(self._running)),
        )

    def _decide(self) -> None:
        if self._decision_hook is not None:
            self._decision_hook(self.view())
            return
        self.apply_plan(self.scheduler.plan(self.view()))

    def apply_plan(self, plan: SchedulePlan) -> None:
        """Start admitted applications and re-cap running grants."""
        for app_id, cap in plan.recap:
            gate = self._gates.get(app_id)
            if gate is None:
                continue  # finished (or packed) since the view was taken
            gate.set_capacity(cap)
            self._running[app_id] = replace(self._running[app_id], granted=cap)
        by_id = {j.app_id: j for j in self._pending}
        for admission in plan.admit:
            job = by_id.get(admission.app_id)
            if job is None:
                raise ValueError(
                    f"plan admits unknown/non-pending app {admission.app_id}"
                )
            self._admit(job, admission.slots, admission.executor_ids)
            self._pending.remove(job)

    def _admit(
        self, job: JobRequest, slots: int, executor_ids: tuple[int, ...] | None
    ) -> None:
        env = self.cluster.env
        record = self.records[job.app_id]
        # Packed apps own whole executors — the subset's slots bound their
        # concurrency natively, no gate needed. Shared-cluster apps get a
        # SlotGate at the scheduler's grant.
        gate: SlotGate | None = None
        if executor_ids is None:
            gate = SlotGate(env, capacity=slots)
            self._gates[job.app_id] = gate
        app = self.cluster.register_app(
            job.app_id, name=job.name, gate=gate, executor_ids=executor_ids
        )
        n_exec = len(self.cluster.app_executors(app))
        profile = self.profile_builder(
            job,
            self.cluster.system,
            n_exec,
            cores_per_executor=self.cluster.cores_per_executor,
        )
        record.start_s = env.now
        record.granted = slots
        record.n_executors = n_exec
        self._running[job.app_id] = RunningJob(
            app_id=job.app_id,
            parallelism=job.parallelism,
            granted=slots,
            executor_ids=executor_ids,
        )
        self._m_started.inc()
        self._h_queue.observe(record.queue_delay_s)
        env.causal.event(
            "job.start", None,
            app=job.name, granted=slots, n_executors=n_exec,
            queue_delay_s=record.queue_delay_s,
        )
        env.process(self._app_main(job, profile, app), name=f"{job.name}-driver")


def run_trace(
    cluster: "SparkSimCluster",
    scheduler: InterJobScheduler,
    trace: ArrivalTrace,
    shutdown: bool = True,
) -> JobServerResult:
    """Convenience: run one trace to completion on ``cluster``."""
    server = JobServer(cluster, scheduler, trace)
    result = server.run()
    if shutdown:
        cluster.shutdown()
    return result
