"""Gym-style environment over the job server's scheduling decision points.

Swappable policies need more than the :class:`InterJobScheduler` callback
interface: an RL-style loop (and anything scriptable from outside the
simulator) wants to *observe* queue/cluster state, *act*, and watch the
consequences. :class:`JobServerEnv` provides exactly the classic
``reset`` / ``observe`` / ``step`` surface:

* ``reset()`` starts the server and advances the simulation to the first
  decision point, returning the :class:`ClusterView` observation;
* ``step(plan)`` applies a :class:`SchedulePlan` action, advances to the
  next decision point (job arrival or completion), and returns
  ``(observation, reward, done, info)``. The reward is the negative sum
  of JCTs of jobs that finished during the step, so maximizing return
  minimizes mean job completion time;
* ``observe()`` re-reads the current view without advancing time.

Decision points that coincide (an arrival landing while a completion's
decision is still unserved) coalesce into one observation, exactly as a
real scheduler loop coalesces wakeups. Built-in schedulers plug straight
in as policies: ``env.step(FifoScheduler().plan(obs))``.
"""

from __future__ import annotations

from typing import Any

from repro.jobserver.schedulers import ClusterView, SchedulePlan
from repro.jobserver.server import JobServer, JobServerResult


class JobServerEnv:
    """Drive a :class:`JobServer` one scheduling decision at a time."""

    def __init__(self, server: JobServer) -> None:
        self.server = server
        self._env = server.cluster.env
        self._pending_view: ClusterView | None = None
        self._decision_ev = None
        self._rewarded = 0  # finished-job count already paid out
        self._done = False
        server._decision_hook = self._on_decision

    # -- server-side hook ----------------------------------------------------
    def _on_decision(self, view: ClusterView) -> None:
        self._pending_view = view
        if self._decision_ev is not None and not self._decision_ev.triggered:
            self._decision_ev.succeed()

    def _advance(self) -> None:
        """Run the simulation until a decision point or trace completion."""
        if self._done:
            return
        if self._pending_view is not None:
            return  # a coalesced decision is already waiting
        self._decision_ev = self._env.event()
        self._env.run(until=self._env.any_of([self._decision_ev, self.server._all_done]))
        if self.server._all_done.triggered and self._pending_view is None:
            self._done = True

    # -- the Gym-ish surface -------------------------------------------------
    def reset(self) -> ClusterView:
        """Start the trace; advance to the first decision point."""
        self.server.start()
        if len(self.server.trace) == 0:
            self._done = True
            if not self.server._all_done.triggered:
                self.server._all_done.succeed()
            return self.observe()
        self._advance()
        return self.observe()

    def observe(self) -> ClusterView:
        """The current scheduler-facing view (no time passes)."""
        view = self._pending_view
        return view if view is not None else self.server.view()

    def step(self, action: SchedulePlan) -> tuple[ClusterView, float, bool, dict]:
        """Apply ``action``, advance to the next decision point.

        Returns ``(observation, reward, done, info)``; once ``done`` the
        full :class:`JobServerResult` is in ``info["result"]``.
        """
        if self._done:
            raise RuntimeError("step() after the trace completed — reset first")
        self._pending_view = None
        self.server.apply_plan(action)
        self._advance()
        finished = [
            r for r in self.server.records.values() if r.finish_s is not None
        ]
        newly = len(finished) - self._rewarded
        self._rewarded = len(finished)
        reward = -sum(
            r.jct_s
            for r in sorted(finished, key=lambda r: r.finish_s)[self._rewarded - newly:]
        )
        info: dict[str, Any] = {"n_finished": len(finished)}
        if self._done:
            info["result"] = self.result()
        return self.observe(), reward, self._done, info

    def result(self) -> JobServerResult:
        return self.server.result()
