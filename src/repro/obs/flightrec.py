"""Flight recorder: a bounded, deterministic structured event log.

Every causally-traced run carries one :class:`FlightRecorder` — an
append-only log of :class:`FlightEvent` records (message send/recv/match,
the mpi-opt header→body join, scheduler task state changes, fault
injections) ordered by simulated time.  The log is bounded: past
``capacity`` events the oldest records are dropped (and counted), so a
pathological run cannot exhaust memory.  Records hold only primitives
(floats, ints, strings), which keeps the recorder picklable across the
parallel harness's worker processes and lets :meth:`to_jsonl` dump the
whole log as one JSON object per line.

The recorder also tracks *open spans*: a message that has been sent but
not yet received (or matched).  Channel death closes that channel's open
spans; an MPI world abort closes all of them — each closure emits a
``span.aborted`` record followed by a single terminal event, so a trace
of a crashed run always ends in an explicit tombstone instead of dangling
sends (see :mod:`repro.obs.causal` for who calls these).
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.causal import TraceContext

# Default event-log bound: enough for the figure-suite cells at benchmark
# fidelity with headroom; a full-scale run that overflows it keeps the
# most recent window (the end of the run is where crashes are explained).
DEFAULT_CAPACITY = 262_144


class FlightEvent:
    """One structured record: what happened, when, on which trace."""

    __slots__ = ("t", "name", "trace", "span", "parent", "attrs")

    def __init__(
        self,
        t: float,
        name: str,
        trace: int = 0,
        span: int = 0,
        parent: int = 0,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.t = t
        self.name = name
        self.trace = trace
        self.span = span
        self.parent = parent
        self.attrs = attrs or {}

    def as_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"t": self.t, "ev": self.name}
        if self.trace:
            d["trace"] = self.trace
        if self.span:
            d["span"] = self.span
        if self.parent:
            d["parent"] = self.parent
        if self.attrs:
            d.update(self.attrs)
        return d

    def __getstate__(self):
        return (self.t, self.name, self.trace, self.span, self.parent, self.attrs)

    def __setstate__(self, state):
        self.t, self.name, self.trace, self.span, self.parent, self.attrs = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlightEvent {self.name} t={self.t:g} span={self.span}>"


class FlightRecorder:
    """Bounded event log plus the open-span table.

    Holds no reference to the engine: callers stamp each record with the
    simulated time, so a finished recorder is plain data — picklable,
    diffable, and attachable to a :class:`~repro.spark.deploy.RunResult`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self.events: deque[FlightEvent] = deque(maxlen=self.capacity)
        self.dropped = 0
        # span_id -> (TraceContext, channel key or None) for sent-not-yet-
        # received messages; closed by recv/match or by a failure sweep.
        self._open: dict[int, tuple["TraceContext", Any]] = {}

    def __len__(self) -> int:
        return len(self.events)

    # -- recording ----------------------------------------------------------
    def record(
        self, t: float, name: str, ctx: "TraceContext | None" = None, **attrs: Any
    ) -> FlightEvent:
        if len(self.events) == self.capacity:
            self.dropped += 1
        ev = FlightEvent(
            t,
            name,
            trace=ctx.trace_id if ctx is not None else 0,
            span=ctx.span_id if ctx is not None else 0,
            parent=ctx.parent_id if ctx is not None else 0,
            attrs=attrs or None,
        )
        self.events.append(ev)
        return ev

    # -- open-span tracking ---------------------------------------------------
    def span_open(self, ctx: "TraceContext", channel: Any = None) -> None:
        self._open[ctx.span_id] = (ctx, channel)

    def span_close(self, span_id: int) -> None:
        self._open.pop(span_id, None)

    def open_spans(self) -> list[int]:
        """Span ids sent but not yet received/matched (sorted, for tests)."""
        return sorted(self._open)

    def open_on(self, channel: Any) -> bool:
        """Whether any open span was sent on ``channel``."""
        return any(ch == channel for _, ch in self._open.values())

    def close_channel(self, t: float, channel: Any, reason: str) -> int:
        """A channel died: close its open spans, emit the terminal event."""
        victims = sorted(
            sid for sid, (_, ch) in self._open.items() if ch == channel
        )
        for sid in victims:
            ctx, _ = self._open.pop(sid)
            self.record(t, "span.aborted", ctx, reason=reason)
        self.record(t, "channel.dead", ch=channel, reason=reason, closed=len(victims))
        return len(victims)

    def close_all(self, t: float, reason: str, terminal: str = "run.aborted") -> int:
        """Failure sweep (MPI world abort): close every open span."""
        victims = sorted(self._open)
        for sid in victims:
            ctx, _ = self._open.pop(sid)
            self.record(t, "span.aborted", ctx, reason=reason)
        self.record(t, terminal, reason=reason, closed=len(victims))
        return len(victims)

    # -- queries --------------------------------------------------------------
    def named(self, name: str) -> list[FlightEvent]:
        """All events with the given name, in record order."""
        return [ev for ev in self.events if ev.name == name]

    def by_trace(self, trace_id: int) -> list[FlightEvent]:
        return [ev for ev in self.events if ev.trace == trace_id]

    # -- export ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON object per line, in record order."""
        lines = [
            json.dumps(ev.as_dict(), sort_keys=True, separators=(",", ":"))
            for ev in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> str:
        """Write the JSONL export; a ``.gz`` suffix gzip-compresses it.

        Compression is what makes committed baseline recordings (the diff
        engine's blame references under ``baselines/``) cheap to keep in
        the tree; ``mtime=0`` keeps the archive byte-deterministic so two
        recordings of the same seeded cell produce identical files.
        """
        if str(path).endswith(".gz"):
            import gzip

            with open(path, "wb") as raw:
                # filename="" keeps the FNAME header field out — with a
                # bare fileobj GzipFile would embed raw.name, making the
                # bytes depend on where the recording is written.
                with gzip.GzipFile(
                    filename="", fileobj=raw, mode="wb", mtime=0
                ) as fh:
                    fh.write(self.to_jsonl().encode("utf-8"))
        else:
            with open(path, "w") as fh:
                fh.write(self.to_jsonl())
        return path

    @staticmethod
    def from_events(
        events: Iterable[FlightEvent],
        capacity: int | None = None,
        dropped: int = 0,
    ) -> "FlightRecorder":
        """Rebuild a recorder around existing events (analysis helpers).

        The capacity defaults to whichever is larger of
        ``DEFAULT_CAPACITY`` and the event count, so rebuilding a log
        that outgrew the default bound never silently re-evicts its
        head.  ``dropped`` carries an original recorder's eviction count
        through export/import round-trips.
        """
        events = list(events)
        if capacity is None:
            capacity = max(DEFAULT_CAPACITY, len(events))
        rec = FlightRecorder(capacity=capacity)
        rec.events.extend(events)
        # An explicit capacity smaller than the log re-evicts the head;
        # that must show in the counter, never happen silently.
        rec.dropped = int(dropped) + max(0, len(events) - capacity)
        return rec

    # -- import ---------------------------------------------------------------
    @staticmethod
    def from_jsonl(text: str) -> "FlightRecorder":
        """Rebuild a recorder from :meth:`to_jsonl` output.

        The inverse of the export flattening: ``t``/``ev`` and the three
        span ids are lifted back onto the event, every remaining key
        becomes an attr.  ``to_jsonl(from_jsonl(s)) == s`` for any
        exported trace, and the rebuilt events compare equal field-for-
        field — the round-trip the what-if replay engine relies on when
        consuming traces recorded by another process.
        """
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            events.append(
                FlightEvent(
                    t=d.pop("t"),
                    name=d.pop("ev"),
                    trace=d.pop("trace", 0),
                    span=d.pop("span", 0),
                    parent=d.pop("parent", 0),
                    attrs=d or None,
                )
            )
        return FlightRecorder.from_events(events)

    @staticmethod
    def load_jsonl(path: str) -> "FlightRecorder":
        """Read a :meth:`write` / :meth:`to_jsonl` export back from disk.

        Transparently decompresses ``.gz`` exports (committed baselines).
        """
        if str(path).endswith(".gz"):
            import gzip

            with gzip.open(path, "rt", encoding="utf-8") as fh:
                return FlightRecorder.from_jsonl(fh.read())
        with open(path) as fh:
            return FlightRecorder.from_jsonl(fh.read())
