"""Simulation-clock-native metrics: counters, gauges, histograms.

Every metric is owned by one :class:`MetricsRegistry`, which is owned by
one :class:`~repro.simnet.engine.SimEngine` — timestamps and time
integrals use the *simulated* clock (``env.now``), never wall time, so
two same-seed runs produce identical metric values.

Names are hierarchical dot paths (``netty.loop.exec0-io1.busy_s``,
``mpi.rank.executor#5.iprobe_calls``). The registry is get-or-create:
asking twice for the same name returns the same object, which is how
per-executor instrumentation aggregates into cluster-wide counters
(``spark.scheduler.fetch_wait_s``) without a central wiring step.

The registry is deliberately cheap: a :class:`Counter` increment is one
float add, so the always-on instrumentation in the event loop / wire
path costs nothing measurable against the event-heap machinery. The
heavier artifacts (snapshots, report columns, Chrome traces) are opt-in
per run via ``spark.repro.obs.enabled`` / ``spark.repro.obs.trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Callable, Iterable

from repro.util.stats import OnlineStats, Summary, percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine

# Histograms keep at most this many raw samples for percentile queries
# (the running moments in OnlineStats are exact regardless). When full,
# retention decimates deterministically — no RNG, so snapshots of
# same-seed runs stay byte-identical.
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """Monotonically increasing value (events, bytes, CPU seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """Last-write-wins instantaneous value (queue depth, window size)."""

    __slots__ = ("name", "value", "last_set_at", "_env")

    def __init__(self, name: str, env: "SimEngine") -> None:
        self.name = name
        self.value = 0.0
        self.last_set_at = env.now
        self._env = env

    def set(self, value: float) -> None:
        self.value = value
        self.last_set_at = self._env.now

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value:g})"


class TimeWeightedGauge:
    """A gauge that integrates its value over simulated time.

    ``time_average()`` is the mean value weighted by how long each value
    was held — the right statistic for "average unexpected-queue depth"
    or "average in-flight flows", where sampling at events would
    over-weight busy periods.
    """

    __slots__ = ("name", "value", "_env", "_start", "_last", "_integral")

    def __init__(self, name: str, env: "SimEngine") -> None:
        self.name = name
        self.value = 0.0
        self._env = env
        self._start = env.now
        self._last = env.now
        self._integral = 0.0

    def set(self, value: float) -> None:
        now = self._env.now
        self._integral += self.value * (now - self._last)
        self._last = now
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def time_average(self) -> float:
        now = self._env.now
        span = now - self._start
        if span <= 0:
            return self.value
        return (self._integral + self.value * (now - self._last)) / span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeWeightedGauge({self.name}={self.value:g})"


class Histogram:
    """Sample distribution: exact moments plus retained raw samples.

    Moments (n/mean/stdev/min/max/total) come from :class:`OnlineStats`
    and are exact for every observation; percentiles are computed over a
    deterministically decimated sample window of at most
    ``HISTOGRAM_SAMPLE_CAP`` values.
    """

    __slots__ = ("name", "stats", "_samples", "_stride", "_i")

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = OnlineStats()
        self._samples: list[float] = []
        self._stride = 1
        self._i = 0

    def observe(self, x: float) -> None:
        self.stats.add(x)
        if self._i % self._stride == 0:
            if len(self._samples) >= HISTOGRAM_SAMPLE_CAP:
                # Halve retention: keep every other sample, double stride.
                self._samples = self._samples[::2]
                self._stride *= 2
            if self._i % self._stride == 0:
                self._samples.append(x)
        self._i += 1

    def observe_many(self, x: float, n: int) -> None:
        """Absorb ``n`` identical observations in O(1).

        Bulk-publish path for hot-path code that counts occurrences in
        plain ints and flushes at snapshot time: the moments are merged
        analytically (n identical values have zero variance) and one
        representative sample feeds the percentile window.
        """
        if n <= 0:
            return
        from repro.util.stats import OnlineStats

        bulk = OnlineStats()
        bulk.n = n
        bulk._mean = x
        bulk.min = x
        bulk.max = x
        bulk.total = x * n
        self.stats.merge(bulk)
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(x)

    @property
    def n(self) -> int:
        return self.stats.n

    def summary(self) -> Summary | None:
        """Exact moments + percentile estimates (None when empty)."""
        if self.stats.n == 0:
            return None
        return Summary(
            n=self.stats.n,
            mean=self.stats.mean,
            stdev=self.stats.stdev,
            min=self.stats.min,
            p50=percentile(self._samples, 50),
            p95=percentile(self._samples, 95),
            p99=percentile(self._samples, 99),
            max=self.stats.max,
            total=self.stats.total,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.stats.n})"


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time export of a registry.

    ``counters``/``gauges`` map names to values; ``time_gauges`` to
    ``(last value, time average)``; ``histograms`` to
    :class:`~repro.util.stats.Summary`. ``total``/``names`` accept
    ``fnmatch`` globs over the hierarchical names, which is how reports
    roll per-loop metrics up to per-run ones
    (``snap.total("netty.loop.*.poll_tax_s")``).
    """

    taken_at: float
    started_at: float
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    time_gauges: dict[str, tuple[float, float]] = field(default_factory=dict)
    histograms: dict[str, Summary] = field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        return self.taken_at - self.started_at

    def __len__(self) -> int:
        return (
            len(self.counters)
            + len(self.gauges)
            + len(self.time_gauges)
            + len(self.histograms)
        )

    def names(self, pattern: str = "*") -> list[str]:
        """All metric names matching the glob, sorted."""
        out = [
            name
            for group in (self.counters, self.gauges, self.time_gauges, self.histograms)
            for name in group
            if fnmatchcase(name, pattern)
        ]
        return sorted(out)

    def value(self, name: str, default: float = 0.0) -> float:
        if name in self.counters:
            return self.counters[name]
        if name in self.gauges:
            return self.gauges[name]
        if name in self.time_gauges:
            return self.time_gauges[name][0]
        return default

    def total(self, pattern: str) -> float:
        """Sum of all counter values whose name matches the glob."""
        return sum(
            v for name, v in self.counters.items() if fnmatchcase(name, pattern)
        )

    def delta(self, baseline: "MetricsSnapshot", pattern: str = "*") -> dict[str, float]:
        """Counter-wise ``self - baseline`` for names matching the glob.

        Works across registries (e.g. a clean run vs a faulted run of two
        fresh same-seed clusters); names absent from the baseline count
        from zero, and zero deltas are dropped.
        """
        out: dict[str, float] = {}
        for name, v in self.counters.items():
            if not fnmatchcase(name, pattern):
                continue
            d = v - baseline.counters.get(name, 0.0)
            if d != 0.0:
                out[name] = d
        return out

    def as_dict(self) -> dict:
        """JSON-serializable representation (for BENCH_*.json artifacts)."""
        return {
            "taken_at": self.taken_at,
            "started_at": self.started_at,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "time_gauges": {
                k: {"value": v, "time_average": avg}
                for k, (v, avg) in sorted(self.time_gauges.items())
            },
            "histograms": {
                k: {
                    "n": s.n,
                    "mean": s.mean,
                    "stdev": s.stdev,
                    "min": s.min,
                    "p50": s.p50,
                    "p95": s.p95,
                    "p99": s.p99,
                    "max": s.max,
                    "total": s.total,
                }
                for k, s in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Get-or-create metric store bound to one simulation engine."""

    def __init__(self, env: "SimEngine") -> None:
        self.env = env
        self.started_at = env.now
        self._metrics: dict[str, object] = {}
        self._sync_hooks: list[Callable[[], None]] = []

    def on_snapshot(self, hook: "Callable[[], None]") -> None:
        """Register ``hook()`` to run just before every :meth:`snapshot`.

        Hot paths (the wire path, event-loop iterations) keep plain
        attribute counters and publish them into the registry lazily via
        these hooks, so the always-on cost of a metric is one int add
        rather than a registry lookup or method call per event.
        """
        self._sync_hooks.append(hook)

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, self.env)

    def time_gauge(self, name: str) -> TimeWeightedGauge:
        return self._get(name, TimeWeightedGauge, self.env)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self, pattern: str = "*") -> list[str]:
        return sorted(n for n in self._metrics if fnmatchcase(n, pattern))

    def snapshot(self) -> MetricsSnapshot:
        """Freeze current values (drops empty histograms, keeps zeros)."""
        for hook in self._sync_hooks:
            hook()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        time_gauges: dict[str, tuple[float, float]] = {}
        histograms: dict[str, Summary] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, TimeWeightedGauge):
                time_gauges[name] = (metric.value, metric.time_average())
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                summary = metric.summary()
                if summary is not None:
                    histograms[name] = summary
        return MetricsSnapshot(
            taken_at=self.env.now,
            started_at=self.started_at,
            counters=counters,
            gauges=gauges,
            time_gauges=time_gauges,
            histograms=histograms,
        )
