"""Critical-path extraction from a causal flight-recorder log.

Answers the question the paper's Sec VI-D/E analysis revolves around:
*which dependency chain made this stage slow, and where inside it did the
time go?*  For every stage the analyzer picks the critical task (the one
finishing last — the stage barrier waits for it) and decomposes its
longest dependency chain into six segments:

* ``compute``    — task compute + combine time (inflated under Basic),
* ``serialize``  — shuffle-write (spill/serialization) time,
* ``queue``      — server turnaround between a request landing and its
  response leaving, plus (for mpi-opt) body dwell before the triggered
  ``MPI_Recv`` was posted,
* ``wire``       — time on the fabric for the chain's request/response
  legs (matching dwell subtracted),
* ``poll-tax``   — unexpected-queue dwell of MPI-matched messages under
  MPI4Spark-Basic: the busy-poll's discovery delay, per message.  Only
  the Basic design busy-polls, so this segment is zero by construction
  elsewhere — the per-transport classification the paper's Fig 9
  argument rests on,
* ``fetch-wait`` — the remainder of the task's measured fetch wait not
  covered by the extracted chain (windowed fetches that overlapped it),
* ``sched-wait`` — inter-job queueing delay on the multi-tenant job
  server (``job.submit`` → ``job.start``), reported as one pseudo-stage
  per application so queueing is a first-class critical-path citizen.
  Single-application runs emit no ``job.*`` events and never see it.

The API is assertion-friendly: ``report.share("poll-tax")`` is what the
fig9 benchmark compares across Basic and Optimized (≥10× is asserted in
``benchmarks/test_fig9_basic_vs_opt.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightRecorder

SEGMENTS = (
    "compute", "serialize", "queue", "wire", "poll-tax", "fetch-wait",
    "sched-wait",
)


@dataclass
class StageCriticalPath:
    """The critical task of one stage and its chain decomposition."""

    stage: str
    task: str
    start_s: float
    end_s: float
    segments: dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(self.segments.values())

    def seconds(self, segment: str) -> float:
        return self.segments.get(segment, 0.0)


@dataclass
class CriticalPathReport:
    """Per-stage critical paths for one run, with roll-up accessors."""

    transport: str
    stages: list[StageCriticalPath] = field(default_factory=list)

    def segment_seconds(self, segment: str) -> float:
        return sum(s.seconds(segment) for s in self.stages)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_s for s in self.stages)

    def share(self, segment: str) -> float:
        """Fraction of the whole critical path spent in ``segment``."""
        total = self.total_seconds
        return self.segment_seconds(segment) / total if total > 0 else 0.0

    def stage(self, name: str) -> StageCriticalPath | None:
        return next((s for s in self.stages if s.stage == name), None)

    def render(self) -> str:
        """Text table: one row per stage, one column per segment."""
        cols = ["stage", "crit task"] + list(SEGMENTS) + ["total"]
        rows = [
            [
                s.stage,
                s.task,
                *(f"{s.seconds(seg):.4f}" for seg in SEGMENTS),
                f"{s.total_s:.4f}",
            ]
            for s in self.stages
        ]
        rows.append(
            ["TOTAL", "", *(f"{self.segment_seconds(seg):.4f}" for seg in SEGMENTS),
             f"{self.total_seconds:.4f}"]
        )
        widths = [
            max(len(cols[i]), *(len(r[i]) for r in rows)) for i in range(len(cols))
        ]
        lines = [
            f"critical path [{self.transport}]",
            "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)


def _stage_of(task_label: str) -> str:
    """``Job0-ResultStage-task7`` → ``Job0-ResultStage``."""
    return task_label.rsplit("-task", 1)[0] if "-task" in task_label else task_label


def stage_bounds(flight: "FlightRecorder") -> dict[str, tuple[float, float, int]]:
    """``stage label -> (start_t, end_t, n_tasks)`` from stage event pairs.

    Walks ``stage.start`` / ``stage.finish`` pairs in record order and
    keeps first-start stage order — the alignment key the diff engine
    (:mod:`repro.obs.diff`) matches two recordings on.  ``n_tasks`` is
    taken from the start event (0 when the recording predates the attr);
    stages whose finish never arrived (crashed runs) are omitted, exactly
    as :func:`analyze` omits their unfinished tasks.
    """
    starts: dict[str, tuple[float, int]] = {}
    bounds: dict[str, tuple[float, float, int]] = {}
    for ev in flight.events:
        if ev.name == "stage.start":
            label = ev.attrs.get("stage", "?")
            starts[label] = (ev.t, int(ev.attrs.get("n_tasks", 0)))
        elif ev.name == "stage.finish":
            label = ev.attrs.get("stage", "?")
            if label in starts:
                t0, n_tasks = starts.pop(label)
                bounds[label] = (t0, ev.t, n_tasks)
    return bounds


def analyze(flight: "FlightRecorder", transport: str) -> CriticalPathReport:
    """Walk the causal DAG of a finished run; one critical path per stage."""
    sends: dict[int, tuple[float, int]] = {}  # span -> (t, nbytes)
    recvs: dict[int, float] = {}
    waited: dict[int, float] = {}
    parent_of: dict[int, int] = {}
    children: dict[int, list[int]] = {}
    trace_spans: dict[int, list[int]] = {}
    # trace -> (start event, finish event) of the task owning that trace
    task_start: dict[int, object] = {}
    task_finish: dict[int, object] = {}

    body_legs: set[int] = set()
    job_submit: dict[str, float] = {}
    job_start: dict[str, float] = {}

    for ev in flight.events:
        name = ev.name
        if name == "msg.send":
            sends[ev.span] = (ev.t, ev.attrs.get("nbytes", 0))
            if ev.parent:
                parent_of[ev.span] = ev.parent
                children.setdefault(ev.parent, []).append(ev.span)
            if ev.attrs.get("leg") == "mpi-body":
                body_legs.add(ev.span)
            trace_spans.setdefault(ev.trace, []).append(ev.span)
        elif name == "msg.recv":
            recvs[ev.span] = ev.t
        elif name == "mpi.match":
            waited[ev.span] = waited.get(ev.span, 0.0) + ev.attrs.get("waited_s", 0.0)
        elif name == "task.start":
            task_start[ev.trace] = ev
        elif name == "task.finish":
            task_finish[ev.trace] = ev
        elif name == "job.submit":
            job_submit[ev.attrs.get("app", "")] = ev.t
        elif name == "job.start":
            job_start[ev.attrs.get("app", "")] = ev.t

    # Group finished tasks by stage, preserving first-seen stage order.
    stages: dict[str, list[tuple[int, object, object]]] = {}
    for trace, fin in task_finish.items():
        start = task_start.get(trace)
        if start is None:
            continue
        label = fin.attrs.get("task", "")
        stages.setdefault(_stage_of(label), []).append((trace, start, fin))

    def dwell(span: int) -> float:
        """Matching dwell of a span plus its child mpi-opt body legs.

        Only body legs count among the children: a response span is also
        a child of its request, and its dwell belongs to the response's
        own leg, not the request's.
        """
        w = waited.get(span, 0.0)
        for c in children.get(span, ()):  # the body leg rejoins this frame
            if c in body_legs:
                w += waited.get(c, 0.0)
        return w

    report = CriticalPathReport(transport=transport)
    for stage_name, entries in stages.items():
        trace, start, fin = max(entries, key=lambda e: (e[2].t, e[0]))
        segments: dict[str, float] = {}

        def add(seg: str, secs: float) -> None:
            if secs > 0:
                segments[seg] = segments.get(seg, 0.0) + secs

        add("compute", fin.attrs.get("compute_s", 0.0) + fin.attrs.get("combine_s", 0.0))
        add("serialize", fin.attrs.get("write_s", 0.0))
        fetch = fin.attrs.get("fetch_wait_s", 0.0)
        chain = 0.0
        if fetch > 0:
            # The chain terminus: the last fully-received message of this
            # task's trace.  Prefer responses (spans whose parent is itself
            # a message span — the request→response edge).
            spans = [s for s in trace_spans.get(trace, ()) if s in recvs]
            responses = [s for s in spans if parent_of.get(s) in sends]
            last = max(responses or spans, default=None, key=lambda s: recvs[s])
            if last is not None:
                discovery = 0.0
                resp_w = dwell(last)
                discovery += resp_w
                add("wire", recvs[last] - sends[last][0] - resp_w)
                req = parent_of.get(last)
                chain_start = sends[last][0]
                if req in sends and req in recvs:
                    req_w = dwell(req)
                    discovery += req_w
                    add("wire", recvs[req] - sends[req][0] - req_w)
                    add("queue", sends[last][0] - recvs[req])
                    chain_start = sends[req][0]
                chain = recvs[last] - chain_start
                # The classification at the heart of Fig 9: only the Basic
                # design discovers MPI messages by busy-polling, so only
                # there is matching dwell a polling tax.
                add("poll-tax" if transport == "mpi-basic" else "queue", discovery)
        add("fetch-wait", fetch - chain)
        report.stages.append(
            StageCriticalPath(
                stage=stage_name,
                task=fin.attrs.get("task", ""),
                start_s=start.t,
                end_s=fin.t,
                segments=segments,
            )
        )
    # Multi-tenant runs: queueing delay (job.submit → job.start) becomes a
    # pseudo-stage per application, ordered by submission time. Absent from
    # single-application flight logs, which carry no job.* events.
    for app in sorted(job_submit, key=lambda a: (job_submit[a], a)):
        started = job_start.get(app)
        if started is None or started <= job_submit[app]:
            continue
        wait = started - job_submit[app]
        report.stages.append(
            StageCriticalPath(
                stage=f"{app}:sched-wait",
                task="",
                start_s=job_submit[app],
                end_s=started,
                segments={"sched-wait": wait},
            )
        )
    return report


def critical_path(result) -> CriticalPathReport:
    """Convenience: analyze a :class:`~repro.spark.deploy.RunResult` that
    ran with ``spark.repro.obs.causal`` enabled."""
    if result.flight is None:
        raise ValueError(
            "RunResult has no flight log — run with spark.repro.obs.causal=true"
        )
    return analyze(result.flight, result.transport)
