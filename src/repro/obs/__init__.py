"""repro.obs — sim-clock-native observability for the reproduction.

The registry measures *where simulated time and bytes go* (event-loop
busy fractions, MPI polling tax, per-link traffic, scheduler phase
breakdowns); the tracer records task/stage/transport spans and exports
Chrome-trace JSON. Together they turn the paper's causal claims (Sec
VI-D: Basic's ``MPI_Iprobe`` busy-polling starves compute) into measured
columns in the harness reports instead of model assertions.

Every :class:`~repro.simnet.engine.SimEngine` owns an always-on
:class:`MetricsRegistry` (cheap counters); snapshots, report columns and
tracing are enabled per run via ``SparkConf``:

* ``spark.repro.obs.enabled`` — attach a :class:`MetricsSnapshot` to
  each :class:`~repro.spark.deploy.RunResult` and unlock the report's
  polling-tax / busy-% columns;
* ``spark.repro.obs.trace`` — install a real :class:`Tracer` on the
  engine and record task/stage spans.

See DESIGN.md §9 for the metric-name catalogue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.causal import NULL_CAUSAL, CausalTracer, NullCausal, TraceContext
from repro.obs.critpath import (
    CriticalPathReport,
    StageCriticalPath,
    analyze,
    critical_path,
    stage_bounds,
)
from repro.obs.diff import DiffReport, StageDiff, StructuralNode, diff_runs
from repro.obs.flightrec import FlightEvent, FlightRecorder
from repro.obs.report_html import (
    diff_section,
    planner_section,
    render_diff_page,
    render_planner_page,
    render_report,
    write_diff_report,
    write_report,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    TimeWeightedGauge,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.whatif import (
    DEFAULT_GRID,
    IDENTITY,
    Perturbation,
    Prediction,
    ReplayModel,
    StageRecord,
    TaskRecord,
    load_model,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.util.config import Config

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TimeWeightedGauge",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "CausalTracer",
    "NullCausal",
    "NULL_CAUSAL",
    "TraceContext",
    "FlightEvent",
    "FlightRecorder",
    "CriticalPathReport",
    "StageCriticalPath",
    "analyze",
    "critical_path",
    "stage_bounds",
    "DiffReport",
    "StageDiff",
    "StructuralNode",
    "diff_runs",
    "diff_section",
    "planner_section",
    "render_diff_page",
    "render_planner_page",
    "render_report",
    "write_diff_report",
    "write_report",
    "Perturbation",
    "Prediction",
    "ReplayModel",
    "StageRecord",
    "TaskRecord",
    "IDENTITY",
    "DEFAULT_GRID",
    "load_model",
    "obs_from_conf",
    "causal_from_conf",
    "polling_tax_seconds",
    "loop_busy_fraction",
    "iprobe_calls",
]


def obs_from_conf(conf: "Config") -> tuple[bool, bool]:
    """Read ``(enabled, trace)`` from a SparkConf-like config.

    ``spark.repro.obs.trace`` implies ``enabled`` — a trace without the
    metric columns that explain it is rarely what anyone wants.
    """
    enabled = conf.get_bool("spark.repro.obs.enabled", False)
    trace = conf.get_bool("spark.repro.obs.trace", False)
    causal = conf.get_bool("spark.repro.obs.causal", False)
    return (enabled or trace or causal, trace)


def causal_from_conf(conf: "Config") -> bool:
    """Read ``spark.repro.obs.causal``: message-level causal tracing.

    Kept separate from :func:`obs_from_conf` so that function's
    ``(enabled, trace)`` contract stays stable; causal tracing implies
    ``enabled`` through ``obs_from_conf`` above.
    """
    return conf.get_bool("spark.repro.obs.causal", False)


# -- derived report metrics ---------------------------------------------------

def polling_tax_seconds(snap: MetricsSnapshot) -> float:
    """Cumulative CPU seconds burned by selectNow/MPI_Iprobe poll rounds.

    Non-zero only for MPI4Spark-Basic, whose event loops replace the
    blocking ``select`` with a poll cycle (paper Sec VI-D); the
    Optimized design's loops park in ``select`` and never pay it.
    """
    return snap.total("netty.loop.*.poll_tax_s")


def iprobe_calls(snap: MetricsSnapshot) -> float:
    """Total ``MPI_Iprobe`` invocations across all ranks."""
    return snap.total("mpi.rank.*.iprobe_calls")


def loop_busy_fraction(snap: MetricsSnapshot) -> float:
    """Mean busy fraction across event loops over the snapshot window.

    Busy time is everything between a select/poll return and the next
    park — pipeline traversal, blocking continuations, queued tasks, and
    (for Basic) the poll rounds themselves.
    """
    names = [n for n in snap.names("netty.loop.*.busy_s") if n in snap.counters]
    if not names or snap.elapsed_s <= 0:
        return 0.0
    busy = sum(snap.counters[n] for n in names)
    return busy / (snap.elapsed_s * len(names))
