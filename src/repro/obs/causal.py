"""Causal tracing: trace contexts threaded through the message path.

A :class:`TraceContext` is ``(trace_id, span_id, parent_id)`` — minted
when a Spark message is created (:func:`repro.spark.messages.ensure_trace`),
carried through framing (``WireFrame.trace_ctx``) and the MPI envelope
(``Envelope.trace_ctx``), and propagated across all four transports.  The
context is an *in-memory side channel*: it is never serialized into
header bytes, so frames and envelopes are byte-identical whether tracing
is on or off, and recording never advances the simulated clock — a
causally-traced run reproduces the untraced run's timings exactly.

The causal edges (DESIGN.md §11):

* **send → recv** — ``msg.send`` at the MessageEncoder, ``msg.recv`` at
  the MessageDecoder, sharing one span;
* **match** — ``mpi.match`` when the receive-side matching engine pairs
  an envelope with a posted receive; ``waited_s`` is the envelope's time
  in the unexpected queue (under MPI4Spark-Basic this is the busy-poll's
  discovery delay — the polling tax, made per-message);
* **header → body join** — under MPI4Spark-Optimized the body rides MPI
  as a *child span* of the frame; ``msg.join`` marks the reunion when the
  triggered ``MPI_Recv`` completes;
* **request → response** — a response message's context is a child of
  the request's, so a fetch chain is one connected trace.

Runs opt in via ``spark.repro.obs.causal``; the engine default is
:data:`NULL_CAUSAL`, whose every operation is a no-op and whose
``mint``/``child`` return ``None`` — the hot paths guard on
``env.causal.enabled`` or ``trace_ctx is not None`` and pay nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.flightrec import DEFAULT_CAPACITY, FlightRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine


class TraceContext:
    """One node of the causal DAG: (trace, span, parent-span) ids."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: int, span_id: int, parent_id: int = 0) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __getstate__(self):
        return (self.trace_id, self.span_id, self.parent_id)

    def __setstate__(self, state):
        self.trace_id, self.span_id, self.parent_id = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceContext t{self.trace_id} s{self.span_id} p{self.parent_id}>"


class NullCausal:
    """Disabled causal tracer: mint/child return None, recording is free."""

    enabled = False
    flight = None
    __slots__ = ()

    def mint(self) -> None:
        return None

    def child(self, parent: "TraceContext | None") -> None:
        return None

    def send(self, ctx, type_tag, nbytes, channel=None, **attrs) -> None:
        pass

    def recv(self, ctx, type_tag, nbytes, channel=None, **attrs) -> None:
        pass

    def match(self, ctx, waited_s, buffered) -> None:
        pass

    def join(self, ctx, nbytes, channel=None) -> None:
        pass

    def event(self, name, ctx=None, **attrs) -> None:
        pass

    def channel_closed(self, channel, reason) -> None:
        pass

    def abort(self, reason) -> None:
        pass


NULL_CAUSAL = NullCausal()


class CausalTracer:
    """Live causal tracer: mints contexts, records into a flight recorder.

    Ids are deterministic per-engine counters, so same-seed runs produce
    identical traces.  All methods stamp ``env.now`` and return without
    scheduling anything — tracing cannot perturb the simulation.
    """

    enabled = True

    def __init__(self, env: "SimEngine", capacity: int = DEFAULT_CAPACITY) -> None:
        self.env = env
        self.flight = FlightRecorder(capacity)
        self._next_trace = 0
        self._next_span = 0

    # -- context minting ------------------------------------------------------
    def mint(self) -> TraceContext:
        """A fresh root context (new trace)."""
        self._next_trace += 1
        self._next_span += 1
        return TraceContext(self._next_trace, self._next_span, 0)

    def child(self, parent: "TraceContext | None") -> TraceContext:
        """A child span of ``parent`` (same trace); a root if parent is None."""
        if parent is None:
            return self.mint()
        self._next_span += 1
        return TraceContext(parent.trace_id, self._next_span, parent.span_id)

    # -- message edges --------------------------------------------------------
    def send(
        self,
        ctx: TraceContext,
        type_tag: int,
        nbytes: int,
        channel: Any = None,
        **attrs: Any,
    ) -> None:
        """A message left its sender; the span stays open until recv/match."""
        self.flight.record(
            self.env.now, "msg.send", ctx, type=type_tag, nbytes=nbytes,
            ch=channel, **attrs,
        )
        self.flight.span_open(ctx, channel)

    def recv(
        self,
        ctx: TraceContext,
        type_tag: int,
        nbytes: int,
        channel: Any = None,
        **attrs: Any,
    ) -> None:
        """The message reached its destination handler: span closes."""
        self.flight.record(
            self.env.now, "msg.recv", ctx, type=type_tag, nbytes=nbytes,
            ch=channel, **attrs,
        )
        self.flight.span_close(ctx.span_id)

    def match(self, ctx: TraceContext, waited_s: float, buffered: bool) -> None:
        """The matching engine paired this envelope with a receive.

        ``waited_s`` is the envelope's unexpected-queue dwell — under the
        Basic design's busy-poll this *is* the per-message polling tax.
        """
        self.flight.record(
            self.env.now, "mpi.match", ctx, waited_s=waited_s, buffered=buffered
        )
        self.flight.span_close(ctx.span_id)

    def join(self, ctx: TraceContext, nbytes: int, channel: Any = None) -> None:
        """mpi-opt header→body join: the MPI body rejoined frame ``ctx``."""
        self.flight.record(
            self.env.now, "msg.join", ctx, nbytes=nbytes, ch=channel
        )

    # -- lifecycle / scheduler events ----------------------------------------
    def event(self, name: str, ctx: TraceContext | None = None, **attrs: Any) -> None:
        """Generic record: task/stage state changes, fault injections."""
        self.flight.record(self.env.now, name, ctx, **attrs)

    def channel_closed(self, channel: Any, reason: str) -> None:
        """A transport channel died: close its in-flight spans."""
        self.flight.close_channel(self.env.now, channel, reason)

    def abort(self, reason: str) -> None:
        """The MPI world aborted: close every open span, leave a tombstone."""
        self.flight.close_all(self.env.now, reason, terminal="mpi.abort")
