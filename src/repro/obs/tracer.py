"""Span-based execution tracing with Chrome-trace and text export.

Spans record *simulated* intervals — a task occupying an executor slot,
a stage between scheduler barriers, a body riding MPI — on named tracks
(one Chrome "thread" per track). The exporter emits the Trace Event
Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev, and
:meth:`Tracer.render_timeline` renders a Spark-UI-style text timeline
for terminals and test output.

Tracing is opt-in (``spark.repro.obs.trace``): the engine's default
tracer is :data:`NULL_TRACER`, whose ``span`` hands out one shared no-op
context manager, so un-traced runs allocate nothing per span.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.engine import SimEngine


class Span:
    """One closed (or still-open) interval on a track."""

    __slots__ = ("name", "cat", "track", "start_s", "end_s", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        start_s: float,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.start_s = start_s
        self.end_s: float | None = None
        self.args = args or {}

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} [{self.start_s:g}, {self.end_s}]>"


class _SpanContext:
    """Context manager closing a span at scope exit (sim time)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def annotate(self, **args: Any) -> None:
        self._span.args.update(args)

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span, failed=exc is not None)


class _NullSpanContext:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def annotate(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False
    __slots__ = ()

    def span(self, name: str, cat: str = "", track: str = "main", **args: Any):
        return _NULL_SPAN

    def instant(self, name: str, track: str = "main", **args: Any) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans against one engine's simulated clock."""

    enabled = True

    def __init__(self, env: "SimEngine", process_name: str = "repro-sim") -> None:
        self.env = env
        self.process_name = process_name
        self.spans: list[Span] = []
        self.instants: list[tuple[str, str, float, dict]] = []

    # -- recording ----------------------------------------------------------
    def span(self, name: str, cat: str = "", track: str = "main", **args: Any):
        """Open a span; close it by exiting the returned context manager.

        Works inside simulation generators: simulated time advances while
        the body yields, and the span closes at the generator's ``with``
        exit. A span left open by a killed process is closed at export
        time with the export timestamp.
        """
        span = Span(name, cat, track, self.env.now, args or None)
        self.spans.append(span)
        return _SpanContext(self, span)

    def instant(self, name: str, track: str = "main", **args: Any) -> None:
        """Record a zero-duration marker (fault injected, retry, abort)."""
        self.instants.append((name, track, self.env.now, args))

    def _close(self, span: Span, failed: bool = False) -> None:
        if span.end_s is None:
            span.end_s = self.env.now
            if failed:
                span.args["failed"] = True

    # -- export --------------------------------------------------------------
    def _tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        for _, track, _, _ in self.instants:
            seen.setdefault(track)
        return list(seen)

    def to_chrome_trace(self) -> dict:
        """Trace Event Format dict (load in chrome://tracing / Perfetto).

        Timestamps are microseconds of *simulated* time. Still-open spans
        are exported as ending now.
        """
        tids = {track: i + 1 for i, track in enumerate(self._tracks())}
        events: list[dict] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": self.process_name},
            }
        ]
        for track, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        now = self.env.now
        for span in self.spans:
            end = span.end_s if span.end_s is not None else now
            args = span.args if span.end_s is not None else {**span.args, "unfinished": True}
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tids[span.track],
                    "name": span.name,
                    "cat": span.cat or "span",
                    "ts": span.start_s * 1e6,
                    "dur": (end - span.start_s) * 1e6,
                    "args": args,
                }
            )
        for name, track, t_s, args in self.instants:
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": tids[track],
                    "name": name,
                    "s": "t",
                    "ts": t_s * 1e6,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dumps(self) -> str:
        return json.dumps(self.to_chrome_trace(), indent=1, sort_keys=True)

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        with open(path, "w") as fh:
            fh.write(self.dumps())
        return path

    def render_timeline(self, width: int = 64) -> str:
        """Spark-UI-style text timeline: one bar row per span, per track."""
        if not self.spans:
            return "(no spans recorded)"
        now = self.env.now
        t_min = min(s.start_s for s in self.spans)
        t_max = max((s.end_s if s.end_s is not None else now) for s in self.spans)
        horizon = max(t_max - t_min, 1e-12)
        label_w = min(
            max(len(f"{s.track}:{s.name}") for s in self.spans) + 1, 48
        )
        lines = [
            f"timeline [{t_min:.6f}s .. {t_max:.6f}s] "
            f"({len(self.spans)} spans, {len(self._tracks())} tracks)"
        ]
        for track in self._tracks():
            for span in (s for s in self.spans if s.track == track):
                end = span.end_s if span.end_s is not None else now
                lo = int((span.start_s - t_min) / horizon * width)
                hi = max(int((end - t_min) / horizon * width), lo + 1)
                bar = " " * lo + "#" * (hi - lo)
                label = f"{track}:{span.name}"[: label_w - 1]
                lines.append(
                    f"{label:<{label_w}}|{bar:<{width}}| {end - span.start_s:.6f}s"
                )
        return "\n".join(lines)
