"""What-if replay: re-time a recorded causal run under perturbed knobs.

A causally-traced run (:mod:`repro.obs.flightrec`) already contains the
full dependency structure of every stage: which task ran where, when its
slot was granted, and how every fetched byte moved — send, match, and
delivery timestamped per message.  Most capacity-planning questions
("what if the NIC were twice as fast?", "what if Basic's polling tax
were zero?") are therefore answerable *analytically*, by re-timing the
recorded DAG, without paying for a re-simulation.

The model (DESIGN.md §14):

* Each task decomposes into additive buckets — fixed scheduling delay,
  compute (+combine), serialized shuffle write, local ramdisk read, wire,
  exposed matching dwell, and an unattributed remainder.  The network
  buckets come from an interval-union decomposition of the run's *global*
  wire activity clipped to the task's fetch window: a reduce task is
  paced by every transfer in flight during its fetch (its own and its
  neighbours'), not just by bytes addressed to it.
* A message span contributes a *wire-busy leg* whose position depends on
  the protocol: a rendezvous transfer moves its payload after the match
  (``[match, recv]``), an eager or socket transfer before delivery
  (``[send, arrival]``).  Unexpected-queue dwell (``mpi.match
  waited_s``) contributes a poll-sensitive leg only where it is
  *exposed* — not overlapped by any wire-busy interval.  Overlapped
  dwell is backpressure, already paid for by the wire; this is why
  critical-path *attribution* (poll-tax share in
  :mod:`repro.obs.critpath`) and what-if *sensitivity* disagree for
  MPI4Spark-Basic, by design.
* Re-timing is delta-form: a perturbed task keeps its recorded duration
  plus ``sum(bucket * (factor - 1))``, and stages re-pack task waves
  through per-executor slot heaps that reproduce the FIFO slot-grant
  semantics of the scheduler.  With the identity perturbation every
  delta is zero, so the replay reproduces the recorded wall *exactly* —
  the engine's self-test.

Blind spots (also §14): the DAG shape is frozen (task count, data
placement and message sizes never change under a knob), link scaling
assumes fluid-rate linearity, and the ``executors`` knob only re-widths
the wave packing — per-executor contention is assumed unchanged.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightRecorder
    from repro.spark.deploy import RunResult

# Fallback eager→rendezvous switch when a trace predates the run.meta
# header (matches repro.simnet.interconnect.mpi_over / mpi_loaded_over).
DEFAULT_RENDEZVOUS_THRESHOLD = 16 << 10


# ---------------------------------------------------------------------------
# Perturbations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Perturbation:
    """A declarative set of knob changes to re-time a recorded run under.

    Every knob is a multiplier on the *resource*, not on the time: a
    ``link_rate`` of 2.0 means a twice-as-fast NIC (wire time halves),
    ``serializer_rate=2.0`` a twice-as-fast shuffle-write serializer.
    ``poll_tax`` scales the *exposed* matching dwell directly (0.0 models
    a perfectly discovered unexpected queue), and ``compute`` scales
    task compute cost (0.5 = twice-as-fast cores).  ``executors``
    re-widths the stage wave packing to that many executors (analytic
    only — see the module blind spots).
    """

    name: str = ""
    link_rate: float = 1.0
    poll_tax: float = 1.0
    serializer_rate: float = 1.0
    local_read_rate: float = 1.0
    compute: float = 1.0
    executors: int | None = None

    def is_identity(self) -> bool:
        return (
            self.link_rate == 1.0
            and self.poll_tax == 1.0
            and self.serializer_rate == 1.0
            and self.local_read_rate == 1.0
            and self.compute == 1.0
            and self.executors is None
        )

    def describe(self) -> str:
        """Human-readable knob summary, e.g. ``link_rate x2``."""
        parts = []
        if self.link_rate != 1.0:
            parts.append(f"link_rate x{self.link_rate:g}")
        if self.poll_tax != 1.0:
            parts.append(f"poll_tax x{self.poll_tax:g}")
        if self.serializer_rate != 1.0:
            parts.append(f"serializer x{self.serializer_rate:g}")
        if self.local_read_rate != 1.0:
            parts.append(f"local_read x{self.local_read_rate:g}")
        if self.compute != 1.0:
            parts.append(f"compute x{self.compute:g}")
        if self.executors is not None:
            parts.append(f"executors={self.executors}")
        return ", ".join(parts) if parts else "identity"


IDENTITY = Perturbation(name="identity")

# The planner's default sweep: one step on each first-class knob.
DEFAULT_GRID: tuple[Perturbation, ...] = (
    Perturbation(name="2x NIC", link_rate=2.0),
    Perturbation(name="4x NIC", link_rate=4.0),
    Perturbation(name="0.5x NIC", link_rate=0.5),
    Perturbation(name="zero poll-tax", poll_tax=0.0),
    Perturbation(name="2x serializer", serializer_rate=2.0),
    Perturbation(name="2x ramdisk read", local_read_rate=2.0),
    Perturbation(name="2x compute", compute=0.5),
)


# ---------------------------------------------------------------------------
# Replay model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaskRecord:
    """One recorded task, decomposed into perturbable duration buckets.

    ``fixed + compute + write + local + wire + dwell + rest`` accounts
    for the full recorded duration ``end - start``.
    """

    index: int
    exec_id: int
    start: float
    end: float
    fixed: float
    compute: float
    write: float
    local: float
    wire: float
    dwell: float
    rest: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class StageRecord:
    """One stage: its recorded bounds and index-ordered task records."""

    label: str
    t0: float
    t1: float
    tasks: tuple[TaskRecord, ...]

    @property
    def wall(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Prediction:
    """The re-timed wall clock under one perturbation."""

    perturbation: Perturbation
    wall_s: float
    baseline_s: float
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.wall_s if self.wall_s > 0 else float("inf")


def _merged(intervals: Iterable[tuple[float, float]]) -> list[list[float]]:
    """Sorted, coalesced interval list."""
    out: list[list[float]] = []
    for s, e in sorted(intervals):
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1][1] = e
        else:
            out.append([s, e])
    return out


def _clipped_len(merged: Sequence[Sequence[float]], lo: float, hi: float) -> float:
    """Total length of ``merged`` intersected with ``[lo, hi]``."""
    total = 0.0
    for s, e in merged:
        if e <= lo:
            continue
        if s >= hi:
            break
        total += min(e, hi) - max(s, lo)
    return total


def _stage_of(label: str) -> str:
    return label.rsplit("-task", 1)[0] if "-task" in label else label


class ReplayModel:
    """The re-timeable form of one recorded run.

    Build with :meth:`from_flight` (a :class:`FlightRecorder`, live or
    loaded from JSONL) or :meth:`from_result` (a traced
    :class:`~repro.spark.deploy.RunResult`), then call :meth:`retime`
    with a :class:`Perturbation`.
    """

    def __init__(
        self,
        stages: Sequence[StageRecord],
        transport: str,
        slots_per_executor: int,
        n_executors: int,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.stages = tuple(stages)
        self.transport = transport
        self.slots_per_executor = int(slots_per_executor)
        self.n_executors = int(n_executors)
        self.meta = dict(meta or {})

    # -- construction -------------------------------------------------------
    @classmethod
    def from_flight(
        cls,
        flight: "FlightRecorder",
        transport: str | None = None,
        slots_per_executor: int | None = None,
        n_executors: int | None = None,
    ) -> "ReplayModel":
        """Reconstruct the replay model from a flight recording.

        The ``run.meta`` header (recorded by ``run_profile``) supplies
        the transport, slot width and executor count; explicit arguments
        override it.  Multi-tenant job-server traces interleave
        applications on shared slot gates, which the wave re-packing
        cannot reproduce — they are rejected.
        """
        sends: dict[int, float] = {}
        recvs: dict[int, float] = {}
        matches: dict[int, float] = {}
        nbytes: dict[int, int] = {}
        waited: dict[int, float] = defaultdict(float)
        trace_spans: dict[int, list[int]] = defaultdict(list)
        task_start: dict[int, Any] = {}
        task_finish: dict[int, Any] = {}
        stage_bounds: list[tuple[str, float, float]] = []
        open_stages: dict[str, float] = {}
        meta: dict[str, Any] = {}

        for ev in flight.events:
            n = ev.name
            if n == "msg.send":
                sends[ev.span] = ev.t
                nbytes[ev.span] = ev.attrs.get("nbytes", 0)
                trace_spans[ev.trace].append(ev.span)
            elif n == "msg.recv":
                recvs.setdefault(ev.span, ev.t)
            elif n == "mpi.match":
                matches.setdefault(ev.span, ev.t)
                waited[ev.span] += ev.attrs.get("waited_s", 0.0)
            elif n == "task.start":
                task_start[ev.trace] = ev
            elif n == "task.finish":
                task_finish[ev.trace] = ev
            elif n == "stage.start":
                open_stages[ev.attrs["stage"]] = ev.t
            elif n == "stage.finish":
                label = ev.attrs["stage"]
                if label in open_stages:
                    stage_bounds.append((label, open_stages.pop(label), ev.t))
            elif n == "run.meta":
                meta = dict(ev.attrs)
            elif n in ("job.submit", "job.start"):
                raise ValueError(
                    "what-if replay does not support multi-tenant job-server "
                    "traces: applications contend on shared slot gates, which "
                    "the single-tenant wave re-packing cannot re-time"
                )

        transport = transport or meta.get("transport")
        if transport is None:
            raise ValueError(
                "transport unknown: pass transport= or record a run.meta event"
            )
        if slots_per_executor is None:
            slots_per_executor = meta.get("slots_per_executor")
        if slots_per_executor is None:
            raise ValueError(
                "slot width unknown: pass slots_per_executor= or record run.meta"
            )
        if n_executors is None:
            n_executors = meta.get("n_workers")
        rndv = meta.get("rendezvous_threshold") or DEFAULT_RENDEZVOUS_THRESHOLD

        # Global wire-busy and dwell legs (the whole run's network activity).
        wire_legs: list[tuple[float, float]] = []
        dwell_legs: list[tuple[float, float]] = []
        for span, send_t in sends.items():
            close = recvs.get(span, matches.get(span))
            if close is None:
                continue  # aborted / still-open span: no closed leg
            m = matches.get(span)
            if m is None:
                # Socket transfer: payload on the wire until delivery.
                if close > send_t:
                    wire_legs.append((send_t, close))
                continue
            dwell = waited.get(span, 0.0)
            arrival = m - dwell
            if nbytes.get(span, 0) > rndv:
                # Rendezvous: the envelope is an RTS; the payload moves
                # after the match (CTS + bulk transfer).
                if close > m:
                    wire_legs.append((m, close))
            else:
                # Eager: the payload rode the envelope to the receiver.
                if arrival > send_t:
                    wire_legs.append((send_t, arrival))
            if dwell > 0 and m > arrival:
                dwell_legs.append((arrival, m))
        global_wire = _merged(wire_legs)
        global_all = _merged(wire_legs + dwell_legs)

        poll_sensitive = transport == "mpi-basic"
        per_stage: dict[str, list[TaskRecord]] = {
            label: [] for label, _, _ in stage_bounds
        }
        for trace, fin in task_finish.items():
            st = task_start.get(trace)
            if st is None:
                continue
            label = fin.attrs.get("task", "")
            a = fin.attrs
            duration = fin.t - st.t
            compute = a.get("compute_s", 0.0) + a.get("combine_s", 0.0)
            write = a.get("write_s", 0.0)
            fetch = a.get("fetch_wait_s", 0.0)
            local = wire = dwell = 0.0
            if fetch > 0:
                fetch_end = fin.t - a.get("combine_s", 0.0)
                fetch_start = fetch_end - fetch
                local = a.get("local_s")
                if local is None:
                    # Pre-local_s trace: the gap between fetch start and
                    # the first request leaving approximates the ramdisk
                    # read of the task's local blocks.
                    first_send = min(
                        (sends[s] for s in trace_spans.get(trace, ()) if s in sends),
                        default=None,
                    )
                    local = (
                        max(min(first_send, fetch_end) - fetch_start, 0.0)
                        if first_send is not None
                        else 0.0
                    )
                lo = fetch_start + local
                wire = _clipped_len(global_wire, lo, fetch_end)
                if poll_sensitive:
                    covered = _clipped_len(global_all, lo, fetch_end)
                    dwell = max(covered - wire, 0.0)
            rest = max(fetch - local - wire - dwell, 0.0)
            fixed = max(duration - compute - write - fetch, 0.0)
            tail = label.rsplit("task", 1)
            index = int(tail[1]) if len(tail) == 2 and tail[1].isdigit() else 0
            per_stage.setdefault(_stage_of(label), []).append(
                TaskRecord(
                    index=index,
                    exec_id=a.get("exec", 0),
                    start=st.t,
                    end=fin.t,
                    fixed=fixed,
                    compute=compute,
                    write=write,
                    local=local,
                    wire=wire,
                    dwell=dwell,
                    rest=rest,
                )
            )

        stages = [
            StageRecord(
                label=label,
                t0=t0,
                t1=t1,
                tasks=tuple(sorted(per_stage.get(label, []), key=lambda r: r.index)),
            )
            for label, t0, t1 in stage_bounds
        ]
        if n_executors is None:
            seen = {t.exec_id for s in stages for t in s.tasks}
            n_executors = max(len(seen), 1)
        return cls(
            stages,
            transport=transport,
            slots_per_executor=int(slots_per_executor),
            n_executors=int(n_executors),
            meta=meta,
        )

    @classmethod
    def from_result(cls, result: "RunResult") -> "ReplayModel":
        """Build from a traced :class:`RunResult` (``obs_causal=True``)."""
        if result.flight is None:
            raise ValueError(
                "RunResult carries no flight recording: run with "
                "spark.repro.obs.causal (obs_causal=True)"
            )
        return cls.from_flight(result.flight, transport=result.transport)

    # -- re-timing ----------------------------------------------------------
    @property
    def wall_s(self) -> float:
        """The recorded wall clock (sum of stage walls)."""
        return sum(s.wall for s in self.stages)

    def retime(self, perturbation: Perturbation = IDENTITY) -> Prediction:
        """Re-time the recorded DAG under ``perturbation``.

        Per-task duration deltas are propagated through a per-executor
        slot-heap wave packing (the longest-path forward pass over the
        stage's task DAG); stage walls shift by the change in the last
        task's finish.  The identity perturbation reproduces the
        recorded wall bit-exactly.
        """
        p = perturbation
        f_wire = 1.0 / p.link_rate
        f_write = 1.0 / p.serializer_rate
        f_local = 1.0 / p.local_read_rate
        n_exec = p.executors if p.executors is not None else self.n_executors
        if n_exec < 1:
            raise ValueError("executors must be >= 1")
        slots = self.slots_per_executor
        stage_seconds: dict[str, float] = {}
        for stage in self.stages:
            if not stage.tasks:
                stage_seconds[stage.label] = stage.wall
                continue
            heaps: dict[int, list[float]] = {}
            max_end = rec_max_end = stage.t0
            for task in stage.tasks:
                key = task.index % n_exec if p.executors is not None else task.exec_id
                heap = heaps.get(key)
                if heap is None:
                    heap = heaps[key] = [stage.t0] * slots
                free = heapq.heappop(heap)
                start = free if free > stage.t0 else stage.t0
                delta = (
                    task.compute * (p.compute - 1.0)
                    + task.write * (f_write - 1.0)
                    + task.local * (f_local - 1.0)
                    + task.wire * (f_wire - 1.0)
                    + task.dwell * (p.poll_tax - 1.0)
                )
                end = task.end + (start - task.start) + delta
                heapq.heappush(heap, end)
                if end > max_end:
                    max_end = end
                if task.end > rec_max_end:
                    rec_max_end = task.end
            # Delta-form against the recorded stage wall: driver-side time
            # after the last task (if any) is preserved unscaled, and the
            # identity perturbation is exactly the recorded wall.
            stage_seconds[stage.label] = stage.wall + (max_end - rec_max_end)
        wall = sum(stage_seconds.values())
        return Prediction(
            perturbation=p,
            wall_s=wall,
            baseline_s=self.wall_s,
            stage_seconds=stage_seconds,
        )

    def sensitivity(
        self,
        grid: Sequence[Perturbation] | None = None,
        top_k: int | None = None,
    ) -> list[Prediction]:
        """Rank perturbations by predicted speedup (largest first).

        The default grid is :data:`DEFAULT_GRID` plus a doubled-executor
        re-width.  ``top_k`` truncates the ranking.
        """
        if grid is None:
            grid = DEFAULT_GRID + (
                Perturbation(
                    name=f"{2 * self.n_executors} executors",
                    executors=2 * self.n_executors,
                ),
            )
        ranked = sorted(
            (self.retime(p) for p in grid),
            key=lambda pred: (-pred.speedup, pred.perturbation.name),
        )
        return ranked[:top_k] if top_k is not None else ranked

    # -- introspection ------------------------------------------------------
    def bucket_seconds(self) -> dict[str, float]:
        """Total task-seconds per bucket (model mass, for reports/tests)."""
        totals = {
            "fixed": 0.0, "compute": 0.0, "write": 0.0, "local": 0.0,
            "wire": 0.0, "dwell": 0.0, "rest": 0.0,
        }
        for stage in self.stages:
            for t in stage.tasks:
                totals["fixed"] += t.fixed
                totals["compute"] += t.compute
                totals["write"] += t.write
                totals["local"] += t.local
                totals["wire"] += t.wire
                totals["dwell"] += t.dwell
                totals["rest"] += t.rest
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplayModel {self.transport} stages={len(self.stages)} "
            f"tasks={sum(len(s.tasks) for s in self.stages)} "
            f"wall={self.wall_s:.3f}s>"
        )


def load_model(path: str, **overrides: Any) -> ReplayModel:
    """Load an exported JSONL trace and build its replay model."""
    from repro.obs.flightrec import FlightRecorder

    return ReplayModel.from_flight(FlightRecorder.load_jsonl(path), **overrides)
