"""Spark-UI-style run report: one self-contained HTML page per run set.

Renders what a Spark UI would show for a simulated job — a stage Gantt,
a per-transport message timeline, and the causal critical-path breakdown
— from the flight-recorder log alone.  Everything is inline (CSS + SVG,
no scripts, no external assets), so the page can be committed, attached
to CI as an artifact, or mailed around as a single file.

Entry points: :func:`render_report` returns the HTML for a list of
``(RunResult, CriticalPathReport)`` pairs; :func:`write_report` writes it
next to the ``BENCH_*.json`` results.  ``examples/obs_report.py`` builds
one for a small GroupBy run; the harness writes one per figure run when
``spark.repro.obs.causal`` is on.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.critpath import SEGMENTS, CriticalPathReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightEvent, FlightRecorder
    from repro.obs.whatif import Prediction, ReplayModel
    from repro.spark.deploy import RunResult

# Keep pages small: the message timeline draws at most this many spans,
# decimated evenly across the run (the page notes how many were dropped).
TIMELINE_MAX_SPANS = 2000

_SEGMENT_COLORS = {
    "compute": "#4c78a8",
    "serialize": "#72b7b2",
    "queue": "#eeca3b",
    "wire": "#54a24b",
    "poll-tax": "#e45756",
    "fetch-wait": "#b279a2",
    "sched-wait": "#ff9da6",
}

_CSS = """
body { font: 13px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 980px; color: #1a1a2e; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1a1a2e; padding-bottom: .2em; }
h2 { font-size: 1.15em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: .8em 0; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: right; }
th { background: #f0f0f5; }
td.l, th.l { text-align: left; }
.legend span { display: inline-block; margin-right: 1.2em; }
.legend i { display: inline-block; width: .9em; height: .9em;
            margin-right: .35em; vertical-align: -0.1em; }
.note { color: #666; font-size: .92em; }
svg { background: #fafafc; border: 1px solid #ddd; }
"""


def _esc(s: object) -> str:
    return html.escape(str(s))


def _decimate(items: Sequence, limit: int) -> list:
    if len(items) <= limit:
        return list(items)
    step = len(items) / limit
    return [items[int(i * step)] for i in range(limit)]


def _gantt_svg(flight: "FlightRecorder", width: int = 920) -> str:
    """Stage Gantt from stage.start / stage.finish event pairs."""
    starts: dict[str, float] = {}
    bars: list[tuple[str, float, float]] = []
    for ev in flight.events:
        if ev.name == "stage.start":
            starts[ev.attrs.get("stage", "?")] = ev.t
        elif ev.name == "stage.finish":
            label = ev.attrs.get("stage", "?")
            if label in starts:
                bars.append((label, starts.pop(label), ev.t))
    if not bars:
        return "<p class='note'>no stage events in the flight log</p>"
    t0 = min(b[1] for b in bars)
    t1 = max(b[2] for b in bars)
    span = max(t1 - t0, 1e-12)
    row_h, pad_l, pad_t = 26, 190, 8
    h = pad_t * 2 + row_h * len(bars) + 18
    sx = (width - pad_l - 12) / span
    parts = [
        f"<svg width='{width}' height='{h}' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for i, (label, s, e) in enumerate(bars):
        y = pad_t + i * row_h
        x = pad_l + (s - t0) * sx
        w = max((e - s) * sx, 1.5)
        parts.append(
            f"<text x='{pad_l - 8}' y='{y + 15}' text-anchor='end' "
            f"font-size='11'>{_esc(label)}</text>"
        )
        parts.append(
            f"<rect x='{x:.1f}' y='{y + 3}' width='{w:.1f}' height='{row_h - 8}' "
            f"fill='#4c78a8' rx='2'><title>{_esc(label)}: "
            f"{s - t0:.4f}s → {e - t0:.4f}s ({e - s:.4f}s)</title></rect>"
        )
    parts.append(
        f"<text x='{pad_l}' y='{h - 4}' font-size='10' fill='#666'>0s</text>"
        f"<text x='{width - 12}' y='{h - 4}' font-size='10' fill='#666' "
        f"text-anchor='end'>{span:.4f}s</text></svg>"
    )
    return "".join(parts)


def _timeline_svg(
    flight: "FlightRecorder", width: int = 920, max_spans: int = TIMELINE_MAX_SPANS
) -> str:
    """Message timeline: one line per traced message, send → recv/match."""
    sends: dict[int, "FlightEvent"] = {}
    closes: dict[int, float] = {}
    order: list[int] = []
    for ev in flight.events:
        if ev.name == "msg.send":
            sends[ev.span] = ev
            order.append(ev.span)
        elif ev.name in ("msg.recv", "mpi.match") and ev.span not in closes:
            closes[ev.span] = ev.t
    spans = [s for s in order if s in closes]
    if not spans:
        return "<p class='note'>no completed message spans in the flight log</p>"
    total = len(spans)
    spans = _decimate(spans, max_spans)
    t0 = min(sends[s].t for s in spans)
    t1 = max(closes[s] for s in spans)
    tspan = max(t1 - t0, 1e-12)
    pad_l, pad_t, h_rows = 50, 8, max(120, min(420, len(spans)))
    h = pad_t * 2 + h_rows + 18
    sx = (width - pad_l - 12) / tspan
    parts = [
        f"<svg width='{width}' height='{h}' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for i, s in enumerate(spans):
        ev = sends[s]
        y = pad_t + (i / max(len(spans) - 1, 1)) * h_rows
        x0 = pad_l + (ev.t - t0) * sx
        x1 = pad_l + (closes[s] - t0) * sx
        body_leg = ev.attrs.get("leg") == "mpi-body"
        color = "#e45756" if body_leg else "#4c78a8"
        parts.append(
            f"<line x1='{x0:.1f}' y1='{y:.1f}' x2='{max(x1, x0 + 1):.1f}' "
            f"y2='{y:.1f}' stroke='{color}' stroke-width='1.1'>"
            f"<title>type={ev.attrs.get('type')} "
            f"{ev.attrs.get('nbytes', 0)}B {closes[s] - ev.t:.6f}s"
            f"{' (MPI body leg)' if body_leg else ''}</title></line>"
        )
    dropped = total - len(spans)
    note = f" ({dropped} of {total} spans decimated out)" if dropped else ""
    parts.append(
        f"<text x='{pad_l}' y='{h - 4}' font-size='10' fill='#666'>0s</text>"
        f"<text x='{width - 12}' y='{h - 4}' font-size='10' fill='#666' "
        f"text-anchor='end'>{tspan:.4f}s</text></svg>"
        f"<p class='note'>{total} message spans{note}; "
        "red lines are mpi-opt MPI body legs.</p>"
    )
    return "".join(parts)


def _critpath_table(report: CriticalPathReport) -> str:
    """The per-stage segment table plus a stacked share bar."""
    head = (
        "<tr><th class='l'>stage</th><th class='l'>critical task</th>"
        + "".join(f"<th>{_esc(seg)}</th>" for seg in SEGMENTS)
        + "<th>total</th></tr>"
    )
    rows = []
    for s in report.stages:
        rows.append(
            f"<tr><td class='l'>{_esc(s.stage)}</td><td class='l'>{_esc(s.task)}</td>"
            + "".join(f"<td>{s.seconds(seg):.4f}</td>" for seg in SEGMENTS)
            + f"<td>{s.total_s:.4f}</td></tr>"
        )
    rows.append(
        "<tr><th class='l'>TOTAL</th><th></th>"
        + "".join(f"<th>{report.segment_seconds(seg):.4f}</th>" for seg in SEGMENTS)
        + f"<th>{report.total_seconds:.4f}</th></tr>"
    )
    bar = ["<svg width='920' height='26' xmlns='http://www.w3.org/2000/svg'>"]
    x = 0.0
    for seg in SEGMENTS:
        share = report.share(seg)
        if share <= 0:
            continue
        w = share * 920
        bar.append(
            f"<rect x='{x:.1f}' y='2' width='{max(w, 1):.1f}' height='20' "
            f"fill='{_SEGMENT_COLORS[seg]}'><title>{_esc(seg)}: "
            f"{share:.1%}</title></rect>"
        )
        x += w
    bar.append("</svg>")
    legend = "".join(
        f"<span><i style='background:{_SEGMENT_COLORS[seg]}'></i>"
        f"{_esc(seg)} {report.share(seg):.1%}</span>"
        for seg in SEGMENTS
    )
    return (
        f"<table>{head}{''.join(rows)}</table>"
        f"{''.join(bar)}<p class='legend'>{legend}</p>"
    )


def _sensitivity_table(predictions: Sequence["Prediction"]) -> str:
    """Capacity-planner ranking: top knobs by predicted speedup."""
    if not predictions:
        return "<p class='note'>no perturbations evaluated</p>"
    head = (
        "<tr><th class='l'>what if…</th><th class='l'>knobs</th>"
        "<th>predicted wall</th><th>Δ wall</th><th>speedup</th></tr>"
    )
    base = predictions[0].baseline_s
    max_gain = max((base - p.wall_s for p in predictions), default=0.0)
    rows = []
    for p in predictions:
        gain = base - p.wall_s
        bar_w = int(120 * gain / max_gain) if max_gain > 0 and gain > 0 else 0
        bar = (
            f"<svg width='124' height='12' style='background:none;border:none'>"
            f"<rect x='0' y='1' width='{bar_w}' height='10' fill='#54a24b'/></svg>"
            if bar_w
            else ""
        )
        rows.append(
            f"<tr><td class='l'>{_esc(p.perturbation.name)} {bar}</td>"
            f"<td class='l'>{_esc(p.perturbation.describe())}</td>"
            f"<td>{p.wall_s:.4f}s</td><td>{p.wall_s - base:+.4f}s</td>"
            f"<td>{p.speedup:.3f}x</td></tr>"
        )
    return (
        f"<p class='note'>recorded wall {base:.4f}s; rows ranked by "
        f"predicted speedup (analytic replay, no re-simulation)</p>"
        f"<table>{head}{''.join(rows)}</table>"
    )


def _pred_vs_sim_scatter(
    rows: Sequence[dict], width: int = 460, tolerance: float = 0.10
) -> str:
    """Predicted-vs-simulated scatter with the y=x line and ±tol band.

    ``rows`` are validation rows (``predicted_s`` / ``simulated_s`` plus
    an optional ``label``), e.g. the cells of ``BENCH_whatif.json``.
    """
    pts = [
        (r["simulated_s"], r["predicted_s"], r.get("label", ""))
        for r in rows
        if r.get("simulated_s") and r.get("predicted_s")
    ]
    if not pts:
        return "<p class='note'>no validation rows</p>"
    hi = max(max(x, y) for x, y, _ in pts) * 1.06
    pad, h = 44, width
    sx = (width - pad - 10) / hi
    sy = (h - pad - 10) / hi

    def X(v: float) -> float:
        return pad + v * sx

    def Y(v: float) -> float:
        return h - pad - v * sy

    parts = [
        f"<svg width='{width}' height='{h}' xmlns='http://www.w3.org/2000/svg'>",
        f"<line x1='{X(0):.1f}' y1='{Y(0):.1f}' x2='{X(hi):.1f}' "
        f"y2='{Y(hi):.1f}' stroke='#999' stroke-width='1'/>",
        f"<line x1='{X(0):.1f}' y1='{Y(0):.1f}' x2='{X(hi):.1f}' "
        f"y2='{Y(hi * (1 + tolerance)):.1f}' stroke='#ccc' "
        "stroke-dasharray='4 3'/>",
        f"<line x1='{X(0):.1f}' y1='{Y(0):.1f}' x2='{X(hi):.1f}' "
        f"y2='{Y(hi * (1 - tolerance)):.1f}' stroke='#ccc' "
        "stroke-dasharray='4 3'/>",
    ]
    for x, y, label in pts:
        ok = abs(y / x - 1.0) <= tolerance if x > 0 else False
        color = "#4c78a8" if ok else "#e45756"
        parts.append(
            f"<circle cx='{X(x):.1f}' cy='{Y(y):.1f}' r='3.2' fill='{color}' "
            f"fill-opacity='0.75'><title>{_esc(label)}: sim {x:.4f}s, "
            f"pred {y:.4f}s ({y / x - 1.0:+.1%})</title></circle>"
        )
    parts.append(
        f"<text x='{width / 2:.0f}' y='{h - 6}' font-size='11' fill='#666' "
        "text-anchor='middle'>simulated wall (s)</text>"
        f"<text x='12' y='{h / 2:.0f}' font-size='11' fill='#666' "
        f"transform='rotate(-90 12 {h / 2:.0f})' text-anchor='middle'>"
        "predicted wall (s)</text></svg>"
        f"<p class='note'>diagonal = perfect prediction; dashed = "
        f"±{tolerance:.0%} gate; red points are out of band.</p>"
    )
    return "".join(parts)


def planner_section(
    model: "ReplayModel",
    validation_rows: Sequence[dict] | None = None,
    top_k: int = 8,
) -> str:
    """The capacity-planner fragment: sensitivity ranking (+ scatter)."""
    body = ["<h3>capacity planner (what-if replay)</h3>"]
    body.append(_sensitivity_table(model.sensitivity(top_k=top_k)))
    buckets = model.bucket_seconds()
    total = sum(buckets.values()) or 1.0
    comp = " · ".join(
        f"{name} {secs / total:.1%}" for name, secs in buckets.items() if secs > 0
    )
    body.append(
        f"<p class='note'>task-seconds composition: {comp} "
        f"(DESIGN.md §14 for the model and its blind spots)</p>"
    )
    if validation_rows:
        body.append("<h3>predicted vs simulated (validation)</h3>")
        body.append(_pred_vs_sim_scatter(validation_rows))
    return "".join(body)


def render_planner_page(
    model: "ReplayModel",
    validation_rows: Sequence[dict] | None = None,
    title: str = "what-if capacity planner",
    top_k: int = 8,
) -> str:
    """A standalone capacity-planner page for one replay model.

    Used by ``examples/whatif_planner.py`` when planning from a bare
    JSONL trace (no live :class:`RunResult` to build the full run report
    around).  ``validation_rows`` adds the predicted-vs-simulated
    scatter, e.g. the flattened cells of ``results/BENCH_whatif.json``.
    """
    meta = model.meta
    bits = [f"transport <b>{_esc(model.transport)}</b>"]
    if meta.get("workload"):
        bits.insert(0, f"workload <b>{_esc(meta['workload'])}</b>")
    if meta.get("system"):
        bits.append(_esc(meta["system"]))
    bits.append(
        f"{model.n_executors} executors x {model.slots_per_executor} slots"
    )
    bits.append(f"recorded wall <b>{model.wall_s:.4f}s</b>")
    header = "<p>" + " · ".join(bits) + "</p>"
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>{header}"
        f"{planner_section(model, validation_rows, top_k=top_k)}</body></html>"
    )


def _gantt_pair_svg(
    flight_a: "FlightRecorder",
    flight_b: "FlightRecorder",
    a_label: str,
    b_label: str,
    width: int = 920,
) -> str:
    """Side-by-side stage Gantt: two thin bars per stage row, A over B.

    Each run is normalized to its own t=0 and both share one time scale,
    so a stage that slid or stretched is visible directly; stages present
    on one side only render a single bar (the structural mismatch).
    """
    from repro.obs.critpath import stage_bounds

    bounds_a = stage_bounds(flight_a)
    bounds_b = stage_bounds(flight_b)
    labels = list(bounds_a) + [s for s in bounds_b if s not in bounds_a]
    if not labels:
        return "<p class='note'>no stage events in either flight log</p>"
    t0_a = min((b[0] for b in bounds_a.values()), default=0.0)
    t0_b = min((b[0] for b in bounds_b.values()), default=0.0)
    span = max(
        max((b[1] - t0_a for b in bounds_a.values()), default=0.0),
        max((b[1] - t0_b for b in bounds_b.values()), default=0.0),
        1e-12,
    )
    row_h, bar_h, pad_l, pad_t = 30, 10, 190, 24
    h = pad_t + row_h * len(labels) + 22
    sx = (width - pad_l - 12) / span
    colors = {"a": "#4c78a8", "b": "#f58518"}
    parts = [
        f"<svg width='{width}' height='{h}' "
        f"xmlns='http://www.w3.org/2000/svg'>",
        f"<text x='{pad_l}' y='14' font-size='11' fill='{colors['a']}'>"
        f"■ {_esc(a_label)}</text>",
        f"<text x='{pad_l + 140}' y='14' font-size='11' fill='{colors['b']}'>"
        f"■ {_esc(b_label)}</text>",
    ]
    for i, label in enumerate(labels):
        y = pad_t + i * row_h
        parts.append(
            f"<text x='{pad_l - 8}' y='{y + 16}' text-anchor='end' "
            f"font-size='11'>{_esc(label)}</text>"
        )
        for key, bounds, t0, dy in (
            ("a", bounds_a, t0_a, 2), ("b", bounds_b, t0_b, 4 + bar_h),
        ):
            if label not in bounds:
                continue
            s, e, _n = bounds[label]
            x = pad_l + (s - t0) * sx
            w = max((e - s) * sx, 1.5)
            parts.append(
                f"<rect x='{x:.1f}' y='{y + dy}' width='{w:.1f}' "
                f"height='{bar_h}' fill='{colors[key]}' rx='2'>"
                f"<title>{_esc(label)} [{key.upper()}]: {s - t0:.4f}s → "
                f"{e - t0:.4f}s ({e - s:.4f}s)</title></rect>"
            )
    parts.append(
        f"<text x='{pad_l}' y='{h - 4}' font-size='10' fill='#666'>0s</text>"
        f"<text x='{width - 12}' y='{h - 4}' font-size='10' fill='#666' "
        f"text-anchor='end'>{span:.4f}s</text></svg>"
    )
    return "".join(parts)


def _waterfall_svg(diff, width: int = 920) -> str:
    """Delta waterfall: each attribution term walks 0 → wall delta.

    Bars run left-to-right in blame order (largest |Δ| first); red bars
    push B slower, green bars pull it faster, and the grey terminal bar
    is the measured wall delta the terms provably sum to.
    """
    contribs = diff.contributions()
    if not contribs:
        return "<p class='note'>identical runs: nothing to attribute</p>"
    terms = [(name, delta) for _kind, name, delta in contribs]
    terms.append(("wall delta", diff.wall_delta_s))
    lo, hi, cum = 0.0, 0.0, 0.0
    for name, delta in terms[:-1]:
        cum += delta
        lo, hi = min(lo, cum), max(hi, cum)
    lo, hi = min(lo, diff.wall_delta_s, 0.0), max(hi, diff.wall_delta_s, 0.0)
    span = max(hi - lo, 1e-12)
    row_h, pad_l, pad_t = 26, 190, 8
    h = pad_t * 2 + row_h * len(terms) + 18
    sx = (width - pad_l - 12) / span

    def X(v: float) -> float:
        return pad_l + (v - lo) * sx

    parts = [
        f"<svg width='{width}' height='{h}' "
        f"xmlns='http://www.w3.org/2000/svg'>",
        f"<line x1='{X(0):.1f}' y1='{pad_t}' x2='{X(0):.1f}' "
        f"y2='{h - 18}' stroke='#999' stroke-dasharray='3 3'/>",
    ]
    cum = 0.0
    for i, (name, delta) in enumerate(terms):
        y = pad_t + i * row_h
        last = i == len(terms) - 1
        x0, x1 = (0.0, delta) if last else (cum, cum + delta)
        if not last:
            cum += delta
        color = "#888" if last else ("#e45756" if delta > 0 else "#54a24b")
        parts.append(
            f"<text x='{pad_l - 8}' y='{y + 15}' text-anchor='end' "
            f"font-size='11'>{_esc(name)}</text>"
        )
        parts.append(
            f"<rect x='{X(min(x0, x1)):.1f}' y='{y + 4}' "
            f"width='{max(abs(x1 - x0) * sx, 1):.1f}' height='{row_h - 10}' "
            f"fill='{color}' rx='2'><title>{_esc(name)}: {delta:+.4f}s"
            f"</title></rect>"
        )
    parts.append(
        f"<text x='{pad_l}' y='{h - 4}' font-size='10' fill='#666'>"
        f"{lo:+.4f}s</text>"
        f"<text x='{width - 12}' y='{h - 4}' font-size='10' fill='#666' "
        f"text-anchor='end'>{hi:+.4f}s</text></svg>"
    )
    return "".join(parts)


def _diff_table(diff) -> str:
    """Per-stage walls, per-segment deltas and residuals."""
    head = (
        "<tr><th class='l'>stage</th><th>a wall</th><th>b wall</th>"
        "<th>Δ</th>"
        + "".join(f"<th>Δ {_esc(seg)}</th>" for seg in SEGMENTS)
        + "<th>residual</th></tr>"
    )
    rows = []
    for s in diff.stages:
        rows.append(
            f"<tr><td class='l'>{_esc(s.stage)}</td>"
            f"<td>{s.a_wall_s:.4f}</td><td>{s.b_wall_s:.4f}</td>"
            f"<td>{s.delta_s:+.4f}</td>"
            + "".join(
                f"<td>{s.segment_delta(seg):+.4f}</td>" for seg in SEGMENTS
            )
            + f"<td>{s.residual_s:+.4f}</td></tr>"
        )
    rows.append(
        "<tr><th class='l'>TOTAL</th>"
        f"<th>{diff.a_wall_s:.4f}</th><th>{diff.b_wall_s:.4f}</th>"
        f"<th>{diff.wall_delta_s:+.4f}</th>"
        + "".join(
            f"<th>{diff.segment_delta(seg):+.4f}</th>" for seg in SEGMENTS
        )
        + f"<th>{diff.residual_s:+.4f}</th></tr>"
    )
    return f"<table>{head}{''.join(rows)}</table>"


def diff_section(
    diff,
    flight_a: "FlightRecorder | None" = None,
    flight_b: "FlightRecorder | None" = None,
) -> str:
    """The blame-report fragment for one :class:`~repro.obs.diff.DiffReport`."""
    body = [
        f"<p><b>{_esc(diff.a_label)}</b> [{_esc(diff.transport_a)}] "
        f"{diff.a_wall_s:.4f}s → <b>{_esc(diff.b_label)}</b> "
        f"[{_esc(diff.transport_b)}] {diff.b_wall_s:.4f}s · wall delta "
        f"<b>{diff.wall_delta_s:+.4f}s</b></p>"
    ]
    mism = diff.meta_mismatches()
    if mism:
        body.append(
            "<p class='note'>meta drift: "
            + " · ".join(
                f"{_esc(k)} {_esc(a)} → {_esc(b)}" for k, (a, b) in mism.items()
            )
            + "</p>"
        )
    nodes = list(diff.structural) + [n for s in diff.stages for n in s.nodes]
    if nodes:
        body.append(
            "<p><b>structural mismatches</b></p><ul>"
            + "".join(
                f"<li>[{_esc(n.kind)}] {_esc(n.stage)}: {_esc(n.detail)}"
                + (f" ({n.delta_s:+.4f}s)" if n.delta_s else "")
                + "</li>"
                for n in nodes
            )
            + "</ul>"
        )
    if flight_a is not None and flight_b is not None:
        body.append(
            "<h3>stage Gantt (side by side)</h3>"
            + _gantt_pair_svg(flight_a, flight_b, diff.a_label, diff.b_label)
        )
    body.append("<h3>delta waterfall</h3>" + _waterfall_svg(diff))
    body.append("<h3>per-stage attribution</h3>" + _diff_table(diff))
    top = diff.top_contributor()
    if top is not None:
        body.append(
            f"<p>top contributor: <b>{_esc(top)}</b> — attribution terms "
            "sum to the measured wall delta (DESIGN.md §16 for the "
            "residual contract).</p>"
        )
    return "".join(body)


def render_diff_page(
    diff,
    flight_a: "FlightRecorder | None" = None,
    flight_b: "FlightRecorder | None" = None,
    title: str = "differential run analysis",
) -> str:
    """A standalone blame-report page for one run diff.

    This is the artifact CI uploads when the perf gate fails: the
    side-by-side stage Gantt, the per-segment delta waterfall and the
    attribution table, self-contained in one HTML file.
    """
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>"
        f"{diff_section(diff, flight_a, flight_b)}</body></html>"
    )


def write_diff_report(
    path: str,
    diff,
    flight_a: "FlightRecorder | None" = None,
    flight_b: "FlightRecorder | None" = None,
    title: str = "differential run analysis",
) -> str:
    """Render and write the blame page; returns ``path`` for chaining."""
    with open(path, "w") as fh:
        fh.write(render_diff_page(diff, flight_a, flight_b, title=title))
    return path


def render_report(
    runs: Iterable[tuple["RunResult", CriticalPathReport]],
    title: str = "repro run report",
) -> str:
    """The full page: one section per (result, critical-path) pair."""
    sections = []
    for result, cp in runs:
        flight = result.flight
        stage_rows = "".join(
            f"<tr><td class='l'>{_esc(label)}</td><td>{secs:.4f}</td></tr>"
            for label, secs in result.stage_seconds.items()
        )
        meta = (
            f"<p>workload <b>{_esc(result.workload)}</b> · system "
            f"{_esc(result.system)} · {result.n_workers} workers · "
            f"{result.total_cores} cores · total "
            f"<b>{result.total_seconds:.4f}s</b>"
        )
        if flight is not None:
            meta += (
                f" · {len(flight.events)} flight events"
                + (f" ({flight.dropped} dropped)" if flight.dropped else "")
            )
        meta += "</p>"
        body = [f"<h2>transport: {_esc(result.transport)}</h2>", meta]
        body.append(
            f"<table><tr><th class='l'>stage</th><th>seconds</th></tr>"
            f"{stage_rows}</table>"
        )
        if flight is not None:
            body.append("<h3>stage Gantt</h3>" + _gantt_svg(flight))
            body.append("<h3>message timeline</h3>" + _timeline_svg(flight))
        body.append("<h3>critical path</h3>" + _critpath_table(cp))
        if flight is not None:
            from repro.obs.whatif import ReplayModel

            try:
                model = ReplayModel.from_result(result)
            except ValueError:
                # e.g. a multi-tenant job-server trace: no planner section.
                pass
            else:
                body.append(planner_section(model))
        sections.append("".join(body))
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>{''.join(sections)}</body></html>"
    )


def write_report(
    path: str,
    runs: Iterable[tuple["RunResult", CriticalPathReport]],
    title: str = "repro run report",
) -> str:
    """Render and write the page; returns ``path`` for chaining."""
    with open(path, "w") as fh:
        fh.write(render_report(runs, title=title))
    return path
