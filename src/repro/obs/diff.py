"""Differential run analysis: align two causal recordings, blame the delta.

The paper's whole argument is an A/B comparison — Basic vs Optimized,
transport vs transport, figure by figure — yet a critical-path report
explains one run at a time.  :func:`diff_runs` closes that gap: given two
recorded causal runs (live :class:`~repro.spark.deploy.RunResult` objects
or :class:`~repro.obs.flightrec.FlightRecorder` logs, e.g. loaded from
JSONL), it aligns them stage-by-stage and decomposes the wall-clock delta
into per-segment contributions using the existing critical-path buckets
(:data:`~repro.obs.critpath.SEGMENTS`), plus a per-stage **residual**.

The attribution contract (DESIGN.md §16):

* **Alignment key** is the stage label (``Job1-ShuffleMapStage``, or the
  ``app:sched-wait`` pseudo-stage) in side-A's first-start order; B-only
  stages follow.  Stage walls come from the ``stage.start``/
  ``stage.finish`` event pairs, so the measured wall delta of the diff is
  ``Σ B stage walls − Σ A stage walls`` — for single-application runs
  (stages execute back-to-back) exactly the ``total_seconds`` delta.
* **Segments** per aligned stage are the critical-path decomposition of
  each side, with one re-split: the share of recorded compute that is
  Basic's busy-poll interference (``transport.compute_inflation``, from
  the ``run.meta`` header) is charged to ``poll-tax``, so the cross-
  transport diff attributes the paper's compute-starvation effect to the
  polling design instead of reporting a phantom workload change.  The
  per-stage residual is *defined* as the stage's wall
  delta minus the sum of its segment deltas, so segment contributions
  plus residuals sum to the measured delta by construction —
  :meth:`DiffReport.check` verifies the identity to float precision.
  The residual is where uninstrumented time lives (non-critical-task
  skew, local reads, wave packing), and a large residual is itself a
  finding: the regression is outside the instrumented buckets.
* **Structural mismatches** are first-class :class:`StructuralNode`
  entries, never silently dropped: a stage present on one side only
  contributes its whole wall (``stage-added``/``stage-removed``); an
  aligned stage whose task count drifted (``task-count``) or whose tasks
  re-packed into a different number of scheduler waves (``wave-repack``,
  derived from each side's ``run.meta`` slot geometry) is annotated —
  the annotated stage's time delta still flows through its segments and
  residual, so the sum identity is unaffected.

Self-diff identity: diffing a recording against itself yields exact-zero
deltas in every segment, zero residual and no structural nodes — the
property test the whole attribution rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.critpath import SEGMENTS, analyze, stage_bounds

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightRecorder

# Structural diff-node kinds, in severity order.
STRUCTURAL_KINDS = ("stage-added", "stage-removed", "task-count", "wave-repack")

# run.meta keys compared between the two sides (reported, never fatal:
# diffing across code versions or knob settings is the point).
_META_KEYS = (
    "workload", "transport", "system", "n_workers", "cores_per_executor",
    "slots_per_executor", "seed", "n_stages", "n_tasks",
)

# Sum-identity tolerance: the per-stage residual makes the identity hold
# by construction; fsum re-association can still cost a few ulps.
IDENTITY_TOL = 1e-9


@dataclass
class StructuralNode:
    """One structural mismatch between the two runs.

    ``delta_s`` is the node's *contribution* to the wall delta: the full
    stage wall for ``stage-added``/``stage-removed`` (signed: B-only
    stages add time, A-only stages remove it), and 0.0 for the
    annotation kinds (``task-count``, ``wave-repack``) whose time delta
    already flows through the aligned stage's segments and residual.
    """

    kind: str
    stage: str
    detail: str
    delta_s: float = 0.0


@dataclass
class StageDiff:
    """One aligned stage: walls, per-segment (A, B) seconds, residual."""

    stage: str
    a_wall_s: float
    b_wall_s: float
    segments: dict[str, tuple[float, float]] = field(default_factory=dict)
    residual_s: float = 0.0
    nodes: list[StructuralNode] = field(default_factory=list)

    @property
    def delta_s(self) -> float:
        return self.b_wall_s - self.a_wall_s

    def segment_delta(self, segment: str) -> float:
        a, b = self.segments.get(segment, (0.0, 0.0))
        return b - a


@dataclass
class DiffReport:
    """The full differential analysis of two recorded runs."""

    a_label: str
    b_label: str
    transport_a: str
    transport_b: str
    stages: list[StageDiff] = field(default_factory=list)
    structural: list[StructuralNode] = field(default_factory=list)
    meta_a: dict[str, Any] = field(default_factory=dict)
    meta_b: dict[str, Any] = field(default_factory=dict)

    # -- roll-ups -------------------------------------------------------------
    @property
    def a_wall_s(self) -> float:
        removed = [-n.delta_s for n in self.structural if n.kind == "stage-removed"]
        return math.fsum([s.a_wall_s for s in self.stages] + removed)

    @property
    def b_wall_s(self) -> float:
        added = [n.delta_s for n in self.structural if n.kind == "stage-added"]
        return math.fsum([s.b_wall_s for s in self.stages] + added)

    @property
    def wall_delta_s(self) -> float:
        """The measured delta: Σ B stage walls − Σ A stage walls."""
        return self.b_wall_s - self.a_wall_s

    def segment_delta(self, segment: str) -> float:
        return math.fsum(s.segment_delta(segment) for s in self.stages)

    @property
    def residual_s(self) -> float:
        return math.fsum(s.residual_s for s in self.stages)

    @property
    def attributed_delta_s(self) -> float:
        """Sum of every attribution term; equals :attr:`wall_delta_s`."""
        terms: list[float] = []
        for s in self.stages:
            terms.extend(s.segment_delta(seg) for seg in s.segments)
            terms.append(s.residual_s)
        terms.extend(
            n.delta_s
            for n in self.structural
            if n.kind in ("stage-added", "stage-removed")
        )
        return math.fsum(terms)

    # -- the blame surface ----------------------------------------------------
    def contributions(self) -> list[tuple[str, str, float]]:
        """Attribution terms ``(kind, name, delta_s)``, largest |Δ| first.

        Kinds: ``segment`` (name is the critpath bucket), ``residual``,
        and ``structural`` (name is ``stage-added:<stage>`` etc.).  The
        deltas sum to :attr:`wall_delta_s` — that is :meth:`check`.
        """
        out: list[tuple[str, str, float]] = []
        for seg in SEGMENTS:
            delta = self.segment_delta(seg)
            if delta != 0.0:
                out.append(("segment", seg, delta))
        if self.residual_s != 0.0:
            out.append(("residual", "residual", self.residual_s))
        for n in self.structural:
            if n.kind in ("stage-added", "stage-removed") and n.delta_s != 0.0:
                out.append(("structural", f"{n.kind}:{n.stage}", n.delta_s))
        out.sort(key=lambda c: (-abs(c[2]), c[1]))
        return out

    def top_contributor(self) -> str | None:
        """Name of the largest-|Δ| attribution term (None on identity)."""
        contribs = self.contributions()
        return contribs[0][1] if contribs else None

    def check(self, tol: float = IDENTITY_TOL) -> None:
        """Assert the sum identity: attributions == measured wall delta."""
        gap = abs(self.attributed_delta_s - self.wall_delta_s)
        scale = max(1.0, abs(self.wall_delta_s))
        if gap > tol * scale:
            raise AssertionError(
                f"attribution leak: terms sum to {self.attributed_delta_s!r}, "
                f"measured wall delta is {self.wall_delta_s!r} (gap {gap:g})"
            )

    def is_identity(self) -> bool:
        """True iff the diff is exactly zero everywhere (self-diff)."""
        return (
            not self.structural
            and not any(s.nodes for s in self.stages)
            and all(
                s.delta_s == 0.0
                and s.residual_s == 0.0
                and all(s.segment_delta(seg) == 0.0 for seg in s.segments)
                for s in self.stages
            )
        )

    def meta_mismatches(self) -> dict[str, tuple[Any, Any]]:
        """run.meta keys whose values differ between the sides."""
        out: dict[str, tuple[Any, Any]] = {}
        for key in _META_KEYS:
            a, b = self.meta_a.get(key), self.meta_b.get(key)
            if a != b:
                out[key] = (a, b)
        return out

    def render(self) -> str:
        """Text report: per-stage table, structural nodes, blame ranking."""
        lines = [
            f"run diff: {self.a_label} [{self.transport_a}] -> "
            f"{self.b_label} [{self.transport_b}]",
            f"wall {self.a_wall_s:.4f}s -> {self.b_wall_s:.4f}s "
            f"(delta {self.wall_delta_s:+.4f}s)",
        ]
        mism = self.meta_mismatches()
        if mism:
            lines.append(
                "meta: " + ", ".join(
                    f"{k} {a!r} -> {b!r}" for k, (a, b) in mism.items()
                )
            )
        cols = ["stage", "a wall", "b wall", "delta", "top segment", "residual"]
        rows = []
        for s in self.stages:
            seg_deltas = [
                (seg, s.segment_delta(seg)) for seg in SEGMENTS
                if s.segment_delta(seg) != 0.0
            ]
            top = max(seg_deltas, key=lambda p: abs(p[1]), default=None)
            rows.append([
                s.stage,
                f"{s.a_wall_s:.4f}",
                f"{s.b_wall_s:.4f}",
                f"{s.delta_s:+.4f}",
                f"{top[0]} {top[1]:+.4f}" if top else "-",
                f"{s.residual_s:+.4f}",
            ])
        if rows:
            widths = [
                max(len(cols[i]), *(len(r[i]) for r in rows))
                for i in range(len(cols))
            ]
            lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
            lines.append("  ".join("-" * w for w in widths))
            lines.extend(
                "  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rows
            )
        all_nodes = list(self.structural) + [
            n for s in self.stages for n in s.nodes
        ]
        for n in all_nodes:
            extra = f" ({n.delta_s:+.4f}s)" if n.delta_s else ""
            lines.append(f"structural [{n.kind}] {n.stage}: {n.detail}{extra}")
        contribs = self.contributions()
        if contribs:
            lines.append("blame (terms sum to the measured delta):")
            lines.extend(
                f"  {name:<24} {delta:+.4f}s" for _, name, delta in contribs
            )
        else:
            lines.append("identical runs: zero delta in every term")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able summary (the CI artifact next to the HTML page)."""
        return {
            "a": {"label": self.a_label, "transport": self.transport_a,
                  "wall_s": self.a_wall_s},
            "b": {"label": self.b_label, "transport": self.transport_b,
                  "wall_s": self.b_wall_s},
            "wall_delta_s": self.wall_delta_s,
            "residual_s": self.residual_s,
            "segment_deltas": {
                seg: self.segment_delta(seg) for seg in SEGMENTS
            },
            "contributions": [
                {"kind": kind, "name": name, "delta_s": delta}
                for kind, name, delta in self.contributions()
            ],
            "structural": [
                {"kind": n.kind, "stage": n.stage, "detail": n.detail,
                 "delta_s": n.delta_s}
                for n in self.structural + [
                    m for s in self.stages for m in s.nodes
                ]
            ],
            "meta_mismatches": {
                k: list(v) for k, v in self.meta_mismatches().items()
            },
            "stages": [
                {
                    "stage": s.stage,
                    "a_wall_s": s.a_wall_s,
                    "b_wall_s": s.b_wall_s,
                    "delta_s": s.delta_s,
                    "residual_s": s.residual_s,
                    "segments": {
                        seg: {"a_s": a, "b_s": b, "delta_s": b - a}
                        for seg, (a, b) in s.segments.items()
                    },
                }
                for s in self.stages
            ],
        }


# -- side extraction ----------------------------------------------------------

@dataclass
class _Side:
    """One run, normalized for alignment."""

    label: str
    transport: str
    flight: "FlightRecorder"
    meta: dict[str, Any]
    # stage -> (wall_s, n_tasks, segments) in first-start order
    stages: dict[str, tuple[float, int, dict[str, float]]]

    def waves(self, n_tasks: int) -> int | None:
        """Scheduler waves the stage packs into under this side's slots."""
        workers = self.meta.get("n_workers")
        slots = self.meta.get("slots_per_executor")
        if not workers or not slots or n_tasks <= 0:
            return None
        return -(-n_tasks // (int(workers) * int(slots)))


def _coerce_flight(run: Any) -> tuple["FlightRecorder", str | None]:
    """Accept a FlightRecorder or a RunResult carrying one."""
    flight = getattr(run, "flight", None)
    if flight is not None:  # RunResult recorded with obs.causal
        return flight, getattr(run, "transport", None)
    if hasattr(run, "events"):
        return run, None
    raise ValueError(
        f"cannot diff {type(run).__name__}: pass a FlightRecorder or a "
        "RunResult recorded with spark.repro.obs.causal=true"
    )


def _side_of(run: Any, label: str, transport: str | None) -> _Side:
    flight, result_transport = _coerce_flight(run)
    meta: dict[str, Any] = {}
    for ev in flight.events:
        if ev.name == "run.meta":
            meta = dict(ev.attrs)
            break
    transport = transport or result_transport or meta.get("transport")
    if not transport:
        raise ValueError(
            f"side {label!r}: transport unknown — pass transport_a/"
            "transport_b or record a run.meta event"
        )
    report = analyze(flight, transport)
    by_stage = {s.stage: s for s in report.stages}
    stages: dict[str, tuple[float, int, dict[str, float]]] = {}
    inflation = float(meta.get("compute_inflation", 1.0) or 1.0)
    for stage, (t0, t1, n_tasks) in stage_bounds(flight).items():
        cp = by_stage.get(stage)
        segments = dict(cp.segments) if cp else {}
        # The polling design's second face (paper Sec VI-D): Basic's
        # busy-poll interference inflates recorded compute_s by the
        # transport's compute_inflation factor.  Re-split the critical
        # task's compute into pure compute + interference and charge the
        # interference to poll-tax, so a cross-transport diff blames the
        # polling design rather than reporting a phantom workload change.
        # The split is exact (tax = compute − compute/inflation), so the
        # per-stage segment sum — and with it the residual and the sum
        # identity — is unchanged; same-recording diffs stay exact zero.
        if inflation != 1.0 and "compute" in segments:
            pure = segments["compute"] / inflation
            tax = segments["compute"] - pure
            segments["compute"] = pure
            segments["poll-tax"] = segments.get("poll-tax", 0.0) + tax
        stages[stage] = (t1 - t0, n_tasks, segments)
    # Pseudo-stages (app:sched-wait) exist only in the critpath report;
    # their wall is the queueing delay itself.
    for s in report.stages:
        if s.stage not in stages:
            stages[s.stage] = (s.end_s - s.start_s, 0, dict(s.segments))
    return _Side(
        label=label, transport=transport, flight=flight, meta=meta,
        stages=stages,
    )


# -- the engine ---------------------------------------------------------------

def diff_runs(
    a: Any,
    b: Any,
    *,
    a_label: str = "A",
    b_label: str = "B",
    transport_a: str | None = None,
    transport_b: str | None = None,
) -> DiffReport:
    """Align run ``a`` against run ``b``; attribute ``b − a`` wall delta.

    Both arguments accept a :class:`~repro.spark.deploy.RunResult`
    recorded with ``spark.repro.obs.causal`` or a bare
    :class:`~repro.obs.flightrec.FlightRecorder` (e.g. loaded from a
    committed baseline JSONL).  The returned report satisfies the sum
    identity (:meth:`DiffReport.check`): per-segment deltas + residuals
    + added/removed stage walls == measured wall delta.
    """
    side_a = _side_of(a, a_label, transport_a)
    side_b = _side_of(b, b_label, transport_b)
    report = DiffReport(
        a_label=a_label,
        b_label=b_label,
        transport_a=side_a.transport,
        transport_b=side_b.transport,
        meta_a=side_a.meta,
        meta_b=side_b.meta,
    )
    for stage, (a_wall, a_tasks, a_segs) in side_a.stages.items():
        if stage not in side_b.stages:
            report.structural.append(StructuralNode(
                kind="stage-removed",
                stage=stage,
                detail=f"only in {a_label} ({a_wall:.4f}s)",
                delta_s=-a_wall,
            ))
            continue
        b_wall, b_tasks, b_segs = side_b.stages[stage]
        segments = {
            seg: (a_segs.get(seg, 0.0), b_segs.get(seg, 0.0))
            for seg in SEGMENTS
            if seg in a_segs or seg in b_segs
        }
        seg_deltas = [b_v - a_v for a_v, b_v in segments.values()]
        sd = StageDiff(
            stage=stage,
            a_wall_s=a_wall,
            b_wall_s=b_wall,
            segments=segments,
            residual_s=(b_wall - a_wall) - math.fsum(seg_deltas),
        )
        if a_tasks != b_tasks and a_tasks and b_tasks:
            sd.nodes.append(StructuralNode(
                kind="task-count",
                stage=stage,
                detail=f"{a_tasks} -> {b_tasks} tasks",
            ))
        waves_a = side_a.waves(a_tasks)
        waves_b = side_b.waves(b_tasks)
        if waves_a is not None and waves_b is not None and waves_a != waves_b:
            sd.nodes.append(StructuralNode(
                kind="wave-repack",
                stage=stage,
                detail=f"{waves_a} -> {waves_b} scheduler waves",
            ))
        report.stages.append(sd)
    for stage, (b_wall, _tasks, _segs) in side_b.stages.items():
        if stage not in side_a.stages:
            report.structural.append(StructuralNode(
                kind="stage-added",
                stage=stage,
                detail=f"only in {b_label} ({b_wall:.4f}s)",
                delta_s=b_wall,
            ))
    return report
