"""MPI4Spark-Collective: one alltoallv per stage boundary.

Where the Optimized design still moves shuffle data through Spark's
per-block ChunkFetch request/response pattern (open-blocks RPC, windowed
chunk fetches, per-chunk server turnaround), this transport performs the
entire map→reduce exchange as a single variable-sized collective per
stage boundary — the Alchemist/Spark-MPI observation that bulk exchange
belongs to ``MPI_Alltoallv``, not point-to-point request/response.

The control plane (RPCs, handshakes, registration) is inherited
unchanged from :class:`~repro.transports.mpi_opt.MpiOptimizedTransport`;
only the shuffle data plane differs.  The scheduler detects the
``collective_shuffle`` flag and, instead of letting every reduce task
issue per-block fetches, aggregates the stage's traffic matrix into one
:class:`CollectiveShuffleExchange` that all of the stage's tasks wait
on.  Eliminated wholesale: the open-blocks RPC round trip per source,
the per-chunk request/response latency, server-side queueing, and the
in-flight-window stalls — the segments the critical-path analyzer files
under *fetch-wait* and *queue*.

Fault semantics: a participant dying mid-exchange fails the whole
exchange (after the round schedule drains among survivors, so nobody
hangs); waiting tasks surface it as a fetch failure attributed to the
dead executor, which the resilient scheduler turns into a stage
resubmission.  A world abort (``fault_mode="abort"``) fails the job, as
it does for every MPI transport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.mpi.collectives import alltoallv
from repro.mpi.errors import MPIError, RankDeadError, WorldAbortedError
from repro.transports.mpi_opt import MpiOptimizedTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MPIProcess
    from repro.simnet.engine import SimEngine


class CollectiveShuffleExchange:
    """One stage boundary's map→reduce traffic as a single alltoallv.

    ``members`` is the ordered list of ``(comm_rank, MPIProcess)``
    participants (one per executor of the stage's cluster/app subset);
    ``totals[i][j]`` is the byte count member ``i`` receives from member
    ``j`` — the stage's fetch matrix aggregated over reduce tasks, with
    the local (diagonal) traffic excluded.  ``tag`` must be unique among
    concurrently live exchanges on the same communicator so rounds of
    different stage boundaries can never cross-match.

    The exchange starts moving bytes the moment :meth:`start` runs —
    at stage start, not per task — and every reduce task of the stage
    waits on the same completion event via :meth:`wait`.

    Liveness is resolved once at start: members whose process is already
    dead are dropped from the round schedule (the ULFM-shrunk subset);
    if the traffic matrix still owes bytes to or from a dead member the
    exchange fails immediately, which callers surface as a fetch
    failure so the scheduler re-plans onto survivors.
    """

    def __init__(
        self,
        env: "SimEngine",
        label: str,
        members: Sequence[tuple[int, "MPIProcess"]],
        totals: Sequence[Sequence[float]],
        tag: int,
    ) -> None:
        self.env = env
        self.label = label
        self.members = list(members)
        self.totals = totals
        self.tag = tag
        self.done = env.event()
        self.error: MPIError | None = None
        self._live: list[int] = []
        self._pending = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Resolve liveness and launch one participant per live member."""
        n = len(self.members)
        self._live = [i for i, (_, proc) in enumerate(self.members) if proc.alive]
        live = set(self._live)
        for i in range(n):
            for j in range(n):
                if self.totals[i][j] and (i not in live or j not in live):
                    dead = i if i not in live else j
                    self.error = RankDeadError(
                        f"coll:{self.label}: member {dead} "
                        f"(rank {self.members[dead][0]}) is dead with "
                        f"{int(self.totals[i][j])} bytes outstanding"
                    )
                    self.done.succeed()
                    return
        if len(self._live) <= 1:
            self.done.succeed()
            return
        self._pending = len(self._live)
        for i in self._live:
            rank, proc = self.members[i]
            self.env.process(
                self._participant(i), name=f"coll:{self.label}:r{rank}"
            )

    def _participant(self, i: int) -> Generator:
        rank, proc = self.members[i]
        comm = proc.comm_world
        live_ranks = [self.members[j][0] for j in self._live]
        # Bytes this member sends to each comm rank (column i of totals,
        # spread onto communicator rank indices; zero-size slots included
        # so every rank drives the identical round schedule).
        send_nbytes = [0] * comm.size
        payload = [None] * comm.size
        for j in self._live:
            peer_rank = self.members[j][0]
            nb = int(self.totals[j][i])
            send_nbytes[peer_rank] = nb
            if nb > 0:
                payload[peer_rank] = ("shuffle", self.label, rank, peer_rank)
        causal = self.env.causal
        ctx = None
        if causal.enabled:
            ctx = causal.mint()
            causal.event(
                "coll.start", ctx, exchange=self.label, rank=rank,
                tag=self.tag, send_bytes=sum(send_nbytes),
            )
        try:
            yield from alltoallv(
                comm,
                payload,
                nbytes=send_nbytes,
                tag=self.tag,
                trace_parent=ctx,
                ranks=live_ranks,
            )
        except MPIError as exc:
            if self.error is None:
                self.error = exc
        finally:
            if causal.enabled:
                causal.event(
                    "coll.finish", ctx, exchange=self.label, rank=rank,
                    failed=self.error is not None,
                )
            self._pending -= 1
            if self._pending == 0 and not self.done.triggered:
                self.done.succeed()

    # -- waiters ------------------------------------------------------------
    def wait(self) -> Generator:
        """Block until the exchange completes; raise its first error."""
        yield self.done
        if self.error is not None:
            raise self.error

    def failed_member(self) -> int | None:
        """Index (into ``members``) of a dead participant, for blame.

        Resolved by ground-truth liveness after failure — the same
        information a ULFM failure handler gets from the communicator —
        or None when the failure is not attributable to a specific peer
        (callers then treat it as a transient fetch failure).
        """
        if self.error is None:
            return None
        for i, (_, proc) in enumerate(self.members):
            if not proc.alive:
                return i
        return None


class MpiCollectiveTransport(MpiOptimizedTransport):
    """MPI4Spark-Collective: Optimized control plane, alltoallv data plane."""

    name = "mpi-coll"
    # The scheduler keys off this flag: ShuffleReadStage fetch phases
    # collapse into one CollectiveShuffleExchange per stage boundary.
    collective_shuffle = True

    def start_exchange(
        self,
        label: str,
        members: Sequence[tuple[int, "MPIProcess"]],
        totals: Sequence[Sequence[float]],
        tag: int,
    ) -> CollectiveShuffleExchange:
        """Build and launch one stage boundary's collective exchange."""
        exchange = CollectiveShuffleExchange(
            self.env, label, members, totals, tag
        )
        exchange.start()
        return exchange


__all__ = [
    "CollectiveShuffleExchange",
    "MpiCollectiveTransport",
    "WorldAbortedError",
]
