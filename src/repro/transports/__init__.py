"""Pluggable communication transports (the paper's evaluation matrix)."""

from repro.transports.base import Transport
from repro.transports.mpi_basic import MpiBasicTransport
from repro.transports.mpi_coll import MpiCollectiveTransport
from repro.transports.mpi_opt import MpiOptimizedTransport
from repro.transports.nio import NioTransport
from repro.transports.rdma import RdmaTransport

TRANSPORTS: dict[str, type[Transport]] = {
    "nio": NioTransport,
    "rdma": RdmaTransport,
    "mpi-basic": MpiBasicTransport,
    "mpi-opt": MpiOptimizedTransport,
    "mpi-coll": MpiCollectiveTransport,
}

# Friendly aliases matching the paper's figure legends.
ALIASES = {
    "vanilla": "nio",
    "ipoib": "nio",
    "rdma-spark": "rdma",
    "mpi": "mpi-opt",
    "mpi4spark": "mpi-opt",
    "mpi4spark-basic": "mpi-basic",
    "mpi4spark-optimized": "mpi-opt",
    "coll": "mpi-coll",
    "alltoallv": "mpi-coll",
    "mpi4spark-collective": "mpi-coll",
}


def make_transport(
    name: str, env, cluster, loaded: bool = False, fault_mode: str = "abort"
) -> Transport:
    """Instantiate a transport by name (accepts paper-legend aliases).

    ``loaded=True`` selects the full-CPU-load wire models for CPU-bound
    stacks — use it for end-to-end cluster runs, not microbenchmarks.
    ``fault_mode`` ("abort" | "shrink") selects the MPI world's reaction
    to rank death; socket transports ignore it.
    """
    key = ALIASES.get(name.lower(), name.lower())
    cls = TRANSPORTS.get(key)
    if cls is None:
        raise KeyError(
            f"unknown transport {name!r}; choose from {sorted(TRANSPORTS)} "
            f"or aliases {sorted(ALIASES)}"
        )
    return cls(env, cluster, loaded=loaded, fault_mode=fault_mode)


__all__ = [
    "Transport",
    "NioTransport",
    "RdmaTransport",
    "MpiBasicTransport",
    "MpiCollectiveTransport",
    "MpiOptimizedTransport",
    "TRANSPORTS",
    "ALIASES",
    "make_transport",
]
