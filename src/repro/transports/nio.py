"""Vanilla Spark transport: Netty NIO over TCP (IPoIB on IB fabrics).

This *is* the base :class:`~repro.transports.base.Transport`; the subclass
exists so the registry reads one class per paper configuration.
"""

from __future__ import annotations

from repro.transports.base import Transport


class NioTransport(Transport):
    """Baseline: every message over kernel TCP sockets (IPoIB)."""

    name = "nio"
