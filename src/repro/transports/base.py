"""The pluggable transport abstraction.

One :class:`Transport` instance describes how a whole Spark cluster
communicates: which socket stacks exist, how channel pipelines are
augmented, which event-loop flavour roles run, and what performance taxes
the design carries (the Basic design's polling core / compute
interference). The four concrete transports mirror the paper's evaluation
matrix: Vanilla (NIO/IPoIB), RDMA-Spark, MPI4Spark-Basic and
MPI4Spark-Optimized.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.netty.channel import Channel
from repro.netty.eventloop import EventLoop
from repro.simnet.interconnect import Fabric, tcp_loaded_over, tcp_over
from repro.simnet.sockets import SocketStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.endpoint import MpiEndpoint
    from repro.mpi.runtime import MPIWorld
    from repro.simnet.engine import SimEngine
    from repro.simnet.topology import SimCluster


class Transport:
    """Base transport: vanilla Netty NIO over TCP (IPoIB)."""

    name = "nio"
    uses_mpi = False
    # Cores permanently burned per executor by communication threads.
    polling_tax_cores = 0
    # Multiplier on task compute time from communication interference
    # (cache pollution / scheduler churn from busy-polling threads).
    compute_inflation = 1.0

    def __init__(
        self,
        env: "SimEngine",
        cluster: "SimCluster",
        loaded: bool = False,
        fault_mode: str = "abort",
    ) -> None:
        """``loaded=True`` selects the under-full-CPU-load wire models for
        CPU-dependent stacks (TCP/IPoIB, UCR) — the regime of the end-to-end
        figures; idle-node microbenchmarks (Fig 8) use the defaults.

        ``fault_mode`` only matters for the MPI transports: how the MPI
        world reacts to rank death ("abort" = MPI_ERRORS_ARE_FATAL,
        "shrink" = ULFM-style survival). Socket transports ignore it —
        TCP connections fail independently by nature."""
        self.env = env
        self.cluster = cluster
        self.loaded = loaded
        self.fault_mode = fault_mode
        self.fabric: Fabric = cluster.fabric
        tcp_model = tcp_loaded_over(self.fabric) if loaded else tcp_over(self.fabric)
        self.control_stack = SocketStack(env, cluster, tcp_over(self.fabric))
        self.data_stack = SocketStack(env, cluster, tcp_model)
        self.mpi_world: "MPIWorld | None" = None

    # -- role wiring -----------------------------------------------------------
    def make_loop(self, name: str, endpoint: "MpiEndpoint | None" = None) -> EventLoop:
        loop = EventLoop(self.env, name)
        loop.mpi_endpoint = endpoint
        return loop

    def pipeline_hook(self, channel: Channel, is_server: bool) -> None:
        """Augment a data-plane channel pipeline (no-op for NIO)."""

    def establish(self, channel: Channel, endpoint: "MpiEndpoint | None") -> Generator:
        """Post-connect setup on a client data channel (no-op for NIO)."""
        return
        yield  # pragma: no cover - makes this a generator

    def describe(self) -> str:
        return f"{self.name} over {self.fabric.name}"
