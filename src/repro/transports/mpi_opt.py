"""MPI4Spark-Optimized: shuffle bodies over MPI, headers over sockets.

The paper's headline design (Sec. VI-E): only ``ChunkFetchSuccess`` and
``StreamResponse`` bodies ride MPI point-to-point; header parsing inside
ChannelHandlers triggers the matching ``MPI_Recv``. No polling — the
selector loop is untouched, so no CPU tax.
"""

from __future__ import annotations

from typing import Generator

from repro.core.handshake import MpiHandshakeHandler, ensure_handshake
from repro.core.mpi_netty import MpiBodyReceiveHandler, optimized_transport_write
from repro.mpi.runtime import MPIWorld
from repro.netty.channel import Channel
from repro.netty.eventloop import EventLoop
from repro.simnet.interconnect import mpi_over
from repro.transports.base import Transport


class MpiOptimizedTransport(Transport):
    """MPI4Spark-Optimized (the design used throughout the paper's eval)."""

    name = "mpi-opt"
    uses_mpi = True

    def __init__(
        self, env, cluster, loaded: bool = False, fault_mode: str = "abort"
    ) -> None:
        super().__init__(env, cluster, loaded, fault_mode=fault_mode)
        # MPI is kernel-bypass + zero-copy: no loaded-CPU degradation.
        self.mpi_world = MPIWorld(
            env, cluster, mpi_over(self.fabric), fault_mode=fault_mode
        )

    def pipeline_hook(self, channel: Channel, is_server: bool) -> None:
        # Order matters (paper Fig. 7): handshake interception first, then
        # body reception on header parse, then the normal codec.
        channel.pipeline.add_first("mpiBodyRecv", MpiBodyReceiveHandler())
        channel.pipeline.add_first("mpiHandshake", MpiHandshakeHandler())
        channel._transport_write = lambda msg, promise: optimized_transport_write(
            channel, msg, promise
        )

    def establish(self, channel: Channel, endpoint) -> Generator:
        if endpoint is None:
            raise RuntimeError("MPI transport requires an MpiEndpoint per role")
        yield from ensure_handshake(channel, endpoint)
