"""MPI4Spark-Basic: all messages over MPI, selector loop polls MPI_Iprobe.

The paper's first design (Sec. VI-D): the blocking ``select`` becomes a
non-blocking ``selectNow``, every iteration additionally ``MPI_Iprobe``-s
for matching sends, and *all* Spark message types go over MPI. The
constant polling consumes CPU and starves compute tasks — which Fig. 9
quantifies and which this class models through two taxes:

* ``polling_tax_cores = 4`` — the spinning selector threads (shuffle
  client + server pools) permanently occupy cores on the executor;
* ``compute_inflation = 1.3`` — residual interference (cache pollution and
  scheduler churn from a hot spinning thread sharing the socket) on task
  compute time. The value is calibrated so Fig-9's Basic-vs-Optimized gap
  lands near the paper's; see workloads/calibration.py.
"""

from __future__ import annotations

from typing import Generator

from repro.core.handshake import ensure_handshake
from repro.core.mpi_netty import (
    MpiBasicEventLoop,
    NotifyingHandshakeHandler,
    basic_transport_write,
)
from repro.mpi.runtime import MPIWorld
from repro.netty.channel import Channel
from repro.simnet.interconnect import mpi_over
from repro.transports.base import Transport


class MpiBasicTransport(Transport):
    """MPI4Spark-Basic (evaluated in Fig. 9, then abandoned)."""

    name = "mpi-basic"
    uses_mpi = True
    polling_tax_cores = 4
    compute_inflation = 1.3

    def __init__(
        self, env, cluster, loaded: bool = False, fault_mode: str = "abort"
    ) -> None:
        super().__init__(env, cluster, loaded, fault_mode=fault_mode)
        self.mpi_world = MPIWorld(
            env, cluster, mpi_over(self.fabric), fault_mode=fault_mode
        )

    def make_loop(self, name: str, endpoint=None) -> MpiBasicEventLoop:
        loop = MpiBasicEventLoop(self.env, name)
        loop.mpi_endpoint = endpoint
        return loop

    def pipeline_hook(self, channel: Channel, is_server: bool) -> None:
        channel.pipeline.add_first("mpiHandshake", NotifyingHandshakeHandler())
        channel._transport_write = lambda msg, promise: basic_transport_write(
            channel, msg, promise
        )

    def establish(self, channel: Channel, endpoint) -> Generator:
        if endpoint is None:
            raise RuntimeError("MPI transport requires an MpiEndpoint per role")
        yield from ensure_handshake(channel, endpoint)
        loop = channel.event_loop
        hook = getattr(loop, "on_mpi_channel_bound", None)
        if hook is not None:
            hook(channel)
