"""RDMA-Spark: an RDMA-based BlockTransferService (Lu et al., comparator).

RDMA-Spark keeps Spark's shuffle managers and replaces the
BlockTransferService with one driven by its Unified Communication Runtime
(UCR) over IB verbs. We model that by giving the *data plane* an RDMA wire
model while the control plane (RPC, connection establishment) stays on
TCP — matching RDMA-Spark's architecture, where RPC messages remain on
Java sockets.

The RDMA wire model's effective bandwidth is calibrated from the paper's
own measurement: RDMA-Spark's shuffle read is ~2.3x faster than IPoIB
(13.08/5.56, Sec. VII-E), far below raw verbs line rate, reflecting UCR's
chunk registration and completion-handling overheads.
"""

from __future__ import annotations

from repro.simnet.interconnect import rdma_loaded_over, rdma_over
from repro.simnet.sockets import SocketStack
from repro.transports.base import Transport


class RdmaTransport(Transport):
    """RDMA-Spark comparator: RDMA data plane, TCP control plane."""

    name = "rdma"

    def __init__(
        self, env, cluster, loaded: bool = False, fault_mode: str = "abort"
    ) -> None:
        super().__init__(env, cluster, loaded, fault_mode=fault_mode)
        model = rdma_loaded_over(self.fabric) if loaded else rdma_over(self.fabric)
        self.data_stack = SocketStack(env, cluster, model)
