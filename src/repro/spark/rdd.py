"""Resilient Distributed Datasets: the lineage graph and operator surface.

Faithful to Spark's architecture at the level the paper depends on:

* transformations build a DAG of RDDs connected by **narrow** dependencies
  (map/filter/...) or **wide** :class:`ShuffleDependency` (groupByKey,
  sortByKey, join, repartition, ...),
* wide dependencies are where shuffle traffic — the paper's bottleneck —
  is produced; the DAG scheduler cuts stages exactly there,
* actions submit jobs through the SparkContext.

Every operator actually computes (this is a working data engine, used by
the examples and the correctness tests); the performance simulation reuses
the same lineage with traced sizes.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.spark.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    sample_for_range_bounds,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext


class Dependency:
    """Edge in the lineage graph."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """One-to-one (or few-to-one) partition dependency; no shuffle."""

    def parent_partitions(self, pid: int) -> list[int]:
        return [pid]


class UnionDependency(NarrowDependency):
    """Maps a union output partition back to one parent partition."""

    def __init__(self, parent: "RDD", offset: int) -> None:
        super().__init__(parent)
        self.offset = offset

    def parent_partitions(self, pid: int) -> list[int]:
        return [pid - self.offset]


class Aggregator:
    """Combiner functions for shuffle-side aggregation."""

    def __init__(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        grouping: bool = False,
    ) -> None:
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners
        # grouping=True declares the combiner triple to be plain list
        # grouping ([v] / append / concat), letting the reduce side use a
        # direct dict-of-lists loop instead of two lambda calls per record.
        self.grouping = grouping


class ShuffleDependency(Dependency):
    """Wide dependency: the parent is re-partitioned by key across the net."""

    _shuffle_ids = itertools.count(0)

    def __init__(
        self,
        parent: "RDD",
        partitioner: Partitioner,
        aggregator: Aggregator | None = None,
        map_side_combine: bool = False,
        key_ordering: bool = False,
        ascending: bool = True,
    ) -> None:
        super().__init__(parent)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine and aggregator is not None
        self.key_ordering = key_ordering
        self.ascending = ascending
        self.shuffle_id = next(ShuffleDependency._shuffle_ids)


class RDD:
    """Base RDD. Subclasses implement :meth:`compute`."""

    _ids = itertools.count(0)

    def __init__(
        self,
        ctx: "SparkContext",
        num_partitions: int,
        deps: Sequence[Dependency] = (),
        partitioner: Partitioner | None = None,
        name: str | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError(f"RDD needs >= 1 partition, got {num_partitions}")
        self.ctx = ctx
        self.num_partitions = num_partitions
        self.deps = list(deps)
        self.partitioner = partitioner
        self.id = next(RDD._ids)
        self.name = name or type(self).__name__
        self.is_cached = False

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        raise NotImplementedError

    def iterator(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        """Compute (or fetch from cache) one partition."""
        if self.is_cached:
            cached = task_ctx.get_cached(self.id, split)
            if cached is not None:
                return iter(cached)
            data = list(self.compute(split, task_ctx))
            task_ctx.put_cached(self.id, split, data)
            return iter(data)
        return self.compute(split, task_ctx)

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------
    def map_partitions(
        self, fn: Callable[[Iterator[Any]], Iterator[Any]], name: str = "mapPartitions"
    ) -> "RDD":
        return MapPartitionsRDD(self, fn, name=name)

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map_partitions(lambda it: (fn(x) for x in it), name="map")

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.map_partitions(
            lambda it: (y for x in it for y in fn(x)), name="flatMap"
        )

    def filter(self, pred: Callable[[Any], bool]) -> "RDD":
        return self.map_partitions(
            lambda it: (x for x in it if pred(x)), name="filter"
        )

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        out = self.map_partitions(
            lambda it: ((k, fn(v)) for k, v in it), name="mapValues"
        )
        out.partitioner = self.partitioner  # keys unchanged
        return out

    def flat_map_values(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        out = self.map_partitions(
            lambda it: ((k, w) for k, v in it for w in fn(v)), name="flatMapValues"
        )
        out.partitioner = self.partitioner
        return out

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map_partitions(
            lambda it: ((fn(x), x) for x in it), name="keyBy"
        )

    def glom(self) -> "RDD":
        return self.map_partitions(lambda it: iter([list(it)]), name="glom")

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    def cache(self) -> "RDD":
        self.is_cached = True
        return self

    def sample(self, fraction: float, seed: int = 7) -> "RDD":
        import random

        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def _sample(split_it):
            rng = random.Random(seed)
            return (x for x in split_it if rng.random() < fraction)

        return self.map_partitions(_sample, name="sample")

    # ------------------------------------------------------------------
    # wide (shuffling) transformations
    # ------------------------------------------------------------------
    def _default_partitions(self, num_partitions: int | None) -> int:
        return num_partitions or self.ctx.default_parallelism

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner)

    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        map_side_combine: bool = True,
        grouping: bool = False,
    ) -> "RDD":
        agg = Aggregator(
            create_combiner, merge_value, merge_combiners, grouping=grouping
        )
        part = HashPartitioner(self._default_partitions(num_partitions))
        return ShuffledRDD(self, part, aggregator=agg, map_side_combine=map_side_combine)

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        # Spark's groupByKey never combines map-side: every value crosses
        # the wire — which is exactly why OHB GroupByTest stresses shuffle.
        return self.combine_by_key(
            lambda v: [v],
            lambda acc, v: (acc.append(v), acc)[1],
            lambda a, b: a + b,
            num_partitions,
            map_side_combine=False,
            grouping=True,
        )

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        return self.combine_by_key(lambda v: v, fn, fn, num_partitions)

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
    ) -> "RDD":
        def create(v):
            return seq_fn(zero, v)

        return self.combine_by_key(create, seq_fn, comb_fn, num_partitions)

    def count_by_key_rdd(self, num_partitions: int | None = None) -> "RDD":
        return self.map_values(lambda _v: 1).reduce_by_key(
            lambda a, b: a + b, num_partitions
        )

    def sort_by_key(
        self, ascending: bool = True, num_partitions: int | None = None
    ) -> "RDD":
        n = self._default_partitions(num_partitions)
        # Build range bounds by sampling — this runs a separate job, which
        # is why the paper's SortByTest breakdown labels the sort "Job2".
        sample = self.ctx.run_job(
            self,
            lambda it: sample_for_range_bounds((k for k, _ in it), max(n // self.num_partitions, 1) * 4),
            description="sortByKey sampling",
        )
        keys = [k for part in sample for k in part]
        bounds = RangePartitioner.bounds_from_sample(keys, n)
        part = RangePartitioner(bounds, ascending=ascending)
        return ShuffledRDD(
            self, part, key_ordering=True, ascending=ascending, name="sortByKey"
        )

    def sort_by(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD":
        keyed = self.key_by(key_fn)
        sorted_rdd = keyed.sort_by_key(ascending, num_partitions)
        return sorted_rdd.map(lambda kv: kv[1])

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def repartition(self, num_partitions: int) -> "RDD":
        # Spark rounds-robins records to destinations, then drops the key.
        counter = itertools.count()

        def add_key(it):
            return ((next(counter) % num_partitions, x) for x in it)

        keyed = self.map_partitions(add_key, name="repartition-keying")
        shuffled = ShuffledRDD(keyed, HashPartitioner(num_partitions), name="repartition")
        return shuffled.map(lambda kv: kv[1])

    def coalesce(self, num_partitions: int) -> "RDD":
        # Shuffle-free coalesce: merge adjacent partitions.
        return CoalescedRDD(self, num_partitions)

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        part = HashPartitioner(self._default_partitions(num_partitions))
        return CoGroupedRDD(self.ctx, [self, other], part)

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        def emit(kv):
            k, (left, right) = kv
            return [(k, (l, r)) for l in left for r in right]

        return self.cogroup(other, num_partitions).flat_map(emit)

    def left_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        def emit(kv):
            k, (left, right) = kv
            rights = right or [None]
            return [(k, (l, r)) for l in left for r in rights]

        return self.cogroup(other, num_partitions).flat_map(emit)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def collect(self) -> list[Any]:
        parts = self.ctx.run_job(self, list, description=f"collect {self.name}")
        return [x for part in parts for x in part]

    def count(self) -> int:
        parts = self.ctx.run_job(
            self, lambda it: sum(1 for _ in it), description=f"count {self.name}"
        )
        return sum(parts)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        def reduce_part(it):
            acc = _SENTINEL
            for x in it:
                acc = x if acc is _SENTINEL else fn(acc, x)
            return acc

        parts = [
            p
            for p in self.ctx.run_job(self, reduce_part, description="reduce")
            if p is not _SENTINEL
        ]
        if not parts:
            raise ValueError("reduce of empty RDD")
        acc = parts[0]
        for x in parts[1:]:
            acc = fn(acc, x)
        return acc

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        parts = self.ctx.run_job(
            self,
            lambda it: _fold_iter(it, zero, fn),
            description="fold",
        )
        acc = zero
        for p in parts:
            acc = fn(acc, p)
        return acc

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise ValueError("first() of empty RDD")
        return taken[0]

    def take(self, n: int) -> list[Any]:
        out: list[Any] = []
        for pid in range(self.num_partitions):
            if len(out) >= n:
                break
            (part,) = self.ctx.run_job(
                self,
                lambda it: list(itertools.islice(it, n - len(out))),
                partitions=[pid],
                description="take",
            )
            out.extend(part)
        return out[:n]

    def count_by_key(self) -> dict[Any, int]:
        return dict(self.count_by_key_rdd().collect())

    def foreach(self, fn: Callable[[Any], None]) -> None:
        self.ctx.run_job(
            self,
            lambda it: [fn(x) for x in it] and None,
            description="foreach",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RDD {self.id} {self.name} partitions={self.num_partitions}>"


_SENTINEL = object()


def _fold_iter(it, zero, fn):
    acc = zero
    for x in it:
        acc = fn(acc, x)
    return acc


# ---------------------------------------------------------------------------
# concrete RDDs
# ---------------------------------------------------------------------------

class ParallelCollectionRDD(RDD):
    """An in-memory collection sliced into partitions (sc.parallelize)."""

    def __init__(self, ctx: "SparkContext", data: Sequence[Any], num_partitions: int) -> None:
        super().__init__(ctx, num_partitions, deps=(), name="parallelize")
        n = len(data)
        self._slices = [
            list(data[(n * i) // num_partitions : (n * (i + 1)) // num_partitions])
            for i in range(num_partitions)
        ]

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        return iter(self._slices[split])


class GeneratedRDD(RDD):
    """Partitions produced by a generator function (workload data gen)."""

    def __init__(
        self,
        ctx: "SparkContext",
        num_partitions: int,
        gen_fn: Callable[[int], Iterable[Any]],
        name: str = "generated",
    ) -> None:
        super().__init__(ctx, num_partitions, deps=(), name=name)
        self._gen_fn = gen_fn

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        return iter(self._gen_fn(split))


class MapPartitionsRDD(RDD):
    """Applies a per-partition function; the universal narrow operator."""

    def __init__(
        self, parent: RDD, fn: Callable[[Iterator[Any]], Iterator[Any]], name: str
    ) -> None:
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            deps=[NarrowDependency(parent)],
            name=name,
        )
        self._fn = fn

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        parent = self.deps[0].parent
        return iter(self._fn(parent.iterator(split, task_ctx)))


class UnionRDD(RDD):
    """Concatenation of parents' partitions."""

    def __init__(self, ctx: "SparkContext", parents: Sequence[RDD]) -> None:
        deps: list[Dependency] = []
        offset = 0
        self._ranges: list[tuple[int, RDD]] = []
        for parent in parents:
            deps.append(UnionDependency(parent, offset))
            self._ranges.append((offset, parent))
            offset += parent.num_partitions
        super().__init__(ctx, offset, deps=deps, name="union")

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        for offset, parent in reversed(self._ranges):
            if split >= offset:
                return parent.iterator(split - offset, task_ctx)
        raise IndexError(split)


class CoalescedRDD(RDD):
    """Merges adjacent parent partitions without shuffling."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("coalesce needs >= 1 partition")
        num_partitions = min(num_partitions, parent.num_partitions)
        super().__init__(
            parent.ctx, num_partitions, deps=[_CoalesceDependency(parent, num_partitions)],
            name="coalesce",
        )

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        dep = self.deps[0]
        parent = dep.parent
        return itertools.chain.from_iterable(
            parent.iterator(pid, task_ctx) for pid in dep.parent_partitions(split)
        )


class _CoalesceDependency(NarrowDependency):
    def __init__(self, parent: RDD, num_out: int) -> None:
        super().__init__(parent)
        self._num_out = num_out

    def parent_partitions(self, pid: int) -> list[int]:
        n = self.parent.num_partitions
        start = (n * pid) // self._num_out
        end = (n * (pid + 1)) // self._num_out
        return list(range(start, end))


class ShuffledRDD(RDD):
    """Output side of a shuffle: reads combined key/value pairs."""

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Aggregator | None = None,
        map_side_combine: bool = False,
        key_ordering: bool = False,
        ascending: bool = True,
        name: str = "shuffled",
    ) -> None:
        dep = ShuffleDependency(
            parent,
            partitioner,
            aggregator=aggregator,
            map_side_combine=map_side_combine,
            key_ordering=key_ordering,
            ascending=ascending,
        )
        super().__init__(
            parent.ctx,
            partitioner.num_partitions,
            deps=[dep],
            partitioner=partitioner,
            name=name,
        )

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        dep: ShuffleDependency = self.deps[0]  # type: ignore[assignment]
        records = task_ctx.shuffle_fetch(dep, split)
        agg = dep.aggregator
        if agg is not None:
            combined: dict[Any, Any] = {}
            if dep.map_side_combine:
                # Values arriving are already combiners.
                merge_combiners = agg.merge_combiners
                for k, c in records:
                    if k in combined:
                        combined[k] = merge_combiners(combined[k], c)
                    else:
                        combined[k] = c
            elif agg.grouping:
                # groupByKey fast path: the combiners are plain lists, so
                # group directly (C-level dict/list ops) instead of two
                # Python lambda calls per record. Key insertion order and
                # per-key value order match the generic loop exactly.
                get = combined.get
                for k, v in records:
                    acc = get(k)
                    if acc is None:
                        combined[k] = [v]
                    else:
                        acc.append(v)
            else:
                merge_value = agg.merge_value
                create_combiner = agg.create_combiner
                for k, v in records:
                    if k in combined:
                        combined[k] = merge_value(combined[k], v)
                    else:
                        combined[k] = create_combiner(v)
            records = iter(combined.items())
        if dep.key_ordering:
            records = iter(
                sorted(records, key=lambda kv: kv[0], reverse=not dep.ascending)
            )
        return records


class CoGroupedRDD(RDD):
    """Groups values from several parents by key: (k, ([vs0], [vs1], ...))."""

    def __init__(
        self, ctx: "SparkContext", parents: Sequence[RDD], partitioner: Partitioner
    ) -> None:
        deps = [ShuffleDependency(p, partitioner) for p in parents]
        super().__init__(
            ctx,
            partitioner.num_partitions,
            deps=deps,
            partitioner=partitioner,
            name="cogroup",
        )

    def compute(self, split: int, task_ctx: "TaskContext") -> Iterator[Any]:
        n = len(self.deps)
        groups: dict[Any, tuple[list[Any], ...]] = {}
        for idx, dep in enumerate(self.deps):
            for k, v in task_ctx.shuffle_fetch(dep, split):
                if k not in groups:
                    groups[k] = tuple([] for _ in range(n))
                groups[k][idx].append(v)
        return iter(groups.items())


class TaskContext:
    """Execution context a backend provides to running tasks."""

    def shuffle_fetch(self, dep: ShuffleDependency, reduce_id: int) -> Iterator[Any]:
        """Iterate the shuffle records destined for ``reduce_id``."""
        raise NotImplementedError

    def get_cached(self, rdd_id: int, split: int):
        return None

    def put_cached(self, rdd_id: int, split: int, data: list[Any]) -> None:
        pass
