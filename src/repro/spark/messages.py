"""Spark network message types (paper Table II) and their wire codec.

Encodings mirror Spark's ``network-common`` module: every message is a
frame of ``[8B frame length][1B type tag][header fields][body]``; bulk
bodies (shuffle chunks, stream data) are *not* materialized into header
bytes — they ride as payload references with explicit sizes, like Netty
FileRegions (see :class:`repro.netty.frame.WireFrame`).

``MessageWithHeader`` (paper Fig. 6) is exactly this header/body split —
the Optimized design sends the header over the Java socket and the body
over MPI, so the codec here must keep them separable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.netty.bytebuf import ByteBuf
from repro.netty.frame import WireFrame, decode_frame_header, encode_frame_header


@dataclass(frozen=True)
class StreamChunkId:
    """Identifies one chunk of one stream (Spark's StreamChunkId)."""

    stream_id: int
    chunk_index: int

    def encode(self, buf: ByteBuf) -> None:
        buf.write_long(self.stream_id)
        buf.write_int(self.chunk_index)

    @staticmethod
    def decode(buf: ByteBuf) -> "StreamChunkId":
        return StreamChunkId(buf.read_long(), buf.read_int())


class Message:
    """Base wire message. Subclasses define tag + header/body behaviour."""

    type_tag: ClassVar[int] = -1
    is_request: ClassVar[bool] = True
    # Causal trace context (repro.obs.causal). A plain class-level default —
    # deliberately NOT a dataclass field, so message equality, reprs and
    # encodings are untouched; minted per instance by :func:`ensure_trace`.
    trace_ctx: Any = None

    # -- codec interface -----------------------------------------------------
    def encode_fields(self, buf: ByteBuf) -> None:
        raise NotImplementedError

    @classmethod
    def decode_fields(cls, buf: ByteBuf, body: Any, body_nbytes: int) -> "Message":
        raise NotImplementedError

    @property
    def body(self) -> Any:
        return None

    @property
    def body_nbytes(self) -> int:
        return 0


@dataclass
class ChunkFetchRequest(Message):
    """A request to fetch a single chunk of a stream (Table II).

    ``num_blocks`` is the reproduction's aggregation knob: one simulated
    chunk may stand for a group of same-destination shuffle blocks, and
    per-block overheads are charged ``num_blocks`` times.
    """

    stream_chunk_id: StreamChunkId
    num_blocks: int = 1

    type_tag: ClassVar[int] = 0
    is_request: ClassVar[bool] = True

    def encode_fields(self, buf: ByteBuf) -> None:
        self.stream_chunk_id.encode(buf)
        buf.write_int(self.num_blocks)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(StreamChunkId.decode(buf), buf.read_int())


@dataclass
class ChunkFetchSuccess(Message):
    """Response carrying a fetched chunk (the bulk shuffle message)."""

    stream_chunk_id: StreamChunkId
    chunk: Any = None
    chunk_nbytes: int = 0
    num_blocks: int = 1

    type_tag: ClassVar[int] = 1
    is_request: ClassVar[bool] = False

    def encode_fields(self, buf: ByteBuf) -> None:
        self.stream_chunk_id.encode(buf)
        buf.write_int(self.num_blocks)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        chunk_id = StreamChunkId.decode(buf)
        return cls(chunk_id, body, body_nbytes, buf.read_int())

    @property
    def body(self) -> Any:
        return self.chunk

    @property
    def body_nbytes(self) -> int:
        return self.chunk_nbytes


@dataclass
class ChunkFetchFailure(Message):
    """Fetch failed (block missing / executor lost)."""

    stream_chunk_id: StreamChunkId
    error: str = ""

    type_tag: ClassVar[int] = 2
    is_request: ClassVar[bool] = False

    def encode_fields(self, buf: ByteBuf) -> None:
        self.stream_chunk_id.encode(buf)
        buf.write_string(self.error)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(StreamChunkId.decode(buf), buf.read_string())


@dataclass
class RpcRequest(Message):
    """A generic RPC (Table II). Body is the serialized RPC payload."""

    request_id: int
    payload: Any = None
    payload_nbytes: int = 0

    type_tag: ClassVar[int] = 3
    is_request: ClassVar[bool] = True

    def encode_fields(self, buf: ByteBuf) -> None:
        buf.write_long(self.request_id)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(buf.read_long(), body, body_nbytes)

    @property
    def body(self) -> Any:
        return self.payload

    @property
    def body_nbytes(self) -> int:
        return self.payload_nbytes


@dataclass
class RpcResponse(Message):
    """Reply to a successful RPC."""

    request_id: int
    payload: Any = None
    payload_nbytes: int = 0

    type_tag: ClassVar[int] = 4
    is_request: ClassVar[bool] = False

    def encode_fields(self, buf: ByteBuf) -> None:
        buf.write_long(self.request_id)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(buf.read_long(), body, body_nbytes)

    @property
    def body(self) -> Any:
        return self.payload

    @property
    def body_nbytes(self) -> int:
        return self.payload_nbytes


@dataclass
class RpcFailure(Message):
    """Reply to a failed RPC."""

    request_id: int
    error: str = ""

    type_tag: ClassVar[int] = 5
    is_request: ClassVar[bool] = False

    def encode_fields(self, buf: ByteBuf) -> None:
        buf.write_long(self.request_id)
        buf.write_string(self.error)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(buf.read_long(), buf.read_string())


@dataclass
class StreamRequest(Message):
    """Request to open a stream (jar/file distribution, Table II)."""

    stream_id: str

    type_tag: ClassVar[int] = 6
    is_request: ClassVar[bool] = True

    def encode_fields(self, buf: ByteBuf) -> None:
        buf.write_string(self.stream_id)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(buf.read_string())


@dataclass
class StreamResponse(Message):
    """Stream opened successfully; body carries the stream data."""

    stream_id: str
    byte_count: int = 0
    data: Any = None

    type_tag: ClassVar[int] = 7
    is_request: ClassVar[bool] = False

    def encode_fields(self, buf: ByteBuf) -> None:
        buf.write_string(self.stream_id)
        buf.write_long(self.byte_count)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        stream_id = buf.read_string()
        byte_count = buf.read_long()
        return cls(stream_id, byte_count, body)

    @property
    def body(self) -> Any:
        return self.data

    @property
    def body_nbytes(self) -> int:
        return self.byte_count


@dataclass
class StreamFailure(Message):
    """Stream could not be opened."""

    stream_id: str
    error: str = ""

    type_tag: ClassVar[int] = 8
    is_request: ClassVar[bool] = False

    def encode_fields(self, buf: ByteBuf) -> None:
        buf.write_string(self.stream_id)
        buf.write_string(self.error)

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(buf.read_string(), buf.read_string())


@dataclass
class OneWayMessage(Message):
    """An RPC that expects no reply (Table II)."""

    payload: Any = None
    payload_nbytes: int = 0

    type_tag: ClassVar[int] = 9
    is_request: ClassVar[bool] = True

    def encode_fields(self, buf: ByteBuf) -> None:
        pass

    @classmethod
    def decode_fields(cls, buf, body, body_nbytes):
        return cls(body, body_nbytes)

    @property
    def body(self) -> Any:
        return self.payload

    @property
    def body_nbytes(self) -> int:
        return self.payload_nbytes


MESSAGE_TYPES: dict[int, type[Message]] = {
    cls.type_tag: cls
    for cls in (
        ChunkFetchRequest,
        ChunkFetchSuccess,
        ChunkFetchFailure,
        RpcRequest,
        RpcResponse,
        RpcFailure,
        StreamRequest,
        StreamResponse,
        StreamFailure,
        OneWayMessage,
    )
}

# The two bulk message types the Optimized design routes over MPI
# (paper Sec. VI-E).
MPI_OPTIMIZED_BODY_TYPES = (ChunkFetchSuccess.type_tag, StreamResponse.type_tag)


def ensure_trace(msg: Message, causal, parent=None):
    """Mint (or inherit) a causal trace context for ``msg``.

    This is where a Spark message acquires its identity in the causal DAG:
    a fresh root trace, or — when ``parent`` names a task or a request —
    a child span of it.  A context already attached (e.g. by the request
    handler linking a response to its request) is kept.  Returns the
    context; a no-op returning None when ``causal`` is disabled.
    """
    if not causal.enabled:
        return None
    if msg.trace_ctx is None:
        msg.trace_ctx = causal.child(parent)
    return msg.trace_ctx


def encode_message(msg: Message) -> WireFrame:
    """Message → WireFrame (header bytes + body reference)."""
    fields = ByteBuf()
    msg.encode_fields(fields)
    header = encode_frame_header(msg.type_tag, fields.to_bytes(), msg.body_nbytes)
    frame = WireFrame(header=header, body=msg.body, body_nbytes=msg.body_nbytes)
    frame.trace_ctx = msg.trace_ctx  # side channel, never in header bytes
    return frame


def decode_message(frame: WireFrame) -> Message:
    """WireFrame → Message (inverse of :func:`encode_message`)."""
    tag, body_nbytes, fields = decode_frame_header(frame.header)
    cls = MESSAGE_TYPES.get(tag)
    if cls is None:
        raise ValueError(f"unknown message type tag {tag}")
    msg = cls.decode_fields(fields, frame.body, frame.body_nbytes)
    if frame.trace_ctx is not None:
        msg.trace_ctx = frame.trace_ctx
    return msg


def peek_message_type(frame: WireFrame) -> tuple[int, int]:
    """Parse only (type_tag, body_nbytes) from a frame header.

    This is what the Optimized design's ChannelHandlers do: inspect the
    header to decide whether an ``MPI_Recv`` must be triggered for the body
    (paper Sec. VI-E / Fig. 7).
    """
    tag, body_nbytes, _fields = decode_frame_header(frame.header)
    return tag, body_nbytes
