"""DAG scheduler: cuts the RDD lineage into stages at shuffle boundaries.

Narrow dependencies are pipelined inside one stage; every
:class:`~repro.spark.rdd.ShuffleDependency` introduces a parent
``ShuffleMapStage``. Stage naming mirrors the Spark UI labels the paper's
breakdown figures use ("Job1-ShuffleMapStage", "Job1-ResultStage", ...).
Shuffle-map stages are cached per shuffle id, so a shuffle computed by an
earlier job is not recomputed (Spark's shuffle-reuse behaviour).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.spark.rdd import RDD, NarrowDependency, ShuffleDependency

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext


class Stage:
    """A pipelined set of tasks, one per partition of :attr:`rdd`."""

    _ids = itertools.count(0)

    def __init__(self, rdd: RDD, shuffle_dep: ShuffleDependency | None) -> None:
        self.id = next(Stage._ids)
        self.rdd = rdd
        self.shuffle_dep = shuffle_dep  # None => result stage
        self.parents: list[Stage] = []

    @property
    def is_shuffle_map(self) -> bool:
        return self.shuffle_dep is not None

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions

    def kind(self) -> str:
        return "ShuffleMapStage" if self.is_shuffle_map else "ResultStage"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.id} {self.kind()} rdd={self.rdd.name}>"


@dataclass
class Job:
    """One action: a result stage plus its (transitive) parent stages."""

    job_id: int
    final_rdd: RDD
    func: Callable
    partitions: Sequence[int]
    result_stage: Stage
    stages: list[Stage] = field(default_factory=list)  # topological order
    description: str = ""

    def label_of(self, stage: Stage) -> str:
        """The Spark-UI-style label used in the paper's figures."""
        return f"Job{self.job_id}-{stage.kind()}"


class DAGScheduler:
    """Builds jobs from actions. Execution is delegated to a backend."""

    def __init__(self, ctx: "SparkContext") -> None:
        self.ctx = ctx
        self._shuffle_stages: dict[int, Stage] = {}
        self._job_ids = itertools.count(0)

    # -- stage graph construction ---------------------------------------------
    def _shuffle_map_stage(self, dep: ShuffleDependency) -> Stage:
        stage = self._shuffle_stages.get(dep.shuffle_id)
        if stage is None:
            stage = Stage(dep.parent, dep)
            stage.parents = self._parent_stages(dep.parent)
            self._shuffle_stages[dep.shuffle_id] = stage
        return stage

    def _parent_stages(self, rdd: RDD) -> list[Stage]:
        """Shuffle-map stages directly feeding the stage containing ``rdd``."""
        parents: list[Stage] = []
        seen: set[int] = set()
        stack = [rdd]
        visited: set[int] = set()
        while stack:
            r = stack.pop()
            if r.id in visited:
                continue
            visited.add(r.id)
            for dep in r.deps:
                if isinstance(dep, ShuffleDependency):
                    stage = self._shuffle_map_stage(dep)
                    if stage.id not in seen:
                        seen.add(stage.id)
                        parents.append(stage)
                else:
                    stack.append(dep.parent)
        return parents

    def build_job(
        self,
        rdd: RDD,
        func: Callable,
        partitions: Sequence[int] | None = None,
        description: str = "",
    ) -> Job:
        if partitions is None:
            partitions = range(rdd.num_partitions)
        partitions = list(partitions)
        for pid in partitions:
            if not 0 <= pid < rdd.num_partitions:
                raise ValueError(
                    f"partition {pid} out of range for {rdd.num_partitions}"
                )
        result_stage = Stage(rdd, None)
        result_stage.parents = self._parent_stages(rdd)
        job = Job(
            job_id=next(self._job_ids),
            final_rdd=rdd,
            func=func,
            partitions=partitions,
            result_stage=result_stage,
            description=description,
        )
        job.stages = self._topo_sort(result_stage)
        return job

    @staticmethod
    def _topo_sort(result_stage: Stage) -> list[Stage]:
        order: list[Stage] = []
        seen: set[int] = set()

        def visit(stage: Stage) -> None:
            if stage.id in seen:
                return
            seen.add(stage.id)
            for parent in stage.parents:
                visit(parent)
            order.append(stage)

        visit(result_stage)
        return order
