"""Spark standalone-mode control plane: master, workers, driver registration.

The paper's Fig-3 launch ends with a normal Spark standalone cluster: a
master that workers register with, and a driver whose application request
makes the master allocate executors on workers. This module implements
that control-plane protocol over the reproduction's RPC layer (the same
``TransportContext`` the data plane uses), so cluster bring-up is a real
message exchange rather than framework fiat:

* ``RegisterWorker(worker_id, cores, memory)``   → ``RegisteredWorker``
* ``RegisterApplication(app_name, cores_wanted)`` → ``RegisteredApplication``
  followed by ``LaunchExecutor`` one-way messages to the chosen workers
* ``Heartbeat(worker_id)`` keep-alives; a worker missing
  ``WORKER_TIMEOUT_S`` of heartbeats is marked dead and its executors lost.

This is deliberately *control-plane only* — scheduling of tasks onto the
executors (the performance-relevant part) lives in
:mod:`repro.spark.deploy`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.netty.eventloop import EventLoop
from repro.simnet.sockets import SocketAddress
from repro.spark.network import RpcHandler, TransportContext

MASTER_PORT = 7077
WORKER_TIMEOUT_S = 60.0


@dataclass
class WorkerInfo:
    worker_id: str
    host: str
    cores: int
    memory_bytes: int
    cores_free: int
    last_heartbeat: float
    alive: bool = True
    executors: list[str] = field(default_factory=list)


@dataclass
class ApplicationInfo:
    app_id: str
    name: str
    cores_wanted: int
    executors: list[tuple[str, str, int]] = field(default_factory=list)  # (exec_id, worker_id, cores)


class MasterRpcHandler(RpcHandler):
    """The master's RPC endpoint."""

    def __init__(self, master: "StandaloneMaster") -> None:
        self.master = master

    def receive(self, client_channel, payload, reply):
        kind = payload[0]
        if kind == "RegisterWorker":
            _, worker_id, host, cores, memory = payload
            info = self.master.register_worker(worker_id, host, cores, memory)
            reply(("RegisteredWorker", self.master.master_url, info.worker_id), 64)
        elif kind == "RegisterApplication":
            _, name, cores_wanted = payload
            app = self.master.register_application(name, cores_wanted)
            reply(("RegisteredApplication", app.app_id, list(app.executors)), 128)
        elif kind == "WorkerStatus":
            _, worker_id = payload
            info = self.master.workers.get(worker_id)
            reply(("Status", info.alive if info else None), 32)
        else:
            raise ValueError(f"unknown master RPC {kind!r}")

    def receive_one_way(self, client_channel, payload):
        if payload[0] == "Heartbeat":
            self.master.heartbeat(payload[1])


class StandaloneMaster:
    """Tracks workers and allocates executors to applications."""

    _app_ids = itertools.count(0)
    _exec_ids = itertools.count(0)

    def __init__(self, env, context_stack, node, loop: EventLoop | None = None) -> None:
        self.env = env
        self.node = node
        self.workers: dict[str, WorkerInfo] = {}
        self.applications: dict[str, ApplicationInfo] = {}
        self.loop = loop or EventLoop(env, "master-loop")
        self.context = TransportContext(context_stack, rpc_handler=MasterRpcHandler(self))
        self.server = None

    @property
    def master_url(self) -> str:
        return f"spark://{self.node.name}:{MASTER_PORT}"

    def start(self) -> None:
        if self.loop._proc is None:
            self.loop.start()
        self.server = self.context.create_server(self.loop, self.node, MASTER_PORT)

    def stop(self) -> None:
        self.loop.stop()

    # -- registry -----------------------------------------------------------
    def register_worker(self, worker_id: str, host: str, cores: int, memory: int) -> WorkerInfo:
        info = WorkerInfo(
            worker_id=worker_id,
            host=host,
            cores=cores,
            memory_bytes=memory,
            cores_free=cores,
            last_heartbeat=self.env.now,
        )
        self.workers[worker_id] = info
        return info

    def heartbeat(self, worker_id: str) -> None:
        info = self.workers.get(worker_id)
        if info is not None:
            info.last_heartbeat = self.env.now
            info.alive = True

    def check_timeouts(self) -> list[str]:
        """Mark workers without recent heartbeats dead; returns their ids."""
        dead = []
        for info in self.workers.values():
            if info.alive and self.env.now - info.last_heartbeat > WORKER_TIMEOUT_S:
                info.alive = False
                info.cores_free = 0
                dead.append(info.worker_id)
        return dead

    # -- executor allocation (spreadOut strategy, Spark's default) ----------
    def register_application(self, name: str, cores_wanted: int) -> ApplicationInfo:
        app = ApplicationInfo(app_id=f"app-{next(self._app_ids):04d}", name=name,
                              cores_wanted=cores_wanted)
        remaining = cores_wanted
        # Round-robin single cores across alive workers (spreadOut=true),
        # then coalesce per worker into one executor each.
        alive = [w for w in self.workers.values() if w.alive and w.cores_free > 0]
        grants: dict[str, int] = {w.worker_id: 0 for w in alive}
        while remaining > 0 and any(w.cores_free - grants[w.worker_id] > 0 for w in alive):
            for w in alive:
                if remaining == 0:
                    break
                if w.cores_free - grants[w.worker_id] > 0:
                    grants[w.worker_id] += 1
                    remaining -= 1
        for w in alive:
            n = grants[w.worker_id]
            if n == 0:
                continue
            exec_id = f"exec-{next(self._exec_ids):04d}"
            w.cores_free -= n
            w.executors.append(exec_id)
            app.executors.append((exec_id, w.worker_id, n))
        self.applications[app.app_id] = app
        return app


class StandaloneWorker:
    """A worker daemon: registers with the master and heartbeats."""

    def __init__(
        self,
        env,
        context: TransportContext,
        loop: EventLoop,
        node,
        worker_id: str,
        cores: int,
        memory: int,
        heartbeat_period_s: float = 10.0,
    ) -> None:
        self.env = env
        self.context = context
        self.loop = loop
        self.node = node
        self.worker_id = worker_id
        self.cores = cores
        self.memory = memory
        self.heartbeat_period_s = heartbeat_period_s
        self.registered = False
        self._client = None
        self._beats = 0

    def register_and_heartbeat(self, master_addr: SocketAddress, n_beats: int = 3) -> Generator:
        """Register with the master, then send ``n_beats`` heartbeats."""
        self._client = yield from self.context.create_client(
            self.loop, self.node, master_addr
        )
        reply = yield self._client.send_rpc(
            ("RegisterWorker", self.worker_id, self.node.name, self.cores, self.memory),
            nbytes=96,
        )
        assert reply[0] == "RegisteredWorker"
        self.registered = True
        for _ in range(n_beats):
            yield self.env.timeout(self.heartbeat_period_s)
            self._client.send_one_way(("Heartbeat", self.worker_id), nbytes=32)
            self._beats += 1
        return reply[1]  # the master URL
